#include "dynamic/dynamic_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/paper_data.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/paper_dynamic.hpp"
#include "math/numdiff.hpp"

namespace tdp {
namespace {

DynamicModel tiny_model(double capacity, std::size_t warmup = 6) {
  DemandProfile arrivals(4);
  auto patient = std::make_shared<PowerLawWaitingFunction>(
      0.5, 4, 1.0, 1.0, LagNormalization::kContinuous);
  auto impatient = std::make_shared<PowerLawWaitingFunction>(
      3.0, 4, 1.0, 1.0, LagNormalization::kContinuous);
  arrivals.add_class(0, {patient, 8.0});
  arrivals.add_class(0, {impatient, 4.0});
  arrivals.add_class(1, {patient, 2.0});
  arrivals.add_class(2, {impatient, 1.0});
  arrivals.add_class(3, {patient, 3.0});
  return DynamicModel(std::move(arrivals), capacity,
                      math::PiecewiseLinearCost::hinge(1.0), warmup);
}

TEST(DynamicModel, BacklogRecursionKnownValues) {
  // Arrivals 12, 2, 1, 3 against capacity 5: backlog 7, 4, 0, 0.
  const DynamicModel model = tiny_model(5.0);
  const auto ev = model.evaluate(math::Vector(4, 0.0));
  EXPECT_NEAR(ev.arrivals[0], 12.0, 1e-12);
  EXPECT_NEAR(ev.backlog[0], 7.0, 1e-9);
  EXPECT_NEAR(ev.backlog[1], 4.0, 1e-9);
  EXPECT_NEAR(ev.backlog[2], 0.0, 1e-9);
  EXPECT_NEAR(ev.backlog[3], 0.0, 1e-9);
  EXPECT_NEAR(ev.backlog_cost, 11.0, 1e-9);
  EXPECT_DOUBLE_EQ(ev.reward_cost, 0.0);
}

TEST(DynamicModel, SteadyStateIndependentOfExtraWarmup) {
  const DynamicModel short_warmup = tiny_model(5.0, 6);
  const DynamicModel long_warmup = tiny_model(5.0, 30);
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    math::Vector rewards(4);
    for (double& r : rewards) r = rng.uniform(0.0, 0.8);
    EXPECT_NEAR(short_warmup.total_cost(rewards),
                long_warmup.total_cost(rewards), 1e-9);
  }
}

TEST(DynamicModel, RejectsOverloadedSystem) {
  // Daily demand 18 against capacity 4 * 4 = 16: backlog diverges.
  EXPECT_THROW(tiny_model(4.0), PreconditionError);
}

TEST(DynamicModel, AmpleCapacityMeansRewardOnlyCost) {
  const DynamicModel model = tiny_model(15.0);
  const math::Vector rewards(4, 0.5);
  const auto ev = model.evaluate(rewards);
  EXPECT_DOUBLE_EQ(ev.backlog_cost, 0.0);
  EXPECT_GT(ev.reward_cost, 0.0);
  EXPECT_NEAR(ev.total_cost, ev.reward_cost, 1e-12);
}

class DynamicGradient : public ::testing::TestWithParam<int> {};

TEST_P(DynamicGradient, AnalyticMatchesNumeric) {
  const DynamicModel model = tiny_model(5.0);
  Rng rng(static_cast<std::uint64_t>(40 + GetParam()));
  math::Vector rewards(4);
  for (double& r : rewards) r = rng.uniform(0.05, 0.9);
  const double mu = 0.05;
  math::Vector analytic(4, 0.0);
  model.smoothed_gradient(rewards, mu, analytic);
  const math::Vector numeric = math::numeric_gradient(
      [&model, mu](const math::Vector& p) {
        return model.smoothed_cost(p, mu);
      },
      rewards, 1e-6);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicGradient, ::testing::Range(1, 9));

class DynamicConvexity : public ::testing::TestWithParam<int> {};

TEST_P(DynamicConvexity, MidpointConvex) {
  // The backlog recursion composes max(0, affine) monotonically, so the
  // exact dynamic objective stays convex.
  const DynamicModel model = tiny_model(5.0);
  Rng rng(static_cast<std::uint64_t>(60 + GetParam()));
  math::Vector a(4);
  math::Vector b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a[i] = rng.uniform(0.0, 1.0);
    b[i] = rng.uniform(0.0, 1.0);
  }
  math::Vector mid(4);
  for (std::size_t i = 0; i < 4; ++i) mid[i] = 0.5 * (a[i] + b[i]);
  EXPECT_LE(model.total_cost(mid),
            0.5 * (model.total_cost(a) + model.total_cost(b)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicConvexity, ::testing::Range(1, 17));

TEST(DynamicModel, RewardCapBoundedByValidityAndRunLength) {
  const DynamicModel congested = tiny_model(5.0);
  // Longest congested run under TIP is 2 periods (backlog 7 then 4), slope
  // 1 => run cap 2; validity bound is the normalization point 1.0.
  EXPECT_NEAR(congested.reward_cap(), 1.0, 1e-6);

  const DynamicModel paper_model = paper::dynamic_model_48();
  EXPECT_LE(paper_model.reward_cap(),
            paper::kStaticNormalizationReward + 1e-9);
}

TEST(DynamicOptimizer, BeatsTipAndBreaksSinglePeriodCap) {
  // Section V-B: carry-over makes deferral more valuable, so rewards exceed
  // the static one-period bound (a/2 = 0.5 here) and cost drops sharply.
  const DynamicModel model = paper::dynamic_model_48();
  const DynamicPricingSolution sol = optimize_dynamic_prices(model);
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.evaluation.total_cost, 0.5 * sol.tip_cost);
  double max_reward = 0.0;
  for (double p : sol.rewards) max_reward = std::max(max_reward, p);
  EXPECT_GT(max_reward, paper::kDynamicCostSlope / 2.0);
  EXPECT_LE(max_reward, model.reward_cap() + 1e-9);
}

TEST(DynamicOptimizer, BacklogMostlyEliminatedAtOptimum) {
  // Fig. 8: "deferred traffic from initially overused periods no longer
  // carries over into subsequent periods."
  const DynamicModel model = paper::dynamic_model_48();
  const DynamicPricingSolution sol = optimize_dynamic_prices(model);
  const auto tip = model.evaluate(math::Vector(48, 0.0));
  double tip_backlog = 0.0;
  double tdp_backlog = 0.0;
  for (std::size_t i = 0; i < 48; ++i) {
    tip_backlog += tip.backlog[i];
    tdp_backlog += sol.evaluation.backlog[i];
  }
  EXPECT_LT(tdp_backlog, 0.1 * tip_backlog);
}

TEST(DynamicModel, PerPeriodCapacityVector) {
  // Time-varying capacity (the Section II usage-cap cushion carries over
  // to the dynamic model): a single tight period creates backlog that the
  // next, wider period absorbs.
  DemandProfile arrivals(3);
  auto w = std::make_shared<PowerLawWaitingFunction>(
      1.0, 3, 1.0, 1.0, LagNormalization::kContinuous);
  arrivals.add_class(0, {w, 9.0});
  arrivals.add_class(1, {w, 2.0});
  arrivals.add_class(2, {w, 2.0});
  const DynamicModel model(std::move(arrivals), {6.0, 8.0, 8.0},
                           math::PiecewiseLinearCost::hinge(1.0));
  const auto ev = model.evaluate(math::Vector(3, 0.0));
  EXPECT_NEAR(ev.backlog[0], 3.0, 1e-9);  // 9 against 6
  EXPECT_NEAR(ev.backlog[1], 0.0, 1e-9);  // 3 + 2 against 8
  EXPECT_NEAR(ev.backlog[2], 0.0, 1e-9);
  EXPECT_NEAR(ev.backlog_cost, 3.0, 1e-9);
}

TEST(DynamicModel, VectorCapacityMustCoverEveryPeriod) {
  DemandProfile arrivals(3);
  auto w = std::make_shared<PowerLawWaitingFunction>(1.0, 3, 1.0);
  arrivals.add_class(0, {w, 1.0});
  EXPECT_THROW(DynamicModel(arrivals, std::vector<double>{5.0, 5.0},
                            math::PiecewiseLinearCost::hinge(1.0)),
               PreconditionError);
}

TEST(DynamicModel, EvaluationBalancesServiceAndArrivals) {
  const DynamicModel model = tiny_model(5.0);
  const math::Vector rewards(4, 0.3);
  const auto ev = model.evaluate(rewards);
  // In steady state, served + backlog growth must equal arrivals per day;
  // with a cyclic steady state, total served == total arrivals.
  double served = 0.0;
  double arrived = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    served += ev.served[i];
    arrived += ev.arrivals[i];
  }
  EXPECT_NEAR(served, arrived, 1e-9);
}

}  // namespace
}  // namespace tdp
