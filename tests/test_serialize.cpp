// The versioned binary framing (common/serialize.hpp): bitwise round-trip,
// strict section discipline, and — the part that earns the sanitize label —
// a deterministic corruption/truncation fuzz proving the Reader turns every
// hostile buffer into a clean ser::FormatError, never UB.
#include "common/serialize.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gtest/gtest.h"

namespace tdp::ser {
namespace {

constexpr char kMagic[] = "TDPT";

std::vector<std::uint8_t> sample_buffer() {
  Writer w(kMagic, 3);
  const std::size_t a = w.begin_section(1);
  w.u8(0x5A);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.boolean(true);
  w.end_section(a);
  const std::size_t b = w.begin_section(2);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  w.str("checkpoint");
  w.vec_f64({1.0, -2.5, 3.25});
  w.vec_u64({7, 8, 9});
  w.end_section(b);
  return w.finish();
}

TEST(Serialize, RoundTripsEveryPrimitiveBitwise) {
  const std::vector<std::uint8_t> bytes = sample_buffer();
  Reader r(bytes, kMagic, 1, 3);
  EXPECT_EQ(r.version(), 3u);

  EXPECT_EQ(r.begin_section(), 1u);
  EXPECT_EQ(r.u8(), 0x5A);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  r.end_section();

  EXPECT_EQ(r.begin_section(), 2u);
  const double negative_zero = r.f64();
  EXPECT_EQ(negative_zero, 0.0);
  EXPECT_TRUE(std::signbit(negative_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.str(), "checkpoint");
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1.0, -2.5, 3.25}));
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{7, 8, 9}));
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, EncodingIsByteStableAcrossWriters) {
  EXPECT_EQ(sample_buffer(), sample_buffer());
}

TEST(Serialize, UnknownSectionsSkipCleanly) {
  Writer w(kMagic, 1);
  std::size_t s = w.begin_section(99);  // unknown to this reader
  w.vec_f64({1.0, 2.0, 3.0});
  w.str("from the future");
  w.end_section(s);
  s = w.begin_section(7);
  w.u32(1234);
  w.end_section(s);
  const std::vector<std::uint8_t> bytes = w.finish();

  Reader r(bytes, kMagic, 1, 1);
  EXPECT_EQ(r.begin_section(), 99u);
  r.skip_section();  // also closes the section
  EXPECT_EQ(r.begin_section(), 7u);
  EXPECT_EQ(r.u32(), 1234u);
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, StrictFramingRejectsUnderAndOverReads) {
  Writer w(kMagic, 1);
  const std::size_t s = w.begin_section(1);
  w.u32(5);
  w.u32(6);
  w.end_section(s);
  const std::vector<std::uint8_t> bytes = w.finish();

  {
    // Leaving bytes unconsumed inside a section is corruption.
    Reader r(bytes, kMagic, 1, 1);
    r.begin_section();
    r.u32();
    EXPECT_THROW(r.end_section(), FormatError);
  }
  {
    // Reading past the section boundary is corruption.
    Reader r(bytes, kMagic, 1, 1);
    r.begin_section();
    r.u32();
    r.u32();
    EXPECT_THROW(r.u32(), FormatError);
  }
}

TEST(Serialize, RejectsMagicAndVersionMismatch) {
  const std::vector<std::uint8_t> bytes = sample_buffer();  // version 3
  EXPECT_THROW(Reader(bytes, "XXXX", 1, 3), FormatError);
  EXPECT_THROW(Reader(bytes, kMagic, 1, 2), FormatError);
  EXPECT_THROW(Reader(bytes, kMagic, 4, 9), FormatError);
}

TEST(Serialize, NonFiniteDoublesRejectedWhereFiniteRequired) {
  Writer w(kMagic, 1);
  const std::size_t s = w.begin_section(1);
  w.vec_f64({1.0, std::numeric_limits<double>::quiet_NaN()});
  w.end_section(s);
  const std::vector<std::uint8_t> bytes = w.finish();

  Reader r(bytes, kMagic, 1, 1);
  r.begin_section();
  EXPECT_THROW(r.vec_f64_finite(), FormatError);

  // The plain reader round-trips the NaN bit pattern untouched.
  Reader r2(bytes, kMagic, 1, 1);
  r2.begin_section();
  const std::vector<double> v = r2.vec_f64();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_TRUE(std::isnan(v[1]));
}

TEST(Serialize, CorruptLengthCannotDriveAllocation) {
  // A vector count far beyond the remaining bytes must be rejected before
  // any allocation, with or without an explicit max_count.
  Writer w(kMagic, 1);
  const std::size_t s = w.begin_section(1);
  w.u64(~0ull);  // forged count where a vec_f64 count belongs
  w.end_section(s);
  const std::vector<std::uint8_t> bytes = w.finish();

  Reader r(bytes, kMagic, 1, 1);
  r.begin_section();
  EXPECT_THROW(r.vec_f64(), FormatError);
}

TEST(Serialize, EveryTruncationFailsCleanly) {
  const std::vector<std::uint8_t> bytes = sample_buffer();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(Reader(bytes.data(), len, kMagic, 1, 3), FormatError)
        << "truncation at " << len << " bytes was accepted";
  }
}

TEST(Serialize, EverySingleByteFlipIsDetected) {
  const std::vector<std::uint8_t> bytes = sample_buffer();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[i] ^= 0xFF;
    // Header damage throws in the constructor; payload damage must be
    // caught by the CRC (also in the constructor). Either way: FormatError.
    EXPECT_THROW(Reader(mutated, kMagic, 1, 3), FormatError)
        << "flip at byte " << i << " was accepted";
  }
}

TEST(Serialize, RandomMutationFuzzNeverCrashes) {
  const std::vector<std::uint8_t> base = sample_buffer();
  Rng rng(20260808);
  int clean_errors = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> mutated = base;
    const std::size_t flips = 1 + rng.uniform_index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform_index(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }
    if (rng.bernoulli(0.5)) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    }
    try {
      Reader r(mutated, kMagic, 1, 3);
      // Survived framing (CRC collision is ~2^-32; a same-bytes mutation
      // is possible when flips cancel): drain it — reads must still be
      // bounds-checked.
      while (!r.at_end()) {
        r.begin_section();
        r.skip_section();
      }
    } catch (const FormatError&) {
      ++clean_errors;
    }
  }
  EXPECT_GT(clean_errors, 1900);  // near-every mutation must be rejected
}

}  // namespace
}  // namespace tdp::ser
