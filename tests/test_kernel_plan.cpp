// Bitwise property tests for the fused kernel plan (core/kernel_plan).
//
// The contract under test is *identity*, not closeness: every double the
// fast paths produce must EXPECT_EQ the corresponding reference-path value.
// The reference DeferralKernel / model methods stay in the codebase exactly
// so they can serve as the oracle here.
#include "core/kernel_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "core/profit.hpp"
#include "core/static_model.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "math/golden_section.hpp"
#include "math/piecewise_linear.hpp"

namespace tdp {
namespace {

enum class WfFamily { kLinearPower, kNonlinearPower, kCallable };

const char* family_name(WfFamily family) {
  switch (family) {
    case WfFamily::kLinearPower: return "linear";
    case WfFamily::kNonlinearPower: return "nonlinear";
    case WfFamily::kCallable: return "callable";
  }
  return "?";
}

/// A demand profile exercising shared waiting functions (one per class,
/// reused across periods), empty periods, and mixed class counts.
DemandProfile make_test_profile(std::size_t n, WfFamily family,
                                LagNormalization normalization,
                                double max_reward) {
  std::vector<WaitingFunctionPtr> wfs;
  for (std::size_t s = 0; s < 4; ++s) {
    const double beta = 0.5 + static_cast<double>(s) * 1.1;
    switch (family) {
      case WfFamily::kLinearPower:
        wfs.push_back(std::make_shared<PowerLawWaitingFunction>(
            beta, n, max_reward, 1.0, normalization));
        break;
      case WfFamily::kNonlinearPower:
        wfs.push_back(std::make_shared<PowerLawWaitingFunction>(
            beta, n, max_reward, 0.6 + 0.1 * static_cast<double>(s),
            normalization));
        break;
      case WfFamily::kCallable: {
        // Bounded concave-in-p family the plan cannot specialize: forces
        // the generic per-term dispatch path.
        const double scale = 0.02 + 0.01 * static_cast<double>(s);
        wfs.push_back(std::make_shared<CallableWaitingFunction>(
            [scale, beta](double p, double t) {
              if (p <= 0.0) return 0.0;
              return scale * std::log1p(p) / std::pow(t + 1.0, beta);
            },
            [scale, beta](double p, double t) {
              if (p < 0.0) return 0.0;
              return scale / (1.0 + p) / std::pow(t + 1.0, beta);
            },
            "test-log"));
        break;
      }
    }
  }

  DemandProfile profile(n);
  Rng rng(17 + n);
  for (std::size_t i = 0; i < n; ++i) {
    if (n > 2 && i % 5 == 4) continue;  // leave some periods empty
    const std::size_t classes = 1 + i % wfs.size();
    for (std::size_t c = 0; c < classes; ++c) {
      profile.add_class(i, SessionClass{wfs[c], 1.0 + rng.uniform(0.0, 4.0)});
    }
  }
  return profile;
}

math::Vector random_rewards(Rng& rng, std::size_t n, double cap) {
  math::Vector rewards(n);
  for (double& r : rewards) {
    const double u = rng.uniform();
    r = u < 0.15 ? 0.0 : rng.uniform(0.0, cap);  // exercise the p <= 0 gate
  }
  return rewards;
}

/// Reference flows straight off the DeferralKernel.
struct ReferenceFlows {
  math::Vector inflow, inflow_derivative, outflow;
  std::vector<double> pair, pair_derivative;
};

ReferenceFlows reference_flows(const DeferralKernel& kernel,
                               const math::Vector& rewards) {
  const std::size_t n = kernel.periods();
  ReferenceFlows ref;
  ref.inflow.resize(n);
  ref.inflow_derivative.resize(n);
  ref.outflow.resize(n);
  ref.pair.assign(n * n, 0.0);
  ref.pair_derivative.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ref.inflow[i] = kernel.inflow(i, rewards[i]);
    ref.inflow_derivative[i] = kernel.inflow_derivative(i, rewards[i]);
    ref.outflow[i] = kernel.outflow(i, rewards);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      ref.pair[i * n + j] = kernel.pair_volume(i, j, rewards[j]);
      ref.pair_derivative[i * n + j] =
          kernel.pair_volume_derivative(i, j, rewards[j]);
    }
  }
  return ref;
}

void expect_state_matches(const ReferenceFlows& ref, const FlowState& state,
                          std::size_t n, const char* context) {
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ref.inflow[i], state.inflow[i]) << context << " inflow " << i;
    EXPECT_EQ(ref.inflow_derivative[i], state.inflow_derivative[i])
        << context << " dinflow " << i;
    EXPECT_EQ(ref.outflow[i], state.outflow[i]) << context << " outflow "
                                                << i;
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(ref.pair[i * n + j], state.pair[i * n + j])
          << context << " pair " << i << "," << j;
      EXPECT_EQ(ref.pair_derivative[i * n + j],
                state.pair_derivative[i * n + j])
          << context << " dpair " << i << "," << j;
    }
  }
}

TEST(KernelPlan, BitwiseIdentityAcrossConventionsFamiliesAndSizes) {
  Rng rng(2024);
  for (const std::size_t n : {std::size_t{2}, std::size_t{12},
                              std::size_t{48}}) {
    for (const WfFamily family : {WfFamily::kLinearPower,
                                  WfFamily::kNonlinearPower,
                                  WfFamily::kCallable}) {
      for (const LagConvention convention :
           {LagConvention::kPeriodStart, LagConvention::kUniformArrival}) {
        const LagNormalization norm =
            convention == LagConvention::kPeriodStart
                ? LagNormalization::kDiscrete
                : LagNormalization::kContinuous;
        const DeferralKernel kernel(make_test_profile(n, family, norm, 1.5),
                                    convention);
        const auto plan = kernel.plan();
        ASSERT_NE(plan, nullptr);
        EXPECT_EQ(plan->periods(), n);
        EXPECT_EQ(plan->linear(), kernel.linear());

        FlowState state;
        for (int trial = 0; trial < 3; ++trial) {
          const math::Vector rewards = random_rewards(rng, n, 1.5);
          plan->evaluate(rewards, /*with_derivatives=*/true, state);
          const ReferenceFlows ref = reference_flows(kernel, rewards);
          expect_state_matches(
              ref, state, n,
              (std::string(family_name(family)) + " n=" +
               std::to_string(n))
                  .c_str());
        }
      }
    }
  }
}

TEST(KernelPlan, IncrementalCoordinateUpdateIsBitIdenticalToFullEvaluate) {
  Rng rng(99);
  for (const std::size_t n : {std::size_t{2}, std::size_t{12},
                              std::size_t{48}}) {
    for (const WfFamily family :
         {WfFamily::kLinearPower, WfFamily::kNonlinearPower}) {
      const DeferralKernel kernel(
          make_test_profile(n, family, LagNormalization::kContinuous, 1.5),
          LagConvention::kUniformArrival);
      const auto plan = kernel.plan();

      math::Vector rewards = random_rewards(rng, n, 1.5);
      FlowState incremental;
      plan->evaluate(rewards, /*with_derivatives=*/true, incremental);

      FlowState full;
      for (int step = 0; step < 40; ++step) {
        const std::size_t m = static_cast<std::size_t>(
            rng.uniform() * static_cast<double>(n)) % n;
        const double u = rng.uniform();
        rewards[m] = u < 0.2 ? 0.0 : rng.uniform(0.0, 1.5);
        plan->update_coordinate(m, rewards[m], /*with_derivatives=*/true,
                                incremental);
        plan->evaluate(rewards, /*with_derivatives=*/true, full);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(full.inflow[i], incremental.inflow[i]);
          EXPECT_EQ(full.inflow_derivative[i],
                    incremental.inflow_derivative[i]);
          EXPECT_EQ(full.outflow[i], incremental.outflow[i]);
        }
        for (std::size_t k = 0; k < n * n; ++k) {
          EXPECT_EQ(full.pair[k], incremental.pair[k]);
          EXPECT_EQ(full.pair_derivative[k], incremental.pair_derivative[k]);
        }
      }
    }
  }
}

TEST(KernelPlan, UpdateCoordinateRejectsForeignState) {
  const DeferralKernel kernel(
      make_test_profile(6, WfFamily::kNonlinearPower,
                        LagNormalization::kDiscrete, 1.5),
      LagConvention::kPeriodStart);
  FlowState state;
  EXPECT_THROW(kernel.plan()->update_coordinate(0, 0.5, false, state),
               PreconditionError);
}

TEST(LagWeightPair, MatchesSeparateCallsBitwise) {
  const std::size_t n = 12;
  std::vector<WaitingFunctionPtr> wfs = {
      std::make_shared<PowerLawWaitingFunction>(1.5, n, 1.5, 1.0),
      std::make_shared<PowerLawWaitingFunction>(2.5, n, 1.5, 0.7,
                                                LagNormalization::kContinuous),
      std::make_shared<CallableWaitingFunction>(
          [](double p, double t) {
            return p <= 0.0 ? 0.0 : 0.05 * std::sqrt(p) / (t + 1.0);
          },
          [](double p, double t) {
            return p <= 0.0 ? 0.0 : 0.025 / std::sqrt(p) / (t + 1.0);
          })};
  for (const auto& wf : wfs) {
    for (const LagConvention convention :
         {LagConvention::kPeriodStart, LagConvention::kUniformArrival}) {
      for (std::size_t lag = 1; lag < n; ++lag) {
        for (double p : {0.0, 0.05, 0.4, 1.2, 1.5}) {
          double value = -1.0;
          double derivative = -1.0;
          lag_weight_pair(*wf, p, lag, convention, value, derivative);
          EXPECT_EQ(value, lag_weight(*wf, p, lag, convention));
          EXPECT_EQ(derivative,
                    lag_weight_derivative(*wf, p, lag, convention));
        }
      }
    }
  }
}

TEST(UniformLagWeightTableTest, MatchesLagWeightBitwise) {
  const std::size_t n = 48;
  const std::vector<WaitingFunctionPtr> wfs = {
      std::make_shared<PowerLawWaitingFunction>(
          0.5, n, 1.5, 1.0, LagNormalization::kContinuous),
      std::make_shared<PowerLawWaitingFunction>(
          3.0, n, 1.5, 0.8, LagNormalization::kContinuous),
      std::make_shared<CallableWaitingFunction>([](double p, double t) {
        return p <= 0.0 ? 0.0 : 0.01 * p / std::sqrt(t + 1.0);
      })};
  Rng rng(7);
  for (const auto& wf : wfs) {
    const UniformLagWeightTable table(wf, n);
    for (std::size_t lag = 1; lag < n; ++lag) {
      for (int trial = 0; trial < 4; ++trial) {
        const double p = trial == 0 ? 0.0 : rng.uniform(0.0, 1.5);
        EXPECT_EQ(table.weight(p, lag),
                  lag_weight(*wf, p, lag, LagConvention::kUniformArrival))
            << wf->label() << " lag=" << lag << " p=" << p;
      }
    }
  }
}

TEST(KernelMemo, IdenticalProfilesShareStateAndCountHits) {
  const DemandProfile profile = make_test_profile(
      12, WfFamily::kNonlinearPower, LagNormalization::kDiscrete, 1.5);
  const std::uint64_t hits_before = DeferralKernel::cache_hits();
  const DeferralKernel first(profile, LagConvention::kPeriodStart);
  const DeferralKernel second(profile, LagConvention::kPeriodStart);
  EXPECT_EQ(first.state_id(), second.state_id());
  EXPECT_GT(DeferralKernel::cache_hits(), hits_before);
  // Shared state means shared lazy artifacts: one plan, one validity bound.
  EXPECT_EQ(first.plan().get(), second.plan().get());
  EXPECT_EQ(first.max_safe_reward(), second.max_safe_reward());
  // A different convention over the same mix must NOT share.
  const DeferralKernel other(profile, LagConvention::kUniformArrival);
  EXPECT_NE(other.state_id(), first.state_id());
}

TEST(StaticModelFused, CostAndGradientBitIdenticalToReference) {
  const StaticModel model(
      make_test_profile(12, WfFamily::kNonlinearPower,
                        LagNormalization::kDiscrete, 1.5),
      6.0, math::PiecewiseLinearCost::hinge(3.0, 0.0));
  Rng rng(11);
  FlowState state;
  const std::size_t n = model.periods();
  for (int trial = 0; trial < 8; ++trial) {
    const math::Vector rewards = random_rewards(rng, n, 1.5);
    EXPECT_EQ(model.total_cost(rewards), model.total_cost(rewards, state));
    for (double mu : {1.0, 1e-3}) {
      EXPECT_EQ(model.smoothed_cost(rewards, mu),
                model.smoothed_cost(rewards, mu, state));
      math::Vector ref_grad(n, 0.0);
      math::Vector fused_grad(n, 0.0);
      model.smoothed_gradient(rewards, mu, ref_grad);
      const double fused_value =
          model.smoothed_cost_and_gradient(rewards, mu, fused_grad, state);
      EXPECT_EQ(model.smoothed_cost(rewards, mu), fused_value);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ref_grad[i], fused_grad[i]) << "grad " << i;
      }
    }
    // usage / reward_cost overloads (the profit path).
    const math::Vector ref_usage = model.usage(rewards);
    FlowState usage_state;
    const math::Vector fused_usage = model.usage(rewards, usage_state);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ref_usage[i], fused_usage[i]);
    }
    EXPECT_EQ(model.reward_cost(rewards), model.reward_cost(usage_state));
  }
}

TEST(StaticModelFused, CoordinateUpdateCostMatchesReference) {
  const StaticModel model(
      make_test_profile(12, WfFamily::kNonlinearPower,
                        LagNormalization::kDiscrete, 1.5),
      6.0, math::PiecewiseLinearCost::hinge(3.0, 0.0));
  Rng rng(5);
  const std::size_t n = model.periods();
  math::Vector rewards = random_rewards(rng, n, 1.5);
  FlowState state;
  model.prime_flow_state(rewards, /*with_derivatives=*/false, state);
  for (int step = 0; step < 30; ++step) {
    const std::size_t m = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(n)) % n;
    rewards[m] = rng.uniform(0.0, 1.5);
    EXPECT_EQ(model.total_cost(rewards),
              model.total_cost_with_coordinate(m, rewards[m], state));
  }
}

TEST(StaticOptimizerFused, SolutionBitIdenticalToReferencePath) {
  const StaticModel model = paper::static_model_12();
  StaticOptimizerOptions fused;
  fused.fused = true;
  StaticOptimizerOptions reference;
  reference.fused = false;
  const PricingSolution a = optimize_static_prices(model, fused);
  const PricingSolution b = optimize_static_prices(model, reference);
  ASSERT_EQ(a.rewards.size(), b.rewards.size());
  for (std::size_t i = 0; i < a.rewards.size(); ++i) {
    EXPECT_EQ(a.rewards[i], b.rewards[i]) << "reward " << i;
  }
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(StaticOptimizerFused, NonlinearSolveBitIdenticalToReferencePath) {
  const StaticModel model(
      paper::make_profile(paper::table8_mix_12(),
                          paper::kStaticNormalizationReward,
                          LagNormalization::kDiscrete, /*gamma=*/0.7),
      paper::kStaticCapacityUnits,
      math::PiecewiseLinearCost::hinge(paper::kStaticCostSlope, 0.0));
  StaticOptimizerOptions fused;
  fused.fused = true;
  fused.fista.max_iterations = 800;
  StaticOptimizerOptions reference = fused;
  reference.fused = false;
  const PricingSolution a = optimize_static_prices(model, fused);
  const PricingSolution b = optimize_static_prices(model, reference);
  for (std::size_t i = 0; i < a.rewards.size(); ++i) {
    EXPECT_EQ(a.rewards[i], b.rewards[i]) << "reward " << i;
  }
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(StaticOptimizerFused, ResolveCoordinateMatchesReferenceGoldenSection) {
  const StaticModel model = paper::static_model_12();
  const double cap = model.max_reward();
  Rng rng(3);
  math::Vector rewards = random_rewards(rng, model.periods(), cap);
  math::Vector reference_rewards = rewards;

  FlowState state;
  for (int step = 0; step < 12; ++step) {
    const std::size_t period = static_cast<std::size_t>(step) % 12;
    const math::GoldenSectionResult fast = resolve_static_coordinate(
        model, rewards, period, state, cap);
    // Reference: golden section over the full-recompute objective.
    const auto objective = [&](double candidate) {
      math::Vector probe = reference_rewards;
      probe[period] = candidate;
      return model.total_cost(probe);
    };
    const math::GoldenSectionResult ref =
        math::minimize_golden_section(objective, 0.0, cap, 1e-7, 200);
    reference_rewards[period] = ref.x;
    EXPECT_EQ(fast.x, ref.x) << "period " << period;
    EXPECT_EQ(fast.value, ref.value);
    EXPECT_EQ(fast.iterations, ref.iterations);
  }
}

DynamicModel nonlinear_dynamic_model() {
  return DynamicModel(
      paper::make_profile(paper::table8_mix_12(),
                          paper::kStaticNormalizationReward,
                          LagNormalization::kContinuous, /*gamma=*/0.7),
      paper::kDynamicCapacityUnits,
      math::PiecewiseLinearCost::hinge(paper::kDynamicCostSlope, 0.0));
}

TEST(DynamicModelFused, CostAndGradientBitIdenticalToReference) {
  const DynamicModel model = nonlinear_dynamic_model();
  Rng rng(21);
  FlowState state;
  const std::size_t n = model.periods();
  for (int trial = 0; trial < 8; ++trial) {
    const math::Vector rewards = random_rewards(rng, n, 1.5);
    EXPECT_EQ(model.total_cost(rewards), model.total_cost(rewards, state));
    for (double mu : {1.0, 1e-4}) {
      EXPECT_EQ(model.smoothed_cost(rewards, mu),
                model.smoothed_cost(rewards, mu, state));
      math::Vector ref_grad(n, 0.0);
      math::Vector fused_grad(n, 0.0);
      model.smoothed_gradient(rewards, mu, ref_grad);
      const double fused_value =
          model.smoothed_cost_and_gradient(rewards, mu, fused_grad, state);
      EXPECT_EQ(model.smoothed_cost(rewards, mu), fused_value);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ref_grad[i], fused_grad[i]) << "grad " << i;
      }
    }
  }
}

TEST(DynamicModelFused, CoordinateUpdateCostMatchesReference) {
  const DynamicModel model = nonlinear_dynamic_model();
  Rng rng(31);
  const std::size_t n = model.periods();
  math::Vector rewards = random_rewards(rng, n, 1.2);
  FlowState state;
  model.prime_flow_state(rewards, /*with_derivatives=*/false, state);
  for (int step = 0; step < 30; ++step) {
    const std::size_t m = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(n)) % n;
    rewards[m] = rng.uniform(0.0, 1.2);
    EXPECT_EQ(model.total_cost(rewards),
              model.total_cost_with_coordinate(m, rewards[m], state));
  }
}

TEST(DynamicOptimizerFused, SolutionBitIdenticalToReferencePath) {
  const DynamicModel model = nonlinear_dynamic_model();
  DynamicOptimizerOptions fused;
  fused.fused = true;
  fused.fista.max_iterations = 600;
  DynamicOptimizerOptions reference = fused;
  reference.fused = false;
  const DynamicPricingSolution a = optimize_dynamic_prices(model, fused);
  const DynamicPricingSolution b = optimize_dynamic_prices(model, reference);
  for (std::size_t i = 0; i < a.rewards.size(); ++i) {
    EXPECT_EQ(a.rewards[i], b.rewards[i]) << "reward " << i;
  }
  EXPECT_EQ(a.evaluation.total_cost, b.evaluation.total_cost);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(OnlinePricerIncremental, DayOfObservationsBitIdenticalToReference) {
  DynamicOptimizerOptions offline;
  offline.fista.max_iterations = 400;

  OnlinePricer incremental(nonlinear_dynamic_model(), offline,
                           /*speculative=*/false, PricerGuardConfig{},
                           /*incremental=*/true);
  OnlinePricer reference(nonlinear_dynamic_model(), offline,
                         /*speculative=*/false, PricerGuardConfig{},
                         /*incremental=*/false);
  EXPECT_TRUE(incremental.incremental());
  EXPECT_FALSE(reference.incremental());

  const std::size_t n = incremental.periods();
  Rng rng(404);
  for (std::size_t period = 0; period < n; ++period) {
    // Mix confirmed forecasts (scale-by-1.0 resyncs) with real deviations.
    const double forecast =
        incremental.model().arrivals().tip_demand(period);
    const double measured =
        period % 3 == 0 ? forecast : forecast * rng.uniform(0.8, 1.2);
    const auto a = incremental.observe_period(period, measured);
    const auto b = reference.observe_period(period, measured);
    EXPECT_EQ(a.new_reward, b.new_reward) << "period " << period;
    EXPECT_EQ(a.expected_cost, b.expected_cost) << "period " << period;
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(incremental.rewards()[i], reference.rewards()[i]);
  }
}

TEST(ProfitFused, BreakdownMatchesReferenceAccessors) {
  const StaticModel model = paper::static_model_12();
  Rng rng(8);
  const math::Vector rewards = random_rewards(rng, model.periods(), 1.5);
  const ProfitBreakdown out = evaluate_profit(model, rewards, 2.0, 0.5);
  const math::Vector x = model.usage(rewards);
  EXPECT_EQ(out.reward_cost, model.reward_cost(rewards));
  EXPECT_EQ(out.capacity_cost, model.capacity_cost_value(x));
}

}  // namespace
}  // namespace tdp
