// Scalar-vs-SIMD bitwise property tests (common/simd, core/kernel_plan,
// fleet, horizon checkpoints).
//
// The vector kernels' contract is *bitwise* identity with the scalar path
// — every comparison here is EXPECT_EQ on raw doubles / bytes, never a
// tolerance. Tests that need the AVX2 path skip cleanly on hosts whose
// CPU (or build) lacks it; the scalar assertions always run.
#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/deferral_kernel.hpp"
#include "core/kernel_plan.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"
#include "fleet/population.hpp"
#include "fleet/shard.hpp"
#include "horizon/multi_day_driver.hpp"
#include "obs/registry.hpp"

namespace tdp {
namespace {

/// Forces a SIMD mode for one scope and restores the previous mode on
/// exit (the dispatcher caches the mode process-wide).
class ModeGuard {
 public:
  explicit ModeGuard(simd::Mode mode) : saved_(simd::mode()) {
    simd::set_mode(mode);
  }
  ~ModeGuard() { simd::set_mode(saved_); }

 private:
  simd::Mode saved_;
};

class PinGuard {
 public:
  explicit PinGuard(bool pin) : saved_(pin_threads()) {
    set_pin_threads(pin);
  }
  ~PinGuard() { set_pin_threads(saved_); }

 private:
  bool saved_;
};

TEST(SimdDispatch, ReportsAValidModeAndHostIsa) {
  const std::string mode = simd::mode_name();
  EXPECT_TRUE(mode == "scalar" || mode == "avx2") << mode;
  const std::string isa = simd::host_isa();
  EXPECT_TRUE(isa == "sse2" || isa == "avx2" || isa == "avx512") << isa;
  if (!simd::avx2_supported()) {
    EXPECT_EQ(simd::mode(), simd::Mode::kScalar);
    EXPECT_THROW(simd::set_mode(simd::Mode::kAvx2), std::exception);
  }
}

// ---- Batched RNG kernels --------------------------------------------------

TEST(RngBatch, ScalarKernelMatchesTheRngReference) {
  constexpr std::size_t kCount = 1337;  // deliberately not a lane multiple
  constexpr std::uint64_t kStream = 7;
  std::vector<std::uint64_t> state(kCount);
  Rng seeder(20110611);
  for (auto& s : state) s = seeder.next();

  std::vector<double> u1(kCount);
  std::vector<std::uint64_t> out(kCount);
  simd::detail::fork_uniform_batch_scalar(state.data(), kCount, kStream,
                                          u1.data(), out.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    Rng child = Rng(state[i]).fork_stream(kStream);
    EXPECT_EQ(child.uniform(), u1[i]) << "u1 " << i;
    EXPECT_EQ(child.state(), out[i]) << "resume state " << i;
    // Resuming from the stored state replays the child's tail sequence.
    Rng resumed(out[i]);
    EXPECT_EQ(child.next(), resumed.next()) << "tail " << i;
  }
}

TEST(RngBatch, Avx2KernelsAreBitIdenticalToScalar) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host/build";
#if defined(TDP_HAVE_AVX2)
  constexpr std::size_t kCount = 1027;
  constexpr std::uint64_t kStream = 3;
  constexpr std::size_t kWords = (kCount + 63) / 64;
  std::vector<std::uint64_t> state(kCount);
  std::vector<std::uint32_t> cls(kCount);
  Rng seeder(42);
  for (std::size_t i = 0; i < kCount; ++i) {
    state[i] = seeder.next();
    cls[i] = static_cast<std::uint32_t>(seeder.next() % 4);
  }
  // Screens spanning the interesting cases: never-active (+inf),
  // always-active (-1; a uniform in [0,1) is never <= -1), and two
  // ordinary thresholds.
  const double screen[4] = {std::numeric_limits<double>::infinity(), -1.0,
                            0.25, 0.9};

  std::vector<double> u_a(kCount), u_b(kCount);
  std::vector<std::uint64_t> s_a(kCount), s_b(kCount);
  simd::detail::fork_uniform_batch_scalar(state.data(), kCount, kStream,
                                          u_a.data(), s_a.data());
  simd::detail::fork_uniform_batch_avx2(state.data(), kCount, kStream,
                                        u_b.data(), s_b.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(u_a[i], u_b[i]) << "uniform " << i;
    EXPECT_EQ(s_a[i], s_b[i]) << "state " << i;
  }

  std::vector<std::uint64_t> mask_a(kWords, ~0ull), mask_b(kWords, ~0ull);
  simd::detail::fork_uniform_screen_batch_scalar(
      state.data(), kCount, kStream, cls.data(), screen, u_a.data(),
      s_a.data(), mask_a.data());
  simd::detail::fork_uniform_screen_batch_avx2(
      state.data(), kCount, kStream, cls.data(), screen, u_b.data(),
      s_b.data(), mask_b.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(u_a[i], u_b[i]) << "screened uniform " << i;
    EXPECT_EQ(s_a[i], s_b[i]) << "screened state " << i;
    const bool active = (mask_a[i / 64] >> (i % 64)) & 1u;
    EXPECT_EQ(active, u_a[i] > screen[cls[i]]) << "mask semantics " << i;
  }
  for (std::size_t w = 0; w < kWords; ++w) {
    EXPECT_EQ(mask_a[w], mask_b[w]) << "mask word " << w;
  }
  // Trailing bits past kCount stay clear.
  const std::size_t tail = kCount % 64;
  if (tail != 0) {
    EXPECT_EQ(mask_a.back() >> tail, 0ull);
  }
#endif
}

// ---- KernelPlan vector fill path ------------------------------------------

/// A SIMD-eligible profile: the *same* class list every period (so every
/// period flattens to one shared slot sequence), all power-law. Nonlinear
/// gammas keep the plan off its linear fast path, so evaluate() actually
/// walks the fill/reduce loops under test.
DemandProfile uniform_profile(std::size_t n, bool linear,
                              LagNormalization normalization,
                              double max_reward) {
  std::vector<WaitingFunctionPtr> wfs;
  for (std::size_t s = 0; s < 3; ++s) {
    const double beta = 0.6 + static_cast<double>(s) * 0.9;
    const double gamma = linear ? 1.0 : 0.6 + 0.15 * static_cast<double>(s);
    wfs.push_back(std::make_shared<PowerLawWaitingFunction>(
        beta, n, max_reward, gamma, normalization));
  }
  DemandProfile profile(n);
  Rng rng(91 + n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& wf : wfs) {
      profile.add_class(i, SessionClass{wf, 1.0 + rng.uniform(0.0, 4.0)});
    }
  }
  return profile;
}

math::Vector random_rewards(Rng& rng, std::size_t n, double cap) {
  math::Vector rewards(n);
  for (double& r : rewards) {
    const double u = rng.uniform();
    r = u < 0.15 ? 0.0 : rng.uniform(0.0, cap);  // exercise the p <= 0 gate
  }
  return rewards;
}

void expect_states_bitwise_equal(const FlowState& a, const FlowState& b,
                                 std::size_t n, const char* context) {
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.inflow[i], b.inflow[i]) << context << " inflow " << i;
    EXPECT_EQ(a.outflow[i], b.outflow[i]) << context << " outflow " << i;
    if (a.has_derivatives && b.has_derivatives) {
      EXPECT_EQ(a.inflow_derivative[i], b.inflow_derivative[i])
          << context << " dinflow " << i;
    }
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(a.pair[i * n + j], b.pair[i * n + j])
          << context << " pair " << i << "," << j;
      if (a.has_derivatives && b.has_derivatives) {
        EXPECT_EQ(a.pair_derivative[i * n + j], b.pair_derivative[i * n + j])
            << context << " dpair " << i << "," << j;
      }
    }
  }
}

TEST(KernelPlanSimd, UniformProfilesAreEligibleRaggedOnesAreNot) {
  const DeferralKernel uniform(
      uniform_profile(12, /*linear=*/false, LagNormalization::kContinuous,
                      1.5),
      LagConvention::kUniformArrival);
  ASSERT_NE(uniform.plan(), nullptr);
  EXPECT_TRUE(uniform.plan()->simd_eligible());

  // A profile with an empty period can't share one slot sequence.
  DemandProfile ragged =
      uniform_profile(12, false, LagNormalization::kContinuous, 1.5);
  DemandProfile holes(12);
  Rng rng(5);
  auto wf = std::make_shared<PowerLawWaitingFunction>(
      0.8, 12, 1.5, 0.7, LagNormalization::kContinuous);
  for (std::size_t i = 0; i < 12; ++i) {
    if (i == 4) continue;
    holes.add_class(i, SessionClass{wf, 1.0 + rng.uniform(0.0, 2.0)});
  }
  const DeferralKernel ragged_kernel(holes, LagConvention::kUniformArrival);
  ASSERT_NE(ragged_kernel.plan(), nullptr);
  EXPECT_FALSE(ragged_kernel.plan()->simd_eligible());
}

TEST(KernelPlanSimd, EvaluateIsBitIdenticalScalarVsAvx2) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host/build";
  Rng rng(777);
  for (const std::size_t n : {std::size_t{6}, std::size_t{12},
                              std::size_t{48}}) {
    for (const LagConvention convention :
         {LagConvention::kPeriodStart, LagConvention::kUniformArrival}) {
      const LagNormalization norm =
          convention == LagConvention::kPeriodStart
              ? LagNormalization::kDiscrete
              : LagNormalization::kContinuous;
      const DeferralKernel kernel(
          uniform_profile(n, /*linear=*/false, norm, 1.5), convention);
      const auto plan = kernel.plan();
      ASSERT_NE(plan, nullptr);
      ASSERT_TRUE(plan->simd_eligible());
      ASSERT_FALSE(plan->linear());

      for (const bool with_derivatives : {false, true}) {
        const math::Vector rewards = random_rewards(rng, n, 1.5);
        FlowState scalar_state, simd_state;
        {
          ModeGuard guard(simd::Mode::kScalar);
          plan->evaluate(rewards, with_derivatives, scalar_state);
        }
        {
          ModeGuard guard(simd::Mode::kAvx2);
          plan->evaluate(rewards, with_derivatives, simd_state);
        }
        const std::string context = "n=" + std::to_string(n) + " deriv=" +
                                    std::to_string(with_derivatives);
        expect_states_bitwise_equal(scalar_state, simd_state, n,
                                    context.c_str());

        // Absolute correctness, not just scalar-agreement: the vector
        // result must still match the reference kernel's virtual path.
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(kernel.inflow(i, rewards[i]), simd_state.inflow[i])
              << context << " vs reference, period " << i;
          EXPECT_EQ(kernel.outflow(i, rewards), simd_state.outflow[i])
              << context << " vs reference outflow, period " << i;
        }
      }
    }
  }
}

TEST(KernelPlanSimd, CoordinateUpdatesAreBitIdenticalScalarVsAvx2) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host/build";
  Rng rng(31337);
  const std::size_t n = 48;
  const DeferralKernel kernel(
      uniform_profile(n, /*linear=*/false, LagNormalization::kContinuous,
                      1.5),
      LagConvention::kUniformArrival);
  const auto plan = kernel.plan();
  ASSERT_TRUE(plan->simd_eligible());

  math::Vector rewards = random_rewards(rng, n, 1.5);
  FlowState scalar_state, simd_state;
  {
    ModeGuard guard(simd::Mode::kScalar);
    plan->evaluate(rewards, /*with_derivatives=*/true, scalar_state);
  }
  {
    ModeGuard guard(simd::Mode::kAvx2);
    plan->evaluate(rewards, /*with_derivatives=*/true, simd_state);
  }
  for (int step = 0; step < 60; ++step) {
    const std::size_t m = static_cast<std::size_t>(
        rng.uniform() * static_cast<double>(n)) % n;
    const double u = rng.uniform();
    rewards[m] = u < 0.2 ? 0.0 : rng.uniform(0.0, 1.5);
    {
      ModeGuard guard(simd::Mode::kScalar);
      plan->update_coordinate(m, rewards[m], /*with_derivatives=*/true,
                              scalar_state);
    }
    {
      ModeGuard guard(simd::Mode::kAvx2);
      plan->update_coordinate(m, rewards[m], /*with_derivatives=*/true,
                              simd_state);
    }
    expect_states_bitwise_equal(scalar_state, simd_state, n, "update");
  }
}

// ---- Branchless deferral-lag search ---------------------------------------

TEST(DeferralTableSearch, BranchlessFindLagMatchesTheLinearScan) {
  fleet::PopulationConfig pop_config;
  pop_config.users = 200;
  pop_config.periods = 48;
  pop_config.seed = 20110611;
  const fleet::Population pop(pop_config);

  // A non-trivial published schedule so every class has deferral mass.
  math::Vector schedule(48);
  Rng sched_rng(7);
  for (double& r : schedule) r = sched_rng.uniform(0.05, 0.9);
  std::vector<const math::Vector*> schedules(pop.patience_classes(),
                                             &schedule);
  const fleet::DeferralTable table(pop, schedules, /*period=*/5);
  const std::size_t n = table.periods();

  Rng rng(987654321);
  for (std::uint32_t c = 0;
       c < static_cast<std::uint32_t>(pop.patience_classes()); ++c) {
    const double total = table.cumulative(c, n - 1);
    if (total <= 0.0) continue;  // nobody defers: find_lag is unreachable
    for (int trial = 0; trial < 10000; ++trial) {
      // uniform() < 1, so draw < total — the caller's stay-threshold
      // precondition.
      const double draw = rng.uniform() * total;
      std::size_t lag = 1;
      while (draw >= table.cumulative(c, lag)) ++lag;
      ASSERT_EQ(lag, table.find_lag(c, draw))
          << "class " << c << " draw " << draw;
    }
  }
}

// ---- Whole-day and checkpoint identity ------------------------------------

fleet::FleetDriverConfig small_fleet(std::uint64_t users,
                                     std::size_t threads) {
  fleet::FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 8;
  config.threads = threads;
  config.warmup_days = 1;
  config.online_pricing = true;
  return config;
}

void expect_fleet_metrics_bitwise_equal(const fleet::FleetMetrics& a,
                                        const fleet::FleetMetrics& b) {
  ASSERT_EQ(a.offered_units.size(), b.offered_units.size());
  for (std::size_t i = 0; i < a.offered_units.size(); ++i) {
    EXPECT_EQ(a.offered_units[i], b.offered_units[i]) << "offered " << i;
    EXPECT_EQ(a.realized_units[i], b.realized_units[i]) << "realized " << i;
  }
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.deferred_sessions, b.deferred_sessions);
  EXPECT_EQ(a.reward_paid_units, b.reward_paid_units);
  EXPECT_EQ(a.peak_to_average_tip, b.peak_to_average_tip);
  EXPECT_EQ(a.peak_to_average_tdp, b.peak_to_average_tdp);
}

TEST(FleetSimd, FullDayIsBitIdenticalScalarVsAvx2) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host/build";
  fleet::FleetMetrics results[2];
  math::Vector rewards[2];
  const simd::Mode modes[2] = {simd::Mode::kScalar, simd::Mode::kAvx2};
  for (int run = 0; run < 2; ++run) {
    ModeGuard guard(modes[run]);
    fleet::FleetDriver driver(small_fleet(10000, /*threads=*/2));
    results[run] = driver.run_day();
    rewards[run] = driver.pricer().rewards();
  }
  expect_fleet_metrics_bitwise_equal(results[0], results[1]);
  ASSERT_EQ(rewards[0].size(), rewards[1].size());
  for (std::size_t i = 0; i < rewards[0].size(); ++i) {
    EXPECT_EQ(rewards[0][i], rewards[1][i]) << "reward " << i;
  }
}

TEST(FleetSimd, PinnedThreadsPreserveBitIdentityAcrossThreadCounts) {
  PinGuard pin(true);
  fleet::FleetMetrics results[2];
  math::Vector rewards[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    fleet::FleetDriver driver(small_fleet(10000, thread_counts[run]));
    results[run] = driver.run_day();
    rewards[run] = driver.pricer().rewards();
  }
  expect_fleet_metrics_bitwise_equal(results[0], results[1]);
  for (std::size_t i = 0; i < rewards[0].size(); ++i) {
    EXPECT_EQ(rewards[0][i], rewards[1][i]) << "reward " << i;
  }
}

TEST(FleetSimd, CheckpointBytesAreIdenticalScalarVsAvx2) {
  if (!simd::avx2_supported()) GTEST_SKIP() << "no AVX2 on this host/build";
  horizon::HorizonConfig config;
  config.population.users = 1500;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.slices = 8;
  config.threads = 2;
  config.warmup_days = 1;
  config.horizon_days = 2;
  config.estimation_window = 3;
  config.estimation_min_days = 1;
  config.estimation_starts = 2;

  std::vector<std::uint8_t> bytes[2];
  const simd::Mode modes[2] = {simd::Mode::kScalar, simd::Mode::kAvx2};
  for (int run = 0; run < 2; ++run) {
    ModeGuard guard(modes[run]);
    // The checkpoint embeds the process-global observability counters;
    // zero them so each run's snapshot starts from the same baseline.
    obs::Registry::global().reset_values();
    horizon::MultiDayDriver driver(config);
    // Stop mid-day so live ring/RNG state (not just day summaries) is in
    // the checkpoint.
    for (int step = 0; step < 18 && !driver.done(); ++step) {
      driver.step_period();
    }
    bytes[run] = driver.checkpoint_bytes();
  }
  ASSERT_EQ(bytes[0].size(), bytes[1].size());
  EXPECT_EQ(bytes[0], bytes[1]);
}

}  // namespace
}  // namespace tdp
