#include "core/static_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/paper_data.hpp"
#include "math/numdiff.hpp"

namespace tdp {
namespace {

TEST(StaticModel, TipCostMatchesPaperHeadline) {
  // sum_i 3 * max(X_i - 18, 0) over Table V = 426 money units = $4.26/user
  // for ten users — exactly the paper's TIP figure.
  const StaticModel model = paper::static_model_48();
  EXPECT_NEAR(model.tip_cost(), 426.0, 1e-9);
}

TEST(StaticModel, ZeroRewardsMeanNoDeferral) {
  const StaticModel model = paper::static_model_12();
  const math::Vector zero(12, 0.0);
  const math::Vector x = model.usage(zero);
  const auto tip = model.demand().tip_demand_vector();
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(x[i], tip[i]);
  }
  EXPECT_DOUBLE_EQ(model.reward_cost(zero), 0.0);
}

class StaticModelConservation : public ::testing::TestWithParam<int> {};

TEST_P(StaticModelConservation, TrafficNeverDisappears) {
  // "TDP does not cause application sessions to disappear": total usage is
  // invariant under any admissible reward vector.
  const StaticModel model = paper::static_model_12();
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Conservation holds for any rewards; nonnegativity additionally needs
  // rewards within the probabilistic validity bound P = 1.5.
  math::Vector valid(12);
  for (double& r : valid) {
    r = rng.uniform(0.0, paper::kStaticNormalizationReward);
  }
  const math::Vector x = model.usage(valid);
  double total = 0.0;
  for (double v : x) {
    EXPECT_GE(v, -1e-9);
    total += v;
  }
  EXPECT_NEAR(total, model.demand().total_demand(), 1e-9);

  math::Vector any(12);
  for (double& r : any) r = rng.uniform(0.0, model.max_reward());
  const math::Vector x2 = model.usage(any);
  double total2 = 0.0;
  for (double v : x2) total2 += v;
  EXPECT_NEAR(total2, model.demand().total_demand(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticModelConservation,
                         ::testing::Range(1, 17));

class StaticModelGradient : public ::testing::TestWithParam<int> {};

TEST_P(StaticModelGradient, AnalyticMatchesNumeric) {
  const StaticModel model = paper::static_model_12();
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  math::Vector rewards(12);
  for (double& r : rewards) r = rng.uniform(0.05, 1.4);
  const double mu = 0.05;  // generous smoothing keeps FD well-conditioned

  math::Vector analytic(12, 0.0);
  model.smoothed_gradient(rewards, mu, analytic);
  const math::Vector numeric = math::numeric_gradient(
      [&model, mu](const math::Vector& p) {
        return model.smoothed_cost(p, mu);
      },
      rewards, 1e-6);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticModelGradient, ::testing::Range(1, 9));

class StaticModelConvexity : public ::testing::TestWithParam<int> {};

TEST_P(StaticModelConvexity, MidpointConvexAlongRandomSegments) {
  // Prop. 3: with w concave increasing in p and f piecewise linear, the
  // exact objective is convex.
  const StaticModel model = paper::static_model_12();
  Rng rng(static_cast<std::uint64_t>(200 + GetParam()));
  math::Vector a(12);
  math::Vector b(12);
  for (std::size_t i = 0; i < 12; ++i) {
    a[i] = rng.uniform(0.0, model.max_reward());
    b[i] = rng.uniform(0.0, model.max_reward());
  }
  math::Vector mid(12);
  for (std::size_t i = 0; i < 12; ++i) mid[i] = 0.5 * (a[i] + b[i]);
  EXPECT_LE(model.total_cost(mid),
            0.5 * (model.total_cost(a) + model.total_cost(b)) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticModelConvexity,
                         ::testing::Range(1, 25));

TEST(StaticModel, ConvexWithConcaveWaitingFunctions) {
  // Prop. 3 also covers strictly concave (gamma < 1) reward sensitivity.
  DemandProfile profile(6);
  for (std::size_t i = 0; i < 6; ++i) {
    profile.add_class(
        i, SessionClass{std::make_shared<PowerLawWaitingFunction>(
                            1.0 + 0.3 * static_cast<double>(i), 6, 1.5, 0.6),
                        10.0 + 2.0 * static_cast<double>(i)});
  }
  const StaticModel model(std::move(profile), 12.0,
                          math::PiecewiseLinearCost::hinge(3.0));
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    math::Vector a(6);
    math::Vector b(6);
    for (std::size_t i = 0; i < 6; ++i) {
      a[i] = rng.uniform(0.0, 1.5);
      b[i] = rng.uniform(0.0, 1.5);
    }
    math::Vector mid(6);
    for (std::size_t i = 0; i < 6; ++i) mid[i] = 0.5 * (a[i] + b[i]);
    EXPECT_LE(model.total_cost(mid),
              0.5 * (model.total_cost(a) + model.total_cost(b)) + 1e-9);
  }
}

TEST(StaticModel, FlowBalanceDecomposition) {
  // Eq. 2: x_i = X_i - deferred_out + deferred_in, term by term.
  const StaticModel model = paper::static_model_12();
  Rng rng(11);
  math::Vector rewards(12);
  for (double& r : rewards) r = rng.uniform(0.0, 1.0);
  const math::Vector x = model.usage(rewards);
  for (std::size_t i = 0; i < 12; ++i) {
    const double expected = model.demand().tip_demand(i) -
                            model.deferred_out(i, rewards) +
                            model.deferred_in(i, rewards[i]);
    EXPECT_NEAR(x[i], expected, 1e-12);
  }
}

TEST(StaticModel, SmoothedCostConvergesToExact) {
  const StaticModel model = paper::static_model_12();
  math::Vector rewards(12, 0.4);
  const double exact = model.total_cost(rewards);
  double previous_gap = 1e18;
  for (double mu : {1.0, 0.1, 0.01, 1e-4}) {
    const double gap = std::abs(exact - model.smoothed_cost(rewards, mu));
    EXPECT_LE(gap, previous_gap + 1e-12);
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 1e-2);
}

TEST(StaticModel, MaxRewardIsCostMaxSlope) {
  const StaticModel model = paper::static_model_48();
  EXPECT_DOUBLE_EQ(model.max_reward(), 3.0);
}

TEST(StaticModel, PerPeriodCapacityVector) {
  // Time-varying A_i (the usage-cap cushion of Section II).
  DemandProfile profile(3);
  auto w = std::make_shared<PowerLawWaitingFunction>(1.0, 3, 1.0);
  profile.add_class(0, {w, 10.0});
  profile.add_class(1, {w, 5.0});
  profile.add_class(2, {w, 2.0});
  const StaticModel model(std::move(profile), {4.0, 6.0, 8.0},
                          math::PiecewiseLinearCost::hinge(2.0));
  // TIP cost: 2*max(10-4,0) + 2*max(5-6,0) + 2*max(2-8,0) = 12.
  EXPECT_NEAR(model.tip_cost(), 12.0, 1e-12);
}

}  // namespace
}  // namespace tdp
