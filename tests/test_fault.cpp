// FaultInjector property tests (determinism, shard-layout independence,
// zero-plan transparency) and MeasurementGuard sanitization tests.
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "fleet/fleet_driver.hpp"
#include "tube/measurement_guard.hpp"

namespace tdp {
namespace {

FaultPlan mixed_plan() {
  FaultPlan plan;
  plan.price_pull_drop = 0.2;
  plan.clock_skew = 0.05;
  plan.measurement_loss = 0.1;
  plan.measurement_nan = 0.05;
  plan.measurement_negative = 0.05;
  plan.measurement_spike = 0.1;
  plan.solver_exhaustion = 0.15;
  plan.measurement_blackouts = {7, 3};
  return plan;
}

TEST(FaultInjector, DisabledInjectorNeverFires) {
  const FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (std::uint64_t e = 0; e < 16; ++e) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      EXPECT_FALSE(off.drop_price_pull(e, t));
      EXPECT_FALSE(off.skew_clock(e, t));
      EXPECT_EQ(off.measurement_fault(e, t),
                FaultInjector::MeasurementFault::kNone);
      EXPECT_FALSE(off.exhaust_solver(t));
    }
  }
}

TEST(FaultInjector, ZeroRatePlanIsDisabled) {
  const FaultInjector zero{FaultPlan{}};
  EXPECT_FALSE(zero.enabled());
}

TEST(FaultInjector, SameSeedSamePlanGivesIdenticalSequences) {
  const FaultInjector a(mixed_plan());
  const FaultInjector b(mixed_plan());
  for (std::uint64_t e = 0; e < 32; ++e) {
    for (std::uint64_t t = 0; t < 256; ++t) {
      EXPECT_EQ(a.drop_price_pull(e, t), b.drop_price_pull(e, t));
      EXPECT_EQ(a.drop_price_pull(e, t, 1), b.drop_price_pull(e, t, 1));
      EXPECT_EQ(a.skew_clock(e, t), b.skew_clock(e, t));
      EXPECT_EQ(a.measurement_fault(e, t), b.measurement_fault(e, t));
      EXPECT_EQ(a.exhaust_solver(t), b.exhaust_solver(t));
    }
  }
}

TEST(FaultInjector, DecisionsAreIndependentOfQueryOrder) {
  const FaultInjector injector(mixed_plan());
  // Record decisions row-major, then re-query column-major and reversed:
  // a stateful injector would give different answers.
  std::vector<bool> drops;
  for (std::uint64_t e = 0; e < 16; ++e) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      drops.push_back(injector.drop_price_pull(e, t));
    }
  }
  for (std::uint64_t t = 64; t-- > 0;) {
    for (std::uint64_t e = 16; e-- > 0;) {
      EXPECT_EQ(injector.drop_price_pull(e, t), drops[e * 64 + t]);
    }
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSequences) {
  FaultPlan other = mixed_plan();
  other.seed ^= 0xDEADBEEFull;
  const FaultInjector a(mixed_plan());
  const FaultInjector b(other);
  std::size_t differing = 0;
  for (std::uint64_t e = 0; e < 32; ++e) {
    for (std::uint64_t t = 0; t < 256; ++t) {
      differing += a.drop_price_pull(e, t) != b.drop_price_pull(e, t);
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, BlackoutPeriodsAlwaysLoseEveryDomain) {
  const FaultInjector injector(mixed_plan());  // blackouts {3, 7}
  const std::uint64_t entities[] = {0, 5, FaultInjector::kAggregateEntity};
  for (std::uint64_t entity : entities) {
    EXPECT_EQ(injector.measurement_fault(entity, 3),
              FaultInjector::MeasurementFault::kLost);
    EXPECT_EQ(injector.measurement_fault(entity, 7),
              FaultInjector::MeasurementFault::kLost);
  }
}

TEST(FaultInjector, RatesApproximateProbabilities) {
  FaultPlan plan;
  plan.price_pull_drop = 0.25;
  const FaultInjector injector(plan);
  std::size_t fired = 0;
  const std::size_t trials = 20000;
  for (std::size_t i = 0; i < trials; ++i) {
    fired += injector.drop_price_pull(i % 7, i);
  }
  const double rate = static_cast<double>(fired) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjector, CorruptionShapesMatchFaultKinds) {
  const FaultInjector injector(mixed_plan());
  using F = FaultInjector::MeasurementFault;
  EXPECT_EQ(injector.corrupt(F::kNone, 42.0), 42.0);
  EXPECT_TRUE(std::isnan(injector.corrupt(F::kNaN, 42.0)));
  EXPECT_LT(injector.corrupt(F::kNegative, 42.0), 0.0);
  EXPECT_LT(injector.corrupt(F::kNegative, 0.0), 0.0);
  EXPECT_GT(injector.corrupt(F::kSpike, 42.0), 42.0 * 7.9);
}

TEST(FaultInjector, RejectsInvalidPlans) {
  FaultPlan bad;
  bad.price_pull_drop = 1.5;
  EXPECT_THROW(FaultInjector{bad}, PreconditionError);
  FaultPlan sums;
  sums.measurement_loss = 0.6;
  sums.measurement_nan = 0.6;
  EXPECT_THROW(FaultInjector{sums}, PreconditionError);
}

// --- shard-layout independence -------------------------------------------

// The fault sequence seen by a fixed set of (entity, period) sites must not
// depend on how many other sites exist or on the thread count of the
// machine asking — the injector is a pure function, so simply re-asking
// from differently-shaped loops must agree. The fleet-level version: two
// drivers with the same plan but different *thread counts* produce
// identical chaos outputs (shard count is part of the experiment identity,
// matching the clean determinism contract).
TEST(FaultInjector, FleetChaosRunIsThreadCountIndependent) {
  fleet::FleetDriverConfig config;
  config.population.users = 2000;
  config.population.periods = 12;
  config.shards = 8;
  config.warmup_days = 0;
  config.fault.price_pull_drop = 0.3;
  config.fault.measurement_loss = 0.2;
  config.fault.measurement_spike = 0.1;

  config.threads = 1;
  fleet::FleetDriver serial(config);
  const fleet::FleetMetrics a = serial.run_day();

  config.threads = 4;
  fleet::FleetDriver parallel(config);
  const fleet::FleetMetrics b = parallel.run_day();

  EXPECT_EQ(a.offered_units, b.offered_units);
  EXPECT_EQ(a.realized_units, b.realized_units);
  EXPECT_EQ(a.price_pull_drops, b.price_pull_drops);
  EXPECT_EQ(a.shard_stripes_lost, b.shard_stripes_lost);
  EXPECT_EQ(a.measurement_repairs, b.measurement_repairs);
  EXPECT_EQ(a.solver_failures, b.solver_failures);
  EXPECT_EQ(a.final_health, b.final_health);
}

// The zero-fault invariant: a driver given an explicit all-zero plan is
// bitwise-identical to a driver with no plan at all — aggregates, pricer
// trajectory, channel accounting, everything.
TEST(FaultInjector, ZeroFaultPlanIsBitIdenticalToNoPlan) {
  fleet::FleetDriverConfig config;
  config.population.users = 3000;
  config.population.periods = 12;
  config.shards = 8;
  config.threads = 2;
  config.warmup_days = 1;

  fleet::FleetDriver vanilla(config);
  const fleet::FleetMetrics a = vanilla.run_day();
  const math::Vector rewards_a = vanilla.pricer().rewards();

  config.fault = FaultPlan{};  // explicit zero plan
  fleet::FleetDriver zero(config);
  const fleet::FleetMetrics b = zero.run_day();
  const math::Vector rewards_b = zero.pricer().rewards();

  EXPECT_EQ(a.offered_units, b.offered_units);
  EXPECT_EQ(a.realized_units, b.realized_units);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.deferred_sessions, b.deferred_sessions);
  EXPECT_EQ(a.reward_paid_units, b.reward_paid_units);
  EXPECT_EQ(a.pricer_expected_cost, b.pricer_expected_cost);
  EXPECT_EQ(a.price_server_fetches, b.price_server_fetches);
  ASSERT_EQ(rewards_a.size(), rewards_b.size());
  for (std::size_t i = 0; i < rewards_a.size(); ++i) {
    EXPECT_EQ(rewards_a[i], rewards_b[i]) << "reward " << i;
  }
  // And nothing robustness-related fired.
  EXPECT_EQ(b.price_pull_drops, 0u);
  EXPECT_EQ(b.price_fallback_periods, 0u);
  EXPECT_EQ(b.measurement_gaps, 0u);
  EXPECT_EQ(b.measurement_repairs, 0u);
  EXPECT_EQ(b.skipped_updates, 0u);
  EXPECT_EQ(b.final_health, "HEALTHY");
}

// --- MeasurementGuard -----------------------------------------------------

class MeasurementGuardTest : public ::testing::Test {
 protected:
  std::vector<double> reference_{10.0, 20.0, 30.0, 40.0};
};

TEST_F(MeasurementGuardTest, CleanSamplesPassThroughBitIdentically) {
  MeasurementGuard guard(reference_);
  const double value = 17.123456789012345;
  const MeasurementGuard::Admitted admitted = guard.admit(1, value);
  EXPECT_EQ(admitted.value, value);
  EXPECT_FALSE(admitted.degraded);
  EXPECT_EQ(guard.gaps_filled(), 0u);
}

TEST_F(MeasurementGuardTest, NanAndNegativeAreRejectedAndRepaired) {
  MeasurementGuard guard(reference_);
  // Day 1 establishes period 1's last-known-good; the corrupt samples on
  // later days of the same period index carry it forward.
  guard.admit(1, 12.0);
  const auto nan = guard.admit(
      1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(nan.degraded);
  EXPECT_EQ(nan.value, 12.0);  // carry-forward
  const auto neg = guard.admit(1, -5.0);
  EXPECT_TRUE(neg.degraded);
  EXPECT_EQ(neg.value, 12.0);
  EXPECT_EQ(guard.nan_rejected(), 1u);
  EXPECT_EQ(guard.negative_rejected(), 1u);
  // A period with no history yet falls back to its reference instead.
  const auto no_history = guard.admit(2, -1.0);
  EXPECT_EQ(no_history.value, reference_[2]);
}

TEST_F(MeasurementGuardTest, GapsCarryForwardThenDecayToReference) {
  MeasurementGuardConfig config;
  config.max_carry_forward = 2;
  MeasurementGuard guard(reference_, config);
  guard.admit(1, 16.0);
  EXPECT_EQ(guard.admit(1, std::nullopt).value, 16.0);  // gapped day 1
  EXPECT_EQ(guard.admit(1, std::nullopt).value, 16.0);  // gapped day 2
  // Beyond the carry budget: blend toward the period's reference.
  const auto blended = guard.admit(1, std::nullopt);
  EXPECT_TRUE(blended.degraded);
  EXPECT_EQ(blended.value, 0.5 * (16.0 + reference_[1]));
  EXPECT_EQ(guard.gaps_filled(), 3u);
  // A good sample closes the gap streak.
  EXPECT_FALSE(guard.admit(1, 17.0).degraded);
  EXPECT_EQ(guard.admit(1, std::nullopt).value, 17.0);
}

TEST_F(MeasurementGuardTest, GapWithNoHistoryFallsBackToReference) {
  MeasurementGuard guard(reference_);
  const auto filled = guard.admit(2, std::nullopt);
  EXPECT_TRUE(filled.degraded);
  EXPECT_EQ(filled.value, reference_[2]);
}

TEST_F(MeasurementGuardTest, SpikesAreClampedToBound) {
  MeasurementGuardConfig config;
  config.max_spike_factor = 4.0;
  MeasurementGuard guard(reference_, config);
  guard.admit(0, 10.0);
  const auto spiked = guard.admit(1, 1000.0);
  EXPECT_TRUE(spiked.degraded);
  EXPECT_EQ(spiked.value, 4.0 * 20.0);  // reference anchor dominates
  EXPECT_EQ(guard.spikes_clamped(), 1u);
  // A large-but-plausible sample is untouched.
  const auto fine = guard.admit(2, 100.0);
  EXPECT_FALSE(fine.degraded);
  EXPECT_EQ(fine.value, 100.0);
}

TEST_F(MeasurementGuardTest, RejectsInvalidConfiguration) {
  EXPECT_THROW(MeasurementGuard({1.0, -2.0}), PreconditionError);
  MeasurementGuardConfig config;
  config.max_spike_factor = 0.5;
  EXPECT_THROW(MeasurementGuard(reference_, config), PreconditionError);
}

}  // namespace
}  // namespace tdp
