#include "core/profit.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

namespace tdp {
namespace {

TEST(Profit, Proposition2CostProfitEquivalence) {
  // pi(p) + C(p) must be a constant (revenue minus operational cost under
  // TIP), so minimizing cost and maximizing profit coincide.
  const StaticModel model = paper::static_model_12();
  const double flat_price = 2.0;
  const double marginal = 0.5;
  Rng rng(3);
  double reference = 0.0;
  bool first = true;
  for (int trial = 0; trial < 20; ++trial) {
    math::Vector rewards(12);
    for (double& r : rewards) r = rng.uniform(0.0, model.max_reward());
    const ProfitBreakdown pb =
        evaluate_profit(model, rewards, flat_price, marginal);
    const double invariant = pb.profit + model.total_cost(rewards);
    if (first) {
      reference = invariant;
      first = false;
    } else {
      EXPECT_NEAR(invariant, reference, 1e-8);
    }
  }
}

TEST(Profit, OptimalRewardsMaximizeProfit) {
  const StaticModel model = paper::static_model_12();
  const PricingSolution sol = optimize_static_prices(model);
  const ProfitBreakdown best =
      evaluate_profit(model, sol.rewards, 2.0, 0.5);
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    math::Vector rewards(12);
    for (double& r : rewards) r = rng.uniform(0.0, model.max_reward());
    const ProfitBreakdown other = evaluate_profit(model, rewards, 2.0, 0.5);
    EXPECT_GE(best.profit, other.profit - 1e-6);
  }
  // TIP (zero rewards) is also dominated.
  const ProfitBreakdown tip =
      evaluate_profit(model, math::Vector(12, 0.0), 2.0, 0.5);
  EXPECT_GE(best.profit, tip.profit);
}

TEST(Profit, BreakdownComponents) {
  const StaticModel model = paper::static_model_12();
  const math::Vector zero(12, 0.0);
  const ProfitBreakdown pb = evaluate_profit(model, zero, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(pb.reward_cost, 0.0);
  EXPECT_DOUBLE_EQ(pb.operational_cost, 0.0);
  EXPECT_NEAR(pb.revenue, model.demand().total_demand(), 1e-12);
  EXPECT_NEAR(pb.capacity_cost, model.tip_cost(), 1e-12);
  EXPECT_NEAR(pb.profit, pb.revenue - pb.capacity_cost, 1e-12);
}

TEST(Profit, OperationalCostUsesConservedTotal) {
  // Since sum x_i == sum X_i, operational cost is reward-independent.
  const StaticModel model = paper::static_model_12();
  Rng rng(23);
  math::Vector rewards(12);
  for (double& r : rewards) r = rng.uniform(0.0, 1.0);
  const ProfitBreakdown a = evaluate_profit(model, rewards, 2.0, 0.7);
  const ProfitBreakdown b =
      evaluate_profit(model, math::Vector(12, 0.0), 2.0, 0.7);
  EXPECT_NEAR(a.operational_cost, b.operational_cost, 1e-9);
}

}  // namespace
}  // namespace tdp
