#include "math/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace tdp::math {
namespace {

TEST(Quadrature, ExactOnPolynomials) {
  // 8-point Gauss-Legendre integrates degree <= 15 exactly.
  const auto poly = [](double x) {
    return 5.0 * x * x * x * x - 2.0 * x * x + 1.0;
  };
  const double exact = 5.0 / 5.0 * 32.0 - 2.0 / 3.0 * 16.0 + 4.0;
  // integral over [-2, 2]: x^5 - (2/3)x^3 + x evaluated...
  const double expected = (std::pow(2.0, 5) - std::pow(-2.0, 5)) -
                          2.0 / 3.0 * (std::pow(2.0, 3) - std::pow(-2.0, 3)) +
                          4.0;
  (void)exact;
  EXPECT_NEAR(integrate_gauss(poly, -2.0, 2.0, 1), expected, 1e-10);
  EXPECT_NEAR(integrate_adaptive_simpson(poly, -2.0, 2.0), expected, 1e-8);
}

TEST(Quadrature, PowerLawSegment) {
  // The dynamic model's integrand: (u+1)^-beta over [L-1, L].
  const double beta = 2.5;
  const auto f = [beta](double u) { return std::pow(u + 1.0, -beta); };
  const auto antiderivative = [beta](double u) {
    return std::pow(u + 1.0, 1.0 - beta) / (1.0 - beta);
  };
  for (double lo : {0.0, 1.0, 5.0, 20.0}) {
    const double expected = antiderivative(lo + 1.0) - antiderivative(lo);
    EXPECT_NEAR(integrate_gauss(f, lo, lo + 1.0, 1), expected, 1e-9);
    EXPECT_NEAR(integrate_adaptive_simpson(f, lo, lo + 1.0), expected, 1e-9);
  }
}

TEST(Quadrature, AgreesAcrossMethods) {
  const auto f = [](double x) { return std::exp(-x) * std::sin(3.0 * x); };
  const double gauss = integrate_gauss(f, 0.0, 4.0, 8);
  const double simpson = integrate_adaptive_simpson(f, 0.0, 4.0, 1e-12);
  EXPECT_NEAR(gauss, simpson, 1e-8);
}

TEST(Quadrature, EmptyInterval) {
  const auto f = [](double) { return 42.0; };
  EXPECT_DOUBLE_EQ(integrate_gauss(f, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(integrate_adaptive_simpson(f, 1.0, 1.0), 0.0);
}

TEST(Quadrature, MoreSegmentsImprove) {
  // A sharply peaked integrand needs composite rules.
  const auto f = [](double x) { return 1.0 / (1e-3 + x * x); };
  const double reference = integrate_adaptive_simpson(f, -1.0, 1.0, 1e-13);
  const double coarse = std::abs(integrate_gauss(f, -1.0, 1.0, 1) - reference);
  const double fine = std::abs(integrate_gauss(f, -1.0, 1.0, 64) - reference);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 1e-6);
}

TEST(Quadrature, RejectsBadInput) {
  EXPECT_THROW(integrate_gauss(nullptr, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(integrate_gauss([](double) { return 0.0; }, 0.0, 1.0, 0),
               PreconditionError);
  EXPECT_THROW(
      integrate_adaptive_simpson([](double) { return 0.0; }, 0.0, 1.0, 0.0),
      PreconditionError);
}

}  // namespace
}  // namespace tdp::math
