// Property-based tests over randomized static models.
//
// For models drawn from a seeded family (random period counts, session
// mixes, patience indices, capacities, cost slopes) we assert the
// structural invariants the paper proves rather than specific numbers:
//
//  - Flow balance (Eq. 2): usage decomposes period by period into
//    X_i - deferred_out(i) + deferred_in(i), and deferral only moves
//    traffic — total usage equals total TIP demand for any reward vector.
//  - Prop. 3 (convexity / global optimality): the FISTA solution's exact
//    objective is no worse than the objective at any of 100 random
//    feasible reward vectors, per seed.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/static_model.hpp"
#include "core/static_optimizer.hpp"
#include "math/piecewise_linear.hpp"

namespace tdp {
namespace {

/// Build a random but well-posed static model from the trial's own RNG
/// stream (independent of every other trial).
StaticModel random_model(Rng& rng) {
  const std::size_t n = 3 + rng.uniform_index(6);  // 3..8 periods
  const double slope = rng.uniform(1.0, 5.0);
  const math::PiecewiseLinearCost cost = math::PiecewiseLinearCost::hinge(slope);
  const double max_reward = cost.max_slope();

  DemandProfile profile(n);
  double total_demand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t classes = 1 + rng.uniform_index(3);
    for (std::size_t c = 0; c < classes; ++c) {
      const double beta = rng.uniform(0.3, 4.0);
      const double volume = rng.uniform(1.0, 30.0);
      total_demand += volume;
      profile.add_class(
          i, {std::make_shared<PowerLawWaitingFunction>(beta, n, max_reward),
              volume});
    }
  }
  // Capacity around the mean per-period demand so some periods are over
  // and some under — the regime where rewards actually matter.
  const double capacity =
      rng.uniform(0.5, 1.2) * total_demand / static_cast<double>(n);
  return StaticModel(std::move(profile), capacity, cost);
}

math::Vector random_rewards(Rng& rng, std::size_t n, double cap) {
  math::Vector p(n);
  for (double& x : p) x = rng.uniform(0.0, cap);
  return p;
}

class RandomizedStaticModel : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomizedStaticModel, FlowBalanceDecomposition) {
  Rng rng = Rng(GetParam()).fork_stream(1);
  const StaticModel model = random_model(rng);
  const std::size_t n = model.periods();
  const auto tip = model.demand().tip_demand_vector();
  for (int trial = 0; trial < 20; ++trial) {
    const math::Vector p = random_rewards(rng, n, model.max_reward());
    const math::Vector usage = model.usage(p);
    for (std::size_t i = 0; i < n; ++i) {
      // Eq. 2, period by period.
      const double expected =
          tip[i] - model.deferred_out(i, p) + model.deferred_in(i, p[i]);
      EXPECT_NEAR(usage[i], expected, 1e-9) << "period " << i;
    }
  }
}

TEST_P(RandomizedStaticModel, DeferralConservesTraffic) {
  Rng rng = Rng(GetParam()).fork_stream(2);
  const StaticModel model = random_model(rng);
  const auto tip = model.demand().tip_demand_vector();
  double tip_total = 0.0;
  for (double x : tip) tip_total += x;
  for (int trial = 0; trial < 20; ++trial) {
    const math::Vector p =
        random_rewards(rng, model.periods(), model.max_reward());
    const math::Vector usage = model.usage(p);
    double usage_total = 0.0;
    for (double x : usage) usage_total += x;
    // Sessions never disappear: rewards move traffic between periods only.
    EXPECT_NEAR(usage_total, tip_total, 1e-8 * (1.0 + tip_total));
  }
}

TEST_P(RandomizedStaticModel, FistaSolutionBeatsRandomFeasiblePoints) {
  Rng rng = Rng(GetParam()).fork_stream(3);
  const StaticModel model = random_model(rng);
  const PricingSolution sol = optimize_static_prices(model);
  const double optimal = model.total_cost(sol.rewards);
  // Prop. 3: the problem is convex, so the solver's point is a global
  // minimum; any feasible point must cost at least as much (up to the
  // smoothing/convergence tolerance).
  for (int trial = 0; trial < 100; ++trial) {
    const math::Vector p =
        random_rewards(rng, model.periods(), model.max_reward());
    EXPECT_GE(model.total_cost(p), optimal - 1e-6)
        << "seed " << GetParam() << " trial " << trial;
  }
  // The no-reward baseline is feasible too.
  EXPECT_LE(optimal, model.tip_cost() + 1e-9);
}

TEST_P(RandomizedStaticModel, SolutionRespectsTheBox) {
  Rng rng = Rng(GetParam()).fork_stream(4);
  const StaticModel model = random_model(rng);
  const PricingSolution sol = optimize_static_prices(model);
  for (double p : sol.rewards) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, model.max_reward() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedStaticModel,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u, 97u));

}  // namespace
}  // namespace tdp
