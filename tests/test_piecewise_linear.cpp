#include "math/piecewise_linear.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp::math {
namespace {

TEST(PiecewiseLinear, CanonicalHinge) {
  const auto f = PiecewiseLinearCost::hinge(3.0, 0.0);
  EXPECT_DOUBLE_EQ(f.value(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(2.0), 6.0);
  EXPECT_DOUBLE_EQ(f.derivative_left(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative_right(0.0), 3.0);
  EXPECT_DOUBLE_EQ(f.max_slope(), 3.0);
  EXPECT_DOUBLE_EQ(f.min_slope(), 0.0);
}

TEST(PiecewiseLinear, ShiftedBreakpoint) {
  const auto f = PiecewiseLinearCost::hinge(2.0, 5.0);
  EXPECT_DOUBLE_EQ(f.value(4.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(7.0), 4.0);
}

TEST(PiecewiseLinear, NegativeBreakpointAnchorsAtZero) {
  // f(x) = 1 * max(x + 2, 0) anchored so f(0) = value_at_zero = 0.
  const PiecewiseLinearCost f(0.0, {{-2.0, 1.0}}, 0.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value(-3.0), -2.0);  // below the kink: slope 0 region
}

TEST(PiecewiseLinear, MultiKinkTieredCost) {
  // Tiered overage: slope 1 above 0, slope 3 above 10.
  const PiecewiseLinearCost f(0.0, {{0.0, 1.0}, {10.0, 2.0}});
  EXPECT_DOUBLE_EQ(f.value(5.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(15.0), 10.0 + 5.0 * 3.0);
  EXPECT_DOUBLE_EQ(f.max_slope(), 3.0);
  EXPECT_DOUBLE_EQ(f.derivative_right(10.0), 3.0);
  EXPECT_DOUBLE_EQ(f.derivative_left(10.0), 1.0);
}

TEST(PiecewiseLinear, ScalingIsHomogeneous) {
  const PiecewiseLinearCost f(0.5, {{1.0, 2.0}});
  const PiecewiseLinearCost g = f.scaled(4.0);
  for (double x : {-3.0, 0.0, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(g.value(x), 4.0 * f.value(x), 1e-12);
  }
  EXPECT_DOUBLE_EQ(g.max_slope(), 4.0 * f.max_slope());
}

TEST(PiecewiseLinear, ConvexityRequiresNonnegativeJumps) {
  EXPECT_THROW(PiecewiseLinearCost(0.0, {{0.0, -1.0}}), PreconditionError);
  EXPECT_THROW(PiecewiseLinearCost::hinge(-2.0), PreconditionError);
}

class SmoothingProperty : public ::testing::TestWithParam<double> {};

TEST_P(SmoothingProperty, UnderestimatesWithinGap) {
  const double mu = GetParam();
  const PiecewiseLinearCost f(0.2, {{-1.0, 1.5}, {0.0, 3.0}, {4.0, 0.5}});
  const double gap = f.smoothing_gap(mu);
  EXPECT_DOUBLE_EQ(gap, 0.5 * mu * 5.0);
  for (double x = -5.0; x <= 8.0; x += 0.01) {
    const double exact = f.value(x);
    const double smooth = f.smoothed_value(x, mu);
    EXPECT_LE(smooth, exact + 1e-12);
    EXPECT_GE(smooth, exact - gap - 1e-12);
  }
}

TEST_P(SmoothingProperty, DerivativeIsConsistentAndMonotone) {
  const double mu = GetParam();
  const PiecewiseLinearCost f(0.0, {{0.0, 2.0}, {3.0, 1.0}});
  double previous = -1.0;
  for (double x = -2.0; x <= 6.0; x += 0.005) {
    const double d = f.smoothed_derivative(x, mu);
    // Monotone nondecreasing derivative == convex smoothed function.
    EXPECT_GE(d, previous - 1e-12);
    previous = d;
    // Finite-difference consistency.
    const double h = 1e-7;
    const double fd =
        (f.smoothed_value(x + h, mu) - f.smoothed_value(x - h, mu)) /
        (2.0 * h);
    EXPECT_NEAR(d, fd, 1e-4 + 2e-7 / mu);
  }
}

INSTANTIATE_TEST_SUITE_P(Mus, SmoothingProperty,
                         ::testing::Values(1.0, 0.1, 0.01, 1e-4));

TEST(PiecewiseLinear, SmoothingConvergesPointwise) {
  const auto f = PiecewiseLinearCost::hinge(3.0, 1.0);
  for (double x : {-1.0, 0.99, 1.0, 1.01, 5.0}) {
    double previous_error = 1e9;
    for (double mu : {1.0, 0.1, 0.01, 0.001}) {
      const double error = std::abs(f.value(x) - f.smoothed_value(x, mu));
      EXPECT_LE(error, previous_error + 1e-15);
      previous_error = error;
    }
    EXPECT_LT(previous_error, 2e-3);
  }
}

}  // namespace
}  // namespace tdp::math
