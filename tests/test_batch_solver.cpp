// Determinism and correctness of the parallel batch-solve engine.
//
// The engine's contract is strict: for the same batch, any thread count
// produces bit-identical PricingSolutions. These tests compare doubles with
// EXPECT_EQ on purpose — "close enough" would hide scheduling-dependent
// arithmetic, which is exactly the bug class the contract forbids.
#include "core/batch_solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/paper_data.hpp"

namespace tdp {
namespace {

std::vector<StaticModel> perturbation_batch() {
  std::vector<StaticModel> models;
  models.push_back(paper::static_model_12());
  for (int units = 18; units <= 26; units += 2) {
    models.push_back(paper::static_model_12_with_period1(
        paper::table11_period1_mix(units)));
  }
  return models;
}

void expect_bit_identical(const PricingSolution& a, const PricingSolution& b) {
  ASSERT_EQ(a.rewards.size(), b.rewards.size());
  for (std::size_t i = 0; i < a.rewards.size(); ++i) {
    EXPECT_EQ(a.rewards[i], b.rewards[i]) << "reward " << i;
    EXPECT_EQ(a.usage[i], b.usage[i]) << "usage " << i;
  }
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.reward_cost, b.reward_cost);
  EXPECT_EQ(a.capacity_cost, b.capacity_cost);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(BatchSolver, OneThreadVsManyThreadsBitIdentical) {
  const std::vector<StaticModel> models = perturbation_batch();

  BatchSolveOptions serial;
  serial.threads = 1;
  BatchSolveOptions parallel;
  parallel.threads = 4;

  const auto serial_sols = BatchSolver(serial).solve(models);
  const auto parallel_sols = BatchSolver(parallel).solve(models);
  ASSERT_EQ(serial_sols.size(), parallel_sols.size());
  for (std::size_t t = 0; t < serial_sols.size(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    expect_bit_identical(serial_sols[t], parallel_sols[t]);
  }
}

TEST(BatchSolver, ColdStartMatchesDirectSolves) {
  // With warm-start off, every task is exactly the single-solve path, so
  // the batch must reproduce optimize_static_prices bit for bit.
  const std::vector<StaticModel> models = perturbation_batch();
  BatchSolveOptions options;
  options.threads = 4;
  options.warm_start = false;
  const auto batch_sols = BatchSolver(options).solve(models);
  for (std::size_t t = 0; t < models.size(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    expect_bit_identical(batch_sols[t], optimize_static_prices(models[t]));
  }
}

TEST(BatchSolver, WarmStartReachesTheSameOptimum) {
  // Warm-started tasks take a different FISTA trajectory but the problem
  // is convex: the optimum value must agree to solver tolerance, and the
  // warm path must not cost more iterations than the cold path overall.
  const std::vector<StaticModel> models = perturbation_batch();
  BatchSolveOptions warm;
  warm.threads = 1;
  BatchSolveOptions cold = warm;
  cold.warm_start = false;

  BatchSolver warm_solver(warm);
  BatchSolver cold_solver(cold);
  const auto warm_sols = warm_solver.solve(models);
  const auto cold_sols = cold_solver.solve(models);
  for (std::size_t t = 0; t < models.size(); ++t) {
    EXPECT_NEAR(warm_sols[t].total_cost, cold_sols[t].total_cost,
                1e-7 * (1.0 + cold_sols[t].total_cost))
        << "task " << t;
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(warm_sols[t].rewards[i], cold_sols[t].rewards[i], 1e-4);
    }
  }
  // The perturbations live in the anchor's basin, so warm starts must cut
  // the non-anchor iteration budget.
  EXPECT_LT(warm_solver.last_timing().total_iterations,
            cold_solver.last_timing().total_iterations);
}

TEST(BatchSolver, GeneratedBatchMatchesMaterializedBatch) {
  const std::vector<StaticModel> models = perturbation_batch();
  BatchSolveOptions options;
  options.threads = 4;
  const auto from_vector = BatchSolver(options).solve(models);
  const auto from_factory = BatchSolver(options).solve_generated(
      models.size(), [&models](std::size_t t) { return models[t]; });
  ASSERT_EQ(from_vector.size(), from_factory.size());
  for (std::size_t t = 0; t < from_vector.size(); ++t) {
    SCOPED_TRACE("task " + std::to_string(t));
    expect_bit_identical(from_vector[t], from_factory[t]);
  }
}

TEST(BatchSolver, TimingIsPopulated) {
  const std::vector<StaticModel> models = perturbation_batch();
  BatchSolveOptions options;
  options.threads = 2;
  BatchSolver solver(options);
  solver.solve(models);
  const BatchTiming& timing = solver.last_timing();
  EXPECT_EQ(timing.tasks, models.size());
  EXPECT_EQ(timing.threads, 2u);
  EXPECT_GT(timing.total_iterations, 0u);
  EXPECT_GT(timing.anchor_iterations, 0u);
  EXPECT_LE(timing.anchor_iterations, timing.total_iterations);
  EXPECT_GT(timing.wall_seconds, 0.0);
}

TEST(BatchSolver, EmptyBatch) {
  BatchSolver solver;
  EXPECT_TRUE(solver.solve({}).empty());
  EXPECT_EQ(solver.last_timing().tasks, 0u);
}

TEST(BatchSolver, MoreThreadsThanTasksIsClamped) {
  std::vector<StaticModel> models;
  models.push_back(paper::static_model_12());
  models.push_back(paper::static_model_12());
  BatchSolveOptions options;
  options.threads = 16;
  // Cold starts so both copies of the identical model take the identical
  // trajectory (warm-started task 1 would differ from the anchor).
  options.warm_start = false;
  BatchSolver solver(options);
  const auto sols = solver.solve(models);
  EXPECT_EQ(solver.last_timing().threads, 2u);
  expect_bit_identical(sols[0], sols[1]);
}

}  // namespace
}  // namespace tdp
