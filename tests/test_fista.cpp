#include "math/fista.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tdp::math {
namespace {

SmoothObjective quadratic(const Vector& diag, const Vector& center) {
  SmoothObjective obj;
  obj.value = [diag, center](const Vector& x) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - center[i];
      acc += 0.5 * diag[i] * d * d;
    }
    return acc;
  };
  obj.gradient = [diag, center](const Vector& x, Vector& g) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] = diag[i] * (x[i] - center[i]);
    }
  };
  return obj;
}

TEST(Fista, UnconstrainedQuadratic) {
  const Vector diag = {1.0, 10.0, 100.0};
  const Vector center = {1.0, -2.0, 0.5};
  const auto result = minimize_box(quadratic(diag, center),
                                   uniform_box(3, -10.0, 10.0),
                                   Vector(3, 0.0));
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.x[i], center[i], 1e-6);
  }
}

TEST(Fista, ActiveBoxConstraint) {
  // Minimizer at x = 3 is outside the box; solution clamps to 1.
  const auto result = minimize_box(quadratic({2.0}, {3.0}),
                                   uniform_box(1, -1.0, 1.0), {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
}

TEST(Fista, StartOutsideBoxGetsProjected) {
  const auto result = minimize_box(quadratic({1.0}, {0.0}),
                                   uniform_box(1, -1.0, 1.0), {100.0});
  EXPECT_NEAR(result.x[0], 0.0, 1e-6);
}

TEST(Fista, IllConditionedStillConverges) {
  const std::size_t n = 20;
  Vector diag(n);
  Vector center(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = std::pow(10.0, static_cast<double>(i % 5));
    center[i] = static_cast<double>(i) / 10.0 - 1.0;
  }
  FistaOptions options;
  options.max_iterations = 20000;
  options.step_tolerance = 1e-11;
  const auto result = minimize_box(quadratic(diag, center),
                                   uniform_box(n, -5.0, 5.0), Vector(n, 0.0),
                                   options);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.x[i], center[i], 1e-5) << "coordinate " << i;
  }
}

TEST(Fista, AcceleratedBeatsPlainOnIterations) {
  const std::size_t n = 30;
  Vector diag(n);
  Vector center(n, 0.7);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = 1.0 + 99.0 * static_cast<double>(i) / (n - 1);
  }
  FistaOptions fast;
  fast.step_tolerance = 1e-9;
  FistaOptions plain = fast;
  plain.accelerated = false;
  const auto accel = minimize_box(quadratic(diag, center),
                                  uniform_box(n, -2.0, 2.0), Vector(n, -2.0),
                                  fast);
  const auto pgd = minimize_box(quadratic(diag, center),
                                uniform_box(n, -2.0, 2.0), Vector(n, -2.0),
                                plain);
  EXPECT_TRUE(accel.converged);
  EXPECT_LT(accel.iterations, pgd.iterations);
}

TEST(Fista, NonsmoothSmoothedHingeObjective) {
  // min |x - 2| smoothed: optimizer of the Huber-smoothed objective sits
  // within O(mu) of 2.
  const double mu = 1e-4;
  SmoothObjective obj;
  obj.value = [mu](const Vector& x) {
    const double y = x[0] - 2.0;
    const double a = std::abs(y);
    return a >= mu ? a - 0.5 * mu : y * y / (2.0 * mu);
  };
  obj.gradient = [mu](const Vector& x, Vector& g) {
    const double y = x[0] - 2.0;
    if (y >= mu) {
      g[0] = 1.0;
    } else if (y <= -mu) {
      g[0] = -1.0;
    } else {
      g[0] = y / mu;
    }
  };
  FistaOptions options;
  options.max_iterations = 50000;
  const auto result =
      minimize_box(obj, uniform_box(1, 0.0, 10.0), {9.0}, options);
  EXPECT_NEAR(result.x[0], 2.0, 1e-3);
}

class FistaRandomProblem : public ::testing::TestWithParam<int> {};

TEST_P(FistaRandomProblem, KktAtBoxSolution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.uniform_index(10);
  Vector diag(n);
  Vector center(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = rng.uniform(0.5, 20.0);
    center[i] = rng.uniform(-3.0, 3.0);
  }
  const auto obj = quadratic(diag, center);
  const auto result =
      minimize_box(obj, uniform_box(n, -1.0, 1.0), Vector(n, 0.0));
  ASSERT_TRUE(result.converged);
  // KKT: interior coordinates have ~zero gradient; boundary coordinates
  // have inward-pointing gradient.
  Vector g(n, 0.0);
  obj.gradient(result.x, g);
  for (std::size_t i = 0; i < n; ++i) {
    if (result.x[i] > -1.0 + 1e-7 && result.x[i] < 1.0 - 1e-7) {
      EXPECT_NEAR(g[i], 0.0, 1e-5);
    } else if (result.x[i] >= 1.0 - 1e-7) {
      EXPECT_LE(g[i], 1e-7);
    } else {
      EXPECT_GE(g[i], -1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FistaRandomProblem, ::testing::Range(1, 13));

TEST(Fista, RejectsInvalidSetup) {
  SmoothObjective empty;
  EXPECT_THROW(minimize_box(empty, uniform_box(1, 0.0, 1.0), {0.0}),
               PreconditionError);
  EXPECT_THROW(uniform_box(2, 1.0, 0.0), PreconditionError);
}

}  // namespace
}  // namespace tdp::math
