// The mechanism-arena battery (ISSUE: pluggable pricing mechanisms).
//
//   * Publish contract: flat-TIP publishes zero rewards and defers
//     nothing; every mechanism's schedule respects the reward cap.
//   * Determinism: each mechanism's measured day is bitwise identical
//     across thread counts (the arena's comparability precondition).
//   * Ordering: on the same seeded fleet, perfect day-ahead information
//     beats the online pricer, which beats doing nothing — the invariant
//     the CI arena gate enforces at 100k is reproduced here at 20k.
//   * Rebate budget: the pacing controller keeps realized spend near the
//     fixed pool, and the mechanism's books (paid_total, days_settled,
//     shares) stay consistent.
//   * Adaptation: with users updating patience from observed rewards, the
//     price schedule settles into a bounded limit cycle — clean and under
//     a 5% chaos fault plan.
//   * Restore: kill-and-restore mid-horizon is bitwise for non-TubeOnline
//     mechanisms; a checkpoint echoes its mechanism config and rejects a
//     mismatched restore; MechanismState round-trips exactly and rejects
//     wrong shapes.
#include "mech/mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "core/paper_data.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"
#include "gtest/gtest.h"
#include "horizon/checkpoint.hpp"
#include "horizon/multi_day_driver.hpp"
#include "mech/oracle.hpp"
#include "mech/rebate.hpp"

namespace tdp::mech {
namespace {

fleet::FleetDriverConfig arena_config(std::uint64_t users,
                                      std::size_t threads,
                                      MechanismKind kind) {
  fleet::FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 16;  // fixed layout: same reduction order at any threads
  config.threads = threads;
  config.warmup_days = 1;
  config.online_pricing = true;
  config.mechanism.kind = kind;
  return config;
}

horizon::HorizonConfig small_horizon(MechanismKind kind) {
  horizon::HorizonConfig config;
  config.population.users = 1500;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.slices = 8;
  config.threads = 2;
  config.warmup_days = 1;
  config.horizon_days = 3;
  config.estimation_window = 3;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  config.mechanism.kind = kind;
  return config;
}

double p2a_reduction(const fleet::FleetMetrics& metrics) {
  return metrics.peak_to_average_tip > 0.0
             ? (metrics.peak_to_average_tip - metrics.peak_to_average_tdp) /
                   metrics.peak_to_average_tip
             : 0.0;
}

constexpr MechanismKind kAllKinds[] = {
    MechanismKind::kTubeOnline,
    MechanismKind::kFlatTip,
    MechanismKind::kFixedBudgetRebate,
    MechanismKind::kDayAheadOracle,
};

TEST(MechPublish, FlatTipPublishesNothingAndDefersNothing) {
  fleet::FleetDriver driver(
      arena_config(4000, 2, MechanismKind::kFlatTip));
  for (const double reward : driver.mechanism().rewards()) {
    EXPECT_EQ(reward, 0.0);
  }
  const fleet::FleetMetrics metrics = driver.run_day();
  EXPECT_EQ(metrics.deferred_sessions, 0u);
  EXPECT_EQ(metrics.reward_paid_units, 0.0);
  EXPECT_EQ(metrics.peak_to_average_tip, metrics.peak_to_average_tdp);
  EXPECT_EQ(metrics.offered_units, metrics.realized_units);
}

TEST(MechPublish, EveryScheduleRespectsTheRewardCap) {
  for (const MechanismKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    fleet::FleetDriver driver(arena_config(4000, 2, kind));
    const PricingMechanism& mechanism = driver.mechanism();
    for (const double reward : mechanism.rewards()) {
      EXPECT_GE(reward, 0.0);
      EXPECT_LE(reward, mechanism.reward_cap());
    }
    EXPECT_EQ(mechanism.periods(), 48u);
  }
}

TEST(MechDeterminism, MeasuredDayIsThreadCountInvariantForEveryMechanism) {
  for (const MechanismKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    fleet::FleetDriver wide(arena_config(8000, 3, kind));
    fleet::FleetDriver narrow(arena_config(8000, 1, kind));
    const fleet::FleetMetrics a = wide.run_day();
    const fleet::FleetMetrics b = narrow.run_day();
    EXPECT_EQ(a.offered_units, b.offered_units);
    EXPECT_EQ(a.realized_units, b.realized_units);
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.deferred_sessions, b.deferred_sessions);
    EXPECT_EQ(a.reward_paid_units, b.reward_paid_units);
  }
}

TEST(MechArena, OrderingHoldsOnTheSameSeededFleet) {
  // The CI gate's invariant at bench scale, reproduced here: identical
  // fleets, differing only in mechanism. warmup 3 so every settle loop
  // (oracle re-solve, rebate pacing) reaches its operating point.
  auto run = [](MechanismKind kind) {
    fleet::FleetDriverConfig config = arena_config(20000, 2, kind);
    config.warmup_days = 3;
    fleet::FleetDriver driver(config);
    return p2a_reduction(driver.run_day());
  };
  const double flat = run(MechanismKind::kFlatTip);
  const double tube = run(MechanismKind::kTubeOnline);
  const double oracle = run(MechanismKind::kDayAheadOracle);

  EXPECT_EQ(flat, 0.0);
  EXPECT_GT(tube, 0.05);
  EXPECT_GE(oracle, tube);
}

TEST(MechRebate, PacingKeepsSpendNearThePoolAndBooksConsistent) {
  fleet::FleetDriverConfig config =
      arena_config(20000, 2, MechanismKind::kFixedBudgetRebate);
  config.warmup_days = 3;
  config.mechanism.rebate_pool = 60.0;
  fleet::FleetDriver driver(config);
  const fleet::FleetMetrics metrics = driver.run_day();

  const auto* rebate = dynamic_cast<const FixedBudgetRebateMechanism*>(
      &driver.mechanism());
  ASSERT_NE(rebate, nullptr);
  EXPECT_EQ(rebate->pool(), 60.0);
  // One settle per simulated day (warmup + measured).
  EXPECT_EQ(rebate->days_settled(),
            static_cast<std::uint64_t>(config.warmup_days) + 1u);
  EXPECT_GT(rebate->paid_total(), 0.0);
  // The pacer bounds mean daily spend near the pool (day 1 runs before
  // any feedback, hence the headroom).
  const double mean_paid =
      rebate->paid_total() / static_cast<double>(rebate->days_settled());
  EXPECT_LT(mean_paid, 1.5 * rebate->pool());
  // The measured day runs with a warmed-up controller: at or under pool.
  EXPECT_LE(metrics.reward_paid_units, 1.1 * rebate->pool());
  EXPECT_EQ(metrics.rebate_budget_pool, rebate->pool());
  EXPECT_EQ(metrics.rebate_budget_spent, metrics.reward_paid_units);

  const double share_sum = std::accumulate(
      rebate->shares().begin(), rebate->shares().end(), 0.0);
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_GE(rebate->spend_scale(), 0.1);
  EXPECT_LE(rebate->spend_scale(), 10.0);
}

void expect_adaptive_limit_cycle_bounded(horizon::HorizonConfig config) {
  config.horizon_days = 8;
  config.adaptive_users = true;
  horizon::MultiDayDriver driver(config);
  const horizon::HorizonMetrics metrics = driver.run();

  // Adaptation actually engaged: positive rewards were observed, so every
  // class's patience scale moved off its 1.0 seed and stays in (0, 1].
  bool moved = false;
  for (const double scale : driver.adaptive_scale()) {
    EXPECT_GT(scale, 0.0);
    EXPECT_LE(scale, 1.0);
    if (scale != 1.0) moved = true;
  }
  EXPECT_TRUE(moved);

  // Bounded limit cycle: once the feedback loop has burned in, the
  // day-over-day schedule steps stay small relative to the schedule scale
  // instead of oscillating (users chasing prices chasing users).
  double max_linf_tail = 0.0;
  for (const horizon::DayMetrics& day : metrics.days) {
    if (day.day < 4) continue;
    max_linf_tail = std::max(max_linf_tail, day.reward_step_linf);
  }
  EXPECT_GT(max_linf_tail, 0.0);  // the loop is alive, not frozen
  EXPECT_LT(max_linf_tail, 0.5 * paper::kStaticNormalizationReward);
}

TEST(MechAdaptation, AdaptiveUsersSettleIntoBoundedLimitCycle) {
  expect_adaptive_limit_cycle_bounded(
      small_horizon(MechanismKind::kTubeOnline));
}

TEST(MechAdaptation, AdaptiveUsersStayBoundedUnderChaosFaults) {
  horizon::HorizonConfig config = small_horizon(MechanismKind::kTubeOnline);
  config.fault.price_pull_drop = 0.05;
  config.fault.measurement_loss = 0.04;
  config.fault.measurement_nan = 0.02;
  config.fault.measurement_spike = 0.02;
  config.fault.solver_exhaustion = 0.03;
  config.fault.seed = 424242;
  expect_adaptive_limit_cycle_bounded(config);
}

TEST(MechRestore, KillAndRestoreIsBitwiseForEveryMechanism) {
  for (const MechanismKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    horizon::HorizonConfig config = small_horizon(kind);
    config.adaptive_users = true;  // adapt_scale rides in the checkpoint too

    horizon::MultiDayDriver reference(config);
    reference.run();

    std::vector<std::uint8_t> bytes;
    {
      horizon::MultiDayDriver victim(config);
      for (std::size_t i = 0; i < 17 && !victim.done(); ++i) {
        victim.step_period();
      }
      bytes = victim.checkpoint_bytes();
    }
    std::unique_ptr<horizon::MultiDayDriver> restored =
        horizon::MultiDayDriver::restore(config, bytes);
    while (!restored->done()) restored->step_period();

    const std::vector<horizon::DayMetrics>& a = reference.completed_days();
    const std::vector<horizon::DayMetrics>& b = restored->completed_days();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) {
      SCOPED_TRACE("day " + std::to_string(d));
      EXPECT_EQ(a[d].offered_units, b[d].offered_units);
      EXPECT_EQ(a[d].realized_units, b[d].realized_units);
      EXPECT_EQ(a[d].rewards, b[d].rewards);
      EXPECT_EQ(a[d].reward_paid_units, b[d].reward_paid_units);
      EXPECT_EQ(a[d].reward_step_linf, b[d].reward_step_linf);
    }
  }
}

TEST(MechRestore, MechanismConfigEchoRejectsMismatchedRestore) {
  horizon::HorizonConfig config =
      small_horizon(MechanismKind::kFixedBudgetRebate);
  config.mechanism.rebate_pool = 50.0;
  horizon::MultiDayDriver driver(config);
  driver.step_period();
  const horizon::CheckpointData data = driver.checkpoint();

  // A checkpoint written under one mechanism must not restore under
  // another: the silent alternative is a run whose metrics splice two
  // different pricing schemes.
  horizon::HorizonConfig wrong = config;
  wrong.mechanism.kind = MechanismKind::kTubeOnline;
  EXPECT_THROW(horizon::MultiDayDriver::restore(wrong, data),
               PreconditionError);

  wrong = config;
  wrong.mechanism.kind = MechanismKind::kDayAheadOracle;
  EXPECT_THROW(horizon::MultiDayDriver::restore(wrong, data),
               PreconditionError);

  wrong = config;
  wrong.mechanism.rebate_pool = 51.0;
  EXPECT_THROW(horizon::MultiDayDriver::restore(wrong, data),
               PreconditionError);

  wrong = config;
  wrong.adaptive_users = true;
  EXPECT_THROW(horizon::MultiDayDriver::restore(wrong, data),
               PreconditionError);

  EXPECT_NO_THROW(horizon::MultiDayDriver::restore(config, data));
}

TEST(MechRestore, OracleConfigEchoCoversCapacityTarget) {
  horizon::HorizonConfig config =
      small_horizon(MechanismKind::kDayAheadOracle);
  horizon::MultiDayDriver driver(config);
  driver.step_period();
  const horizon::CheckpointData data = driver.checkpoint();

  horizon::HorizonConfig wrong = config;
  wrong.mechanism.oracle_capacity_target = 0.9;
  EXPECT_THROW(horizon::MultiDayDriver::restore(wrong, data),
               PreconditionError);

  wrong = config;
  wrong.mechanism.oracle_refine = !wrong.mechanism.oracle_refine;
  EXPECT_THROW(horizon::MultiDayDriver::restore(wrong, data),
               PreconditionError);

  EXPECT_NO_THROW(horizon::MultiDayDriver::restore(config, data));
}

TEST(MechState, RebateStateRoundTripsBitwiseAndRejectsWrongShapes) {
  fleet::FleetDriver driver(
      arena_config(2000, 1, MechanismKind::kFixedBudgetRebate));
  const DynamicModel model = fleet::baseline_fluid_model(driver.population());

  MechanismConfig config;
  config.kind = MechanismKind::kFixedBudgetRebate;
  config.rebate_pool = 40.0;
  FixedBudgetRebateMechanism original(model, config);

  // Push the mechanism off its constructor state: one settled day with a
  // synthetic 10% shift out of the first period into the second.
  DaySettlement day;
  day.offered_units = original.tip_demand();
  day.realized_units = original.tip_demand();
  const double moved = 0.1 * day.offered_units[0];
  day.realized_units[0] -= moved;
  day.realized_units[1] += moved;
  day.reward_paid_units = 12.5;
  original.settle_day(day);

  const MechanismState state = original.export_state();
  FixedBudgetRebateMechanism restored(model, config);
  restored.restore_state(state);
  EXPECT_TRUE(restored.rewards() == original.rewards());
  EXPECT_EQ(restored.paid_total(), original.paid_total());
  EXPECT_EQ(restored.days_settled(), original.days_settled());
  EXPECT_EQ(restored.shares(), original.shares());
  EXPECT_EQ(restored.spend_scale(), original.spend_scale());

  MechanismState truncated = state;
  truncated.scalars.pop_back();
  EXPECT_THROW(restored.restore_state(truncated), PreconditionError);
  MechanismState missing_vector = state;
  missing_vector.vectors.pop_back();
  EXPECT_THROW(restored.restore_state(missing_vector), PreconditionError);
}

TEST(MechState, OracleSettledScheduleSurvivesRestore) {
  fleet::FleetDriver driver(
      arena_config(2000, 1, MechanismKind::kDayAheadOracle));
  const DynamicModel model = fleet::baseline_fluid_model(driver.population());

  MechanismConfig config;
  config.kind = MechanismKind::kDayAheadOracle;
  DayAheadOracleMechanism original(model, DynamicOptimizerOptions{}, config);
  const math::Vector day_ahead = original.rewards();

  // A settled day with uniformly +5% demand moves the schedule.
  DaySettlement day;
  day.offered_units = original.tip_demand();
  for (double& units : day.offered_units) units *= 1.05;
  day.realized_units = day.offered_units;
  original.settle_day(day);
  EXPECT_FALSE(original.rewards() == day_ahead);

  DayAheadOracleMechanism restored(model, DynamicOptimizerOptions{}, config);
  restored.restore_state(original.export_state());
  EXPECT_TRUE(restored.rewards() == original.rewards());
}

}  // namespace
}  // namespace tdp::mech
