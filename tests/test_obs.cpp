#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/deferral_kernel.hpp"
#include "core/paper_data.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp::obs {
namespace {

/// Restores the three observability switches on scope exit so tests can
/// flip them freely without leaking state into later tests.
class SwitchGuard {
 public:
  SwitchGuard()
      : metrics_(metrics_enabled()),
        journal_(journal_enabled()),
        trace_(trace_enabled()) {}
  ~SwitchGuard() {
    set_metrics_enabled(metrics_);
    set_journal_enabled(journal_);
    set_trace_enabled(trace_);
  }

 private:
  bool metrics_;
  bool journal_;
  bool trace_;
};

/// The hammer workload: every task bumps the same instruments with
/// task-dependent amounts. Same work regardless of how tasks map to
/// threads, so the merged snapshot must not depend on the thread count.
void hammer(Registry& registry, std::size_t tasks, std::size_t threads) {
  Counter& even = registry.counter("hammer.even_total");
  Counter& odd = registry.counter("hammer.odd_total");
  Histogram& hist = registry.histogram(
      "hammer.values", HistogramSpec{{1.0, 10.0, 100.0}, 1e9});
  Gauge& gauge = registry.gauge("hammer.tasks");
  gauge.set_always(static_cast<double>(tasks));
  parallel_for(
      tasks,
      [&](std::size_t i) {
        if (i % 2 == 0) {
          even.add_always(i + 1);
        } else {
          odd.add_always(2 * i + 1);
        }
        hist.observe_always(0.5 * static_cast<double>(i % 7));
        hist.observe_always(static_cast<double>(i % 211));
      },
      threads);
}

TEST(Registry, SnapshotIsBitwiseThreadCountIndependent) {
  const std::size_t hw = default_thread_count();
  Registry serial;
  Registry parallel;
  hammer(serial, 10000, 1);
  hammer(parallel, 10000, hw > 1 ? hw : 4);
  // Byte-equal JSON: counter sums, histogram bucket counts AND the
  // fixed-point sample sum all merge to identical values regardless of
  // which thread recorded what.
  EXPECT_EQ(metrics_json(serial.snapshot()), metrics_json(parallel.snapshot()));
}

TEST(Registry, GatedPathsHonorTheSwitchAndAlwaysPathsIgnoreIt) {
  SwitchGuard guard;
  Registry registry;
  Counter& gated = registry.counter("switch.gated");
  Counter& always = registry.counter("switch.always");
  Gauge& gauge = registry.gauge("switch.gauge");
  Histogram& hist = registry.histogram("switch.hist");

  set_metrics_enabled(false);
  gated.add(5);
  always.add_always(5);
  gauge.set(1.5);
  hist.observe(1.0);
  EXPECT_EQ(gated.value(), 0u);
  EXPECT_EQ(always.value(), 5u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0u);

  set_metrics_enabled(true);
  gated.add(5);
  gauge.set(1.5);
  hist.observe(1.0);
  EXPECT_EQ(gated.value(), 5u);
  EXPECT_EQ(gauge.value(), 1.5);
  EXPECT_EQ(hist.count(), 1u);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry registry;
  Counter& a = registry.counter("stable.counter");
  a.add_always(3);
  Counter& b = registry.counter("stable.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);

  CounterDelta delta(a);
  a.add_always(4);
  EXPECT_EQ(delta.delta(), 4u);
}

TEST(Registry, HistogramBucketsPartitionTheSamples) {
  Registry registry;
  Histogram& hist = registry.histogram(
      "partition.hist", HistogramSpec{{1.0, 2.0, 4.0}, 1e9});
  const double samples[] = {0.5, 1.0, 1.5, 3.0, 8.0, 100.0};
  for (double s : samples) hist.observe_always(s);
  ASSERT_EQ(hist.buckets(), 4u);
  // le=1: {0.5, 1.0}; le=2: {1.5}; le=4: {3.0}; +inf: {8, 100}.
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 2u);
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_DOUBLE_EQ(hist.sum(), 114.0);

  std::uint64_t total = 0;
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  for (std::uint64_t c : snap.histograms[0].buckets) total += c;
  EXPECT_EQ(total, snap.histograms[0].count);
}

TEST(Exporters, PrometheusTextHasSanitizedNamesAndCumulativeBuckets) {
  Registry registry;
  registry.counter("exp.requests_total").add_always(7);
  registry.gauge("exp.level").set_always(2.0);
  Histogram& hist =
      registry.histogram("exp.latency", HistogramSpec{{1.0, 2.0}, 1e9});
  hist.observe_always(0.5);
  hist.observe_always(1.5);
  hist.observe_always(9.0);

  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE exp_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("exp_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_level gauge"), std::string::npos);
  // Cumulative: le=1 -> 1, le=2 -> 2, +Inf -> 3.
  EXPECT_NE(text.find("exp_latency_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("exp_latency_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("exp_latency_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("exp_latency_sum 11"), std::string::npos);
  EXPECT_NE(text.find("exp_latency_count 3"), std::string::npos);
}

TEST(Exporters, PrometheusHelpLinesCarryTheDottedTaxonomyName) {
  Registry registry;
  registry.counter("exp.requests_total").add_always(7);
  registry.gauge("exp.level").set_always(2.0);
  registry.histogram("exp.latency", HistogramSpec{{1.0, 2.0}, 1e9})
      .observe_always(0.5);

  const std::string text = prometheus_text(registry.snapshot());
  // Every metric gets a # HELP line naming its registry (dotted) identity,
  // immediately before the # TYPE line scrapers key on.
  EXPECT_NE(
      text.find("# HELP exp_requests_total TDP counter exp.requests_total\n"
                "# TYPE exp_requests_total counter"),
      std::string::npos);
  EXPECT_NE(text.find("# HELP exp_level TDP gauge exp.level\n"
                      "# TYPE exp_level gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP exp_latency TDP histogram exp.latency\n"
                      "# TYPE exp_latency histogram"),
            std::string::npos);
}

TEST(Exporters, PrometheusTextIsByteStableAcrossIdenticalRegistries) {
  // Same hammer workload at different thread counts: the rendered
  // exposition text (not just the snapshot) must be byte-identical, so a
  // scrape diff is always a real telemetry change and never thread-layout
  // noise.
  const std::size_t hw = default_thread_count();
  Registry serial;
  Registry parallel;
  hammer(serial, 6000, 1);
  hammer(parallel, 6000, hw > 1 ? hw : 4);
  const std::string a = prometheus_text(serial.snapshot());
  const std::string b = prometheus_text(parallel.snapshot());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("# HELP hammer_values TDP histogram hammer.values"),
            std::string::npos);
}

TEST(Trace, SpansNestWithMatchedPairsAndMonotoneTimestamps) {
  SwitchGuard guard;
  set_trace_enabled(true);
  trace_clear();
  {
    TDP_OBS_SPAN("outer");
    {
      TDP_OBS_SPAN("inner");
      trace_instant("tick");
    }
    TDP_OBS_SPAN("sibling");
  }
  std::thread worker([] { TDP_OBS_SPAN("worker"); });
  worker.join();
  set_trace_enabled(false);

  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 9u);

  // Per-thread: B/E strictly stack-matched, timestamps monotone.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  EXPECT_EQ(by_tid.size(), 2u);
  for (const auto& [tid, list] : by_tid) {
    std::vector<std::string> stack;
    std::uint64_t last_ts = 0;
    for (const TraceEvent* e : list) {
      EXPECT_GE(e->ts_ns, last_ts) << "timestamps regress on tid " << tid;
      last_ts = e->ts_ns;
      if (e->phase == 'B') {
        stack.push_back(e->name);
      } else if (e->phase == 'E') {
        ASSERT_FALSE(stack.empty()) << "E without matching B on tid " << tid;
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }

  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  trace_clear();
}

TEST(Trace, DisabledSpansRecordNothing) {
  SwitchGuard guard;
  set_trace_enabled(false);
  trace_clear();
  const std::size_t before = trace_event_count();
  {
    TDP_OBS_SPAN("invisible");
  }
  EXPECT_EQ(trace_event_count(), before);
}

TEST(Trace, BuffersSurviveThreadExitWithoutLosingEvents) {
  SwitchGuard guard;
  set_trace_enabled(true);
  trace_clear();

  // Short-lived workers record spans and die before anyone reads the
  // session. The session keeps each per-thread buffer alive (shared_ptr
  // ownership), so every event must still be present after join — nothing
  // is flushed-on-read from a thread that no longer exists.
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kSpansPerWorker = 5;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([] {
      for (std::size_t s = 0; s < kSpansPerWorker; ++s) {
        TDP_OBS_SPAN("short-lived");
        trace_instant("beat");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  set_trace_enabled(false);

  const std::vector<TraceEvent> events = trace_events();
  // Each span contributes a B/E pair plus one instant.
  ASSERT_EQ(events.size(), kWorkers * kSpansPerWorker * 3);

  // Per exited thread: the full complement of events, B/E balanced.
  std::map<std::uint32_t, std::size_t> begins;
  std::map<std::uint32_t, std::size_t> ends;
  std::map<std::uint32_t, std::size_t> instants;
  for (const TraceEvent& e : events) {
    if (e.phase == 'B') ++begins[e.tid];
    if (e.phase == 'E') ++ends[e.tid];
    if (e.phase == 'i') ++instants[e.tid];
  }
  EXPECT_EQ(begins.size(), kWorkers);
  for (const auto& [tid, count] : begins) {
    EXPECT_EQ(count, kSpansPerWorker) << "tid " << tid;
    EXPECT_EQ(ends[tid], kSpansPerWorker) << "tid " << tid;
    EXPECT_EQ(instants[tid], kSpansPerWorker) << "tid " << tid;
  }
  trace_clear();
}

TEST(Journal, EventsAreSequencedAndBounded) {
  SwitchGuard guard;
  set_journal_enabled(true);
  Journal& journal = Journal::global();
  journal.clear();
  journal.set_capacity(4);

  for (int i = 0; i < 6; ++i) {
    journal_record("test.kind", i, -1, "event", {{"i", double(i)}});
  }
  const std::vector<JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(journal.appended(), 4u);
  EXPECT_EQ(journal.dropped(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].kind, "test.kind");
    EXPECT_EQ(events[i].period, static_cast<std::int64_t>(i));
    ASSERT_EQ(events[i].fields.size(), 1u);
    EXPECT_EQ(events[i].fields[0].first, "i");
  }

  const std::string json = journal.json();
  EXPECT_NE(json.find("\"kind\":\"test.kind\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":0"), std::string::npos);

  set_journal_enabled(false);
  journal_record("test.kind", 9, -1, "dropped while disabled");
  EXPECT_EQ(Journal::global().appended(), 4u);

  journal.set_capacity(1 << 16);
  journal.clear();
}

TEST(Journal, JsonlEmitsOneObjectPerLineInSequenceOrder) {
  SwitchGuard guard;
  set_journal_enabled(true);
  Journal& journal = Journal::global();
  journal.clear();

  journal_record("incident.open", 3, 0, "loop disturbance",
                 {{"severity", 2.0}});
  journal_record("incident.close", 7, 0, "recovered");
  const std::string lines = journal.jsonl();

  // JSONL contract (what tools/validate_trace.py consumes): one complete
  // {...} object per newline-terminated line, seq strictly increasing.
  std::vector<std::string> rows;
  std::size_t start = 0;
  for (std::size_t nl = lines.find('\n'); nl != std::string::npos;
       nl = lines.find('\n', start)) {
    rows.push_back(lines.substr(start, nl - start));
    start = nl + 1;
  }
  EXPECT_EQ(start, lines.size());  // newline-terminated, no trailing junk
  ASSERT_EQ(rows.size(), 2u);
  for (const std::string& row : rows) {
    EXPECT_EQ(row.front(), '{');
    EXPECT_EQ(row.back(), '}');
  }
  EXPECT_NE(rows[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(rows[0].find("\"kind\":\"incident.open\""), std::string::npos);
  EXPECT_NE(rows[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(rows[1].find("\"kind\":\"incident.close\""), std::string::npos);

  journal.clear();
}

TEST(Logging, RateLimitedMacroCountsSuppressedLines) {
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kWarn);
  std::size_t emitted = 0;
  LogSink old_sink = set_log_sink(
      [&emitted](LogLevel, const std::string&) { ++emitted; });

  CounterDelta suppressed(Registry::global().counter("log.suppressed_total"));
  CounterDelta warned(Registry::global().counter("log.emitted_total.warn"));
  for (std::uint64_t occurrence = 1; occurrence <= 100; ++occurrence) {
    TDP_LOG_EVERY_POW2(LogLevel::kWarn, occurrence) << "flood " << occurrence;
  }
  set_log_sink(std::move(old_sink));
  set_log_level(previous_level);

  // Powers of two in [1, 100]: 1, 2, 4, 8, 16, 32, 64 -> 7 emitted.
  EXPECT_EQ(emitted, 7u);
  EXPECT_EQ(warned.delta(), 7u);
  EXPECT_EQ(suppressed.delta(), 93u);
}

TEST(Logging, EmittedLinesAreCountedPerLevel) {
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kInfo);
  LogSink old_sink = set_log_sink([](LogLevel, const std::string&) {});

  CounterDelta info(Registry::global().counter("log.emitted_total.info"));
  CounterDelta debug(Registry::global().counter("log.emitted_total.debug"));
  TDP_LOG_INFO << "counted";
  TDP_LOG_INFO << "counted again";
  TDP_LOG_DEBUG << "below threshold, not emitted, not counted";
  set_log_sink(std::move(old_sink));
  set_log_level(previous_level);

  EXPECT_EQ(info.delta(), 2u);
  EXPECT_EQ(debug.delta(), 0u);
}

TEST(KernelMemo, StaticAccessorsAreViewsOverTheRegistry) {
  const std::uint64_t hits_before = DeferralKernel::cache_hits();
  const std::uint64_t misses_before = DeferralKernel::cache_misses();
  CounterDelta hits(Registry::global().counter("kernel.memo_hits_total"));
  CounterDelta misses(Registry::global().counter("kernel.memo_misses_total"));

  const DemandProfile profile = paper::make_profile(
      paper::table8_mix_12(), paper::kStaticNormalizationReward);
  // cold: miss, then memoized: hit
  const DeferralKernel first(profile, LagConvention::kPeriodStart);
  const DeferralKernel second(profile, LagConvention::kPeriodStart);

  EXPECT_EQ(DeferralKernel::cache_hits() - hits_before, hits.delta());
  EXPECT_EQ(DeferralKernel::cache_misses() - misses_before, misses.delta());
  EXPECT_GE(hits.delta(), 1u);
  EXPECT_GE(misses.delta(), 1u);
}

TEST(FleetObservability, TelemetryNeverPerturbsTheSimulation) {
  SwitchGuard guard;
  fleet::FleetDriverConfig config;
  config.population.users = 400;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.threads = 2;
  config.fault.price_pull_drop = 0.05;
  config.fault.seed = 7;

  set_metrics_enabled(true);
  set_journal_enabled(true);
  const fleet::FleetMetrics on = fleet::FleetDriver(config).run_day();

  set_metrics_enabled(false);
  set_journal_enabled(false);
  set_trace_enabled(false);
  const fleet::FleetMetrics off = fleet::FleetDriver(config).run_day();

  // Bitwise: telemetry is pure observation, so every simulated number is
  // identical with observability on or off.
  ASSERT_EQ(on.offered_units.size(), off.offered_units.size());
  for (std::size_t i = 0; i < on.offered_units.size(); ++i) {
    EXPECT_EQ(on.offered_units[i], off.offered_units[i]);
    EXPECT_EQ(on.realized_units[i], off.realized_units[i]);
  }
  EXPECT_EQ(on.sessions, off.sessions);
  EXPECT_EQ(on.deferred_sessions, off.deferred_sessions);
  EXPECT_EQ(on.reward_paid_units, off.reward_paid_units);
  EXPECT_EQ(on.pricer_expected_cost, off.pricer_expected_cost);
  // The always-on robustness counters keep counting in both modes.
  EXPECT_EQ(on.price_pull_drops, off.price_pull_drops);
  EXPECT_EQ(on.price_server_fetches, off.price_server_fetches);
  EXPECT_EQ(on.final_health, off.final_health);
}

TEST(FleetObservability, MetricsAreViewsOverRegistryDeltas) {
  SwitchGuard guard;
  set_metrics_enabled(true);
  fleet::FleetDriverConfig config;
  config.population.users = 300;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 3;
  config.threads = 2;

  CounterDelta fetches(Registry::global().counter("channel.fetches_total"));
  CounterDelta periods(Registry::global().counter("fleet.periods_total"));
  const fleet::FleetMetrics metrics = fleet::FleetDriver(config).run_day();

  EXPECT_EQ(metrics.price_server_fetches, fetches.delta());
  EXPECT_EQ(periods.delta(),
            static_cast<std::uint64_t>(metrics.periods) * metrics.days);
  // Phase timers flowed through the registry's nanosecond counters.
  EXPECT_GT(metrics.simulate_seconds, 0.0);
}

}  // namespace
}  // namespace tdp::obs
