#include "tube/gui_agent.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(GuiAgent, NeverDefersAtZeroReward) {
  GuiAgent agent({0.5, 5.0}, 12, 0.01, 1);
  const math::Vector zero(12, 0.0);
  for (int i = 0; i < 200; ++i) {
    const auto d = agent.decide(0, i % 12, zero);
    EXPECT_EQ(d.lag, 0u);
    EXPECT_DOUBLE_EQ(d.reward_rate, 0.0);
  }
  EXPECT_EQ(agent.deferrals(0), 0u);
  EXPECT_EQ(agent.decisions(0), 200u);
}

TEST(GuiAgent, PatientClassDefersFarMoreThanImpatient) {
  // "User 1 never defers due to high patience indices compared to the
  // amount of reward offered."
  GuiAgent agent({0.5, 5.0}, 12, 0.01, 2);
  const math::Vector generous(12, 0.005);  // half the max reward
  for (int i = 0; i < 3000; ++i) {
    agent.decide(0, 0, generous);  // patient class
    agent.decide(1, 0, generous);  // impatient class
  }
  const double patient_rate =
      static_cast<double>(agent.deferrals(0)) / 3000.0;
  const double impatient_rate =
      static_cast<double>(agent.deferrals(1)) / 3000.0;
  EXPECT_GT(patient_rate, 0.5);
  EXPECT_LT(impatient_rate, 0.05);
}

TEST(GuiAgent, DeferralRateIncreasesWithReward) {
  double previous_rate = -1.0;
  // beta = 2 keeps total willingness below the cap at every tested reward,
  // so the rate strictly increases instead of saturating at 1.
  for (double reward : {0.002, 0.005, 0.01}) {
    GuiAgent agent({2.0}, 12, 0.01, 7);
    const math::Vector schedule(12, reward);
    for (int i = 0; i < 4000; ++i) agent.decide(0, 3, schedule);
    const double rate = static_cast<double>(agent.deferrals(0)) / 4000.0;
    EXPECT_GT(rate, previous_rate);
    previous_rate = rate;
  }
}

TEST(GuiAgent, TargetsRewardingPeriods) {
  // Only period 6 offers a reward: every deferral must land there.
  GuiAgent agent({0.5}, 12, 0.01, 11);
  math::Vector schedule(12, 0.0);
  schedule[6] = 0.01;
  for (int i = 0; i < 2000; ++i) {
    const auto d = agent.decide(0, 2, schedule);
    if (d.lag != 0) {
      EXPECT_EQ((2 + d.lag) % 12, 6u);
      EXPECT_DOUBLE_EQ(d.reward_rate, 0.01);
    }
  }
  EXPECT_GT(agent.deferrals(0), 0u);
}

TEST(GuiAgent, PrefersShorterLagsAtEqualReward) {
  GuiAgent agent({1.5}, 12, 0.01, 13);
  const math::Vector uniform(12, 0.01);
  std::vector<std::size_t> lag_count(12, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto d = agent.decide(0, 0, uniform);
    ++lag_count[d.lag];
  }
  EXPECT_GT(lag_count[1], lag_count[3]);
  EXPECT_GT(lag_count[3], lag_count[8]);
}

TEST(GuiAgent, DeterministicBySeed) {
  GuiAgent a({1.0}, 12, 0.01, 99);
  GuiAgent b({1.0}, 12, 0.01, 99);
  const math::Vector schedule(12, 0.006);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.decide(0, i % 12, schedule).lag,
              b.decide(0, i % 12, schedule).lag);
  }
}

TEST(GuiAgent, RejectsBadInput) {
  EXPECT_THROW(GuiAgent({}, 12, 0.01, 1), PreconditionError);
  EXPECT_THROW(GuiAgent({-1.0}, 12, 0.01, 1), PreconditionError);
  EXPECT_THROW(GuiAgent({1.0}, 1, 0.01, 1), PreconditionError);
  GuiAgent agent({1.0}, 12, 0.01, 1);
  const math::Vector schedule(12, 0.0);
  EXPECT_THROW(agent.decide(1, 0, schedule), PreconditionError);
  EXPECT_THROW(agent.decide(0, 12, schedule), PreconditionError);
  EXPECT_THROW(agent.decide(0, 0, math::Vector(5, 0.0)), PreconditionError);
}

}  // namespace
}  // namespace tdp
