#include "netsim/link.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netsim/simulator.hpp"

namespace tdp::netsim {
namespace {

TEST(Link, SingleElasticFlowServedAtFullCapacity) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  double done_at = -1.0;
  double served = 0.0;
  FlowSpec spec;
  spec.kind = FlowKind::kElastic;
  spec.size_mb = 50.0;
  link.start_flow(spec, [&](FlowId, const FlowSpec&, double mb) {
    done_at = sim.now();
    served = mb;
  });
  sim.run_until(100.0);
  EXPECT_NEAR(done_at, 5.0, 1e-9);  // 50 MB at 10 MBps
  EXPECT_NEAR(served, 50.0, 1e-9);
  EXPECT_EQ(link.active_flows(), 0u);
}

TEST(Link, TwoElasticFlowsShareFairly) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  std::vector<double> completions;
  FlowSpec spec;
  spec.size_mb = 50.0;
  auto done = [&](FlowId, const FlowSpec&, double) {
    completions.push_back(sim.now());
  };
  link.start_flow(spec, done);
  link.start_flow(spec, done);
  sim.run_until(100.0);
  // Both progress at 5 MBps until the (simultaneous) finish at t = 10.
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_NEAR(completions[0], 10.0, 1e-6);
  EXPECT_NEAR(completions[1], 10.0, 1e-6);
}

TEST(Link, LateArrivalSlowsEarlierFlow) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  double first_done = -1.0;
  FlowSpec spec;
  spec.size_mb = 50.0;
  link.start_flow(spec, [&](FlowId, const FlowSpec&, double) {
    first_done = sim.now();
  });
  sim.at(2.5, [&] { link.start_flow(spec); });
  sim.run_until(100.0);
  // 25 MB served by t=2.5, then 5 MBps: 25/5 = 5 more seconds.
  EXPECT_NEAR(first_done, 7.5, 1e-6);
}

TEST(Link, StreamingFlowIsRateCappedAndFixedDuration) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  double done_at = -1.0;
  double served = 0.0;
  FlowSpec video;
  video.kind = FlowKind::kStreaming;
  video.rate_mbps = 2.0;
  video.duration_s = 30.0;
  link.start_flow(video, [&](FlowId, const FlowSpec&, double mb) {
    done_at = sim.now();
    served = mb;
  });
  sim.run_until(100.0);
  EXPECT_NEAR(done_at, 30.0, 1e-9);
  EXPECT_NEAR(served, 60.0, 1e-9);  // 2 MBps for 30 s, uncongested
}

TEST(Link, StreamingDegradesUnderCongestion) {
  Simulator sim;
  BottleneckLink link(sim, 4.0);
  double video_served = 0.0;
  FlowSpec video;
  video.kind = FlowKind::kStreaming;
  video.rate_mbps = 3.0;
  video.duration_s = 10.0;
  video.user = 1;
  link.start_flow(video, [&](FlowId, const FlowSpec&, double mb) {
    video_served = mb;
  });
  // Two greedy elastic flows squeeze the stream to its fair share.
  FlowSpec bulk;
  bulk.size_mb = 500.0;
  link.start_flow(bulk);
  link.start_flow(bulk);
  sim.run_until(10.5);
  // Fair share is 4/3 < 3 demanded: "low bandwidth availability is
  // reflected in sound and image quality and not session completion."
  EXPECT_LT(video_served, 30.0 * 0.5);
  EXPECT_GT(video_served, 0.0);
}

TEST(Link, BackgroundReservationReducesElasticRate) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  link.set_background_rate(6.0);
  double done_at = -1.0;
  FlowSpec spec;
  spec.size_mb = 40.0;
  link.start_flow(spec, [&](FlowId, const FlowSpec&, double) {
    done_at = sim.now();
  });
  sim.run_until(100.0);
  EXPECT_NEAR(done_at, 10.0, 1e-6);  // 40 MB at (10-6) MBps
  EXPECT_DOUBLE_EQ(link.background_rate(), 0.0 + 6.0);
}

TEST(Link, PerUserClassAccounting) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  FlowSpec a;
  a.size_mb = 20.0;
  a.user = 0;
  a.traffic_class = 1;
  FlowSpec b;
  b.size_mb = 30.0;
  b.user = 1;
  b.traffic_class = 2;
  link.start_flow(a);
  link.start_flow(b);
  sim.run_until(100.0);
  EXPECT_NEAR(link.served_mb(0, 1), 20.0, 1e-9);
  EXPECT_NEAR(link.served_mb(1, 2), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(link.served_mb(3, 3), 0.0);
}

TEST(Link, UtilizationReflectsLoad) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  EXPECT_DOUBLE_EQ(link.utilization(), 0.0);
  FlowSpec spec;
  spec.size_mb = 1000.0;
  link.start_flow(spec);
  EXPECT_NEAR(link.utilization(), 1.0, 1e-12);
}

TEST(Link, RejectsInvalidFlows) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  FlowSpec bad;
  bad.size_mb = 0.0;
  EXPECT_THROW(link.start_flow(bad), tdp::PreconditionError);
  FlowSpec bad_stream;
  bad_stream.kind = FlowKind::kStreaming;
  EXPECT_THROW(link.start_flow(bad_stream), tdp::PreconditionError);
  EXPECT_THROW(BottleneckLink(sim, 0.0), tdp::PreconditionError);
  EXPECT_THROW(link.set_background_rate(-1.0), tdp::PreconditionError);
}

}  // namespace
}  // namespace tdp::netsim
