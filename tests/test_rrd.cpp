#include "tube/rrd.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(Rrd, AveragesWithinBucket) {
  RrdStore rrd(10.0, 4);
  rrd.add(1.0, 2.0);
  rrd.add(5.0, 4.0);
  rrd.add(9.0, 6.0);
  const auto series = rrd.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(series[0].average, 4.0);
  EXPECT_EQ(series[0].samples, 3u);
}

TEST(Rrd, OldestBucketsOverwritten) {
  RrdStore rrd(1.0, 3);
  for (int t = 0; t < 10; ++t) {
    rrd.add(static_cast<double>(t) + 0.5, static_cast<double>(t));
  }
  const auto series = rrd.series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].start_s, 7.0);
  EXPECT_DOUBLE_EQ(series[0].average, 7.0);
  EXPECT_DOUBLE_EQ(series[2].start_s, 9.0);
  EXPECT_DOUBLE_EQ(series[2].average, 9.0);
}

TEST(Rrd, GapsAreSkippedInSeries) {
  RrdStore rrd(1.0, 10);
  rrd.add(0.5, 1.0);
  rrd.add(5.5, 2.0);  // buckets 1..4 empty
  const auto series = rrd.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(series[1].start_s, 5.0);
}

TEST(Rrd, AllowsSmallBackwardsJitter) {
  RrdStore rrd(10.0, 4);
  rrd.add(25.0, 1.0);
  rrd.add(19.0, 3.0);  // previous bucket: tolerated
  const auto series = rrd.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].average, 3.0);
  EXPECT_DOUBLE_EQ(series[1].average, 1.0);
}

TEST(Rrd, RejectsFarPastSamplesAndBadConfig) {
  RrdStore rrd(10.0, 4);
  rrd.add(100.0, 1.0);
  EXPECT_THROW(rrd.add(50.0, 1.0), PreconditionError);
  EXPECT_THROW(RrdStore(0.0, 4), PreconditionError);
  EXPECT_THROW(RrdStore(1.0, 0), PreconditionError);
}

TEST(Rrd, EmptySeries) {
  const RrdStore rrd(1.0, 5);
  EXPECT_TRUE(rrd.series().empty());
  EXPECT_EQ(rrd.capacity(), 5u);
  EXPECT_DOUBLE_EQ(rrd.step_seconds(), 1.0);
}

}  // namespace
}  // namespace tdp
