// Failure-injection and stress tests for the network emulator.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "netsim/traffic.hpp"

namespace tdp::netsim {
namespace {

TEST(LinkStress, StarvedFlowResumesWhenBackgroundClears) {
  // Background eats the whole link; the elastic flow must stall (no
  // completion event) and finish once capacity returns.
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  link.set_background_rate(10.0);
  double done_at = -1.0;
  FlowSpec spec;
  spec.size_mb = 20.0;
  link.start_flow(spec, [&](FlowId, const FlowSpec&, double) {
    done_at = sim.now();
  });
  sim.run_until(50.0);
  EXPECT_LT(done_at, 0.0);  // still starving
  link.set_background_rate(0.0);
  sim.run_until(100.0);
  EXPECT_NEAR(done_at, 52.0, 1e-6);  // 20 MB at 10 MBps from t = 50
}

TEST(LinkStress, ManyFlowsConserveWork) {
  // 200 random flows: total served bytes equal total offered bytes, and
  // the link is never oversubscribed at any sampling instant.
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  Rng rng(99);
  double offered = 0.0;
  double completed = 0.0;
  for (int f = 0; f < 200; ++f) {
    const double start = rng.uniform(0.0, 500.0);
    sim.at(start, [&link, &rng, &offered, &completed] {
      FlowSpec spec;
      spec.size_mb = rng.uniform(0.5, 20.0);
      offered += spec.size_mb;
      link.start_flow(spec,
                      [&completed](FlowId, const FlowSpec&, double mb) {
                        completed += mb;
                      });
    });
  }
  for (double t = 1.0; t < 2000.0; t += 7.0) {
    sim.at(t, [&link] { EXPECT_LE(link.utilization(), 1.0 + 1e-9); });
  }
  sim.run_until(5000.0);
  EXPECT_EQ(link.active_flows(), 0u);
  EXPECT_NEAR(completed, offered, 1e-6 * offered);
}

TEST(LinkStress, MixedStreamsAndBulkUnderOverload) {
  // Offered load far above capacity: streams end on time with degraded
  // bytes; the link stays fully utilized throughout.
  Simulator sim;
  BottleneckLink link(sim, 5.0);
  std::size_t streams_done = 0;
  double stream_bytes = 0.0;
  for (int s = 0; s < 6; ++s) {
    FlowSpec video;
    video.kind = FlowKind::kStreaming;
    video.rate_mbps = 2.0;
    video.duration_s = 100.0;
    link.start_flow(video, [&](FlowId, const FlowSpec&, double mb) {
      ++streams_done;
      stream_bytes += mb;
    });
  }
  FlowSpec bulk;
  bulk.size_mb = 10000.0;
  link.start_flow(bulk);
  sim.run_until(150.0);
  EXPECT_EQ(streams_done, 6u);
  // 6 streams demanding 12 MBps on a 5 MBps link shared with bulk: each
  // gets the fair share 5/7, well below its 2 MBps demand.
  EXPECT_LT(stream_bytes, 6 * 200.0 * 0.5);
  EXPECT_GT(stream_bytes, 0.0);
  EXPECT_NEAR(link.utilization(), 1.0, 1e-9);  // bulk still active
}

TEST(LinkStress, ZeroLengthPhasesAndImmediateCompletions) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  // Tiny flow completes essentially immediately without disturbing others.
  FlowSpec tiny;
  tiny.size_mb = 1e-9;
  bool done = false;
  link.start_flow(tiny,
                  [&done](FlowId, const FlowSpec&, double) { done = true; });
  sim.run_until(1.0);
  EXPECT_TRUE(done);
}

TEST(SessionSourceStress, ManySourcesRemainIndependent) {
  // Two sources with the same config but different seeds produce different
  // arrival counts; same seeds produce identical ones.
  Simulator sim;
  TrafficClassConfig cfg;
  cfg.arrivals_per_hour = 500.0;
  cfg.mean_size_mb = 1.0;
  RateProfile flat{[](double) { return 1.0; }, 1.0};
  std::size_t count_a = 0;
  std::size_t count_b = 0;
  std::size_t count_c = 0;
  SessionSource a(sim, 1, 0, 0, cfg, flat,
                  [&](const FlowSpec&) { ++count_a; });
  SessionSource b(sim, 2, 0, 0, cfg, flat,
                  [&](const FlowSpec&) { ++count_b; });
  SessionSource c(sim, 1, 0, 0, cfg, flat,
                  [&](const FlowSpec&) { ++count_c; });
  a.start(3600.0);
  b.start(3600.0);
  c.start(3600.0);
  sim.run_until(3600.0);
  EXPECT_EQ(count_a, count_c);
  EXPECT_NE(count_a, count_b);
}

}  // namespace
}  // namespace tdp::netsim
