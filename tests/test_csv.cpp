#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(Csv, ParsesHeaderAndRows) {
  const CsvTable t = parse_csv("period,beta,volume\n1,0.5,4\n2,2.0,3\n",
                               /*has_header=*/true);
  ASSERT_EQ(t.header.size(), 3u);
  EXPECT_EQ(t.header[1], "beta");
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.number(1, 1), 2.0);
  EXPECT_EQ(t.cell(1, 2), "3");
  EXPECT_EQ(t.column_index("volume"), 2u);
  EXPECT_EQ(t.column_count(), 3u);
}

TEST(Csv, SkipsCommentsAndBlanksAndTrimsWhitespace) {
  const CsvTable t = parse_csv(
      "# a comment\n\n a , b \n # another\n 1 , 2 \n", true);
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "a");
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_DOUBLE_EQ(t.number(0, 1), 2.0);
}

TEST(Csv, HandlesCrLfAndNoHeader) {
  const CsvTable t = parse_csv("1,2\r\n3,4\r\n", false);
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.number(1, 0), 3.0);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Csv, RejectsRaggedAndMalformed) {
  EXPECT_THROW(parse_csv("a,b\n1,2\n3\n", true), PreconditionError);
  const CsvTable t = parse_csv("x,y\n1,foo\n", true);
  EXPECT_THROW(t.number(0, 1), PreconditionError);
  EXPECT_THROW(t.cell(5, 0), PreconditionError);
  EXPECT_THROW(t.column_index("nope"), PreconditionError);
}

TEST(Csv, RoundTripsThroughText) {
  const std::vector<std::string> header = {"period", "reward"};
  const std::vector<std::vector<std::string>> rows = {{"1", "0.5"},
                                                      {"2", "0.25"}};
  const std::string text = to_csv(header, rows);
  const CsvTable t = parse_csv(text, true);
  EXPECT_EQ(t.header, header);
  EXPECT_EQ(t.rows, rows);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = "/tmp/tdp_csv_test.csv";
  save_csv(path, {"a"}, {{"42"}});
  const CsvTable t = load_csv(path, true);
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_DOUBLE_EQ(t.number(0, 0), 42.0);
  std::remove(path.c_str());
  EXPECT_THROW(load_csv("/nonexistent/nope.csv", true), Error);
}

TEST(Csv, TrailingCommaMakesEmptyCell) {
  const CsvTable t = parse_csv("a,b\n1,\n", true);
  ASSERT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.cell(0, 1), "");
}

}  // namespace
}  // namespace tdp
