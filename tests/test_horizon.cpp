// The long-horizon battery (ISSUE: multi-day online estimation, versioned
// checkpoint/restore, crash/corruption tests).
//
//   * Kill-and-restore: a run killed at a randomized period boundary and
//     restored from its checkpoint finishes bitwise identical to the
//     uninterrupted run — including under an active fault plan, and under a
//     different shard/thread count than the one that wrote the checkpoint.
//   * Day-0 equivalence: a clean horizon day reproduces FleetDriver's
//     measured day bitwise (the multi-day loop is the same control loop).
//   * Corruption battery: every truncation and byte flip of a real
//     checkpoint is rejected with a clean error, never UB (runs in the
//     sanitize lane).
//   * Golden fixture: a checked-in v1 checkpoint must keep decoding, and
//     re-encoding it must reproduce the file byte for byte — any format
//     drift trips here before it silently orphans production checkpoints.
//   * Convergence: under injected patience drift the online §IV estimates
//     track the drift direction and the reward schedule settles into a
//     bounded limit cycle instead of oscillating.
#include "horizon/multi_day_driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/paper_data.hpp"
#include "fleet/fleet_driver.hpp"
#include "gtest/gtest.h"
#include "horizon/checkpoint.hpp"

#ifndef TDP_GOLDEN_DIR
#error "TDP_GOLDEN_DIR must point at tests/golden"
#endif

namespace tdp::horizon {
namespace {

HorizonConfig small_config() {
  HorizonConfig config;
  config.population.users = 1500;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.slices = 8;
  config.threads = 2;
  config.warmup_days = 1;
  config.horizon_days = 3;
  config.estimation_window = 3;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  return config;
}

FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.price_pull_drop = 0.05;
  plan.measurement_loss = 0.04;
  plan.measurement_nan = 0.02;
  plan.measurement_spike = 0.02;
  plan.solver_exhaustion = 0.03;
  plan.drift_beta_rate = 0.02;
  plan.seed = 424242;
  return plan;
}

/// EXPECT_EQ on every DayMetrics field — raw doubles, no tolerance. The
/// whole point of the checkpoint contract is bitwise equality.
void expect_days_bitwise_equal(const std::vector<DayMetrics>& a,
                               const std::vector<DayMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    SCOPED_TRACE("day " + std::to_string(d));
    EXPECT_EQ(a[d].day, b[d].day);
    EXPECT_EQ(a[d].offered_units, b[d].offered_units);
    EXPECT_EQ(a[d].realized_units, b[d].realized_units);
    EXPECT_EQ(a[d].rewards, b[d].rewards);
    EXPECT_EQ(a[d].sessions, b[d].sessions);
    EXPECT_EQ(a[d].deferred_sessions, b[d].deferred_sessions);
    EXPECT_EQ(a[d].reward_paid_units, b[d].reward_paid_units);
    EXPECT_EQ(a[d].peak_to_average_tip, b[d].peak_to_average_tip);
    EXPECT_EQ(a[d].peak_to_average_tdp, b[d].peak_to_average_tdp);
    EXPECT_EQ(a[d].estimated, b[d].estimated);
    EXPECT_EQ(a[d].beta_estimate, b[d].beta_estimate);
    EXPECT_EQ(a[d].estimate_residual, b[d].estimate_residual);
    EXPECT_EQ(a[d].reanchored, b[d].reanchored);
    EXPECT_EQ(a[d].reward_step_linf, b[d].reward_step_linf);
    EXPECT_EQ(a[d].fallback_periods, b[d].fallback_periods);
    EXPECT_EQ(a[d].estimation_frozen, b[d].estimation_frozen);
    EXPECT_EQ(a[d].reanchor_rolled_back, b[d].reanchor_rolled_back);
  }
}

std::vector<DayMetrics> run_uninterrupted(const HorizonConfig& config) {
  MultiDayDriver driver(config);
  driver.run();
  return driver.completed_days();
}

/// Kill at `kill_step` period boundaries, restore (optionally onto a
/// different shard/thread layout), finish, and return all completed days.
std::vector<DayMetrics> run_killed_and_restored(const HorizonConfig& config,
                                                std::size_t kill_step,
                                                std::size_t restore_shards,
                                                std::size_t restore_threads) {
  std::vector<std::uint8_t> bytes;
  {
    MultiDayDriver victim(config);
    for (std::size_t i = 0; i < kill_step && !victim.done(); ++i) {
      victim.step_period();
    }
    bytes = victim.checkpoint_bytes();
    // The victim is destroyed here — the "kill". Nothing of it survives
    // but the checkpoint bytes.
  }
  HorizonConfig restore_config = config;
  restore_config.shards = restore_shards;
  restore_config.threads = restore_threads;
  std::unique_ptr<MultiDayDriver> restored =
      MultiDayDriver::restore(restore_config, bytes);
  while (!restored->done()) restored->step_period();
  return restored->completed_days();
}

TEST(HorizonKillRestore, RandomKillPointsFinishBitwiseIdentical) {
  const HorizonConfig config = small_config();
  const std::vector<DayMetrics> reference = run_uninterrupted(config);

  const std::size_t total_steps =
      (config.warmup_days + config.horizon_days) * config.population.periods;
  Rng rng(1234);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t kill = 1 + rng.uniform_index(total_steps - 1);
    SCOPED_TRACE("killed after " + std::to_string(kill) + " periods");
    expect_days_bitwise_equal(
        reference, run_killed_and_restored(config, kill, config.shards,
                                           config.threads));
  }
}

TEST(HorizonKillRestore, SurvivesActiveFaultPlanBitwise) {
  HorizonConfig config = small_config();
  config.fault = chaos_plan();
  const std::vector<DayMetrics> reference = run_uninterrupted(config);

  const std::size_t total_steps =
      (config.warmup_days + config.horizon_days) * config.population.periods;
  Rng rng(5678);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t kill = 1 + rng.uniform_index(total_steps - 1);
    SCOPED_TRACE("killed after " + std::to_string(kill) + " periods");
    expect_days_bitwise_equal(
        reference, run_killed_and_restored(config, kill, config.shards,
                                           config.threads));
  }
}

TEST(HorizonKillRestore, ReshardAndRethreadPreserveBitwiseIdentity) {
  HorizonConfig config = small_config();
  config.fault = chaos_plan();  // fault draws must be slice-keyed, prove it
  const std::vector<DayMetrics> reference = run_uninterrupted(config);

  const std::size_t mid =
      (config.warmup_days + config.horizon_days) * config.population.periods /
      2;
  // 8 checkpointed slices regrouped onto 1, 3 and 8 shards, with assorted
  // thread counts — all must continue bit-for-bit.
  expect_days_bitwise_equal(reference,
                            run_killed_and_restored(config, mid, 1, 1));
  expect_days_bitwise_equal(reference,
                            run_killed_and_restored(config, mid, 3, 4));
  expect_days_bitwise_equal(reference,
                            run_killed_and_restored(config, mid, 8, 3));
}

TEST(HorizonKillRestore, CheckpointIsByteStableAcrossRestore) {
  // checkpoint → restore → checkpoint must reproduce the same bytes: the
  // restored driver is not merely equivalent, it is the same state. The
  // obs-counter section is process-cumulative telemetry (counters are
  // global and keep counting across drivers), so it is normalized out —
  // everything *simulated* must round-trip bitwise.
  const HorizonConfig config = small_config();
  MultiDayDriver driver(config);
  for (int i = 0; i < 17; ++i) driver.step_period();
  const std::vector<std::uint8_t> bytes = driver.checkpoint_bytes();

  HorizonConfig resharded = config;
  resharded.shards = 2;
  resharded.threads = 1;
  std::unique_ptr<MultiDayDriver> restored =
      MultiDayDriver::restore(resharded, bytes);

  CheckpointData original = decode(bytes);
  CheckpointData roundtrip = restored->checkpoint();
  original.counters.clear();
  roundtrip.counters.clear();
  EXPECT_EQ(encode(original), encode(roundtrip));
}

TEST(HorizonDriver, CleanMeasuredDayMatchesFleetDriverBitwise) {
  // The horizon loop is FleetDriver's loop: with estimation disabled, the
  // measured day of a (warmup + 1)-day horizon must reproduce FleetDriver's
  // measured day bit for bit.
  HorizonConfig config = small_config();
  config.horizon_days = 1;
  config.estimation = false;

  fleet::FleetDriverConfig fleet_config;
  fleet_config.population = config.population;
  fleet_config.shards = config.shards;
  fleet_config.slices = config.slices;
  fleet_config.threads = config.threads;
  fleet_config.warmup_days = config.warmup_days;

  MultiDayDriver horizon(config);
  const HorizonMetrics hm = horizon.run();
  fleet::FleetDriver fleet_driver(fleet_config);
  const fleet::FleetMetrics fm = fleet_driver.run_day();

  ASSERT_EQ(hm.days.size(), 1u);
  EXPECT_EQ(hm.days[0].offered_units, fm.offered_units);
  EXPECT_EQ(hm.days[0].realized_units, fm.realized_units);
  EXPECT_EQ(hm.days[0].sessions, fm.sessions);
  EXPECT_EQ(hm.days[0].deferred_sessions, fm.deferred_sessions);
  EXPECT_EQ(hm.days[0].reward_paid_units, fm.reward_paid_units);
  EXPECT_EQ(hm.days[0].peak_to_average_tip, fm.peak_to_average_tip);
  EXPECT_EQ(hm.days[0].peak_to_average_tdp, fm.peak_to_average_tdp);
}

TEST(HorizonCheckpoint, EveryTruncationIsRejectedCleanly) {
  HorizonConfig config = small_config();
  config.fault = chaos_plan();
  MultiDayDriver driver(config);
  for (int i = 0; i < 15; ++i) driver.step_period();
  const std::vector<std::uint8_t> bytes = driver.checkpoint_bytes();

  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : 97)) {  // every header length, then strided
    EXPECT_THROW(decode(bytes.data(), len), ser::FormatError)
        << "truncation at " << len << " bytes was accepted";
  }
}

TEST(HorizonCheckpoint, RandomCorruptionNeverCrashesLoaderOrRestore) {
  HorizonConfig config = small_config();
  MultiDayDriver driver(config);
  for (int i = 0; i < 15; ++i) driver.step_period();
  const std::vector<std::uint8_t> bytes = driver.checkpoint_bytes();

  Rng rng(987654321);
  int rejected = 0;
  const int rounds = 300;
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t flips = 1 + rng.uniform_index(16);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.uniform_index(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    }
    if (rng.bernoulli(0.3)) {
      mutated.resize(rng.uniform_index(mutated.size() + 1));
    }
    try {
      // Either stage may reject; neither may crash or corrupt memory.
      std::unique_ptr<MultiDayDriver> restored =
          MultiDayDriver::restore(config, mutated);
      (void)restored;
    } catch (const Error&) {
      ++rejected;  // ser::FormatError or PreconditionError — both clean
    }
  }
  EXPECT_GT(rejected, rounds - 5);
}

TEST(HorizonCheckpoint, MismatchedConfigIsRejected) {
  const HorizonConfig config = small_config();
  MultiDayDriver driver(config);
  driver.step_period();
  const CheckpointData data = driver.checkpoint();

  HorizonConfig wrong = config;
  wrong.population.seed += 1;
  EXPECT_THROW(MultiDayDriver::restore(wrong, data), PreconditionError);

  wrong = config;
  wrong.fault.measurement_loss = 0.5;
  EXPECT_THROW(MultiDayDriver::restore(wrong, data), PreconditionError);

  wrong = config;
  wrong.slices = config.slices + 1;
  EXPECT_THROW(MultiDayDriver::restore(wrong, data), PreconditionError);

  // The mechanism is part of the run's identity: a checkpoint written
  // under TubeOnline must not restore under another pricing scheme.
  wrong = config;
  wrong.mechanism.kind = mech::MechanismKind::kFixedBudgetRebate;
  EXPECT_THROW(MultiDayDriver::restore(wrong, data), PreconditionError);

  wrong = config;
  wrong.adaptive_users = true;
  EXPECT_THROW(MultiDayDriver::restore(wrong, data), PreconditionError);

  // Execution knobs are free: resharding is legal, not a mismatch.
  wrong = config;
  wrong.shards = 1;
  wrong.threads = 7;
  EXPECT_NO_THROW(MultiDayDriver::restore(wrong, data));
}

TEST(HorizonEstimation, TracksInjectedDriftAndSettles) {
  HorizonConfig config = small_config();
  config.horizon_days = 8;
  config.estimation_window = 3;
  config.estimation_min_days = 2;
  // A one-time +60% patience-index regime shift halfway through: the
  // population's users abruptly get less patient.
  config.fault.drift_beta_step = 0.6;
  config.fault.drift_step_day = 5;

  MultiDayDriver driver(config);
  const HorizonMetrics metrics = driver.run();

  std::vector<double> before;  // estimates fitted on pre-shift windows
  std::vector<double> after;   // fitted after the shift flushed the window
  double max_linf_tail = 0.0;
  for (const DayMetrics& day : metrics.days) {
    if (!day.estimated) continue;
    EXPECT_TRUE(std::isfinite(day.beta_estimate));
    EXPECT_GT(day.beta_estimate, 0.0);
    if (day.day < config.fault.drift_step_day) {
      before.push_back(day.beta_estimate);
    } else if (day.day >= config.fault.drift_step_day + 2) {
      after.push_back(day.beta_estimate);
      max_linf_tail = std::max(max_linf_tail, day.reward_step_linf);
    }
  }
  ASSERT_GE(before.size(), 2u);
  ASSERT_GE(after.size(), 2u);

  const auto mean = [](const std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    return total / static_cast<double>(v.size());
  };
  // The tied estimate must move in the drift's direction: patience indices
  // rose by 60%, so the fitted aggregate index must clearly rise too.
  EXPECT_GT(mean(after), mean(before) * 1.15);

  // Bounded limit cycle: once the estimator has re-anchored onto the
  // shifted population, day-over-day reward steps stay small relative to
  // the schedule's scale instead of oscillating.
  EXPECT_LT(max_linf_tail, 0.5 * paper::kStaticNormalizationReward);
}

TEST(HorizonEstimation, StationaryPopulationEstimatesAreStable) {
  HorizonConfig config = small_config();
  config.horizon_days = 6;
  MultiDayDriver driver(config);
  const HorizonMetrics metrics = driver.run();

  std::vector<double> estimates;
  for (const DayMetrics& day : metrics.days) {
    if (day.estimated) estimates.push_back(day.beta_estimate);
  }
  ASSERT_GE(estimates.size(), 3u);
  const double lo = *std::min_element(estimates.begin(), estimates.end());
  const double hi = *std::max_element(estimates.begin(), estimates.end());
  EXPECT_GT(lo, 0.0);
  // No drift: the window is sampling the same population every day, so the
  // fitted index must not wander.
  EXPECT_LT(hi - lo, 0.35 * hi);
  EXPECT_EQ(metrics.final_health, "HEALTHY");
}

// ---- Golden checkpoint fixture ---------------------------------------------
//
// A v1 checkpoint produced by a fixed tiny run is checked into
// tests/golden/. Decoding it proves version-1 files stay loadable;
// re-encoding the decoded state must reproduce the file byte for byte, so
// ANY drift in the format — field order, widths, section tags, CRC — trips
// this test before it orphans real checkpoints. Regenerate only with an
// intentional, version-bumped format change:
//   TDP_REGENERATE_GOLDENS=1 ./tdp_horizon_tests

HorizonConfig golden_config() {
  HorizonConfig config;
  config.population.users = 600;
  config.population.periods = 12;
  config.population.seed = 77;
  config.shards = 3;
  config.slices = 6;
  config.threads = 2;
  config.warmup_days = 1;
  config.horizon_days = 2;
  config.estimation_window = 2;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  config.fault.measurement_loss = 0.05;
  config.fault.drift_beta_rate = 0.01;
  config.fault.seed = 99;
  return config;
}

std::vector<std::uint8_t> golden_checkpoint_bytes() {
  MultiDayDriver driver(golden_config());
  for (int i = 0; i < 30; ++i) driver.step_period();  // mid-day 2, period 6
  return driver.checkpoint_bytes();
}

std::string golden_fixture_path() {
  return std::string(TDP_GOLDEN_DIR) + "/horizon_checkpoint_v1.bin";
}

bool regenerating() {
  const char* env = std::getenv("TDP_REGENERATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(HorizonGolden, CheckedInV1CheckpointStaysLoadableByteForByte) {
  if (regenerating()) {
    const std::vector<std::uint8_t> bytes = golden_checkpoint_bytes();
    std::ofstream out(golden_fixture_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_fixture_path();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    GTEST_SKIP() << "regenerated " << golden_fixture_path();
  }

  std::ifstream in(golden_fixture_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden fixture "
                         << golden_fixture_path()
                         << " — run once with TDP_REGENERATE_GOLDENS=1";
  std::vector<std::uint8_t> file_bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  // Tripwire 1: the fixture decodes under the current loader.
  const CheckpointData data = decode(file_bytes);
  EXPECT_EQ(data.users, 600u);
  EXPECT_EQ(data.periods, 12u);
  EXPECT_EQ(data.slices, 6u);
  EXPECT_EQ(data.day, 2u);
  EXPECT_EQ(data.period, 6u);
  EXPECT_EQ(data.ring_work.size(), 6u);

  // Tripwire 2: re-encoding reproduces the file exactly — the writer still
  // emits the v1 format the fixture was written in.
  EXPECT_EQ(encode(data), file_bytes)
      << "checkpoint format drifted: bump kCheckpointVersion and add a "
         "compatibility path instead of silently changing v1";

  // Tripwire 3: today's driver still produces the same *simulated* state
  // from the same run — the full pipeline (config -> simulation ->
  // checkpoint) is deterministic across builds. Obs counters are
  // process-cumulative telemetry and are normalized out.
  CheckpointData regenerated = decode(golden_checkpoint_bytes());
  CheckpointData golden = data;
  regenerated.counters.clear();
  golden.counters.clear();
  EXPECT_EQ(encode(regenerated), encode(golden))
      << "a fresh run of the golden config no longer reproduces the "
         "checked-in checkpoint's simulated state";

  // And the fixture is actually restorable.
  std::unique_ptr<MultiDayDriver> restored =
      MultiDayDriver::restore(golden_config(), file_bytes);
  EXPECT_EQ(restored->day(), 2u);
  EXPECT_EQ(restored->period(), 6u);
}

}  // namespace
}  // namespace tdp::horizon
