#include "core/definite_choice.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

namespace tdp {
namespace {

DefiniteChoiceModel small_model() {
  DemandProfile demand(4);
  auto patient = std::make_shared<PowerLawWaitingFunction>(0.5, 4, 1.0);
  auto impatient = std::make_shared<PowerLawWaitingFunction>(4.0, 4, 1.0);
  demand.add_class(0, {patient, 10.0});
  demand.add_class(0, {impatient, 5.0});
  demand.add_class(1, {patient, 2.0});
  demand.add_class(2, {impatient, 3.0});
  demand.add_class(3, {patient, 12.0});
  return DefiniteChoiceModel(std::move(demand), 8.0,
                             math::PiecewiseLinearCost::hinge(2.0));
}

TEST(DefiniteChoice, ZeroRewardsNobodyMoves) {
  const DefiniteChoiceModel model = small_model();
  const math::Vector zero(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t c = 0; c < model.demand().classes(i).size(); ++c) {
      EXPECT_EQ(model.chosen_lag(i, c, zero), 0u);
    }
  }
  const math::Vector x = model.usage(zero);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(x[i], model.demand().tip_demand(i));
  }
}

TEST(DefiniteChoice, WholeClassMovesToArgmax) {
  const DefiniteChoiceModel model = small_model();
  // Only period 1 offers a reward: every mover lands there, entirely.
  math::Vector rewards(4, 0.0);
  rewards[1] = 0.8;
  const math::Vector x = model.usage(rewards);
  double total = 0.0;
  for (double v : x) total += v;
  EXPECT_DOUBLE_EQ(total, model.demand().total_demand());
  // Period 0's classes defer lag 1 into period 1 (highest w at shortest
  // wait); period 1 gains their full volumes.
  EXPECT_EQ(model.chosen_lag(0, 0, rewards), 1u);
  EXPECT_EQ(model.chosen_lag(0, 1, rewards), 1u);
  EXPECT_GT(x[1], model.demand().tip_demand(1));
  EXPECT_DOUBLE_EQ(x[0], 0.0);  // all of period 0 moved
}

TEST(DefiniteChoice, ShorterLagWinsTies) {
  const DefiniteChoiceModel model = small_model();
  // Equal rewards everywhere: w decreases in t, so lag 1 maximizes.
  const math::Vector uniform(4, 0.5);
  EXPECT_EQ(model.chosen_lag(0, 0, uniform), 1u);
}

TEST(DefiniteChoice, StayThresholdBlocksWeakIncentives) {
  DemandProfile demand(4);
  auto impatient = std::make_shared<PowerLawWaitingFunction>(4.0, 4, 1.0);
  demand.add_class(0, {impatient, 10.0});
  const DefiniteChoiceModel model(std::move(demand), 8.0,
                                  math::PiecewiseLinearCost::hinge(2.0),
                                  /*stay_threshold=*/0.5);
  math::Vector rewards(4, 0.0);
  rewards[1] = 0.3;  // w(0.3, 1) below the threshold for beta = 4
  EXPECT_EQ(model.chosen_lag(0, 0, rewards), 0u);
  rewards[1] = 1.0;
  EXPECT_NE(model.chosen_lag(0, 0, rewards), 0u);
}

TEST(DefiniteChoice, ObjectiveIsNonConvex) {
  // Appendix D: "This model's optimization problem is likely non-convex."
  // Exhibit a midpoint convexity violation: at p the whole period-0 mass
  // moves; at zero nothing moves; at the midpoint the argmax flips
  // discontinuously.
  const DefiniteChoiceModel model = small_model();
  math::Vector a(4, 0.0);
  math::Vector b(4, 0.0);
  b[1] = 1.0;
  math::Vector mid(4, 0.0);
  mid[1] = 0.5;
  const double ca = model.total_cost(a);
  const double cb = model.total_cost(b);
  const double cm = model.total_cost(mid);
  // Convexity would require cost(mid) <= (cost(a) + cost(b)) / 2; the
  // argmax flip makes the midpoint JUMP above the chord here (the whole
  // period-0 mass already moves at half the reward, overloading period 1
  // while earning only half the payout reduction).
  EXPECT_GT(cm, 0.5 * (ca + cb) + 1e-9);
}

TEST(DefiniteChoice, OptimizerBeatsTipAndProbabilisticComparison) {
  const DefiniteChoiceModel model = small_model();
  const DefiniteChoiceSolution sol = optimize_definite_choice(model);
  EXPECT_LE(sol.total_cost, sol.tip_cost + 1e-9);
  EXPECT_GT(sol.evaluations, 0u);
  // Sanity: traffic conserved at the solution.
  double total = 0.0;
  for (double v : sol.usage) total += v;
  EXPECT_NEAR(total, model.demand().total_demand(), 1e-9);
}

TEST(DefiniteChoice, PaperScaleRunIsTractable) {
  // 12-period paper data under definite choice.
  DemandProfile profile = paper::make_profile(
      paper::table8_mix_12(), paper::kStaticNormalizationReward);
  const DefiniteChoiceModel model(std::move(profile),
                                  paper::kStaticCapacityUnits,
                                  math::PiecewiseLinearCost::hinge(3.0));
  DefiniteChoiceOptions options;
  options.starts = 2;
  options.max_sweeps = 4;
  const DefiniteChoiceSolution sol = optimize_definite_choice(model, options);
  // At paper scale the all-or-nothing deferral overshoots: ANY single
  // nonzero reward attracts entire classes from every period, so no
  // single-coordinate move improves on TIP — the search must at least
  // terminate at a point no worse than TIP. (This instability is exactly
  // why the paper prefers the probabilistic model; see the ablation
  // bench.)
  EXPECT_LE(sol.total_cost, sol.tip_cost + 1e-9);
  EXPECT_GT(sol.evaluations, 100u);
}

TEST(DefiniteChoice, RejectsBadInput) {
  const DefiniteChoiceModel model = small_model();
  EXPECT_THROW(model.usage(math::Vector(3, 0.0)), PreconditionError);
  EXPECT_THROW(model.chosen_lag(9, 0, math::Vector(4, 0.0)),
               PreconditionError);
  DefiniteChoiceOptions bad;
  bad.grid_levels = 1;
  EXPECT_THROW(optimize_definite_choice(model, bad), PreconditionError);
}

}  // namespace
}  // namespace tdp
