#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.for_each_index(kCount,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.for_each_index(50, [&](std::size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 20u * (49u * 50u / 2u));
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.for_each_index(100, [](std::size_t i) {
      if (i == 7 || i == 93) {
        throw NumericalError("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("task 7"), std::string::npos);
  }
  // The pool stays usable after a failed batch.
  std::atomic<int> ran{0};
  pool.for_each_index(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.for_each_index(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ParallelFor, MatchesSerialAccumulation) {
  constexpr std::size_t kCount = 256;
  std::vector<double> parallel_out(kCount, 0.0);
  std::vector<double> serial_out(kCount, 0.0);
  const auto body = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  parallel_for(kCount, [&](std::size_t i) { parallel_out[i] = body(i); }, 4);
  parallel_for(kCount, [&](std::size_t i) { serial_out[i] = body(i); }, 1);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, DefaultThreadCountIsAdjustable) {
  const std::size_t original = default_thread_count();
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3u);
  EXPECT_EQ(global_pool().thread_count(), 3u);
  set_default_thread_count(original);
  EXPECT_EQ(default_thread_count(), original);
}

TEST(ParallelFor, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1u);
}

}  // namespace
}  // namespace tdp
