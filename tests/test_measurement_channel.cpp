#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "tube/measurement.hpp"
#include "tube/price_channel.hpp"

namespace tdp {
namespace {

TEST(Measurement, DiffsCumulativeCounters) {
  netsim::Simulator sim;
  netsim::BottleneckLink link(sim, 10.0);
  MeasurementEngine engine(2, 2);

  netsim::FlowSpec a;
  a.size_mb = 20.0;
  a.user = 0;
  a.traffic_class = 1;
  link.start_flow(a);
  sim.run_until(5.0);
  engine.close_period(link);

  netsim::FlowSpec b;
  b.size_mb = 30.0;
  b.user = 1;
  b.traffic_class = 0;
  link.start_flow(b);
  sim.run_until(10.0);
  engine.close_period(link);

  ASSERT_EQ(engine.periods_recorded(), 2u);
  EXPECT_NEAR(engine.usage_mb(0, 0, 1), 20.0, 1e-9);
  EXPECT_NEAR(engine.usage_mb(1, 0, 1), 0.0, 1e-9);
  EXPECT_NEAR(engine.usage_mb(1, 1, 0), 30.0, 1e-9);
  EXPECT_NEAR(engine.user_usage_mb(0, 0), 20.0, 1e-9);
  EXPECT_NEAR(engine.total_usage_mb(1), 30.0, 1e-9);
  EXPECT_EQ(engine.total_series().size(), 2u);
  EXPECT_EQ(engine.user_series(1).size(), 2u);
}

TEST(Measurement, ResetKeepsBaseline) {
  netsim::Simulator sim;
  netsim::BottleneckLink link(sim, 10.0);
  MeasurementEngine engine(1, 1);
  netsim::FlowSpec a;
  a.size_mb = 10.0;
  link.start_flow(a);
  sim.run_until(2.0);
  engine.close_period(link);
  engine.reset(link);
  EXPECT_EQ(engine.periods_recorded(), 0u);
  // New period sees only new traffic.
  netsim::FlowSpec b;
  b.size_mb = 5.0;
  link.start_flow(b);
  sim.run_until(4.0);
  engine.close_period(link);
  EXPECT_NEAR(engine.total_usage_mb(0), 5.0, 1e-9);
}

TEST(Measurement, RejectsBadIndices) {
  MeasurementEngine engine(2, 3);
  EXPECT_THROW(engine.usage_mb(0, 0, 0), PreconditionError);  // no periods
  EXPECT_THROW(MeasurementEngine(0, 1), PreconditionError);
}

TEST(PriceChannel, PullOncePerPeriodDiscipline) {
  PriceChannel channel(4);
  channel.publish({0.1, 0.2, 0.3, 0.4});
  const std::size_t gui = channel.subscribe();

  const auto& first = channel.pull(gui, 7);
  EXPECT_DOUBLE_EQ(first[2], 0.3);
  EXPECT_EQ(channel.server_fetches(gui), 1u);

  // Same period: cache, even if the server republished meanwhile.
  channel.publish({0.5, 0.5, 0.5, 0.5});
  const auto& cached = channel.pull(gui, 7);
  EXPECT_DOUBLE_EQ(cached[2], 0.3);
  EXPECT_EQ(channel.server_fetches(gui), 1u);
  EXPECT_EQ(channel.cache_hits(gui), 1u);

  // Next period: fresh fetch sees the new schedule.
  const auto& fresh = channel.pull(gui, 8);
  EXPECT_DOUBLE_EQ(fresh[2], 0.5);
  EXPECT_EQ(channel.server_fetches(gui), 2u);
}

TEST(PriceChannel, SubscribersAreIndependent) {
  PriceChannel channel(2);
  channel.publish({0.1, 0.2});
  const std::size_t a = channel.subscribe();
  const std::size_t b = channel.subscribe();
  channel.pull(a, 0);
  EXPECT_EQ(channel.server_fetches(a), 1u);
  EXPECT_EQ(channel.server_fetches(b), 0u);
  channel.pull(b, 0);
  EXPECT_EQ(channel.server_fetches(b), 1u);
  EXPECT_EQ(channel.publish_count(), 1u);
}

TEST(PriceChannel, RejectsBadUse) {
  PriceChannel channel(2);
  EXPECT_THROW(channel.publish({0.1}), PreconditionError);
  EXPECT_THROW(channel.publish({-0.1, 0.2}), PreconditionError);
  EXPECT_THROW(channel.pull(0, 0), PreconditionError);  // no subscriber
  const std::size_t gui = channel.subscribe();
  channel.publish({0.0, 0.0});
  channel.pull(gui, 5);
  EXPECT_THROW(channel.pull(gui, 4), PreconditionError);  // time goes back
}

// A publisher republishing evolving schedules while several subscribers
// pull concurrently (and new subscribers keep joining). Every published
// schedule is constant across periods, so a torn read — a pull observing a
// half-updated schedule — would surface as a snapshot with mixed values.
// Run under -DTDP_SANITIZE=thread via `ctest -L sanitize` for the full
// data-race check.
TEST(PriceChannel, ConcurrentPublishPullHammer) {
  constexpr std::size_t kPeriods = 8;
  constexpr std::size_t kPullers = 4;
  constexpr std::size_t kPullsPerThread = 3000;
  constexpr std::size_t kPublishes = 3000;

  PriceChannel channel(kPeriods);
  channel.publish(math::Vector(kPeriods, 0.0));

  std::vector<std::size_t> subscribers(kPullers);
  for (std::size_t i = 0; i < kPullers; ++i) {
    subscribers[i] = channel.subscribe();
  }

  std::atomic<bool> publishing{true};
  std::atomic<int> torn_reads{0};

  std::thread publisher([&] {
    for (std::size_t k = 1; k <= kPublishes; ++k) {
      channel.publish(
          math::Vector(kPeriods, static_cast<double>(k) * 0.001));
    }
    publishing.store(false);
  });

  // Churn: subscribers joining mid-run must not invalidate live pulls.
  std::thread joiner([&] {
    while (publishing.load()) {
      const std::size_t id = channel.subscribe();
      const math::Vector snapshot = channel.pull(id, 0);
      if (snapshot.size() != kPeriods) torn_reads.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> pullers;
  for (std::size_t i = 0; i < kPullers; ++i) {
    pullers.emplace_back([&, i] {
      for (std::size_t period = 0; period < kPullsPerThread; ++period) {
        // Two pulls per period: a server fetch then a cache hit.
        for (int repeat = 0; repeat < 2; ++repeat) {
          const math::Vector snapshot =
              channel.pull(subscribers[i], period);
          for (double value : snapshot) {
            if (value != snapshot[0]) torn_reads.fetch_add(1);
          }
        }
      }
    });
  }

  publisher.join();
  joiner.join();
  for (std::thread& t : pullers) t.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(channel.publish_count(), kPublishes + 1);
  for (std::size_t i = 0; i < kPullers; ++i) {
    // Exactly one server fetch per period, every repeat was a cache hit.
    EXPECT_EQ(channel.server_fetches(subscribers[i]), kPullsPerThread);
    EXPECT_EQ(channel.cache_hits(subscribers[i]), kPullsPerThread);
  }
}

}  // namespace
}  // namespace tdp
