#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "tube/measurement.hpp"
#include "tube/price_channel.hpp"

namespace tdp {
namespace {

TEST(Measurement, DiffsCumulativeCounters) {
  netsim::Simulator sim;
  netsim::BottleneckLink link(sim, 10.0);
  MeasurementEngine engine(2, 2);

  netsim::FlowSpec a;
  a.size_mb = 20.0;
  a.user = 0;
  a.traffic_class = 1;
  link.start_flow(a);
  sim.run_until(5.0);
  engine.close_period(link);

  netsim::FlowSpec b;
  b.size_mb = 30.0;
  b.user = 1;
  b.traffic_class = 0;
  link.start_flow(b);
  sim.run_until(10.0);
  engine.close_period(link);

  ASSERT_EQ(engine.periods_recorded(), 2u);
  EXPECT_NEAR(engine.usage_mb(0, 0, 1), 20.0, 1e-9);
  EXPECT_NEAR(engine.usage_mb(1, 0, 1), 0.0, 1e-9);
  EXPECT_NEAR(engine.usage_mb(1, 1, 0), 30.0, 1e-9);
  EXPECT_NEAR(engine.user_usage_mb(0, 0), 20.0, 1e-9);
  EXPECT_NEAR(engine.total_usage_mb(1), 30.0, 1e-9);
  EXPECT_EQ(engine.total_series().size(), 2u);
  EXPECT_EQ(engine.user_series(1).size(), 2u);
}

TEST(Measurement, ResetKeepsBaseline) {
  netsim::Simulator sim;
  netsim::BottleneckLink link(sim, 10.0);
  MeasurementEngine engine(1, 1);
  netsim::FlowSpec a;
  a.size_mb = 10.0;
  link.start_flow(a);
  sim.run_until(2.0);
  engine.close_period(link);
  engine.reset(link);
  EXPECT_EQ(engine.periods_recorded(), 0u);
  // New period sees only new traffic.
  netsim::FlowSpec b;
  b.size_mb = 5.0;
  link.start_flow(b);
  sim.run_until(4.0);
  engine.close_period(link);
  EXPECT_NEAR(engine.total_usage_mb(0), 5.0, 1e-9);
}

// Broken exporters happen outside chaos runs too: non-finite counters are
// dropped unconditionally (baseline kept, so the next good counter yields
// the union of both periods), and a counter reset re-baselines.
TEST(Measurement, RejectsNonFiniteAndResetCounters) {
  MeasurementEngine engine(1, 2);
  engine.close_period(std::vector<double>{10.0, 5.0});
  EXPECT_NEAR(engine.usage_mb(0, 0, 0), 10.0, 1e-12);
  EXPECT_NEAR(engine.usage_mb(0, 0, 1), 5.0, 1e-12);
  EXPECT_EQ(engine.rejected_samples(), 0u);

  // NaN counter: sample dropped, baseline kept.
  engine.close_period(std::vector<double>{
      std::numeric_limits<double>::quiet_NaN(), 8.0});
  EXPECT_NEAR(engine.usage_mb(1, 0, 0), 0.0, 1e-12);
  EXPECT_NEAR(engine.usage_mb(1, 0, 1), 3.0, 1e-12);
  EXPECT_EQ(engine.rejected_samples(), 1u);

  // Class 0 recovers with the union of the two periods; class 1's counter
  // went backwards (reset) so its sample is dropped and it re-baselines.
  engine.close_period(std::vector<double>{16.0, 6.0});
  EXPECT_NEAR(engine.usage_mb(2, 0, 0), 6.0, 1e-12);
  EXPECT_NEAR(engine.usage_mb(2, 0, 1), 0.0, 1e-12);
  EXPECT_EQ(engine.rejected_samples(), 2u);

  engine.close_period(std::vector<double>{20.0, 10.0});
  EXPECT_NEAR(engine.usage_mb(3, 0, 0), 4.0, 1e-12);
  EXPECT_NEAR(engine.usage_mb(3, 0, 1), 4.0, 1e-12);
  EXPECT_EQ(engine.rejected_samples(), 2u);
}

TEST(Measurement, InfinityIsRejectedLikeNaN) {
  MeasurementEngine engine(1, 1);
  engine.close_period(std::vector<double>{
      std::numeric_limits<double>::infinity()});
  EXPECT_NEAR(engine.total_usage_mb(0), 0.0, 1e-12);
  EXPECT_EQ(engine.rejected_samples(), 1u);
}

TEST(Measurement, RejectsBadIndices) {
  MeasurementEngine engine(2, 3);
  EXPECT_THROW(engine.usage_mb(0, 0, 0), PreconditionError);  // no periods
  EXPECT_THROW(MeasurementEngine(0, 1), PreconditionError);
}

TEST(PriceChannel, PullOncePerPeriodDiscipline) {
  PriceChannel channel(4);
  channel.publish({0.1, 0.2, 0.3, 0.4});
  const std::size_t gui = channel.subscribe();

  const auto& first = channel.pull(gui, 7);
  EXPECT_DOUBLE_EQ(first[2], 0.3);
  EXPECT_EQ(channel.server_fetches(gui), 1u);

  // Same period: cache, even if the server republished meanwhile.
  channel.publish({0.5, 0.5, 0.5, 0.5});
  const auto& cached = channel.pull(gui, 7);
  EXPECT_DOUBLE_EQ(cached[2], 0.3);
  EXPECT_EQ(channel.server_fetches(gui), 1u);
  EXPECT_EQ(channel.cache_hits(gui), 1u);

  // Next period: fresh fetch sees the new schedule.
  const auto& fresh = channel.pull(gui, 8);
  EXPECT_DOUBLE_EQ(fresh[2], 0.5);
  EXPECT_EQ(channel.server_fetches(gui), 2u);
}

TEST(PriceChannel, SubscribersAreIndependent) {
  PriceChannel channel(2);
  channel.publish({0.1, 0.2});
  const std::size_t a = channel.subscribe();
  const std::size_t b = channel.subscribe();
  channel.pull(a, 0);
  EXPECT_EQ(channel.server_fetches(a), 1u);
  EXPECT_EQ(channel.server_fetches(b), 0u);
  channel.pull(b, 0);
  EXPECT_EQ(channel.server_fetches(b), 1u);
  EXPECT_EQ(channel.publish_count(), 1u);
}

TEST(PriceChannel, RejectsBadUse) {
  PriceChannel channel(2);
  EXPECT_THROW(channel.publish({0.1}), PreconditionError);
  EXPECT_THROW(channel.publish({-0.1, 0.2}), PreconditionError);
  EXPECT_THROW(channel.pull(0, 0), PreconditionError);  // no subscriber
  const std::size_t gui = channel.subscribe();
  channel.publish({0.0, 0.0});
  channel.pull(gui, 5);
  EXPECT_THROW(channel.pull(gui, 4), PreconditionError);  // time goes back
}

// A publisher republishing evolving schedules while several subscribers
// pull concurrently (and new subscribers keep joining). Every published
// schedule is constant across periods, so a torn read — a pull observing a
// half-updated schedule — would surface as a snapshot with mixed values.
// Run under -DTDP_SANITIZE=thread via `ctest -L sanitize` for the full
// data-race check.
TEST(PriceChannel, ConcurrentPublishPullHammer) {
  constexpr std::size_t kPeriods = 8;
  constexpr std::size_t kPullers = 4;
  constexpr std::size_t kPullsPerThread = 3000;
  constexpr std::size_t kPublishes = 3000;

  PriceChannel channel(kPeriods);
  channel.publish(math::Vector(kPeriods, 0.0));

  std::vector<std::size_t> subscribers(kPullers);
  for (std::size_t i = 0; i < kPullers; ++i) {
    subscribers[i] = channel.subscribe();
  }

  std::atomic<bool> publishing{true};
  std::atomic<int> torn_reads{0};

  std::thread publisher([&] {
    for (std::size_t k = 1; k <= kPublishes; ++k) {
      channel.publish(
          math::Vector(kPeriods, static_cast<double>(k) * 0.001));
    }
    publishing.store(false);
  });

  // Churn: subscribers joining mid-run must not invalidate live pulls.
  std::thread joiner([&] {
    while (publishing.load()) {
      const std::size_t id = channel.subscribe();
      const math::Vector snapshot = channel.pull(id, 0);
      if (snapshot.size() != kPeriods) torn_reads.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> pullers;
  for (std::size_t i = 0; i < kPullers; ++i) {
    pullers.emplace_back([&, i] {
      for (std::size_t period = 0; period < kPullsPerThread; ++period) {
        // Two pulls per period: a server fetch then a cache hit.
        for (int repeat = 0; repeat < 2; ++repeat) {
          const math::Vector snapshot =
              channel.pull(subscribers[i], period);
          for (double value : snapshot) {
            if (value != snapshot[0]) torn_reads.fetch_add(1);
          }
        }
      }
    });
  }

  publisher.join();
  joiner.join();
  for (std::thread& t : pullers) t.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(channel.publish_count(), kPublishes + 1);
  for (std::size_t i = 0; i < kPullers; ++i) {
    // Exactly one server fetch per period, every repeat was a cache hit.
    EXPECT_EQ(channel.server_fetches(subscribers[i]), kPullsPerThread);
    EXPECT_EQ(channel.cache_hits(subscribers[i]), kPullsPerThread);
  }
}

// --- staleness / fallback ladder -----------------------------------------

TEST(PriceChannel, StalenessLadderServesLastKnownGoodThenFlatTip) {
  FaultPlan plan;
  plan.price_pull_drop = 1.0;  // the transport is completely down
  const FaultInjector injector(plan);

  PriceChannel channel(3);
  channel.publish({0.1, 0.2, 0.3});
  ChannelResilienceConfig resilience;
  resilience.staleness_ttl = 2;
  resilience.max_retries = 1;
  channel.set_resilience(resilience);
  const std::size_t gui = channel.subscribe();

  // Establish a last-known-good schedule before the outage begins.
  PullSource source;
  math::Vector schedule = channel.pull_with_source(gui, 0, &source);
  EXPECT_EQ(source, PullSource::kServer);
  EXPECT_DOUBLE_EQ(schedule[1], 0.2);

  channel.set_fault_injector(&injector);

  // Misses 1 and 2: within the TTL, the stale cache is still served.
  for (std::size_t period : {1u, 2u}) {
    schedule = channel.pull_with_source(gui, period, &source);
    EXPECT_EQ(source, PullSource::kStale) << "period " << period;
    EXPECT_DOUBLE_EQ(schedule[1], 0.2);
  }
  // Miss 3: TTL exhausted — flat-TIP zero rewards (nobody defers: safe).
  schedule = channel.pull_with_source(gui, 3, &source);
  EXPECT_EQ(source, PullSource::kFallback);
  EXPECT_DOUBLE_EQ(schedule[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule[2], 0.0);
  // Repeat pull in the same period agrees with the first.
  EXPECT_DOUBLE_EQ(channel.pull(gui, 3)[1], 0.0);

  // In fallback the subscriber backs off to one attempt per period.
  const SubscriberTelemetry before = channel.telemetry(gui);
  channel.pull_with_source(gui, 4, &source);
  EXPECT_EQ(source, PullSource::kFallback);
  const SubscriberTelemetry after = channel.telemetry(gui);
  EXPECT_EQ(after.dropped_attempts - before.dropped_attempts, 1u);

  EXPECT_EQ(after.stale_periods, 2u);
  EXPECT_EQ(after.fallback_periods, 2u);
  EXPECT_EQ(after.missed_streak, 4u);
  EXPECT_EQ(after.fetches, 1u);
  // Periods 1..3 burned the retry budget (2 attempts each), period 4 one.
  EXPECT_EQ(after.dropped_attempts, 7u);
  EXPECT_EQ(after.retries, 3u);

  // Transport restored: the next period fetches, counts a recovery, and
  // the fresh schedule replaces the fallback zeros.
  channel.set_fault_injector(nullptr);
  schedule = channel.pull_with_source(gui, 5, &source);
  EXPECT_EQ(source, PullSource::kServer);
  EXPECT_DOUBLE_EQ(schedule[1], 0.2);
  const SubscriberTelemetry recovered = channel.telemetry(gui);
  EXPECT_EQ(recovered.recoveries, 1u);
  EXPECT_EQ(recovered.missed_streak, 0u);
}

TEST(PriceChannel, ZeroRatePlanLeavesPullPathUntouched) {
  const FaultInjector zero{};  // disabled
  PriceChannel channel(2);
  channel.publish({0.4, 0.6});
  channel.set_fault_injector(&zero);
  const std::size_t gui = channel.subscribe();
  PullSource source;
  const math::Vector schedule = channel.pull_with_source(gui, 9, &source);
  EXPECT_EQ(source, PullSource::kServer);
  EXPECT_DOUBLE_EQ(schedule[0], 0.4);
  const SubscriberTelemetry stats = channel.telemetry(gui);
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.dropped_attempts, 0u);
  EXPECT_EQ(stats.stale_periods, 0u);
}

// The concurrent hammer with a flaky transport: publisher republishing,
// subscribers pulling through a 30%-drop injector. Whatever each pull
// returns must be internally consistent (no torn reads) and the
// per-subscriber accounting must add up: every period resolves to exactly
// one of fetched/stale/fallback. Runs under TSan via `ctest -L sanitize`.
TEST(PriceChannel, ConcurrentFaultyPublishPullHammer) {
  constexpr std::size_t kPeriods = 8;
  constexpr std::size_t kPullers = 4;
  constexpr std::size_t kPullsPerThread = 2000;
  constexpr std::size_t kPublishes = 2000;

  FaultPlan plan;
  plan.price_pull_drop = 0.3;
  plan.clock_skew = 0.05;
  const FaultInjector injector(plan);

  PriceChannel channel(kPeriods);
  channel.publish(math::Vector(kPeriods, 0.0));
  channel.set_fault_injector(&injector);

  std::vector<std::size_t> subscribers(kPullers);
  for (std::size_t i = 0; i < kPullers; ++i) {
    subscribers[i] = channel.subscribe();
  }

  std::atomic<int> torn_reads{0};
  std::thread publisher([&] {
    for (std::size_t k = 1; k <= kPublishes; ++k) {
      channel.publish(
          math::Vector(kPeriods, static_cast<double>(k) * 0.001));
    }
  });

  std::vector<std::thread> pullers;
  for (std::size_t i = 0; i < kPullers; ++i) {
    pullers.emplace_back([&, i] {
      for (std::size_t period = 0; period < kPullsPerThread; ++period) {
        for (int repeat = 0; repeat < 2; ++repeat) {
          const math::Vector snapshot =
              channel.pull(subscribers[i], period);
          for (double value : snapshot) {
            if (value != snapshot[0]) torn_reads.fetch_add(1);
          }
        }
      }
    });
  }

  publisher.join();
  for (std::thread& t : pullers) t.join();

  EXPECT_EQ(torn_reads.load(), 0);
  for (std::size_t i = 0; i < kPullers; ++i) {
    const SubscriberTelemetry stats = channel.telemetry(subscribers[i]);
    // Each period resolved exactly once; the repeat was always a cache hit.
    EXPECT_EQ(stats.fetches + stats.stale_periods + stats.fallback_periods +
                  stats.skewed_periods,
              kPullsPerThread);
    EXPECT_EQ(stats.cache_hits, kPullsPerThread);
    // The transport was genuinely flaky and the ladder genuinely used.
    EXPECT_GT(stats.dropped_attempts, 0u);
  }
}

}  // namespace
}  // namespace tdp
