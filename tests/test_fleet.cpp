#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/paper_data.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"
#include "fleet/population.hpp"
#include "fleet/price_fanout.hpp"
#include "fleet/shard.hpp"
#include "tube/price_channel.hpp"

namespace tdp::fleet {
namespace {

PopulationConfig small_population(std::uint64_t users) {
  PopulationConfig config;
  config.users = users;
  config.periods = 48;
  config.seed = 20110611;
  return config;
}

TEST(Population, DrawsAreAPureFunctionOfSeedAndUserId) {
  const Population a(small_population(1000));
  const Population b(small_population(1000));
  for (std::uint64_t u : {0ull, 1ull, 499ull, 999ull}) {
    const UserSpec sa = a.spec(u);
    const UserSpec sb = b.spec(u);
    EXPECT_EQ(sa.patience_class, sb.patience_class);
    EXPECT_EQ(sa.activity, sb.activity);
    Rng ra = a.user_period_rng(u, 7);
    Rng rb = b.user_period_rng(u, 7);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(ra.next(), rb.next());
  }

  PopulationConfig other = small_population(1000);
  other.seed = 42;
  const Population c(other);
  bool any_differs = false;
  for (std::uint64_t u = 0; u < 100; ++u) {
    if (a.spec(u).activity != c.spec(u).activity) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Population, CalibratedToThePaperProfile) {
  const Population pop(small_population(5000));
  const std::vector<double> expected = pop.expected_demand_units();
  const std::vector<double> table = paper::table5_demand_48();
  ASSERT_EQ(expected.size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_NEAR(expected[i], table[i], 1e-9);
  }
  const std::vector<double>& shares = pop.class_shares();
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0,
              1e-12);

  // Expected aggregate work per period (user units * calibration) equals
  // the table profile: sum over classes of share * rate * activity-mean(1)
  // * users * mean session size.
  for (std::size_t i = 0; i < table.size(); ++i) {
    double aggregate = 0.0;
    for (std::size_t c = 0; c < pop.patience_classes(); ++c) {
      aggregate += shares[c] * static_cast<double>(pop.users()) *
                   pop.session_rate(static_cast<std::uint32_t>(c), i) *
                   pop.mean_session_size();
    }
    EXPECT_NEAR(aggregate * pop.unit_calibration(), table[i], 1e-9);
  }
}

TEST(DeferralTable, ZeroRewardsMeanNobodyDefers) {
  const Population pop(small_population(100));
  const math::Vector zeros(48, 0.0);
  std::vector<const math::Vector*> schedules(pop.patience_classes(), &zeros);
  const DeferralTable table(pop, schedules, 3);
  for (std::uint32_t c = 0; c < pop.patience_classes(); ++c) {
    EXPECT_EQ(table.cumulative(c, 47), 0.0);
  }
  EXPECT_EQ(table.probability_clamps(), 0u);
}

TEST(Aggregator, MergesStripesInFixedShardOrder) {
  StripedAggregator agg(3, 2);
  for (std::size_t s = 0; s < 3; ++s) {
    PeriodStats stats;
    stats.offered_work = 1.0 + 0.1 * static_cast<double>(s);
    stats.sessions = s + 1;
    agg.record(s, 1, stats);
  }
  const PeriodStats merged = agg.merged(1);
  // Exactly ((s0 + s1) + s2) in ascending shard order.
  EXPECT_EQ(merged.offered_work, (1.0 + 1.1) + 1.2);
  EXPECT_EQ(merged.sessions, 6u);
  EXPECT_EQ(agg.merged(0).sessions, 0u);
}

TEST(PriceFanout, MemoryAndFetchesAreGroupBounded) {
  PriceChannel channel(4);
  channel.publish({0.1, 0.2, 0.3, 0.4});
  PriceFanout fanout(channel, 5);
  EXPECT_EQ(fanout.groups(), 5u);

  fanout.sync(0);
  fanout.sync(0);  // same period: cache hits, no new server traffic
  EXPECT_EQ(fanout.total_server_fetches(), 5u);
  fanout.sync(1);
  EXPECT_EQ(fanout.total_server_fetches(), 10u);
  EXPECT_DOUBLE_EQ(fanout.schedule(2)[3], 0.4);
}

// The acceptance gate for the fleet subsystem: running the same day on one
// thread and on several must produce bit-identical per-period aggregates
// (EXPECT_EQ on doubles, no tolerance) and an identical reward trajectory,
// with the online pricer in the loop.
TEST(FleetDriver, AggregatesBitIdenticalAcrossThreadCounts) {
  FleetMetrics results[2];
  math::Vector rewards[2];
  const std::size_t thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    FleetDriverConfig config;
    config.population = small_population(20000);
    config.shards = 16;
    config.threads = thread_counts[run];
    config.warmup_days = 1;
    config.online_pricing = true;
    FleetDriver driver(config);
    results[run] = driver.run_day();
    rewards[run] = driver.pricer().rewards();
  }

  ASSERT_EQ(results[0].offered_units.size(), results[1].offered_units.size());
  for (std::size_t i = 0; i < results[0].offered_units.size(); ++i) {
    EXPECT_EQ(results[0].offered_units[i], results[1].offered_units[i])
        << "offered usage differs in period " << i;
    EXPECT_EQ(results[0].realized_units[i], results[1].realized_units[i])
        << "realized usage differs in period " << i;
  }
  EXPECT_EQ(results[0].sessions, results[1].sessions);
  EXPECT_EQ(results[0].deferred_sessions, results[1].deferred_sessions);
  EXPECT_EQ(results[0].reward_paid_units, results[1].reward_paid_units);
  ASSERT_EQ(rewards[0].size(), rewards[1].size());
  for (std::size_t i = 0; i < rewards[0].size(); ++i) {
    EXPECT_EQ(rewards[0][i], rewards[1][i])
        << "online reward trajectory diverged at period " << i;
  }
}

TEST(FleetDriver, OnlinePricerInTheLoopSmoothsThePeak) {
  FleetDriverConfig config;
  config.population = small_population(20000);
  config.shards = 8;
  config.threads = 2;
  config.warmup_days = 1;
  FleetDriver driver(config);
  const FleetMetrics metrics = driver.run_day();

  // TDP moved real sessions and flattened the profile.
  EXPECT_GT(metrics.deferred_sessions, 0u);
  EXPECT_LT(metrics.peak_to_average_tdp, metrics.peak_to_average_tip);

  // The measured aggregate tracks the paper profile it was calibrated to
  // (relative day-total error shrinks as 1/sqrt(users)).
  const std::vector<double> table = paper::table5_demand_48();
  const double expected_total =
      std::accumulate(table.begin(), table.end(), 0.0);
  const double measured_total = std::accumulate(
      metrics.offered_units.begin(), metrics.offered_units.end(), 0.0);
  EXPECT_NEAR(measured_total, expected_total, 0.05 * expected_total);

  // Price traffic is O(groups), not O(users): one fetch per group per
  // period over both days.
  EXPECT_EQ(metrics.price_groups, paper::kPatienceIndices.size());
  EXPECT_EQ(metrics.price_server_fetches,
            metrics.price_groups * metrics.periods * metrics.days);

  // Conservation: every offered unit either ran in the measured day or was
  // parked in a deferral ring; realized = offered - deferred_out +
  // deferred_in, and in cyclic steady state the day totals agree to within
  // the ring contents' statistical noise.
  const double realized_total = std::accumulate(
      metrics.realized_units.begin(), metrics.realized_units.end(), 0.0);
  EXPECT_NEAR(realized_total, measured_total, 0.05 * expected_total);
}

TEST(FleetDriver, ChaosRunDegradesGracefully) {
  // The same population twice: clean, then under a 5% fault plan hitting
  // every observation path at once. The chaos day must complete, keep its
  // rewards inside [0, cap], surface its degradation in the counters, and
  // stay within 10% of the clean run's peak-to-average ratio.
  FleetDriverConfig config;
  config.population = small_population(5000);
  config.shards = 8;
  config.threads = 2;
  config.warmup_days = 1;

  FleetDriver clean_driver(config);
  const FleetMetrics clean = clean_driver.run_day();

  config.fault.price_pull_drop = 0.05;
  config.fault.measurement_loss = 0.025;
  config.fault.measurement_nan = 0.0125;
  config.fault.measurement_spike = 0.0125;
  config.fault.solver_exhaustion = 0.05;
  FleetDriver chaos_driver(config);
  const FleetMetrics chaos = chaos_driver.run_day();

  // The day completed on the same physical fleet (faults touch only the
  // observation paths, never the simulated users).
  EXPECT_EQ(chaos.sessions, clean.sessions);
  EXPECT_EQ(chaos.offered_units.size(), clean.offered_units.size());

  // Published rewards stayed sane throughout.
  for (double reward : chaos_driver.pricer().rewards()) {
    EXPECT_GE(reward, 0.0);
    EXPECT_TRUE(std::isfinite(reward));
  }

  // The plan actually fired and the counters recorded it.
  EXPECT_GT(chaos.price_pull_drops, 0u);
  EXPECT_GT(chaos.shard_stripes_lost + chaos.measurement_gaps +
                chaos.measurement_repairs,
            0u);
  const std::uint64_t bad_observations =
      chaos.degraded_observations + chaos.fallback_observations +
      chaos.skipped_updates;
  EXPECT_GT(bad_observations, 0u);

  // Graceful: the TDP benefit survives degraded control.
  EXPECT_NEAR(chaos.peak_to_average_tdp, clean.peak_to_average_tdp,
              0.10 * clean.peak_to_average_tdp);
}

TEST(FleetDriver, RunsAreSingleShot) {
  FleetDriverConfig config;
  config.population = small_population(200);
  config.shards = 2;
  config.threads = 1;
  config.warmup_days = 0;
  FleetDriver driver(config);
  driver.run_day();
  EXPECT_THROW(driver.run_day(), PreconditionError);
}

TEST(FleetMetrics, JsonRoundTripsKeyFields) {
  FleetMetrics metrics;
  metrics.users = 12;
  metrics.periods = 2;
  metrics.offered_units = {1.5, 2.5};
  metrics.realized_units = {2.0, 2.0};
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"users\":12"), std::string::npos);
  EXPECT_NE(json.find("\"offered_units\":[1.5,2.5]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace tdp::fleet
