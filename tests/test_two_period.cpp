#include "core/two_period.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"

namespace tdp {
namespace {

TEST(TwoPeriod, ScheduleHasExactlyTwoLevels) {
  const StaticModel model = paper::static_model_12();
  const TwoPeriodSolution sol = optimize_two_period_prices(model);
  for (std::size_t i = 0; i < 12; ++i) {
    if (sol.off_peak[i]) {
      EXPECT_DOUBLE_EQ(sol.rewards[i], sol.off_peak_reward);
    } else {
      EXPECT_DOUBLE_EQ(sol.rewards[i], 0.0);
    }
  }
  EXPECT_GT(sol.off_peak_reward, 0.0);
}

TEST(TwoPeriod, ClassificationFollowsThreshold) {
  const StaticModel model = paper::static_model_12();
  const TwoPeriodSolution sol = optimize_two_period_prices(model);
  const auto tip = model.demand().tip_demand_vector();
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(sol.off_peak[i], tip[i] < sol.demand_threshold) << i;
  }
}

TEST(TwoPeriod, BeatsFlatPricingButLosesToFullTdp) {
  // The intro's claim: "the multiple peaks and valleys ... make 2 period
  // TDP inadequate."
  const StaticModel model = paper::static_model_48();
  const TwoPeriodSolution two = optimize_two_period_prices(model);
  const PricingSolution full = optimize_static_prices(model);
  EXPECT_LT(two.total_cost, two.tip_cost);           // better than nothing
  EXPECT_LT(full.total_cost, two.total_cost - 1.0);  // clearly worse than n-period
}

TEST(TwoPeriod, ConservesTraffic) {
  const StaticModel model = paper::static_model_12();
  const TwoPeriodSolution sol = optimize_two_period_prices(model);
  double total = 0.0;
  for (double v : sol.usage) total += v;
  EXPECT_NEAR(total, model.demand().total_demand(), 1e-9);
}

TEST(TwoPeriod, RejectsBadOptions) {
  const StaticModel model = paper::static_model_12();
  TwoPeriodOptions bad;
  bad.reward_levels = 1;
  EXPECT_THROW(optimize_two_period_prices(model, bad), PreconditionError);
}

}  // namespace
}  // namespace tdp
