#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace tdp {
namespace {

TEST(Logging, ThresholdFilters) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — the macro short-circuits).
  TDP_LOG_DEBUG << "dropped";
  set_log_level(previous);
}

TEST(Logging, SinkReceivesWholeMessages) {
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::string> seen;
  LogSink old_sink = set_log_sink(
      [&seen](LogLevel, const std::string& message) {
        seen.push_back(message);
      });
  TDP_LOG_INFO << "hello " << 42;
  TDP_LOG_DEBUG << "still dropped";
  set_log_sink(std::move(old_sink));
  set_log_level(previous_level);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "hello 42");
}

TEST(Logging, ConcurrentLoggingLosesNothing) {
  // 8 threads x 200 messages hammer the logger. The sink runs under the
  // logger mutex, so a plain counter and length check suffice; TSan runs of
  // this test (ctest -L sanitize) catch any unguarded path.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kMessagesPerThread = 200;
  const LogLevel previous_level = log_level();
  set_log_level(LogLevel::kInfo);
  std::size_t count = 0;
  std::size_t total_length = 0;
  LogSink old_sink = set_log_sink(
      [&count, &total_length](LogLevel, const std::string& message) {
        ++count;
        total_length += message.size();
      });

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::size_t k = 0; k < kMessagesPerThread; ++k) {
        TDP_LOG_INFO << "thread " << t << " message " << k;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  set_log_sink(std::move(old_sink));
  set_log_level(previous_level);

  EXPECT_EQ(count, kThreads * kMessagesPerThread);
  // Every message is at least "thread T message K" long — nothing torn.
  EXPECT_GE(total_length, count * (sizeof("thread 0 message 0") - 1));
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"Period", "Reward"});
  table.add_row({"1", "0.45"});
  table.add_row({"10", "0.021"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Period  Reward"), std::string::npos);
  EXPECT_NE(out.find("1       0.45"), std::string::npos);
  EXPECT_NE(out.find("10      0.021"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(Error, HierarchyAndMessages) {
  try {
    throw NumericalError("diverged");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos);
  }
  EXPECT_THROW(
      { TDP_REQUIRE(false, "requirement text"); }, PreconditionError);
}

}  // namespace
}  // namespace tdp
