#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace tdp {
namespace {

TEST(Logging, ThresholdFilters) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — the macro short-circuits).
  TDP_LOG_DEBUG << "dropped";
  set_log_level(previous);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"Period", "Reward"});
  table.add_row({"1", "0.45"});
  table.add_row({"10", "0.021"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Period  Reward"), std::string::npos);
  EXPECT_NE(out.find("1       0.45"), std::string::npos);
  EXPECT_NE(out.find("10      0.021"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(Error, HierarchyAndMessages) {
  try {
    throw NumericalError("diverged");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("diverged"), std::string::npos);
  }
  EXPECT_THROW(
      { TDP_REQUIRE(false, "requirement text"); }, PreconditionError);
}

}  // namespace
}  // namespace tdp
