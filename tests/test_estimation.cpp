#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "estimation/tip_estimator.hpp"
#include "estimation/wf_estimator.hpp"

namespace tdp {
namespace {

/// The paper's Table III ground truth: 2 types, 3 periods.
PatienceMix table3_truth() {
  PatienceMix truth(3, 2, 1.0);
  truth.set(0, 0, 0.17, 1.0);
  truth.set(0, 1, 0.83, 2.0);
  truth.set(1, 0, 0.50, 1.0);
  truth.set(1, 1, 0.50, 2.33);
  truth.set(2, 0, 0.83, 1.0);
  truth.set(2, 1, 0.17, 2.67);
  return truth;
}

std::vector<EstimationDataset> table3_data(
    const WaitingFunctionEstimator& est, const PatienceMix& truth,
    const std::vector<double>& demand, int datasets, double noise = 0.0) {
  // "We generate data for the estimation by evaluating (8) at sets of
  // offered rewards p_i in [0, 1]."
  Rng rng(2011);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < datasets; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(est.synthesize(truth, demand, rewards, noise,
                                  1000 + static_cast<std::uint64_t>(d)));
  }
  return data;
}

/// Worst-case percent error between two mixes' aggregate waiting values.
double max_waiting_percent_error(const PatienceMix& truth,
                                 const PatienceMix& fitted) {
  double worst = 0.0;
  for (std::size_t i = 0; i < truth.periods(); ++i) {
    for (std::size_t k = 0; k < truth.periods(); ++k) {
      if (k == i) continue;
      for (double p = 0.1; p <= 1.001; p += 0.1) {
        const double actual = truth.omega(i, k, p);
        if (actual < 1e-12) continue;
        const double estimated = fitted.omega(i, k, p);
        worst = std::max(worst,
                         100.0 * std::abs(actual - estimated) / actual);
      }
    }
  }
  return worst;
}

TEST(PatienceMix, NetOutflowSumsToZero) {
  // Eq. 7 with sum_i T_i = 0 ("sessions never disappear").
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    double total = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      total += truth.net_outflow(i, demand, rewards);
    }
    EXPECT_NEAR(total, 0.0, 1e-10);
  }
}

TEST(Estimation, Table3ReducedEstimatorUnder12PercentError) {
  // Table III: "The percent difference between actual and estimated waiting
  // functions for each period remains small at under 12 percent."
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator est(3, 2, 1.0);
  const auto data = table3_data(est, truth, demand, 60);
  const auto fit = est.estimate_reduced3(demand, data);
  ASSERT_TRUE(fit.converged);
  EXPECT_LT(max_waiting_percent_error(truth, fit.mix), 12.0);
  // Patience indices land near the truth even when the proportions alias
  // (the paper's Table III shows the same alpha misidentification).
  EXPECT_NEAR(fit.mix.beta(0, 0), 1.0, 0.35);
}

TEST(Estimation, FullEstimatorRecoversWaitingFunctions) {
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator est(3, 2, 1.0);
  const auto data = table3_data(est, truth, demand, 60);
  const auto fit = est.estimate(demand, data);
  ASSERT_TRUE(fit.converged);
  EXPECT_LT(max_waiting_percent_error(truth, fit.mix), 1.0);
  EXPECT_LT(fit.residual_norm2, 1e-12);
}

class NoisyEstimation : public ::testing::TestWithParam<double> {};

TEST_P(NoisyEstimation, DegradesGracefullyWithNoise) {
  const double noise = GetParam();
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator est(3, 2, 1.0);
  const auto data = table3_data(est, truth, demand, 120, noise);
  const auto fit = est.estimate(demand, data);
  // Noise is in demand units (~1% to ~5% of T magnitudes).
  EXPECT_LT(max_waiting_percent_error(truth, fit.mix), 8.0 + 400.0 * noise);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoisyEstimation,
                         ::testing::Values(0.005, 0.02, 0.05));

TEST(Estimation, TiedEstimatorRecoversSharedParameters) {
  // Ground truth with the same (alpha, beta) in every period.
  const std::size_t n = 6;
  PatienceMix truth(n, 2, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    truth.set(i, 0, 0.3, 0.8);
    truth.set(i, 1, 0.7, 2.5);
  }
  std::vector<double> demand = {20.0, 12.0, 8.0, 10.0, 16.0, 22.0};
  const WaitingFunctionEstimator est(n, 2, 1.0);
  Rng rng(31);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 10; ++d) {
    math::Vector rewards(n);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(est.synthesize(truth, demand, rewards));
  }
  const auto fit = est.estimate_tied(demand, data);
  EXPECT_LT(max_waiting_percent_error(truth, fit.mix), 1.0);
}

TEST(Estimation, PaperScaleTiedFitTenTypes) {
  // Full paper scale: 12 periods, all ten Table IV patience indices, tied
  // parameters. The estimator must recover the aggregate waiting behaviour
  // from a week of trial windows.
  const std::size_t n = 12;
  const std::size_t m = 10;
  PatienceMix truth(n, m, 1.5);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      truth.set(i, j, 1.0 / static_cast<double>(m),
                0.5 + 0.5 * static_cast<double>(j));
    }
  }
  std::vector<double> demand = {22, 13, 8, 8, 11, 19, 20, 23, 24, 25, 23, 26};
  const WaitingFunctionEstimator est(n, m, 1.5);
  Rng rng(61);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 7; ++d) {
    math::Vector rewards(n);
    for (double& p : rewards) p = rng.uniform(0.0, 1.5);
    data.push_back(est.synthesize(truth, demand, rewards));
  }
  const auto fit = est.estimate_tied(demand, data);
  // With ten overlapping power laws the individual parameters alias
  // heavily; the identifiable object is the aggregate waiting function,
  // which must fit tightly.
  EXPECT_LT(max_waiting_percent_error(truth, fit.mix), 5.0);
}

TEST(Estimation, MultiStartIsDeterministicAcrossThreadCounts) {
  // Same starts, same seeds -> same LM trajectories regardless of how the
  // starts are scheduled onto threads. Bitwise comparison on purpose.
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator est(3, 2, 1.0);
  const auto data = table3_data(est, truth, demand, 30);

  WaitingFunctionEstimator::MultiStartOptions serial;
  serial.starts = 6;
  serial.seed = 7;
  serial.threads = 1;
  WaitingFunctionEstimator::MultiStartOptions parallel = serial;
  parallel.threads = 4;

  const auto fit1 = est.estimate_multistart(demand, data, serial);
  const auto fit4 = est.estimate_multistart(demand, data, parallel);
  EXPECT_EQ(fit1.residual_norm2, fit4.residual_norm2);
  EXPECT_EQ(fit1.iterations, fit4.iterations);
  EXPECT_EQ(fit1.converged, fit4.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(fit1.mix.alpha(i, j), fit4.mix.alpha(i, j))
          << "alpha(" << i << "," << j << ")";
      EXPECT_EQ(fit1.mix.beta(i, j), fit4.mix.beta(i, j))
          << "beta(" << i << "," << j << ")";
    }
  }
}

TEST(Estimation, MultiStartNeverLosesToTheDefaultStart) {
  // Start 0 IS the default start, so the multi-start winner's residual can
  // only improve on the plain estimator.
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const WaitingFunctionEstimator est(3, 2, 1.0);
  const auto data = table3_data(est, truth, demand, 30);

  const auto single = est.estimate(demand, data);
  WaitingFunctionEstimator::MultiStartOptions options;
  options.starts = 6;
  options.seed = 7;
  const auto multi = est.estimate_multistart(demand, data, options);
  EXPECT_LE(multi.residual_norm2, single.residual_norm2 + 1e-15);
}

TEST(Estimation, MultiStartTiedMode) {
  const std::size_t n = 6;
  PatienceMix truth(n, 2, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    truth.set(i, 0, 0.3, 0.8);
    truth.set(i, 1, 0.7, 2.5);
  }
  std::vector<double> demand = {20.0, 12.0, 8.0, 10.0, 16.0, 22.0};
  const WaitingFunctionEstimator est(n, 2, 1.0);
  Rng rng(31);
  std::vector<EstimationDataset> data;
  for (int d = 0; d < 10; ++d) {
    math::Vector rewards(n);
    for (double& p : rewards) p = rng.uniform(0.0, 1.0);
    data.push_back(est.synthesize(truth, demand, rewards));
  }
  WaitingFunctionEstimator::MultiStartOptions options;
  options.starts = 4;
  options.tied = true;
  const auto fit = est.estimate_multistart(demand, data, options);
  EXPECT_LT(max_waiting_percent_error(truth, fit.mix), 1.0);
}

TEST(Estimation, TipBaselineRecovery) {
  // Eq. 9: with known waiting functions, X is recovered from TDP usage.
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  Rng rng(47);
  std::vector<TipObservation> windows;
  for (int d = 0; d < 6; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.2, 1.0);
    windows.push_back({rewards, predict_tdp_usage(truth, demand, rewards)});
  }
  const math::Vector recovered = estimate_tip_baseline(truth, windows);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(recovered[i], demand[i], 1e-8);
  }
}

TEST(Estimation, TipBaselineAveragesNoisyWindows) {
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  Rng rng(53);
  std::vector<TipObservation> windows;
  for (int d = 0; d < 40; ++d) {
    math::Vector rewards(3);
    for (double& p : rewards) p = rng.uniform(0.2, 1.0);
    math::Vector usage = predict_tdp_usage(truth, demand, rewards);
    for (double& u : usage) u += rng.normal(0.0, 0.2);
    windows.push_back({rewards, usage});
  }
  const math::Vector recovered = estimate_tip_baseline(truth, windows);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(recovered[i], demand[i], 0.5);
  }
}

TEST(Estimation, PredictTdpUsageConservesTraffic) {
  const PatienceMix truth = table3_truth();
  const std::vector<double> demand = {22.0, 13.0, 8.0};
  const math::Vector usage = predict_tdp_usage(truth, demand, {0.5, 0.9, 0.2});
  double total = 0.0;
  for (double u : usage) total += u;
  EXPECT_NEAR(total, 43.0, 1e-10);
}

TEST(Estimation, RejectsBadSetups) {
  const WaitingFunctionEstimator est(3, 2, 1.0);
  EXPECT_THROW(est.estimate({1.0, 2.0}, {}), PreconditionError);
  const WaitingFunctionEstimator est4(4, 2, 1.0);
  std::vector<EstimationDataset> dummy(1);
  dummy[0].rewards = math::Vector(4, 0.5);
  dummy[0].usage_change = math::Vector(4, 0.0);
  EXPECT_THROW(est4.estimate_reduced3({1, 2, 3, 4}, dummy),
               PreconditionError);
  EXPECT_THROW(WaitingFunctionEstimator(1, 2, 1.0), PreconditionError);
  EXPECT_THROW(WaitingFunctionEstimator(3, 0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace tdp
