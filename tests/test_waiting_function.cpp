#include "core/waiting_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "math/quadrature.hpp"

namespace tdp {
namespace {

class PowerLawNormalization
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(PowerLawNormalization, DiscreteSumsToOneAtMaxReward) {
  const auto [beta, periods] = GetParam();
  const double max_reward = 1.5;
  const PowerLawWaitingFunction w(beta, periods, max_reward);
  double sum = 0.0;
  for (std::size_t t = 1; t < periods; ++t) {
    const double v = w.value(max_reward, static_cast<double>(t));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);  // each term bounded by the sum
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST_P(PowerLawNormalization, ContinuousIntegratesToOneAtMaxReward) {
  const auto [beta, periods] = GetParam();
  const double max_reward = 1.5;
  const PowerLawWaitingFunction w(beta, periods, max_reward, 1.0,
                                  LagNormalization::kContinuous);
  const double integral = math::integrate_adaptive_simpson(
      [&w, max_reward](double t) { return w.value(max_reward, t); }, 0.0,
      static_cast<double>(periods - 1), 1e-11);
  EXPECT_NEAR(integral, 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    BetaPeriods, PowerLawNormalization,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 3.5, 5.0),
                       ::testing::Values(std::size_t{3}, std::size_t{12},
                                         std::size_t{48})));

TEST(PowerLaw, LinearInReward) {
  const PowerLawWaitingFunction w(2.0, 12, 1.5);
  EXPECT_TRUE(w.is_linear_in_reward());
  for (double t : {1.0, 3.0, 7.0}) {
    EXPECT_NEAR(w.value(1.0, t) * 0.6, w.value(0.6, t), 1e-14);
    EXPECT_NEAR(w.reward_derivative(0.3, t), w.value(1.0, t), 1e-14);
  }
  EXPECT_DOUBLE_EQ(w.value(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(-1.0, 1.0), 0.0);
}

TEST(PowerLaw, DecreasingInTime) {
  // "Users prefer to defer for shorter times."
  const PowerLawWaitingFunction w(1.5, 48, 1.5);
  double previous = 1e9;
  for (double t = 0.0; t <= 47.0; t += 0.5) {
    const double v = w.value(1.0, t);
    EXPECT_LT(v, previous);
    previous = v;
  }
}

TEST(PowerLaw, LargerBetaIsLessPatientAtLongLags) {
  // Patient vs impatient comparison (Fig. 3): the impatient curve decays
  // faster, so it is below the patient curve at long lags and above at
  // short lags (both are normalized to the same total mass).
  const std::size_t n = 12;
  const PowerLawWaitingFunction patient(0.5, n, 1.0);
  const PowerLawWaitingFunction impatient(5.0, n, 1.0);
  const double p = 0.49;  // the paper's $0.049 in money units
  EXPECT_GT(impatient.value(p, 1.0), patient.value(p, 1.0));
  EXPECT_LT(impatient.value(p, 10.0), patient.value(p, 10.0));
}

TEST(PowerLaw, ConcaveGammaVariant) {
  const PowerLawWaitingFunction w(2.0, 12, 1.5, 0.5);
  EXPECT_FALSE(w.is_linear_in_reward());
  // Midpoint concavity in p.
  for (double t : {1.0, 4.0}) {
    const double a = w.value(0.2, t);
    const double b = w.value(1.0, t);
    const double mid = w.value(0.6, t);
    EXPECT_GE(mid, 0.5 * (a + b) - 1e-12);
  }
  // Derivative consistency.
  const double h = 1e-7;
  const double fd = (w.value(0.5 + h, 2.0) - w.value(0.5 - h, 2.0)) / (2 * h);
  EXPECT_NEAR(w.reward_derivative(0.5, 2.0), fd, 1e-6);
}

TEST(PowerLaw, LagSumAndIntegralHelpers) {
  EXPECT_NEAR(PowerLawWaitingFunction::lag_sum(1.0, 4),
              1.0 / 2 + 1.0 / 3 + 1.0 / 4, 1e-14);
  // integral_0^{n-1} (u+1)^-1 du = ln(n).
  EXPECT_NEAR(PowerLawWaitingFunction::lag_integral(1.0, 4), std::log(4.0),
              1e-12);
  // beta = 0: sum of ones / plain length.
  EXPECT_NEAR(PowerLawWaitingFunction::lag_sum(0.0, 5), 4.0, 1e-14);
  EXPECT_NEAR(PowerLawWaitingFunction::lag_integral(0.0, 5), 4.0, 1e-12);
}

TEST(PowerLaw, RejectsBadParameters) {
  EXPECT_THROW(PowerLawWaitingFunction(-1.0, 12, 1.0), PreconditionError);
  EXPECT_THROW(PowerLawWaitingFunction(1.0, 12, 0.0), PreconditionError);
  EXPECT_THROW(PowerLawWaitingFunction(1.0, 12, 1.0, 1.5), PreconditionError);
  EXPECT_THROW(PowerLawWaitingFunction(1.0, 1, 1.0), PreconditionError);
  const PowerLawWaitingFunction w(1.0, 12, 1.0);
  EXPECT_THROW(w.value(0.5, -1.0), PreconditionError);
}

TEST(CallableWaitingFunction, WrapsFunctionAndNumericDerivative) {
  const CallableWaitingFunction w(
      [](double p, double t) { return p * p / (1.0 + t); }, nullptr, "test");
  EXPECT_DOUBLE_EQ(w.value(2.0, 1.0), 2.0);
  EXPECT_NEAR(w.reward_derivative(2.0, 1.0), 2.0, 1e-5);
  EXPECT_EQ(w.label(), "test");
  EXPECT_FALSE(w.is_linear_in_reward());
  EXPECT_THROW(CallableWaitingFunction(nullptr), PreconditionError);
}

}  // namespace
}  // namespace tdp
