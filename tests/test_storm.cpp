// The storm-mode resilience battery (ISSUE: correlated fault storms,
// health-aware re-anchoring, streaming v2 checkpoints).
//
//   * Storm chains: the seeded Markov on/off process is a pure function of
//     (plan seed, domain, tick) — identical across injector instances and
//     query orders — its duty cycle matches the stationary target, and an
//     enabled-but-zero-intensity regime is bit-transparent to every i.i.d.
//     fault draw.
//   * Storm runs: DayMetrics under an active storm plan are shard- and
//     thread-layout invariant, like every other horizon output.
//   * Crash-under-storm: a driver killed mid-storm is recovered from its
//     streamed v2 checkpoint — committed file or complete tmp, torn tmps
//     rejected — onto a different shard/thread layout, bitwise identical.
//   * Format v2: storm configs write version-2 checkpoints whose streamed
//     bytes match the stop-the-world encoder exactly; a v1 reader (version
//     byte patched back) skips the v2-only section cleanly.
//   * Health gating: days tainted by FALLBACK periods are provably never
//     fitted (journal-backed), re-anchoring waits out the healthy-streak
//     hysteresis, and the predicted-objective guard rolls back a re-fit
//     its own objective calls worse.
//   * Satellites: the measurement guard's carry floor stops post-blackout
//     demand cliffs; the rebate mechanism holds its pacing state through
//     blackout storms and keeps spend near the pool.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "gtest/gtest.h"
#include "horizon/checkpoint.hpp"
#include "horizon/checkpoint_stream.hpp"
#include "horizon/multi_day_driver.hpp"
#include "mech/rebate.hpp"
#include "obs/journal.hpp"
#include "tube/measurement_guard.hpp"

namespace tdp::horizon {
namespace {

/// 20%-duty storm: onset 0.06, persist 0.76 ->
/// duty = 0.06 / (0.06 + 0.24) = 0.2, mean burst 1/(1-0.76) ~ 4.2 periods.
StormRegime twenty_duty(double intensity) {
  StormRegime regime;
  regime.onset = 0.06;
  regime.persist = 0.76;
  regime.intensity = intensity;
  return regime;
}

FaultPlan storm_plan() {
  FaultPlan plan;
  plan.price_pull_drop = 0.05;
  plan.measurement_loss = 0.04;
  plan.measurement_nan = 0.02;
  plan.measurement_spike = 0.02;
  plan.solver_exhaustion = 0.03;
  plan.storm_blackout = twenty_duty(1.0);
  plan.storm_channel = twenty_duty(0.5);
  plan.storm_solver = twenty_duty(1.0);
  plan.seed = 424242;
  return plan;
}

HorizonConfig storm_config() {
  HorizonConfig config;
  config.population.users = 1500;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.slices = 8;
  config.threads = 2;
  config.warmup_days = 1;
  config.horizon_days = 3;
  config.estimation_window = 3;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  config.fault = storm_plan();
  return config;
}

/// EXPECT_EQ on every DayMetrics field — raw doubles, no tolerance.
void expect_days_bitwise_equal(const std::vector<DayMetrics>& a,
                               const std::vector<DayMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    SCOPED_TRACE("day " + std::to_string(d));
    EXPECT_EQ(a[d].day, b[d].day);
    EXPECT_EQ(a[d].offered_units, b[d].offered_units);
    EXPECT_EQ(a[d].realized_units, b[d].realized_units);
    EXPECT_EQ(a[d].rewards, b[d].rewards);
    EXPECT_EQ(a[d].sessions, b[d].sessions);
    EXPECT_EQ(a[d].deferred_sessions, b[d].deferred_sessions);
    EXPECT_EQ(a[d].reward_paid_units, b[d].reward_paid_units);
    EXPECT_EQ(a[d].peak_to_average_tip, b[d].peak_to_average_tip);
    EXPECT_EQ(a[d].peak_to_average_tdp, b[d].peak_to_average_tdp);
    EXPECT_EQ(a[d].estimated, b[d].estimated);
    EXPECT_EQ(a[d].beta_estimate, b[d].beta_estimate);
    EXPECT_EQ(a[d].estimate_residual, b[d].estimate_residual);
    EXPECT_EQ(a[d].reanchored, b[d].reanchored);
    EXPECT_EQ(a[d].reward_step_linf, b[d].reward_step_linf);
    EXPECT_EQ(a[d].fallback_periods, b[d].fallback_periods);
    EXPECT_EQ(a[d].estimation_frozen, b[d].estimation_frozen);
    EXPECT_EQ(a[d].reanchor_rolled_back, b[d].reanchor_rolled_back);
  }
}

std::vector<DayMetrics> run_uninterrupted(const HorizonConfig& config) {
  MultiDayDriver driver(config);
  driver.run();
  return driver.completed_days();
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::size_t journal_count(const std::string& kind) {
  std::size_t count = 0;
  for (const obs::JournalEvent& event : obs::Journal::global().snapshot()) {
    if (event.kind == kind) ++count;
  }
  return count;
}

// ---- Storm chain properties ------------------------------------------------

TEST(StormChain, PureFunctionOfPlanAcrossInstancesAndQueryOrder) {
  FaultPlan plan;
  plan.storm_blackout = twenty_duty(1.0);
  plan.seed = 777;
  const FaultInjector a(plan);
  const FaultInjector b(plan);

  constexpr std::uint64_t kPeriods = 500;
  std::vector<bool> forward(kPeriods);
  for (std::uint64_t t = 0; t < kPeriods; ++t) {
    forward[t] = a.storm_active(FaultInjector::StormDomain::kBlackout, t);
  }
  // A second instance queried backwards sees the identical storm history.
  for (std::uint64_t t = kPeriods; t-- > 0;) {
    EXPECT_EQ(b.storm_active(FaultInjector::StormDomain::kBlackout, t),
              forward[t])
        << "period " << t;
  }
  // Re-querying the first instance (it is const and stateless) agrees too.
  for (std::uint64_t t = 0; t < kPeriods; t += 7) {
    EXPECT_EQ(a.storm_active(FaultInjector::StormDomain::kBlackout, t),
              forward[t]);
  }
}

TEST(StormChain, DutyCycleMatchesStationaryTarget) {
  FaultPlan plan;
  plan.storm_blackout = twenty_duty(1.0);
  plan.seed = 20110704;
  const FaultInjector injector(plan);

  constexpr std::uint64_t kPeriods = 3000;
  std::uint64_t on = 0;
  std::uint64_t longest_burst = 0;
  std::uint64_t burst = 0;
  for (std::uint64_t t = 0; t < kPeriods; ++t) {
    if (injector.storm_active(FaultInjector::StormDomain::kBlackout, t)) {
      ++on;
      ++burst;
      longest_burst = std::max(longest_burst, burst);
    } else {
      burst = 0;
    }
  }
  const double duty = static_cast<double>(on) / kPeriods;
  // Stationary duty onset/(onset + 1 - persist) = 0.2, with Markov-chain
  // variance headroom on a 3000-period window.
  EXPECT_GT(duty, 0.12);
  EXPECT_LT(duty, 0.30);
  // Bursts, not i.i.d. sprinkles: mean burst length is ~4.2 periods, so a
  // long window must contain a multi-period storm.
  EXPECT_GE(longest_burst, 3u);
}

TEST(StormChain, DisabledRegimesNeverFire) {
  FaultPlan plan;
  plan.measurement_loss = 0.1;  // enabled injector, no storm regimes
  const FaultInjector injector(plan);
  for (std::uint64_t t = 0; t < 200; ++t) {
    EXPECT_FALSE(
        injector.storm_active(FaultInjector::StormDomain::kBlackout, t));
    EXPECT_FALSE(
        injector.storm_active(FaultInjector::StormDomain::kChannel, t));
    EXPECT_FALSE(
        injector.storm_active(FaultInjector::StormDomain::kSolver, t));
  }
}

TEST(StormChain, ZeroIntensityStormIsTransparentToIidDraws) {
  // Storm streams are forked off their own domains, so an enabled regime
  // that never fires (intensity 0) must leave every i.i.d. fault decision
  // bit-identical — the transparency half of the determinism contract.
  FaultPlan base;
  base.price_pull_drop = 0.05;
  base.measurement_loss = 0.04;
  base.measurement_nan = 0.02;
  base.measurement_spike = 0.02;
  base.solver_exhaustion = 0.03;
  base.seed = 424242;
  FaultPlan stormy = base;
  stormy.storm_blackout = twenty_duty(0.0);
  stormy.storm_channel = twenty_duty(0.0);
  stormy.storm_solver = twenty_duty(0.0);

  const FaultInjector quiet(base);
  const FaultInjector loud(stormy);
  for (std::uint64_t t = 0; t < 200; ++t) {
    EXPECT_EQ(loud.exhaust_solver(t), quiet.exhaust_solver(t));
    for (std::uint64_t entity = 0; entity < 4; ++entity) {
      EXPECT_EQ(loud.measurement_fault(entity, t),
                quiet.measurement_fault(entity, t));
      EXPECT_EQ(loud.drop_price_pull(entity, t),
                quiet.drop_price_pull(entity, t));
    }
  }
}

TEST(StormChain, ChainsArePerDomainIndependent) {
  FaultPlan plan;
  plan.storm_blackout = twenty_duty(1.0);
  plan.storm_channel = twenty_duty(1.0);
  plan.storm_solver = twenty_duty(1.0);
  plan.seed = 99;
  const FaultInjector injector(plan);

  // Same regime parameters, domain-keyed streams: the three chains must
  // not replay each other's history.
  bool blackout_differs_channel = false;
  bool channel_differs_solver = false;
  for (std::uint64_t t = 0; t < 600; ++t) {
    const bool bo =
        injector.storm_active(FaultInjector::StormDomain::kBlackout, t);
    const bool ch =
        injector.storm_active(FaultInjector::StormDomain::kChannel, t);
    const bool so =
        injector.storm_active(FaultInjector::StormDomain::kSolver, t);
    blackout_differs_channel |= bo != ch;
    channel_differs_solver |= ch != so;
  }
  EXPECT_TRUE(blackout_differs_channel);
  EXPECT_TRUE(channel_differs_solver);
}

// ---- Storm runs ------------------------------------------------------------

TEST(StormRun, DayMetricsAreShardAndThreadLayoutInvariant) {
  const HorizonConfig config = storm_config();
  const std::vector<DayMetrics> reference = run_uninterrupted(config);

  HorizonConfig narrow = config;
  narrow.shards = 1;
  narrow.threads = 1;
  expect_days_bitwise_equal(reference, run_uninterrupted(narrow));

  HorizonConfig wide = config;
  wide.shards = 8;
  wide.threads = 3;
  expect_days_bitwise_equal(reference, run_uninterrupted(wide));
}

// ---- Crash under storm + streamed recovery ---------------------------------

TEST(StormKillRestore, CrashMidStormRecoversFromStreamedCheckpointBitwise) {
  const HorizonConfig config = storm_config();
  const std::vector<DayMetrics> reference = run_uninterrupted(config);
  const std::string path = ::testing::TempDir() + "tdp_storm_crash_ck.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  {
    HorizonConfig victim_config = config;
    victim_config.checkpoint_path = path;
    victim_config.checkpoint_every_periods = 5;
    MultiDayDriver victim(victim_config);
    for (int i = 0; i < 23; ++i) victim.step_period();
    // The victim dies here, mid-storm — only the streamed file survives.
  }

  const CheckpointData recovered = load_checkpoint_file_recover(path);
  const std::uint64_t tick =
      recovered.day * config.population.periods + recovered.period;
  EXPECT_GT(tick, 0u);
  EXPECT_LE(tick, 23u);

  // Restore onto two different shard/thread layouts; both must finish the
  // horizon bit-for-bit.
  for (const auto& [shards, threads] :
       {std::pair<std::size_t, std::size_t>{1, 3},
        std::pair<std::size_t, std::size_t>{8, 1}}) {
    SCOPED_TRACE("restored onto " + std::to_string(shards) + " shards");
    HorizonConfig restore_config = config;
    restore_config.shards = shards;
    restore_config.threads = threads;
    std::unique_ptr<MultiDayDriver> restored =
        MultiDayDriver::restore(restore_config, encode(recovered));
    while (!restored->done()) restored->step_period();
    expect_days_bitwise_equal(reference, restored->completed_days());
  }
}

TEST(StormKillRestore, TornTmpFallsBackToCommittedCheckpoint) {
  MultiDayDriver driver(storm_config());
  for (int i = 0; i < 7; ++i) driver.step_period();
  const CheckpointData older = driver.checkpoint();
  for (int i = 0; i < 12; ++i) driver.step_period();
  const CheckpointData newer = driver.checkpoint();

  const std::string path = ::testing::TempDir() + "tdp_storm_torn_ck.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  CheckpointStream stream(path);
  stream.commit(older, true);

  // A crash mid-write leaves a torn tmp beside the committed file: the
  // newer state's bytes, cut off halfway. Recovery must reject it (CRC)
  // and fall back to the committed checkpoint.
  const std::vector<std::uint8_t> newer_bytes = encode(newer);
  std::vector<std::uint8_t> torn(newer_bytes.begin(),
                                 newer_bytes.begin() + newer_bytes.size() / 2);
  write_file_bytes(path + ".tmp", torn);

  const CheckpointData recovered = load_checkpoint_file_recover(path);
  EXPECT_EQ(recovered.day, older.day);
  EXPECT_EQ(recovered.period, older.period);
  EXPECT_EQ(encode(recovered), encode(older));
}

TEST(StormKillRestore, CompleteTmpBeatsOlderCommittedFile) {
  MultiDayDriver driver(storm_config());
  for (int i = 0; i < 7; ++i) driver.step_period();
  const CheckpointData older = driver.checkpoint();
  for (int i = 0; i < 12; ++i) driver.step_period();
  const CheckpointData newer = driver.checkpoint();

  const std::string path = ::testing::TempDir() + "tdp_storm_race_ck.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  CheckpointStream stream(path);
  stream.commit(older, true);

  // A crash between fsync and rename leaves a *complete* newer tmp beside
  // the older committed file: recovery resumes from the later clock.
  write_file_bytes(path + ".tmp", encode(newer));
  const CheckpointData recovered = load_checkpoint_file_recover(path);
  EXPECT_EQ(recovered.day, newer.day);
  EXPECT_EQ(recovered.period, newer.period);
  EXPECT_EQ(encode(recovered), encode(newer));
}

TEST(StormKillRestore, NoRecoverableCheckpointThrowsCleanly) {
  const std::string missing =
      ::testing::TempDir() + "tdp_storm_missing_ck.bin";
  std::remove(missing.c_str());
  std::remove((missing + ".tmp").c_str());
  EXPECT_THROW(load_checkpoint_file_recover(missing), Error);

  // Both copies present but torn: still a clean error, never UB.
  write_file_bytes(missing, {0x00, 0x01, 0x02});
  write_file_bytes(missing + ".tmp", {0xFF});
  EXPECT_THROW(load_checkpoint_file_recover(missing), Error);
  std::remove(missing.c_str());
  std::remove((missing + ".tmp").c_str());
}

// ---- Streaming writer vs stop-the-world encoder ----------------------------

TEST(StreamingCheckpoint, StreamedBytesMatchStopTheWorldEncode) {
  MultiDayDriver driver(storm_config());
  const std::string path = ::testing::TempDir() + "tdp_storm_stream_ck.bin";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  CheckpointStream stream(path);

  // Mid-day commit: every section fresh on the first commit.
  for (int i = 0; i < 7; ++i) driver.step_period();
  const CheckpointData first = driver.checkpoint();
  stream.commit(first, false);
  EXPECT_EQ(read_file_bytes(path), encode(first));
  const std::uint64_t full_cost = stream.sections_reencoded();

  // Second mid-day commit: the day-scoped sections (config echo, window,
  // completed days) are served from cache, and the framed file still
  // matches the stop-the-world encoder byte for byte.
  for (int i = 0; i < 4; ++i) driver.step_period();
  const CheckpointData second = driver.checkpoint();
  stream.commit(second, false);
  EXPECT_EQ(read_file_bytes(path), encode(second));
  EXPECT_LT(stream.sections_reencoded(), 2 * full_cost);

  // Day-boundary commit: day-scoped sections refresh, bytes still match.
  driver.step_period();  // period 12 -> rolls the day
  ASSERT_EQ(driver.period(), 0u);
  const CheckpointData boundary = driver.checkpoint();
  stream.commit(boundary, true);
  EXPECT_EQ(read_file_bytes(path), encode(boundary));
  EXPECT_EQ(stream.commits(), 3u);

  std::remove(path.c_str());
}

TEST(StreamingCheckpoint, LegacyConfigWritesV1StormConfigWritesV2) {
  // A config with no storm regimes and no health gates must keep writing
  // format v1, byte-compatible with the golden fixture's readers.
  HorizonConfig legacy = storm_config();
  legacy.fault = FaultPlan{};
  legacy.fault.measurement_loss = 0.04;  // plain i.i.d. faults stay v1
  MultiDayDriver legacy_driver(legacy);
  legacy_driver.step_period();
  const std::vector<std::uint8_t> v1 = legacy_driver.checkpoint_bytes();
  ASSERT_GT(v1.size(), 8u);
  EXPECT_EQ(v1[4], 1u);  // version u32 (little endian) at offset 4

  MultiDayDriver storm_driver(storm_config());
  storm_driver.step_period();
  const std::vector<std::uint8_t> v2 = storm_driver.checkpoint_bytes();
  ASSERT_GT(v2.size(), 8u);
  EXPECT_EQ(v2[4], 2u);
  EXPECT_EQ(v2[5], 0u);
  EXPECT_EQ(v2[6], 0u);
  EXPECT_EQ(v2[7], 0u);

  // The v2 section echoes the storm plan and health gates for restore
  // validation.
  const CheckpointData data = decode(v2);
  const FaultPlan plan = storm_plan();
  EXPECT_EQ(data.fault.storm_blackout.onset, plan.storm_blackout.onset);
  EXPECT_EQ(data.fault.storm_blackout.persist, plan.storm_blackout.persist);
  EXPECT_EQ(data.fault.storm_channel.intensity,
            plan.storm_channel.intensity);
  EXPECT_EQ(data.fault.storm_solver.onset, plan.storm_solver.onset);
  EXPECT_FALSE(data.estimation_health_gate);
  EXPECT_EQ(data.reanchor_healthy_periods, 0u);
}

TEST(StreamingCheckpoint, V1ReaderSkipsV2OnlySections) {
  // The compat contract: a v1 reader seeing a v2 file must skip the
  // storm section instead of rejecting it. The CRC covers the payload
  // only, so patching the header's version byte back to 1 turns today's
  // reader into yesterday's.
  MultiDayDriver driver(storm_config());
  for (int i = 0; i < 5; ++i) driver.step_period();
  const std::vector<std::uint8_t> v2 = driver.checkpoint_bytes();
  const CheckpointData full = decode(v2);

  std::vector<std::uint8_t> as_v1 = v2;
  as_v1[4] = 1;
  const CheckpointData skipped = decode(as_v1);

  // Everything v1 carries survives; the v2-only extras fall back to their
  // defaults instead of poisoning the load.
  EXPECT_EQ(skipped.day, full.day);
  EXPECT_EQ(skipped.period, full.period);
  EXPECT_EQ(skipped.users, full.users);
  EXPECT_EQ(skipped.completed_days.size(), full.completed_days.size());
  EXPECT_FALSE(skipped.fault.storm_blackout.enabled());
  EXPECT_FALSE(skipped.fault.storm_channel.enabled());
  EXPECT_FALSE(skipped.fault.storm_solver.enabled());
  EXPECT_FALSE(skipped.estimation_health_gate);
  EXPECT_EQ(skipped.healthy_streak_periods, 0u);
}

// ---- Health-aware re-anchoring ---------------------------------------------

TEST(HealthGate, EstimationNeverAdoptsFallbackWindowData) {
  // Heavy blackout bursts drive the guarded pricer into FALLBACK; with the
  // health gate armed, any day containing a FALLBACK period must be frozen
  // out of the estimation window — provably, via the journal.
  HorizonConfig config = storm_config();
  config.fault = FaultPlan{};
  config.fault.storm_blackout.onset = 0.25;
  config.fault.storm_blackout.persist = 0.9;
  config.fault.storm_blackout.intensity = 1.0;
  config.fault.seed = 20110704;
  config.horizon_days = 5;
  config.estimation_window = 4;
  config.pricer_guard = PricerGuardConfig::protective();
  config.estimation_health_gate = true;

  obs::Journal::global().clear();
  MultiDayDriver driver(config);
  driver.run();

  std::size_t tainted_days = 0;
  for (const DayMetrics& day : driver.completed_days()) {
    SCOPED_TRACE("day " + std::to_string(day.day));
    if (day.fallback_periods > 0) {
      ++tainted_days;
      // The core invariant: a fallback-tainted day is never fitted.
      EXPECT_FALSE(day.estimated);
    }
    if (day.estimation_frozen) {
      EXPECT_GT(day.fallback_periods, 0u);
      EXPECT_FALSE(day.estimated);
    }
  }
  // The storm actually bit (otherwise this test proves nothing) and each
  // freeze was journaled.
  EXPECT_GT(tainted_days, 0u);
  EXPECT_GE(journal_count("horizon.estimation_frozen"), 1u);
}

TEST(HealthGate, ReanchorHysteresisDefersUntilHealthyStreak) {
  // An unreachable streak requirement defers every re-anchor: estimates
  // still land (the window keeps filling) but the model is never swapped,
  // and each deferral is journaled.
  HorizonConfig config = storm_config();
  config.fault = FaultPlan{};  // clean run, the gate alone defers
  config.horizon_days = 4;
  config.reanchor_healthy_periods = 1u << 20;

  obs::Journal::global().clear();
  MultiDayDriver driver(config);
  driver.run();

  bool any_estimated = false;
  for (const DayMetrics& day : driver.completed_days()) {
    any_estimated |= day.estimated;
    EXPECT_FALSE(day.reanchored)
        << "day " << day.day << " re-anchored under an unmet streak gate";
  }
  EXPECT_TRUE(any_estimated);
  EXPECT_GE(journal_count("horizon.reanchor_deferred"), 1u);

  // A trivially-met streak requirement is behavior-transparent: on a clean
  // run every period is HEALTHY, so hysteresis of 1 reproduces the legacy
  // run bit for bit (including the all-zero health fields).
  HorizonConfig legacy = storm_config();
  legacy.fault = FaultPlan{};
  legacy.horizon_days = 4;
  HorizonConfig gated = legacy;
  gated.reanchor_healthy_periods = 1;
  expect_days_bitwise_equal(run_uninterrupted(legacy),
                            run_uninterrupted(gated));
}

TEST(HealthGate, ObjectiveGuardRollsBackWorseningRefit) {
  // tolerance -0.999 demands the candidate beat the anchored schedule by
  // 1000x — impossible — so every re-fit is deterministically rolled back.
  HorizonConfig config = storm_config();
  config.fault = FaultPlan{};
  config.horizon_days = 4;
  config.reanchor_objective_guard = true;
  config.reanchor_guard_tolerance = -0.999;

  obs::Journal::global().clear();
  MultiDayDriver driver(config);
  driver.run();

  bool any_rolled_back = false;
  for (const DayMetrics& day : driver.completed_days()) {
    EXPECT_FALSE(day.reanchored);
    any_rolled_back |= day.reanchor_rolled_back;
  }
  EXPECT_TRUE(any_rolled_back);
  EXPECT_GE(journal_count("horizon.reanchor_rolledback"), 1u);
  EXPECT_EQ(journal_count("horizon.reanchor_adopted"), 0u);
}

TEST(HealthGate, ObjectiveGuardAdoptsWithinTolerance) {
  // A generous tolerance admits the re-fit: the guard journals the adopt
  // decision with both predicted costs.
  HorizonConfig config = storm_config();
  config.fault = FaultPlan{};
  config.horizon_days = 4;
  config.reanchor_objective_guard = true;
  config.reanchor_guard_tolerance = 10.0;

  obs::Journal::global().clear();
  MultiDayDriver driver(config);
  driver.run();

  bool any_reanchored = false;
  for (const DayMetrics& day : driver.completed_days()) {
    any_reanchored |= day.reanchored;
    EXPECT_FALSE(day.reanchor_rolled_back);
  }
  EXPECT_TRUE(any_reanchored);
  EXPECT_GE(journal_count("horizon.reanchor_adopted"), 1u);
  EXPECT_EQ(journal_count("horizon.reanchor_rolledback"), 0u);
}

// ---- Measurement-guard carry floor (satellite) -----------------------------

TEST(GuardFloor, CarryFloorPreventsPostBlackoutDemandCliff) {
  // Regression for the post-blackout first-re-solve spike: a multi-day
  // blackout over a near-zero reference period used to decay the carried
  // value toward the (stale, tiny) reference, so the first re-solve after
  // the lights came back saw a demand cliff. The floor clamps the decay at
  // a fraction of the last good sample.
  const std::vector<double> reference{10.0, 0.5, 30.0, 40.0};
  const double last_good = 3.0;

  MeasurementGuardConfig floorless;
  floorless.max_carry_forward = 1;
  floorless.carry_floor_fraction = 0.0;  // legacy pure decay-to-reference
  MeasurementGuard legacy(reference, floorless);

  MeasurementGuardConfig floored = floorless;
  floored.carry_floor_fraction = 0.5;
  MeasurementGuard guarded(reference, floored);

  legacy.admit(1, last_good);
  guarded.admit(1, last_good);
  double legacy_fill = last_good;
  double guarded_fill = last_good;
  for (int day = 0; day < 6; ++day) {
    legacy_fill = legacy.admit(1, std::nullopt).value;
    guarded_fill = guarded.admit(1, std::nullopt).value;
    EXPECT_GE(guarded_fill, 0.5 * last_good)
        << "floor pierced on blackout day " << day;
  }
  // Legacy decay collapses toward the 0.5 reference — a 5x cliff when the
  // real ~3.0 demand returns; the floored guard stays within 2x.
  EXPECT_LT(legacy_fill, 0.6);
  EXPECT_GT(last_good / legacy_fill, 5.0);
  EXPECT_EQ(guarded_fill, 0.5 * last_good);
  EXPECT_LE(last_good / guarded_fill, 2.0);
}

TEST(GuardFloor, RejectsOutOfRangeFloor) {
  MeasurementGuardConfig config;
  config.carry_floor_fraction = 1.0;
  EXPECT_THROW(MeasurementGuard({1.0, 2.0}, config), PreconditionError);
  config.carry_floor_fraction = -0.1;
  EXPECT_THROW(MeasurementGuard({1.0, 2.0}, config), PreconditionError);
}

// ---- Rebate pacing under storms (satellite) --------------------------------

TEST(RebateStorm, PacingHoldsThroughBlackoutsAndSpendStaysNearPool) {
  HorizonConfig config = storm_config();
  config.fault = FaultPlan{};
  config.fault.storm_blackout = twenty_duty(1.0);
  config.fault.seed = 20110704;
  config.horizon_days = 4;
  config.mechanism.kind = mech::MechanismKind::kFixedBudgetRebate;
  config.mechanism.rebate_pool = 40.0;

  MultiDayDriver driver(config);
  driver.run();

  const auto* rebate = dynamic_cast<const mech::FixedBudgetRebateMechanism*>(
      &driver.mechanism());
  ASSERT_NE(rebate, nullptr);
  EXPECT_EQ(rebate->pool(), 40.0);
  EXPECT_EQ(rebate->days_settled(),
            static_cast<std::uint64_t>(config.warmup_days) +
                config.horizon_days);
  // The storm actually blacked out measurements, so at least one settle
  // ran on hold (books kept, learned state frozen).
  EXPECT_GE(rebate->held_settles(), 1u);
  EXPECT_LT(rebate->held_settles(), rebate->days_settled());

  // Held settles must not let the pacer wind up: the cumulative scale
  // stays in its clamp band and mean daily spend stays near the pool.
  EXPECT_GE(rebate->spend_scale(), 0.1);
  EXPECT_LE(rebate->spend_scale(), 10.0);
  EXPECT_GT(rebate->paid_total(), 0.0);
  const double mean_paid =
      rebate->paid_total() / static_cast<double>(rebate->days_settled());
  EXPECT_LT(mean_paid, 1.5 * rebate->pool());
}

}  // namespace
}  // namespace tdp::horizon
