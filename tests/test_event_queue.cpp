#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "netsim/simulator.hpp"

namespace tdp::netsim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) {
    auto popped = queue.pop();
    popped.callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelIsLazyAndIdempotent) {
  EventQueue queue;
  int fired = 0;
  const EventId a = queue.schedule(1.0, [&] { ++fired; });
  queue.schedule(2.0, [&] { ++fired; });
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  queue.cancel(a);       // double cancel: no-op
  queue.cancel(999999);  // unknown id: no-op
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
  queue.pop().callback();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW(queue.pop(), PreconditionError);
  EXPECT_THROW(queue.next_time(), PreconditionError);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(5.0, [&] { seen.push_back(sim.now()); });
  sim.after(2.0, [&] { seen.push_back(sim.now()); });
  sim.run_until(10.0);
  EXPECT_EQ(seen, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    ++chain;
    if (chain < 5) sim.after(1.0, step);
  };
  sim.after(1.0, step);
  sim.run_until(100.0);
  EXPECT_EQ(chain, 5);
  EXPECT_FALSE(sim.pending());
}

TEST(Simulator, HorizonStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(50.0, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
  sim.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at(4.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.after(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.run_until(4.0), PreconditionError);
}

TEST(Simulator, CancellationThroughSimulator) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.at(2.0, [&] { ++fired; });
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace tdp::netsim
