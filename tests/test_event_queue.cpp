#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "netsim/simulator.hpp"

namespace tdp::netsim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) {
    auto popped = queue.pop();
    popped.callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelIsLazyAndIdempotent) {
  EventQueue queue;
  int fired = 0;
  const EventId a = queue.schedule(1.0, [&] { ++fired; });
  queue.schedule(2.0, [&] { ++fired; });
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  queue.cancel(a);       // double cancel: no-op
  queue.cancel(999999);  // unknown id: no-op
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
  queue.pop().callback();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW(queue.pop(), PreconditionError);
  EXPECT_THROW(queue.next_time(), PreconditionError);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.at(5.0, [&] { seen.push_back(sim.now()); });
  sim.after(2.0, [&] { seen.push_back(sim.now()); });
  sim.run_until(10.0);
  EXPECT_EQ(seen, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    ++chain;
    if (chain < 5) sim.after(1.0, step);
  };
  sim.after(1.0, step);
  sim.run_until(100.0);
  EXPECT_EQ(chain, 5);
  EXPECT_FALSE(sim.pending());
}

TEST(Simulator, HorizonStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(50.0, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.pending());
  sim.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.at(4.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.after(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(sim.run_until(4.0), PreconditionError);
}

// Property-based check of the queue against a trivially-correct reference
// model, under random interleavings of schedule, cancel, reschedule
// (cancel + schedule, the link's rate-change pattern), cancel-after-fire,
// double-cancel, unknown-id cancel, and pops. The queue's contract: live
// events fire in (time, insertion-id) order, cancellation of anything not
// live is a harmless no-op, and size() counts exactly the live events.
TEST(EventQueueProperty, RandomInterleavingsMatchReferenceModel) {
  struct Entry {
    netsim::EventId id = 0;
    double when = 0.0;
    bool cancelled = false;
    bool fired = false;
  };

  tdp::Rng root(0xE7E47u);
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    tdp::Rng rng = root.fork_stream(trial);
    netsim::EventQueue queue;
    std::vector<Entry> entries;
    std::vector<netsim::EventId> fired_order;

    const auto live_count = [&entries] {
      std::size_t live = 0;
      for (const Entry& e : entries) {
        if (!e.cancelled && !e.fired) ++live;
      }
      return live;
    };
    const auto schedule_one = [&] {
      // Coarse time grid so equal-time ties are frequent.
      const double when =
          0.5 * static_cast<double>(rng.uniform_index(40));
      Entry entry;
      entry.when = when;
      entry.id = queue.schedule(
          when, [&fired_order, id = entries.size(), &entries] {
            fired_order.push_back(entries[id].id);
          });
      entries.push_back(entry);
    };
    const auto pop_one = [&] {
      // The reference: the live entry minimal in (when, id).
      const Entry* expected = nullptr;
      for (const Entry& e : entries) {
        if (e.cancelled || e.fired) continue;
        if (!expected || e.when < expected->when ||
            (e.when == expected->when && e.id < expected->id)) {
          expected = &e;
        }
      }
      ASSERT_NE(expected, nullptr);
      EXPECT_EQ(queue.next_time(), expected->when);
      const auto popped = queue.pop();
      EXPECT_EQ(popped.when, expected->when);
      popped.callback();
      ASSERT_FALSE(fired_order.empty());
      EXPECT_EQ(fired_order.back(), expected->id);
      for (Entry& e : entries) {
        if (e.id == fired_order.back()) e.fired = true;
      }
    };

    for (int step = 0; step < 300; ++step) {
      const std::uint64_t op = rng.uniform_index(10);
      if (op < 4) {
        schedule_one();
      } else if (op < 6 && !entries.empty()) {
        // Cancel anything — live, already fired, or already cancelled.
        // Only a live target may change the queue.
        Entry& victim =
            entries[rng.uniform_index(entries.size())];
        const std::size_t before = queue.size();
        queue.cancel(victim.id);
        if (victim.cancelled || victim.fired) {
          EXPECT_EQ(queue.size(), before);  // no-op on non-live ids
        } else {
          victim.cancelled = true;
        }
      } else if (op == 6) {
        queue.cancel(1u << 30);  // unknown id: harmless
      } else if (op == 7 && !entries.empty()) {
        // Reschedule: cancel a random live event, re-add at a new time.
        Entry& victim =
            entries[rng.uniform_index(entries.size())];
        if (!victim.cancelled && !victim.fired) {
          queue.cancel(victim.id);
          victim.cancelled = true;
          schedule_one();
        }
      } else if (!queue.empty()) {
        pop_one();
      }
      ASSERT_EQ(queue.size(), live_count());
      ASSERT_EQ(queue.empty(), live_count() == 0);
    }

    while (!queue.empty()) pop_one();

    // Exactly the never-cancelled events fired — no drops, no duplicates,
    // no cancelled stragglers. (Each pop already verified it returned the
    // live minimum in (when, id), so ordering is covered step by step;
    // the global fired sequence is not sorted because pops interleave
    // with later schedules.)
    std::vector<netsim::EventId> expected_ids;
    for (const Entry& e : entries) {
      if (!e.cancelled) {
        EXPECT_TRUE(e.fired) << "event " << e.id << " never fired";
        expected_ids.push_back(e.id);
      } else {
        EXPECT_FALSE(e.fired) << "cancelled event " << e.id << " fired";
      }
    }
    std::vector<netsim::EventId> fired_sorted = fired_order;
    std::sort(fired_sorted.begin(), fired_sorted.end());
    std::sort(expected_ids.begin(), expected_ids.end());
    EXPECT_EQ(fired_sorted, expected_ids) << "in trial " << trial;
  }
}

TEST(Simulator, CancellationThroughSimulator) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.at(2.0, [&] { ++fired; });
  sim.cancel(id);
  sim.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace tdp::netsim
