#include "tube/autopilot.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(CongestionPricer, PriceRampsWithUtilization) {
  const CongestionPricer pricer(0.004, 0.8, 0.0004);
  EXPECT_DOUBLE_EQ(pricer.price(0.0), 0.0004);
  EXPECT_DOUBLE_EQ(pricer.price(0.8), 0.004);
  EXPECT_DOUBLE_EQ(pricer.price(1.0), 0.004);
  // Monotone nondecreasing on [0, 1].
  double previous = -1.0;
  for (double u = 0.0; u <= 1.0; u += 0.01) {
    const double p = pricer.price(u);
    EXPECT_GE(p, previous - 1e-15);
    previous = p;
  }
  // Midpoint of the ramp.
  EXPECT_NEAR(pricer.price(0.4), 0.0004 + 0.5 * (0.004 - 0.0004), 1e-12);
}

TEST(CongestionPricer, RejectsBadConfig) {
  EXPECT_THROW(CongestionPricer(0.0, 0.5, 0.0), PreconditionError);
  EXPECT_THROW(CongestionPricer(0.004, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(CongestionPricer(0.004, 0.5, 0.01), PreconditionError);
  const CongestionPricer pricer(0.004, 0.5, 0.0);
  EXPECT_THROW(pricer.price(1.5), PreconditionError);
}

TEST(Autopilot, StartsOnlyBelowCeiling) {
  AutopilotAgent::Config config;
  config.price_ceiling = 0.001;
  config.never_defer = {false};
  AutopilotAgent agent(config);
  EXPECT_TRUE(agent.should_start(0, 0.0005));
  EXPECT_TRUE(agent.should_start(0, 0.001));
  EXPECT_FALSE(agent.should_start(0, 0.002));
}

TEST(Autopilot, NeverDeferClassesIgnorePrice) {
  AutopilotAgent::Config config;
  config.price_ceiling = 0.0;
  config.never_defer = {false, true};
  AutopilotAgent agent(config);
  EXPECT_FALSE(agent.should_start(0, 0.01));
  EXPECT_TRUE(agent.should_start(1, 0.01));
  // Classes beyond the vector default to deferrable.
  EXPECT_FALSE(agent.should_start(5, 0.01));
}

TEST(Autopilot, BudgetGuardTightensTheCeiling) {
  AutopilotAgent::Config config;
  config.max_monthly_bill = 10.0;
  config.price_ceiling = 0.002;
  AutopilotAgent agent(config);
  EXPECT_DOUBLE_EQ(agent.effective_ceiling(), 0.002);
  agent.record_usage(2500.0, 0.002);  // $5 spent: half the budget
  EXPECT_NEAR(agent.effective_ceiling(), 0.001, 1e-12);
  agent.record_usage(2500.0, 0.002);  // budget exhausted
  EXPECT_DOUBLE_EQ(agent.effective_ceiling(), 0.0);
  EXPECT_FALSE(agent.should_start(0, 0.0005));
  EXPECT_TRUE(agent.should_start(0, 0.0));  // free slots always fine
  EXPECT_DOUBLE_EQ(agent.spent(), 10.0);
  EXPECT_DOUBLE_EQ(agent.usage_mb(), 5000.0);
}

TEST(Autopilot, RejectsBadInput) {
  AutopilotAgent::Config config;
  config.max_monthly_bill = 0.0;
  EXPECT_THROW(AutopilotAgent{config}, PreconditionError);
  AutopilotAgent agent({5.0, 0.001, {}});
  EXPECT_THROW(agent.record_usage(-1.0, 0.0), PreconditionError);
  EXPECT_THROW(agent.should_start(0, -0.1), PreconditionError);
}

}  // namespace
}  // namespace tdp
