#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tdp {
namespace {

TEST(Metrics, ResidueSpreadOfFlatProfileIsZero) {
  EXPECT_DOUBLE_EQ(residue_spread({5.0, 5.0, 5.0, 5.0}), 0.0);
}

TEST(Metrics, ResidueSpreadKnownValue) {
  // Profile {1, 3}: mean 2, spread |1-2| + |3-2| = 2.
  EXPECT_DOUBLE_EQ(residue_spread({1.0, 3.0}), 2.0);
}

TEST(Metrics, ResidueSpreadInvariantToShift) {
  const std::vector<double> a = {1.0, 4.0, 2.0, 9.0};
  std::vector<double> shifted = a;
  for (double& v : shifted) v += 100.0;
  EXPECT_NEAR(residue_spread(a), residue_spread(shifted), 1e-12);
}

TEST(Metrics, AreaBetweenAndTriangleInequality) {
  const std::vector<double> a = {1.0, 5.0, 2.0};
  const std::vector<double> b = {2.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(area_between(a, b), 1.0 + 2.0 + 1.0);
  // |spread(a) - spread(b)| <= area_between when totals match.
  EXPECT_LE(std::abs(residue_spread(a) - residue_spread(b)),
            area_between(a, b) + 1e-12);
}

TEST(Metrics, PeakToValley) {
  EXPECT_DOUBLE_EQ(peak_to_valley({3.0, 7.0, 1.0}), 6.0);
  EXPECT_DOUBLE_EQ(peak_to_valley({2.0}), 0.0);
}

TEST(Metrics, RedistributedFractionCountsMovesOnce) {
  // One unit moved from period 0 to period 1 out of 10 total = 10%.
  EXPECT_NEAR(redistributed_fraction({6.0, 4.0}, {5.0, 5.0}), 0.1, 1e-12);
}

TEST(Metrics, UnitConversions) {
  // 1 demand unit-period = 10 MBps * 1800 s = 18000 MB = 18 GB.
  EXPECT_DOUBLE_EQ(unit_periods_to_mb(1.0), 18000.0);
  EXPECT_DOUBLE_EQ(unit_periods_to_gb(1.0), 18.0);
  EXPECT_DOUBLE_EQ(per_user_daily_cost_dollars(426.0, 10), 4.26);
  EXPECT_DOUBLE_EQ(to_dollars(1.5), 0.15);
  EXPECT_DOUBLE_EQ(to_mbps(18.0), 180.0);
  EXPECT_DOUBLE_EQ(from_mbps(180.0), 18.0);
}

TEST(Metrics, RejectsBadInput) {
  EXPECT_THROW(residue_spread({}), PreconditionError);
  EXPECT_THROW(area_between({1.0}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(redistributed_fraction({0.0}, {0.0}), PreconditionError);
  EXPECT_THROW(per_user_daily_cost_dollars(1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace tdp
