#include "core/static_optimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "math/golden_section.hpp"

namespace tdp {
namespace {

TEST(StaticOptimizer, ReproducesPaperHeadlineNumbers) {
  // Section V-A: TIP $4.26/user/day, TDP $3.26 (24% savings); residue
  // spread ratio 472.5/923.4 = 0.512; peak-to-valley 200 -> 119 MBps.
  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  ASSERT_TRUE(sol.converged);

  EXPECT_NEAR(per_user_daily_cost_dollars(sol.tip_cost, kPaperUserCount),
              4.26, 1e-6);
  EXPECT_NEAR(per_user_daily_cost_dollars(sol.total_cost, kPaperUserCount),
              3.26, 0.10);
  const double savings = (sol.tip_cost - sol.total_cost) / sol.tip_cost;
  EXPECT_NEAR(savings, 0.24, 0.02);

  const auto tip = model.demand().tip_demand_vector();
  EXPECT_NEAR(residue_spread(sol.usage) / residue_spread(tip), 0.512, 0.02);
  EXPECT_NEAR(peak_to_valley(tip), 20.0, 1e-9);    // 200 MBps
  EXPECT_NEAR(peak_to_valley(sol.usage), 11.9, 0.5);  // ~119 MBps
}

TEST(StaticOptimizer, RewardsRespectRationalCap) {
  // Appendix C / Section V-A: with linear-in-p waiting functions the ISP
  // never offers more than half the maximum marginal capacity cost
  // ($0.15 = 1.5 money units).
  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  for (double p : sol.rewards) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.5 + 1e-6);
  }
}

TEST(StaticOptimizer, NonzeroRewardsMostlyInUnderCapacityPeriods) {
  // "Almost all of the periods with nonzero rewards are also under
  // capacity with TIP."
  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  const auto tip = model.demand().tip_demand_vector();
  std::size_t nonzero = 0;
  std::size_t nonzero_over_capacity = 0;
  for (std::size_t i = 0; i < 48; ++i) {
    if (sol.rewards[i] > 1e-3) {
      ++nonzero;
      if (tip[i] > paper::kStaticCapacityUnits) ++nonzero_over_capacity;
    }
  }
  ASSERT_GT(nonzero, 5u);
  EXPECT_LE(nonzero_over_capacity, nonzero / 4);
}

TEST(StaticOptimizer, GlobalOptimalityAgainstCoordinateSearch) {
  // Prop. 3 guarantees a convex problem, so no single-coordinate change can
  // improve the FISTA+continuation solution.
  const StaticModel model = paper::static_model_12();
  const PricingSolution sol = optimize_static_prices(model);
  const double best = model.total_cost(sol.rewards);
  for (std::size_t m = 0; m < 12; ++m) {
    math::Vector trial = sol.rewards;
    const auto line = [&](double v) {
      trial[m] = v;
      return model.total_cost(trial);
    };
    const auto r =
        math::minimize_golden_section(line, 0.0, model.max_reward(), 1e-8);
    EXPECT_GE(r.value, best - 5e-3) << "coordinate " << m;
  }
}

TEST(StaticOptimizer, CostNeverAboveTip) {
  // Offering no rewards is feasible, so the optimum cannot exceed TIP cost.
  for (int variant = 18; variant <= 26; variant += 2) {
    const StaticModel model = paper::static_model_12_with_period1(
        paper::table11_period1_mix(variant));
    const PricingSolution sol = optimize_static_prices(model);
    EXPECT_LE(sol.total_cost, sol.tip_cost + 1e-9) << "variant " << variant;
  }
}

TEST(StaticOptimizer, UsageConservedAtOptimum) {
  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  double total = 0.0;
  for (double v : sol.usage) total += v;
  EXPECT_NEAR(total, model.demand().total_demand(), 1e-8);
  EXPECT_NEAR(sol.total_cost, sol.reward_cost + sol.capacity_cost, 1e-9);
}

TEST(StaticOptimizer, HigherCapacityCostEvensOutMore) {
  // Fig. 6's monotone trend: scaling the capacity-cost slope up leaves
  // less residue spread.
  const auto base_cost = math::PiecewiseLinearCost::hinge(3.0);
  double previous_spread = 1e18;
  for (double a : {0.2, 1.0, 5.0}) {
    StaticModel model(
        paper::make_profile(paper::table8_mix_12(),
                            paper::kStaticNormalizationReward),
        paper::kStaticCapacityUnits, base_cost.scaled(a));
    const PricingSolution sol = optimize_static_prices(model);
    const double spread = residue_spread(sol.usage);
    EXPECT_LT(spread, previous_spread + 1e-6) << "a = " << a;
    previous_spread = spread;
  }
}

TEST(StaticOptimizer, RunsWellUnderTenSeconds) {
  // "The optimization ran in under 10 seconds on a standard laptop."
  const auto start = std::chrono::steady_clock::now();
  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_TRUE(sol.converged);
  EXPECT_LT(elapsed, 10.0);
}

}  // namespace
}  // namespace tdp
