#include "netsim/traffic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp::netsim {
namespace {

RateProfile flat_profile() {
  return {[](double) { return 1.0; }, 1.0};
}

TEST(SessionSource, PoissonCountNearExpectation) {
  Simulator sim;
  std::size_t count = 0;
  TrafficClassConfig cfg;
  cfg.name = "web";
  cfg.kind = FlowKind::kElastic;
  cfg.arrivals_per_hour = 600.0;
  cfg.mean_size_mb = 2.0;
  SessionSource source(sim, 1, 0, 0, cfg, flat_profile(),
                       [&](const FlowSpec&) { ++count; });
  source.start(10.0 * 3600.0);  // 10 hours => expect ~6000
  sim.run_until(10.0 * 3600.0);
  EXPECT_NEAR(static_cast<double>(count), 6000.0, 300.0);
  EXPECT_EQ(source.sessions_generated(), count);
}

TEST(SessionSource, ThinningFollowsProfile) {
  // Rate 2x in the first half, 0 in the second: all arrivals early.
  Simulator sim;
  std::size_t early = 0;
  std::size_t late = 0;
  TrafficClassConfig cfg;
  cfg.arrivals_per_hour = 720.0;
  cfg.mean_size_mb = 1.0;
  RateProfile profile;
  profile.peak = 2.0;
  profile.multiplier = [](double t) { return t < 1800.0 ? 2.0 : 0.0; };
  SessionSource source(sim, 2, 0, 0, cfg, profile, [&](const FlowSpec&) {
    (sim.now() < 1800.0 ? early : late)++;
  });
  source.start(3600.0);
  sim.run_until(3600.0);
  EXPECT_GT(early, 500u);
  EXPECT_EQ(late, 0u);
}

TEST(SessionSource, DrawsMatchClassShape) {
  Simulator sim;
  TrafficClassConfig video;
  video.kind = FlowKind::kStreaming;
  video.arrivals_per_hour = 10.0;
  video.rate_mbps = 2.5;
  video.mean_duration_s = 300.0;
  SessionSource source(sim, 3, 1, 2, video, flat_profile(),
                       [](const FlowSpec&) {});
  double total_duration = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const FlowSpec spec = source.draw_spec();
    EXPECT_EQ(spec.kind, FlowKind::kStreaming);
    EXPECT_EQ(spec.user, 1u);
    EXPECT_EQ(spec.traffic_class, 2u);
    EXPECT_DOUBLE_EQ(spec.rate_mbps, 2.5);
    total_duration += spec.duration_s;
  }
  EXPECT_NEAR(total_duration / 2000.0, 300.0, 20.0);
}

TEST(SessionSource, ZeroRateGeneratesNothing) {
  Simulator sim;
  std::size_t count = 0;
  TrafficClassConfig cfg;
  cfg.arrivals_per_hour = 0.0;
  cfg.mean_size_mb = 1.0;
  SessionSource source(sim, 4, 0, 0, cfg, flat_profile(),
                       [&](const FlowSpec&) { ++count; });
  source.start(3600.0);
  sim.run_until(3600.0);
  EXPECT_EQ(count, 0u);
}

TEST(BackgroundTraffic, AlternatesAndStaysInRange) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  BackgroundTraffic::Config cfg;
  cfg.mean_on_s = 10.0;
  cfg.mean_off_s = 10.0;
  cfg.min_rate_mbps = 1.0;
  cfg.max_rate_mbps = 3.0;
  BackgroundTraffic background(sim, link, cfg, 9);
  background.start(3600.0);

  std::size_t on_samples = 0;
  std::size_t samples = 0;
  for (double t = 1.0; t < 3600.0; t += 5.0) {
    sim.run_until(t);
    const double rate = link.background_rate();
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 3.0);
    if (rate > 0.0) {
      EXPECT_GE(rate, 1.0);
      ++on_samples;
    }
    ++samples;
  }
  // Roughly half the time on (mean on == mean off).
  const double on_fraction =
      static_cast<double>(on_samples) / static_cast<double>(samples);
  EXPECT_GT(on_fraction, 0.3);
  EXPECT_LT(on_fraction, 0.7);
}

TEST(BackgroundTraffic, StopsAtHorizon) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  BackgroundTraffic background(sim, link, {}, 11);
  background.start(100.0);
  sim.run_until(200.0);
  EXPECT_DOUBLE_EQ(link.background_rate(), 0.0);
  EXPECT_FALSE(sim.pending());
}

TEST(Traffic, RejectsBadConfig) {
  Simulator sim;
  BottleneckLink link(sim, 10.0);
  TrafficClassConfig cfg;
  cfg.arrivals_per_hour = -1.0;
  EXPECT_THROW(SessionSource(sim, 1, 0, 0, cfg, flat_profile(),
                             [](const FlowSpec&) {}),
               tdp::PreconditionError);
  BackgroundTraffic::Config bad;
  bad.mean_on_s = 0.0;
  EXPECT_THROW(BackgroundTraffic(sim, link, bad, 1), tdp::PreconditionError);
}

}  // namespace
}  // namespace tdp::netsim
