#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/golden_section.hpp"
#include "math/levenberg_marquardt.hpp"

namespace tdp::math {
namespace {

TEST(GoldenSection, InteriorMinimum) {
  const auto r = minimize_golden_section(
      [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; }, -5.0, 5.0, 1e-9);
  EXPECT_NEAR(r.x, 1.7, 1e-6);
  EXPECT_NEAR(r.value, 3.0, 1e-10);
}

TEST(GoldenSection, BoundaryMinimum) {
  const auto lo = minimize_golden_section([](double x) { return x; }, 2.0,
                                          7.0, 1e-9);
  EXPECT_DOUBLE_EQ(lo.x, 2.0);
  const auto hi = minimize_golden_section([](double x) { return -x; }, 2.0,
                                          7.0, 1e-9);
  EXPECT_DOUBLE_EQ(hi.x, 7.0);
}

TEST(GoldenSection, NonsmoothVee) {
  const auto r = minimize_golden_section(
      [](double x) { return std::abs(x - 0.3); }, -1.0, 1.0, 1e-10);
  EXPECT_NEAR(r.x, 0.3, 1e-7);
}

TEST(GoldenSection, DegenerateInterval) {
  const auto r = minimize_golden_section([](double x) { return x * x; },
                                         4.0, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.x, 4.0);
}

TEST(GoldenSection, RejectsBadInput) {
  EXPECT_THROW(minimize_golden_section(nullptr, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(minimize_golden_section([](double) { return 0.0; }, 1.0, 0.0),
               PreconditionError);
}

TEST(LevenbergMarquardt, LinearFitExact) {
  // r_i = (c0 + c1 t_i) - y_i with y generated noiselessly.
  const auto residuals = [](const Vector& theta) {
    Vector r;
    for (int i = 0; i < 10; ++i) {
      const double t = 0.3 * i;
      r.push_back(theta[0] + theta[1] * t - (2.0 - 0.7 * t));
    }
    return r;
  };
  const auto fit = minimize_levenberg_marquardt(residuals, {0.0, 0.0});
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.parameters[0], 2.0, 1e-6);
  EXPECT_NEAR(fit.parameters[1], -0.7, 1e-6);
  EXPECT_LT(fit.residual_norm2, 1e-12);
}

TEST(LevenbergMarquardt, NonlinearExponentialFit) {
  // y = a * exp(-b t): classic curve fit.
  const double a_true = 3.0;
  const double b_true = 1.3;
  const auto residuals = [a_true, b_true](const Vector& theta) {
    Vector r;
    for (int i = 0; i < 20; ++i) {
      const double t = 0.2 * i;
      const double y = a_true * std::exp(-b_true * t);
      r.push_back(theta[0] * std::exp(-theta[1] * t) - y);
    }
    return r;
  };
  const auto fit = minimize_levenberg_marquardt(residuals, {1.0, 0.5});
  EXPECT_NEAR(fit.parameters[0], a_true, 1e-5);
  EXPECT_NEAR(fit.parameters[1], b_true, 1e-5);
}

TEST(LevenbergMarquardt, RosenbrockResiduals) {
  // Rosenbrock as least squares: r = (1-x, 10(y-x^2)).
  const auto residuals = [](const Vector& theta) {
    return Vector{1.0 - theta[0],
                  10.0 * (theta[1] - theta[0] * theta[0])};
  };
  const auto fit =
      minimize_levenberg_marquardt(residuals, {-1.2, 1.0});
  EXPECT_NEAR(fit.parameters[0], 1.0, 1e-6);
  EXPECT_NEAR(fit.parameters[1], 1.0, 1e-6);
}

TEST(LevenbergMarquardt, RespectsBounds) {
  // Unconstrained optimum at theta = -2; bounds force theta >= 0.
  const auto residuals = [](const Vector& theta) {
    return Vector{theta[0] + 2.0};
  };
  LmOptions options;
  options.lower_bounds = Vector{0.0};
  options.upper_bounds = Vector{5.0};
  const auto fit = minimize_levenberg_marquardt(residuals, {3.0}, options);
  EXPECT_NEAR(fit.parameters[0], 0.0, 1e-9);
}

TEST(LevenbergMarquardt, NoisyFitRecoversParameters) {
  Rng rng(99);
  std::vector<double> ts;
  std::vector<double> ys;
  for (int i = 0; i < 60; ++i) {
    const double t = 0.1 * i;
    ts.push_back(t);
    ys.push_back(5.0 / (1.0 + t) + rng.normal(0.0, 0.01));
  }
  const auto residuals = [&ts, &ys](const Vector& theta) {
    Vector r;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      r.push_back(theta[0] / (1.0 + ts[i] * theta[1]) - ys[i]);
    }
    return r;
  };
  const auto fit = minimize_levenberg_marquardt(residuals, {1.0, 2.0});
  EXPECT_NEAR(fit.parameters[0], 5.0, 0.05);
  EXPECT_NEAR(fit.parameters[1], 1.0, 0.05);
}

TEST(LevenbergMarquardt, RejectsBadInput) {
  EXPECT_THROW(minimize_levenberg_marquardt(nullptr, {1.0}),
               PreconditionError);
  EXPECT_THROW(minimize_levenberg_marquardt(
                   [](const Vector&) { return Vector{0.0}; }, {}),
               PreconditionError);
}

}  // namespace
}  // namespace tdp::math
