#include "common/cyclic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(Cyclic, ForwardLagWithinDay) {
  EXPECT_EQ(cyclic_lag(0, 1, 12), 1u);
  EXPECT_EQ(cyclic_lag(0, 11, 12), 11u);
  EXPECT_EQ(cyclic_lag(3, 7, 48), 4u);
}

TEST(Cyclic, WrapAroundLag) {
  // "If k > i, i - k is the time between period k on one day and period i
  // on the next."
  EXPECT_EQ(cyclic_lag(11, 0, 12), 1u);
  EXPECT_EQ(cyclic_lag(47, 2, 48), 3u);
  EXPECT_EQ(cyclic_lag(7, 3, 12), 8u);
}

TEST(Cyclic, SamePeriodIsFullDay) {
  EXPECT_EQ(cyclic_lag(5, 5, 12), 12u);
}

TEST(Cyclic, AdvanceInvertsLag) {
  const std::size_t n = 48;
  for (std::size_t from = 0; from < n; from += 5) {
    for (std::size_t lag = 1; lag < n; lag += 7) {
      const std::size_t to = cyclic_advance(from, lag, n);
      EXPECT_EQ(cyclic_lag(from, to, n), lag);
    }
  }
}

TEST(Cyclic, RejectsOutOfRange) {
  EXPECT_THROW(cyclic_lag(12, 0, 12), PreconditionError);
  EXPECT_THROW(cyclic_lag(0, 12, 12), PreconditionError);
  EXPECT_THROW(cyclic_advance(12, 1, 12), PreconditionError);
  EXPECT_THROW(cyclic_lag(0, 0, 0), PreconditionError);
}

class CyclicRingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CyclicRingProperty, LagsPartitionTheRing) {
  const std::size_t n = GetParam();
  for (std::size_t from = 0; from < n; ++from) {
    std::size_t lag_sum = 0;
    for (std::size_t to = 0; to < n; ++to) {
      if (to == from) continue;
      const std::size_t lag = cyclic_lag(from, to, n);
      EXPECT_GE(lag, 1u);
      EXPECT_LE(lag, n - 1);
      lag_sum += lag;
    }
    // Each lag 1..n-1 appears exactly once.
    EXPECT_EQ(lag_sum, n * (n - 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, CyclicRingProperty,
                         ::testing::Values(2, 3, 5, 12, 48));

}  // namespace
}  // namespace tdp
