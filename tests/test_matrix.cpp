#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/numdiff.hpp"

namespace tdp::math {
namespace {

TEST(Matrix, BasicOps) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Vector x = {1.0, -1.0};
  const Vector y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);

  const Vector z = a.multiply_transpose({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);

  const Matrix t = a.transpose();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
}

TEST(Matrix, MultiplyAndGram) {
  const Matrix a = {{1.0, 0.0, 2.0}, {0.0, 3.0, -1.0}};
  const Matrix g = a.gram();  // A^T A, 3x3
  const Matrix expected = a.transpose().multiply(a);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(g(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(SolveLu, KnownSystem) {
  Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solve_lu(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SolveLu, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve_lu(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLu, DetectsSingular) {
  Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_lu(a, {1.0, 2.0}), NumericalError);
}

TEST(SolveCholesky, MatchesLuOnSpd) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(8);
    // SPD via B^T B + n I.
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
    }
    Matrix spd = b.gram();
    for (std::size_t i = 0; i < n; ++i) {
      spd(i, i) += static_cast<double>(n);
    }
    Vector rhs(n);
    for (double& v : rhs) v = rng.uniform(-2.0, 2.0);

    const Vector chol = solve_cholesky(spd, rhs);
    const Vector lu = solve_lu(spd, rhs);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(chol[i], lu[i], 1e-9);
    }
  }
}

TEST(SolveCholesky, RejectsIndefinite) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(solve_cholesky(a, {1.0, 1.0}), NumericalError);
}

TEST(LeastSquares, ExactOnSquare) {
  Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = solve_least_squares(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-10);
  EXPECT_NEAR(x[1], 1.4, 1e-10);
}

TEST(LeastSquares, OverdeterminedResidualOrthogonality) {
  // Fit y = c0 + c1 t to noisy points; residual must be orthogonal to the
  // column space (the defining property of the LS solution).
  Rng rng(7);
  const std::size_t m = 40;
  Matrix a(m, 2);
  Vector b(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double t = static_cast<double>(i) / 10.0;
    a(i, 0) = 1.0;
    a(i, 1) = t;
    b[i] = 2.0 + 0.5 * t + rng.normal(0.0, 0.1);
  }
  const Matrix a_copy = a;
  const Vector b_copy = b;
  const Vector x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 0.1);
  EXPECT_NEAR(x[1], 0.5, 0.05);

  Vector residual = a_copy.multiply(x);
  for (std::size_t i = 0; i < m; ++i) residual[i] -= b_copy[i];
  const Vector gram_residual = a_copy.multiply_transpose(residual);
  EXPECT_NEAR(gram_residual[0], 0.0, 1e-9);
  EXPECT_NEAR(gram_residual[1], 0.0, 1e-9);
}

TEST(LeastSquares, DetectsRankDeficiency) {
  Matrix a = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), NumericalError);
}

TEST(NumDiff, GradientOfQuadratic) {
  const auto f = [](const Vector& x) {
    return x[0] * x[0] + 3.0 * x[0] * x[1] + 2.0 * x[1] * x[1];
  };
  const Vector g = numeric_gradient(f, {1.0, 2.0});
  EXPECT_NEAR(g[0], 2.0 + 6.0, 1e-6);
  EXPECT_NEAR(g[1], 3.0 + 8.0, 1e-6);
}

TEST(NumDiff, JacobianOfLinearMap) {
  const auto r = [](const Vector& x) {
    return Vector{2.0 * x[0] - x[1], x[0] + 4.0 * x[1]};
  };
  const Matrix j = numeric_jacobian(r, {0.3, -0.7});
  EXPECT_NEAR(j(0, 0), 2.0, 1e-6);
  EXPECT_NEAR(j(0, 1), -1.0, 1e-6);
  EXPECT_NEAR(j(1, 0), 1.0, 1e-6);
  EXPECT_NEAR(j(1, 1), 4.0, 1e-6);
}

}  // namespace
}  // namespace tdp::math
