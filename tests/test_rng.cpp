#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace tdp {
namespace {

TEST(Rng, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / samples;
  const double var = sq / samples - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / samples, 3.0, 0.05);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MatchesMeanAndVariance) {
  const double lambda = GetParam();
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    const double k = static_cast<double>(rng.poisson(lambda));
    sum += k;
    sq += k * k;
  }
  const double mean = sum / samples;
  const double var = sq / samples - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05 * lambda + 0.05);
  EXPECT_NEAR(var, lambda, 0.08 * lambda + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMeanTest,
                         ::testing::Values(0.3, 2.0, 10.0, 50.0, 200.0));

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const double z = rng.normal(2.0, 3.0);
    sum += z;
    sq += z * z;
  }
  const double mean = sum / samples;
  const double var = sq / samples - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.03);
  EXPECT_NEAR(var, 9.0, 0.15);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(29);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(7), 7u);
  }
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(Rng, RejectsBadParameters) {
  Rng rng(37);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
  EXPECT_THROW(rng.poisson(-0.1), PreconditionError);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace tdp
