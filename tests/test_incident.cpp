// The incident-engine battery (ISSUE: deterministic anomaly detection,
// SLO burn-rate alerts, flight-recorder triage).
//
//   * Detectors: the CUSUM and EWMA primitives follow their published
//     update equations exactly — drift absorption, alert-and-reset,
//     prior-scored z with warmup and the relative variance floor.
//   * Engine: synthetic signal sequences open/close the SLO objectives at
//     the documented burn thresholds with the right severity and
//     attribution snapshot; the pacing bound arms after its grace period
//     and never judges held books.
//   * Determinism: the alert stream and dump(include_wall=false) bytes are
//     bitwise identical across thread counts, with telemetry on or off,
//     and across kill/restore at a mid-day period boundary; enabling the
//     engine never changes a simulated value (pure observer).
//   * Checkpoints: kSecIncident round-trips the complete engine state;
//     restore rejects a config whose detector thresholds disagree with
//     the checkpointed echo.
//   * Dumps: TDPI framing round-trips; corrupted or truncated bytes raise
//     ser::FormatError instead of parsing garbage.
#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/serialize.hpp"
#include "fleet/fleet_driver.hpp"
#include "gtest/gtest.h"
#include "horizon/checkpoint.hpp"
#include "horizon/multi_day_driver.hpp"
#include "obs/incident/detectors.hpp"
#include "obs/incident/incident.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace tdp::obs::incident {
namespace {

// ---------------------------------------------------------------------------
// Detector primitives

TEST(CusumDetector, AccumulatesDriftFiresAndRearms) {
  CusumDetector cusum;
  // Below drift: S stays clamped at zero.
  EXPECT_EQ(cusum.update(0.1, 0.25, 0.7), 0.0);
  EXPECT_EQ(cusum.value(), 0.0);
  // Sustained unit disturbance: S += 1 - 0.25 per period.
  EXPECT_EQ(cusum.update(1.0, 0.25, 0.7), 0.75);  // fired (>= 0.7)...
  EXPECT_EQ(cusum.value(), 0.0);                  // ...and reset
  EXPECT_EQ(cusum.firings(), 1u);
  // Partial disturbance accumulates across periods before firing.
  EXPECT_EQ(cusum.update(0.5, 0.25, 0.7), 0.25);
  EXPECT_EQ(cusum.update(0.5, 0.25, 0.7), 0.5);
  EXPECT_EQ(cusum.update(0.5, 0.25, 0.7), 0.75);
  EXPECT_EQ(cusum.firings(), 2u);
  EXPECT_EQ(cusum.samples(), 5u);
  // Calm periods decay the statistic by k each.
  cusum.update(0.6, 0.25, 0.7);
  EXPECT_NEAR(cusum.value(), 0.35, 1e-12);
  cusum.update(0.0, 0.25, 0.7);
  EXPECT_NEAR(cusum.value(), 0.1, 1e-12);
}

TEST(EwmaDetector, ScoresAgainstThePriorEstimateAfterWarmup) {
  EwmaDetector ewma;
  // Warmup: z reported as 0 until min_samples observations folded in.
  EXPECT_EQ(ewma.update(2.0, 0.3, 3), 0.0);
  EXPECT_EQ(ewma.update(2.0, 0.3, 3), 0.0);
  EXPECT_EQ(ewma.update(2.0, 0.3, 3), 0.0);
  EXPECT_EQ(ewma.samples(), 3u);
  EXPECT_DOUBLE_EQ(ewma.mean(), 2.0);
  // A stable series pins the variance at the floor, so a jump scores huge
  // (the floor is relative to the mean: max(1e-12, 1e-3 * |mean|)).
  const double z = ewma.update(3.0, 0.3, 3);
  EXPECT_GT(z, 100.0);
  // ...and the sample still folds into the estimate afterwards.
  EXPECT_GT(ewma.mean(), 2.0);
  EXPECT_GT(ewma.variance(), 0.0);
}

// ---------------------------------------------------------------------------
// Engine semantics on synthetic signals

IncidentConfig engine_config() {
  IncidentConfig config;
  config.enabled = true;
  return config;
}

PeriodSignals quiet_period(std::uint64_t abs_period) {
  PeriodSignals sig;
  sig.day = abs_period / 48;
  sig.period = static_cast<std::uint32_t>(abs_period % 48);
  sig.abs_period = abs_period;
  sig.price_groups = 4;
  return sig;
}

TEST(IncidentEngine, LoopDisturbanceOpensOnBothBurnWindowsAndCloses) {
  IncidentEngine engine(engine_config());
  std::uint64_t t = 0;
  // Calm periods fill the long window: no incident.
  for (; t < 16; ++t) engine.observe_period(quiet_period(t));
  EXPECT_EQ(engine.incidents_opened(), 0u);

  // A 5-period disturbance clears both windows: short 4/4 = 1.0 >= 1.0,
  // long >= 0.30 at the fifth bad period. The engine snapshots the storm
  // regime and health for attribution at open.
  std::uint64_t opened_at = 0;
  for (std::size_t bad = 0; bad < 5; ++bad, ++t) {
    PeriodSignals sig = quiet_period(t);
    sig.measurement_gap = true;
    sig.storm_blackout = true;
    sig.health = Health::kDegraded;
    engine.observe_period(sig);
    if (engine.incidents_opened() == 1 && opened_at == 0) opened_at = t;
  }
  ASSERT_EQ(engine.incidents_opened(), 1u);
  const Incident& incident = engine.incidents()[0];
  EXPECT_EQ(incident.objective, Objective::kLoopDisturbance);
  EXPECT_EQ(incident.open_abs_period, opened_at);
  EXPECT_TRUE(incident.storm_blackout);
  EXPECT_FALSE(incident.storm_channel);
  EXPECT_EQ(incident.health, Health::kDegraded);
  EXPECT_EQ(engine.open_incidents(), 1u);

  // Re-opening is suppressed while the objective is already open; calm
  // periods drain the windows and close it.
  for (std::size_t calm = 0; calm < 16; ++calm, ++t) {
    engine.observe_period(quiet_period(t));
  }
  EXPECT_EQ(engine.incidents_opened(), 1u);
  EXPECT_EQ(engine.incidents_closed(), 1u);
  EXPECT_TRUE(engine.incidents()[0].closed);
}

TEST(IncidentEngine, PacingBoundArmsAfterGraceAndSkipsHeldBooks) {
  IncidentConfig config = engine_config();
  config.pacing_grace_days = 1;
  IncidentEngine engine(config);

  SettleSignals over;
  over.budget_spent = 2.0;
  over.budget_pool = 1.0;  // ratio 2.0 > pacing_max_ratio 1.5
  over.day = 0;
  over.abs_period = 47;
  engine.observe_settle(over);  // within grace: no alert
  EXPECT_EQ(engine.alerts_emitted(), 0u);

  over.day = 1;
  over.abs_period = 95;
  over.books_held = true;  // blackout hold: pacing frozen, not judged
  engine.observe_settle(over);
  EXPECT_EQ(engine.alerts_emitted(), 0u);

  over.day = 2;
  over.abs_period = 143;
  over.books_held = false;
  engine.observe_settle(over);
  ASSERT_EQ(engine.alerts_emitted(), 1u);
  EXPECT_EQ(engine.alerts()[0].kind, AlertKind::kPacingBound);
  EXPECT_EQ(engine.alerts()[0].value, 2.0);
  EXPECT_EQ(engine.alerts()[0].period, kDayScopedPeriod);
  // The pacing objective opened alongside the alert.
  ASSERT_EQ(engine.incidents_opened(), 1u);
  EXPECT_EQ(engine.incidents()[0].objective, Objective::kPacing);

  // An unbudgeted mechanism (pool 0) is never judged.
  SettleSignals unbudgeted;
  unbudgeted.day = 3;
  unbudgeted.abs_period = 191;
  unbudgeted.budget_spent = 5.0;
  unbudgeted.budget_pool = 0.0;
  engine.observe_settle(unbudgeted);
  EXPECT_EQ(engine.alerts_emitted(), 1u);
}

TEST(IncidentEngine, FallbackBudgetObjectiveOpensOnABadDay) {
  IncidentConfig config = engine_config();
  config.slo_max_fallback_per_day = 6;
  IncidentEngine engine(config);

  DaySignals day;
  day.day = 0;
  day.abs_period = 47;
  day.peak_to_average_tip = 2.0;
  day.peak_to_average_tdp = 1.6;
  day.peak_realized_units = 100.0;
  day.fallback_periods = 4;  // under budget
  engine.observe_day(day);
  EXPECT_EQ(engine.incidents_opened(), 0u);

  day.day = 1;
  day.abs_period = 95;
  day.fallback_periods = 9;  // over budget
  engine.observe_day(day);
  ASSERT_EQ(engine.incidents_opened(), 1u);
  EXPECT_EQ(engine.incidents()[0].objective, Objective::kFallbackBudget);

  day.day = 2;
  day.abs_period = 143;
  day.fallback_periods = 0;  // clean day closes it
  engine.observe_day(day);
  EXPECT_EQ(engine.incidents_closed(), 1u);
}

TEST(IncidentEngine, DayEndZScoresAlertOnAShapeBreak) {
  IncidentEngine engine(engine_config());
  DaySignals day;
  day.peak_to_average_tip = 2.0;
  day.peak_realized_units = 100.0;
  for (std::uint64_t d = 0; d < 4; ++d) {
    day.day = d;
    day.abs_period = d * 48 + 47;
    day.peak_to_average_tdp = 1.6;  // stable 20% reduction
    engine.observe_day(day);
  }
  EXPECT_EQ(engine.alerts_emitted(), 0u);

  day.day = 4;
  day.abs_period = 4 * 48 + 47;
  day.peak_to_average_tdp = 2.0;  // reduction collapses to zero
  engine.observe_day(day);
  bool p2a_alert = false;
  for (const Alert& alert : engine.alerts()) {
    p2a_alert = p2a_alert || alert.kind == AlertKind::kP2aZScore;
  }
  EXPECT_TRUE(p2a_alert);
}

TEST(IncidentEngine, HealthEdgesAlertOnEveryTransition) {
  IncidentEngine engine(engine_config());
  PeriodSignals sig = quiet_period(0);
  sig.health = Health::kHealthy;
  engine.observe_period(sig);
  EXPECT_EQ(engine.alerts_emitted(), 0u);  // first observation: no edge

  sig = quiet_period(1);
  sig.health = Health::kDegraded;
  engine.observe_period(sig);
  sig = quiet_period(2);
  sig.health = Health::kFallback;
  engine.observe_period(sig);
  sig = quiet_period(3);
  sig.health = Health::kHealthy;
  engine.observe_period(sig);

  ASSERT_EQ(engine.alerts_emitted(), 3u);
  for (const Alert& alert : engine.alerts()) {
    EXPECT_EQ(alert.kind, AlertKind::kHealthEdge);
  }
  EXPECT_EQ(engine.alerts()[0].value, 1.0);      // -> DEGRADED
  EXPECT_EQ(engine.alerts()[0].threshold, 0.0);  // from HEALTHY
  EXPECT_EQ(engine.alerts()[2].value, 0.0);      // back to HEALTHY
}

TEST(IncidentEngine, AlertRetentionIsBoundedAndCountsDrops) {
  IncidentConfig config = engine_config();
  config.max_alerts = 4;
  IncidentEngine engine(config);
  // Alternate health every period: one edge alert each.
  for (std::uint64_t t = 0; t < 10; ++t) {
    PeriodSignals sig = quiet_period(t);
    sig.health = (t % 2 == 0) ? Health::kDegraded : Health::kHealthy;
    engine.observe_period(sig);
  }
  EXPECT_EQ(engine.alerts().size(), 4u);
  EXPECT_EQ(engine.alerts_emitted(), 9u);  // seq keeps counting
  EXPECT_EQ(engine.alerts_dropped(), 5u);
}

// ---------------------------------------------------------------------------
// Config echo and dump framing

TEST(IncidentConfigEcho, MatchesOnThresholdsIgnoresExecutionKnobs) {
  IncidentConfig a = engine_config();
  IncidentConfig b = a;
  b.dump_path = "/somewhere/else.tdpi";
  b.commit_latency_budget_seconds = 99.0;
  EXPECT_TRUE(config_echo_matches(a, b));  // knobs are not echoed

  b = a;
  b.cusum_h = 0.9;
  EXPECT_FALSE(config_echo_matches(a, b));
  b = a;
  b.slo_long_window = 32;
  EXPECT_FALSE(config_echo_matches(a, b));
}

/// A small engine with non-trivial state in every section: alerts,
/// incidents, detector posture, windows, recorder ring wrap.
IncidentEngine populated_engine() {
  IncidentConfig config = engine_config();
  config.recorder_capacity = 8;  // force ring wrap
  IncidentEngine engine(config);
  for (std::uint64_t t = 0; t < 40; ++t) {
    PeriodSignals sig = quiet_period(t);
    sig.measurement_gap = (t % 3 == 0);
    sig.failed_attempts = (t % 5 == 0) ? 4 : 0;
    sig.solver_starved = (t % 7 == 0);
    sig.health = (t % 4 == 0) ? Health::kDegraded : Health::kHealthy;
    sig.storm_blackout = t > 20;
    engine.observe_period(sig);
  }
  SettleSignals settle;
  settle.day = 0;
  settle.abs_period = 39;
  settle.budget_spent = 1.0;
  settle.budget_pool = 2.0;
  engine.observe_settle(settle);
  DaySignals day;
  day.day = 0;
  day.abs_period = 39;
  day.peak_to_average_tip = 2.0;
  day.peak_to_average_tdp = 1.7;
  day.peak_realized_units = 50.0;
  day.reanchored = true;
  engine.observe_day(day);
  return engine;
}

TEST(IncidentDump, RoundTripsBitwiseThroughRestoreState) {
  const IncidentEngine engine = populated_engine();
  const std::vector<std::uint8_t> bytes = engine.dump(false);

  const DumpData decoded = decode_dump(bytes);
  EXPECT_FALSE(decoded.has_wall);
  EXPECT_TRUE(config_echo_matches(decoded.config, engine.config()));
  EXPECT_EQ(decoded.state.alerts, engine.state().alerts);
  EXPECT_EQ(decoded.state.incidents, engine.state().incidents);
  EXPECT_EQ(decoded.state.recorder, engine.state().recorder);

  // A second engine restored from the decoded state dumps the same bytes.
  IncidentConfig config = engine.config();
  IncidentEngine restored(config);
  restored.restore_state(decoded.state);
  EXPECT_EQ(restored.dump(false), bytes);
}

TEST(IncidentDump, CorruptionAndTruncationRaiseFormatError) {
  const IncidentEngine engine = populated_engine();
  std::vector<std::uint8_t> bytes = engine.dump(false);

  std::vector<std::uint8_t> flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;  // payload bit flip -> CRC mismatch
  EXPECT_THROW(decode_dump(flipped), ser::FormatError);

  std::vector<std::uint8_t> truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(decode_dump(truncated), ser::FormatError);

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(decode_dump(bad_magic), ser::FormatError);
}

// ---------------------------------------------------------------------------
// Fleet integration: pure observation, bitwise determinism

FaultPlan fleet_storm_plan() {
  FaultPlan plan;
  plan.price_pull_drop = 0.02;
  plan.measurement_loss = 0.02;
  plan.seed = 424242;
  plan.storm_blackout = {0.06, 0.76, 1.0};
  plan.storm_channel = {0.06, 0.76, 0.5};
  plan.storm_solver = {0.06, 0.76, 1.0};
  return plan;
}

fleet::FleetDriverConfig fleet_config(std::size_t threads) {
  fleet::FleetDriverConfig config;
  config.population.users = 1200;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.slices = 8;
  config.threads = threads;
  config.fault = fleet_storm_plan();
  config.incident.enabled = true;
  return config;
}

TEST(FleetIncident, AlertStreamIsThreadCountInvariant) {
  fleet::FleetDriver serial(fleet_config(1));
  serial.run_day();
  fleet::FleetDriver parallel(fleet_config(4));
  parallel.run_day();

  const IncidentEngine& a = *serial.incident_engine();
  const IncidentEngine& b = *parallel.incident_engine();
  EXPECT_EQ(a.alerts(), b.alerts());
  EXPECT_EQ(a.incidents(), b.incidents());
  // The whole deterministic dump — detector posture, windows, recorder —
  // must serialize to identical bytes.
  EXPECT_EQ(a.dump(false), b.dump(false));
}

TEST(FleetIncident, EngineIsAPureObserver) {
  fleet::FleetDriverConfig with = fleet_config(2);
  fleet::FleetDriverConfig without = with;
  without.incident.enabled = false;

  const fleet::FleetMetrics on = fleet::FleetDriver(with).run_day();
  const fleet::FleetMetrics off = fleet::FleetDriver(without).run_day();

  ASSERT_EQ(on.offered_units.size(), off.offered_units.size());
  for (std::size_t i = 0; i < on.offered_units.size(); ++i) {
    EXPECT_EQ(on.offered_units[i], off.offered_units[i]);
    EXPECT_EQ(on.realized_units[i], off.realized_units[i]);
  }
  EXPECT_EQ(on.sessions, off.sessions);
  EXPECT_EQ(on.deferred_sessions, off.deferred_sessions);
  EXPECT_EQ(on.reward_paid_units, off.reward_paid_units);
  EXPECT_EQ(on.final_health, off.final_health);
}

TEST(FleetIncident, AlertStreamIgnoresTheTelemetrySwitch) {
  const bool metrics_was = metrics_enabled();
  const bool journal_was = journal_enabled();

  set_metrics_enabled(true);
  set_journal_enabled(true);
  fleet::FleetDriver with_obs(fleet_config(2));
  with_obs.run_day();
  const std::vector<Alert> on_alerts = with_obs.incident_engine()->alerts();
  const std::vector<std::uint8_t> on_dump =
      with_obs.incident_engine()->dump(false);

  set_metrics_enabled(false);
  set_journal_enabled(false);
  fleet::FleetDriver without_obs(fleet_config(2));
  without_obs.run_day();
  EXPECT_EQ(without_obs.incident_engine()->alerts(), on_alerts);
  EXPECT_EQ(without_obs.incident_engine()->dump(false), on_dump);

  set_metrics_enabled(metrics_was);
  set_journal_enabled(journal_was);
}

// ---------------------------------------------------------------------------
// Horizon integration: checkpoints and kill/restore

horizon::HorizonConfig horizon_config() {
  horizon::HorizonConfig config;
  config.population.users = 1200;
  config.population.periods = 12;
  config.population.seed = 20110611;
  config.shards = 4;
  config.slices = 8;
  config.threads = 2;
  config.warmup_days = 1;
  config.horizon_days = 2;
  config.estimation_window = 3;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;
  config.fault = fleet_storm_plan();
  config.incident.enabled = true;
  return config;
}

TEST(HorizonIncident, KillRestoreContinuesTheAlertStreamBitwise) {
  const horizon::HorizonConfig config = horizon_config();
  horizon::MultiDayDriver reference(config);
  reference.run();
  const std::vector<Alert> ref_alerts =
      reference.incident_engine()->alerts();
  const std::vector<std::uint8_t> ref_dump =
      reference.incident_engine()->dump(false);
  ASSERT_FALSE(ref_alerts.empty());

  // Kill mid-day (not at a day boundary: the CUSUM accumulators and the
  // SLO window are hot) and restore onto a different layout.
  horizon::MultiDayDriver victim(config);
  for (std::size_t step = 0; step < 17; ++step) victim.step_period();
  const std::vector<std::uint8_t> bytes = victim.checkpoint_bytes();

  horizon::HorizonConfig resume = config;
  resume.shards = 2;
  resume.threads = 1;
  std::unique_ptr<horizon::MultiDayDriver> restored =
      horizon::MultiDayDriver::restore(resume,
                                       horizon::decode(bytes));
  while (!restored->done()) restored->step_period();

  EXPECT_EQ(restored->incident_engine()->alerts(), ref_alerts);
  EXPECT_EQ(restored->incident_engine()->dump(false), ref_dump);
}

TEST(HorizonIncident, RestoreRejectsMismatchedThresholdsAndMode) {
  const horizon::HorizonConfig config = horizon_config();
  horizon::MultiDayDriver driver(config);
  for (std::size_t step = 0; step < 13; ++step) driver.step_period();
  const horizon::CheckpointData data = driver.checkpoint();

  // Retuned thresholds would splice a different detector onto the
  // checkpointed accumulators — the continued alert stream could no longer
  // be bitwise; restore must refuse.
  horizon::HorizonConfig retuned = config;
  retuned.incident.cusum_h = 0.9;
  EXPECT_THROW(horizon::MultiDayDriver::restore(retuned, data),
               PreconditionError);

  // Same for flipping the engine off entirely.
  horizon::HorizonConfig disabled = config;
  disabled.incident.enabled = false;
  EXPECT_THROW(horizon::MultiDayDriver::restore(disabled, data),
               PreconditionError);

  // The matching config restores fine.
  EXPECT_NO_THROW(horizon::MultiDayDriver::restore(config, data));
}

TEST(HorizonIncident, CheckpointCarriesTheEngineStateInKSecIncident) {
  const horizon::HorizonConfig config = horizon_config();
  horizon::MultiDayDriver driver(config);
  for (std::size_t step = 0; step < 17; ++step) driver.step_period();

  const horizon::CheckpointData data = driver.checkpoint();
  EXPECT_TRUE(data.incident_enabled);
  EXPECT_TRUE(config_echo_matches(data.incident_config, config.incident));
  EXPECT_EQ(data.incident.alerts, driver.incident_engine()->alerts());

  // The byte round-trip preserves the section (v2 framing).
  const std::vector<std::uint8_t> bytes = horizon::encode(data);
  const horizon::CheckpointData decoded = horizon::decode(bytes);
  EXPECT_TRUE(decoded.incident_enabled);
  EXPECT_EQ(decoded.incident.alerts, data.incident.alerts);
  EXPECT_EQ(decoded.incident.incidents, data.incident.incidents);
  EXPECT_EQ(decoded.incident.recorder, data.incident.recorder);

  // An engine-off config writes no incident section and decodes disabled.
  horizon::HorizonConfig off = config;
  off.incident.enabled = false;
  horizon::MultiDayDriver plain(off);
  for (std::size_t step = 0; step < 17; ++step) plain.step_period();
  const horizon::CheckpointData plain_data =
      horizon::decode(plain.checkpoint_bytes());
  EXPECT_FALSE(plain_data.incident_enabled);
}

}  // namespace
}  // namespace tdp::obs::incident
