#include "tube/tube_system.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tdp {
namespace {

/// Shrunk testbed (fewer arrivals) so the integration test stays fast.
TubeConfig small_config() {
  TubeConfig cfg = default_testbed_config();
  cfg.classes[0].arrivals_per_hour = 120.0;
  cfg.classes[1].arrivals_per_hour = 30.0;
  cfg.classes[2].arrivals_per_hour = 4.0;
  return cfg;
}

TEST(TubeSystem, TipPhaseHasNoDeferrals) {
  // Elastic-only traffic so per-period MB tracks the arrival profile
  // tightly in a single cycle (video streams are long and bursty).
  TubeConfig cfg = small_config();
  cfg.classes[2].arrivals_per_hour = 0.0;
  TubeSystem tube(cfg);
  const auto report = tube.run_tip(1);
  EXPECT_EQ(report.deferrals, 0u);
  EXPECT_GT(report.sessions, 100u);
  for (double p : report.rewards) EXPECT_DOUBLE_EQ(p, 0.0);
  // Fig. 11's shape: early-hour traffic above late-hour traffic.
  const auto& totals = report.total_period_mb;
  const double early = totals[0] + totals[1] + totals[2];
  const double late = totals[9] + totals[10] + totals[11];
  EXPECT_GT(early, late);
}

TEST(TubeSystem, TrialPhaseInducesDeferrals) {
  TubeSystem tube(small_config());
  tube.run_tip(1);
  const math::Vector rewards(12, 0.006);
  const auto report = tube.run_trial(rewards, 1);
  EXPECT_GT(report.deferrals, 10u);
  EXPECT_EQ(tube.profiler().window_count(), 1u);
}

TEST(TubeSystem, PairedPhasesSeeIdenticalArrivals) {
  // Same seeds => the TIP phase and a zero-reward "trial" see exactly the
  // same session processes.
  TubeSystem tube(small_config());
  const auto tip = tube.run_tip(1);
  const auto zero_trial = tube.run_trial(math::Vector(12, 0.0), 1);
  EXPECT_EQ(tip.sessions, zero_trial.sessions);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(tip.total_period_mb[i], zero_trial.total_period_mb[i], 1e-6);
  }
}

TEST(TubeSystem, FullLoopReproducesFig12Pattern) {
  // TIP baseline -> TDP trials -> profiling -> optimized online prices.
  TubeSystem tube(default_testbed_config());
  tube.run_tip(2);
  Rng rng(77);
  for (int t = 0; t < 3; ++t) {
    math::Vector rewards(12);
    for (double& p : rewards) p = rng.uniform(0.0, 0.01);
    tube.run_trial(rewards, 2);
  }
  const auto opt = tube.run_optimized(2);

  // Fig. 12: user 1 (impatient) moves almost nothing; user 2 moves
  // video >> ftp > web.
  const double u1_moved = opt.class_deferred_mb[0][0] +
                          opt.class_deferred_mb[0][1] +
                          opt.class_deferred_mb[0][2];
  const double u2_web = opt.class_deferred_mb[1][0];
  const double u2_ftp = opt.class_deferred_mb[1][1];
  const double u2_video = opt.class_deferred_mb[1][2];
  EXPECT_GT(u2_video, u2_ftp);
  EXPECT_GT(u2_ftp, u2_web);
  EXPECT_LT(u1_moved, 0.2 * u2_video);

  // The flexible user earns rewards; bills reflect the discount.
  EXPECT_GT(opt.user_reward_dollars[1], opt.user_reward_dollars[0]);
  EXPECT_GT(opt.sessions, 0u);
  EXPECT_GT(opt.deferrals, 0u);
}

TEST(TubeSystem, BillingIsConsistentWithServedTraffic) {
  // Under TIP every served MB is billed at the base price, so each user's
  // bill must equal (served MB) x price — the measurement and billing
  // paths must agree.
  TubeConfig cfg = small_config();
  TubeSystem tube(cfg);
  const auto report = tube.run_tip(1);
  for (std::size_t u = 0; u < 2; ++u) {
    double served = 0.0;
    for (std::size_t c = 0; c < 3; ++c) served += report.class_total_mb[u][c];
    EXPECT_NEAR(report.user_bill_dollars[u],
                served * cfg.base_price_per_mb, 1e-6)
        << "user " << u;
    EXPECT_DOUBLE_EQ(report.user_reward_dollars[u], 0.0);
  }
}

TEST(TubeSystem, EffectivePerMbRateNeverExceedsBasePrice) {
  // Rewards can only discount the per-MB rate. (Total bills CAN rise under
  // TDP: spreading traffic into idle periods lets more of it complete
  // within the measurement window — more delivered service, cheaper rate.)
  TubeConfig cfg = small_config();
  TubeSystem tube(cfg);
  const auto tip = tube.run_tip(1);
  const auto trial = tube.run_trial(math::Vector(12, 0.008), 1);
  for (std::size_t u = 0; u < 2; ++u) {
    double tip_served = 0.0;
    double trial_served = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      tip_served += tip.class_total_mb[u][c];
      trial_served += trial.class_total_mb[u][c];
    }
    const double tip_rate = tip.user_bill_dollars[u] / tip_served;
    const double trial_rate = trial.user_bill_dollars[u] / trial_served;
    EXPECT_NEAR(tip_rate, cfg.base_price_per_mb, 1e-9);
    EXPECT_LE(trial_rate, tip_rate + 1e-9);
  }
  // The patient user (group 2) earns the bigger discount.
  const double rate1 = trial.user_bill_dollars[0] /
                       (trial.class_total_mb[0][0] +
                        trial.class_total_mb[0][1] +
                        trial.class_total_mb[0][2]);
  const double rate2 = trial.user_bill_dollars[1] /
                       (trial.class_total_mb[1][0] +
                        trial.class_total_mb[1][1] +
                        trial.class_total_mb[1][2]);
  EXPECT_LT(rate2, rate1);
}

TEST(TubeSystem, PriceHistoryIsRecorded) {
  TubeSystem tube(small_config());
  tube.run_tip(1);
  const auto series = tube.price_history().series();
  EXPECT_EQ(series.size(), 12u);  // one bucket per period
  for (const auto& bucket : series) {
    EXPECT_DOUBLE_EQ(bucket.average, 0.0);  // TIP: zero rewards
  }
}

TEST(TubeSystem, OptimizedRequiresProfilingData) {
  TubeSystem tube(small_config());
  EXPECT_THROW(tube.run_optimized(1), Error);  // no baseline yet
  tube.run_tip(1);
  EXPECT_THROW(tube.run_optimized(1), Error);  // no TDP windows yet
}

TEST(TubeSystem, ConfigValidation) {
  TubeConfig cfg = default_testbed_config();
  cfg.user_intensity = {1.0};  // wrong size for 2 users
  EXPECT_THROW(TubeSystem{cfg}, PreconditionError);
  TubeConfig cfg2 = default_testbed_config();
  cfg2.patience = {{1.0, 1.0, 1.0}};
  EXPECT_THROW(TubeSystem{cfg2}, PreconditionError);
}

}  // namespace
}  // namespace tdp
