// Golden regression tests for the headline paper figures.
//
// The optimal reward schedules for Fig. 4 (static 48-period model) and
// Fig. 7 (dynamic 48-period model) are snapshotted to CSVs under
// tests/golden/.  Any solver or model change that moves a reward by more
// than 1e-6 fails here — the batch engine, warm starts, and threading work
// must not perturb the paper numbers.
//
// Regenerate after an INTENTIONAL numeric change with
//   TDP_REGENERATE_GOLDENS=1 ./tdp_golden_tests
// and check the refreshed CSVs in with the change that explains them.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/paper_data.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/paper_dynamic.hpp"
#include "math/vector_ops.hpp"

#ifndef TDP_GOLDEN_DIR
#error "TDP_GOLDEN_DIR must point at tests/golden"
#endif

namespace tdp {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(TDP_GOLDEN_DIR) + "/" + name;
}

bool regenerating() {
  const char* env = std::getenv("TDP_REGENERATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_golden(const std::string& name, const math::Vector& rewards) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out << "period,reward\n";
  char buffer[64];
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%zu,%.17g\n", i, rewards[i]);
    out << buffer;
  }
}

std::vector<double> read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good()) << "missing golden file " << golden_path(name)
                         << " — run once with TDP_REGENERATE_GOLDENS=1";
  std::vector<double> rewards;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      ADD_FAILURE() << "malformed line: " << line;
      continue;
    }
    rewards.push_back(std::stod(line.substr(comma + 1)));
  }
  return rewards;
}

void check_against_golden(const std::string& name,
                          const math::Vector& rewards) {
  if (regenerating()) {
    write_golden(name, rewards);
    GTEST_SKIP() << "regenerated " << name;
  }
  const std::vector<double> golden = read_golden(name);
  ASSERT_EQ(golden.size(), rewards.size()) << name;
  for (std::size_t i = 0; i < rewards.size(); ++i) {
    EXPECT_NEAR(rewards[i], golden[i], 1e-6)
        << name << " period " << i;
  }
}

TEST(GoldenRegression, Fig4StaticRewards) {
  const PricingSolution sol =
      optimize_static_prices(paper::static_model_48());
  ASSERT_TRUE(sol.converged);
  check_against_golden("fig4_rewards.csv", sol.rewards);
}

TEST(GoldenRegression, Fig7DynamicRewards) {
  const DynamicPricingSolution sol =
      optimize_dynamic_prices(paper::dynamic_model_48());
  ASSERT_TRUE(sol.converged);
  check_against_golden("fig7_rewards.csv", sol.rewards);
}

}  // namespace
}  // namespace tdp
