#include "dynamic/online_pricer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dynamic/paper_dynamic.hpp"

namespace tdp {
namespace {

DynamicOptimizerOptions fast_options() {
  DynamicOptimizerOptions opts;
  opts.fista.max_iterations = 1500;
  opts.mu_final = 1e-4;
  return opts;
}

TEST(OnlinePricer, InitializesFromOfflineSolution) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  EXPECT_EQ(pricer.rewards().size(), 48u);
  double max_reward = 0.0;
  for (double p : pricer.rewards()) {
    EXPECT_GE(p, 0.0);
    max_reward = std::max(max_reward, p);
  }
  EXPECT_GT(max_reward, 0.0);
}

TEST(OnlinePricer, ObservingTheForecastBarelyMovesTheReward) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const double forecast = pricer.model().arrivals().tip_demand(0);
  const double cost_before = pricer.expected_cost();
  const auto step = pricer.observe_period(0, forecast);
  EXPECT_EQ(step.period, 0u);
  // The 1-D re-optimization can only improve the objective.
  EXPECT_LE(step.expected_cost, cost_before + 1e-6);
  EXPECT_NEAR(step.new_reward, step.old_reward, 0.05);
}

TEST(OnlinePricer, Section5BOnlineExperiment) {
  // "While running the online algorithm, the ISP finds that 200 instead of
  // 230 MBps arrives in period 1" — the adjusted rewards must beat keeping
  // the nominal schedule on the updated model.
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const math::Vector nominal = pricer.rewards();
  const auto step = pricer.observe_period(0, 20.0);  // 200 MBps
  const double adjusted_cost = pricer.expected_cost();
  const double nominal_cost = pricer.model().total_cost(nominal);
  EXPECT_LE(adjusted_cost, nominal_cost + 1e-9);
  EXPECT_NE(step.new_reward, step.old_reward);
  // The updated demand estimate is in force.
  EXPECT_NEAR(pricer.model().arrivals().tip_demand(0), 20.0, 1e-9);
}

TEST(OnlinePricer, SequentialObservationsKeepImproving) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  // A day where the morning runs 10% hot and the evening 10% cold.
  double previous_cost = pricer.expected_cost();
  (void)previous_cost;
  for (std::size_t period = 0; period < 8; ++period) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    const double measured = forecast * (period < 4 ? 1.1 : 0.9);
    const auto step = pricer.observe_period(period, measured);
    // After the demand update, the 1-D step never does worse than leaving
    // this period's reward alone.
    math::Vector keep = pricer.rewards();
    keep[period] = step.old_reward;
    EXPECT_LE(step.expected_cost, pricer.model().total_cost(keep) + 1e-9);
  }
}

TEST(OnlinePricer, SurgeObservationIsClampedNotFatal) {
  // A measured surge that would push total demand past total capacity must
  // not destroy the model (the backlog recursion would have no steady
  // state); the update clamps to a stable level instead.
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const auto step = pricer.observe_period(0, 1e6);
  EXPECT_EQ(step.period, 0u);
  double total = pricer.model().arrivals().total_demand();
  double capacity = 0.0;
  for (double a : pricer.model().capacity()) capacity += a;
  EXPECT_LT(total, capacity);
  // The pricer remains usable afterwards.
  pricer.observe_period(1, pricer.model().arrivals().tip_demand(1));
}

TEST(OnlinePricer, ZeroArrivalObservation) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const auto step = pricer.observe_period(5, 0.0);
  EXPECT_NEAR(pricer.model().arrivals().tip_demand(5), 0.0, 1e-12);
  EXPECT_GE(step.new_reward, 0.0);
}

TEST(OnlinePricer, SpeculativeModeIsBitIdenticalToSynchronous) {
  // Feed both pricers the same day: half the periods confirm the forecast
  // exactly (speculation hits), half deviate (speculation discarded and
  // recomputed). Rewards must match bitwise at every step — speculation may
  // only change latency, never results.
  OnlinePricer plain(paper::dynamic_model_48(), fast_options());
  OnlinePricer spec(paper::dynamic_model_48(), fast_options(),
                    /*speculative=*/true);
  EXPECT_FALSE(plain.speculative());
  EXPECT_TRUE(spec.speculative());

  for (std::size_t period = 0; period < 8; ++period) {
    const double forecast = plain.model().arrivals().tip_demand(period);
    const double measured =
        (period % 2 == 0) ? forecast : forecast * 0.93;
    const auto step_plain = plain.observe_period(period, measured);
    const auto step_spec = spec.observe_period(period, measured);
    EXPECT_FALSE(step_plain.speculative_hit);
    EXPECT_EQ(step_plain.new_reward, step_spec.new_reward)
        << "period " << period;
    EXPECT_EQ(step_plain.expected_cost, step_spec.expected_cost)
        << "period " << period;
  }
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(plain.rewards()[i], spec.rewards()[i]) << "reward " << i;
  }
  // The schedule above alternates confirmations and deviations, so both
  // outcomes must actually have been exercised. The first observation can
  // never hit (nothing was speculated yet), hence 3 hits from periods
  // 2, 4, 6 and misses from the odd periods.
  EXPECT_GT(spec.speculation_hits(), 0u);
  EXPECT_GT(spec.speculation_misses(), 0u);
  EXPECT_EQ(spec.speculation_hits() + spec.speculation_misses(), 7u);
  EXPECT_EQ(plain.speculation_hits(), 0u);
}

TEST(OnlinePricer, SpeculativeHitSkipsNothingObservable) {
  // A run of exactly-confirmed forecasts: every step after the first is a
  // hit, and each hit still performs the 1-D improvement step.
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options(),
                      /*speculative=*/true);
  for (std::size_t period = 0; period < 4; ++period) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    const double cost_before = pricer.expected_cost();
    const auto step = pricer.observe_period(period, forecast);
    EXPECT_EQ(step.speculative_hit, period > 0) << "period " << period;
    EXPECT_LE(step.expected_cost, cost_before + 1e-6);
  }
  EXPECT_EQ(pricer.speculation_hits(), 3u);
  EXPECT_EQ(pricer.speculation_misses(), 0u);
}

TEST(OnlinePricer, RejectsBadObservations) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  EXPECT_THROW(pricer.observe_period(48, 10.0), PreconditionError);
  EXPECT_THROW(pricer.observe_period(0, -1.0), PreconditionError);
}

// --- guarded observe path / health ladder ---------------------------------

TEST(OnlinePricer, GuardedObserveWithDefaultsMatchesLegacyBitwise) {
  OnlinePricer legacy(paper::dynamic_model_48(), fast_options());
  OnlinePricer guarded(paper::dynamic_model_48(), fast_options());
  for (std::size_t period = 0; period < 6; ++period) {
    const double forecast = legacy.model().arrivals().tip_demand(period);
    const double measured = forecast * (period % 2 == 0 ? 1.07 : 0.91);
    const auto a = legacy.observe_period(period, measured);
    const auto b = guarded.observe_period_ex(
        period, measured, /*degraded_input=*/false,
        guarded.guard().solver_max_iterations);
    EXPECT_EQ(a.new_reward, b.new_reward) << "period " << period;
    EXPECT_EQ(a.expected_cost, b.expected_cost) << "period " << period;
  }
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(legacy.rewards()[i], guarded.rewards()[i]) << "reward " << i;
  }
  EXPECT_EQ(guarded.health(), PricerHealth::kHealthy);
  EXPECT_EQ(guarded.health_stats().healthy_observations, 6u);
  EXPECT_EQ(guarded.health_stats().transitions, 0u);
}

TEST(OnlinePricer, StarvedSolveKeepsPreviousRewardWhenConfigured) {
  PricerGuardConfig guard;
  guard.keep_reward_on_failure = true;
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options(),
                      /*speculative=*/false, guard);
  const double before = pricer.rewards()[0];
  const double forecast = pricer.model().arrivals().tip_demand(0);
  // Two golden-section iterations cannot converge on any real bracket.
  const auto step = pricer.observe_period_ex(0, forecast * 0.5,
                                             /*degraded_input=*/false,
                                             /*iteration_budget=*/2);
  EXPECT_TRUE(step.solve_failed);
  EXPECT_EQ(step.new_reward, before);
  EXPECT_EQ(pricer.rewards()[0], before);
  EXPECT_EQ(pricer.health_stats().solve_failures, 1u);
  // A failed solve is a bad observation: the ladder leaves HEALTHY.
  EXPECT_EQ(pricer.health(), PricerHealth::kDegraded);
}

TEST(OnlinePricer, TrustRegionClampsLargeSteps) {
  PricerGuardConfig guard;
  guard.trust_region_fraction = 1e-4;  // 0.01% of the reward cap per step
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options(),
                      /*speculative=*/false, guard);
  // A drastic demand shift wants a large reward move; the trust region
  // bounds it to a fraction of what the unguarded pricer would do.
  OnlinePricer free(paper::dynamic_model_48(), fast_options());
  const auto free_step = free.observe_period(0, 1.0);
  const double free_move =
      std::abs(free_step.new_reward - free_step.old_reward);
  ASSERT_GT(free_move, 0.0);

  const double before = pricer.rewards()[0];
  const auto step =
      pricer.observe_period_ex(0, 1.0, /*degraded_input=*/false,
                               pricer.guard().solver_max_iterations);
  EXPECT_TRUE(step.clamped);
  EXPECT_LT(std::abs(step.new_reward - before), free_move);
  EXPECT_EQ(pricer.health_stats().clamped_steps, 1u);
}

TEST(OnlinePricer, HealthLadderDescendsAndRecovers) {
  PricerGuardConfig guard;
  guard.fallback_after = 2;
  guard.recover_after = 2;
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options(),
                      /*speculative=*/false, guard);
  const auto feed = [&](std::size_t period, bool degraded) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    pricer.observe_period_ex(period, forecast, degraded,
                             pricer.guard().solver_max_iterations);
  };

  EXPECT_EQ(pricer.health(), PricerHealth::kHealthy);
  feed(0, true);
  EXPECT_EQ(pricer.health(), PricerHealth::kDegraded);
  feed(1, true);
  EXPECT_EQ(pricer.health(), PricerHealth::kFallback);

  // In FALLBACK degraded inputs freeze the schedule entirely.
  const math::Vector frozen = pricer.rewards();
  const auto step = pricer.observe_period_ex(
      2, 1e5, /*degraded_input=*/true, pricer.guard().solver_max_iterations);
  EXPECT_TRUE(step.skipped);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(pricer.rewards()[i], frozen[i]);
  }
  EXPECT_EQ(pricer.health_stats().skipped_updates, 1u);

  // Clean observations climb back one rung at a time.
  feed(3, false);
  feed(4, false);
  EXPECT_EQ(pricer.health(), PricerHealth::kDegraded);
  feed(5, false);
  feed(6, false);
  EXPECT_EQ(pricer.health(), PricerHealth::kHealthy);

  const PricerHealthStats& stats = pricer.health_stats();
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GE(stats.max_recovery_periods, 6u);
  EXPECT_EQ(stats.transitions, 4u);  // H->D, D->F, F->D, D->H
  ASSERT_EQ(pricer.health_transitions().size(), 4u);
  EXPECT_EQ(pricer.health_transitions()[0].from, PricerHealth::kHealthy);
  EXPECT_EQ(pricer.health_transitions()[1].to, PricerHealth::kFallback);
  EXPECT_EQ(pricer.health_transitions()[3].to, PricerHealth::kHealthy);
}

TEST(OnlinePricer, MissedObservationsAdvanceTheLadder) {
  PricerGuardConfig guard;
  guard.fallback_after = 2;
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options(),
                      /*speculative=*/false, guard);
  const math::Vector before = pricer.rewards();
  pricer.observe_missed(0);
  pricer.observe_missed(1);
  EXPECT_EQ(pricer.health(), PricerHealth::kFallback);
  EXPECT_EQ(pricer.health_stats().missed_observations, 2u);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(pricer.rewards()[i], before[i]);  // schedule untouched
  }
}

TEST(OnlinePricer, GuardConfigValidation) {
  PricerGuardConfig zero_budget;
  zero_budget.solver_max_iterations = 0;
  EXPECT_THROW(OnlinePricer(paper::dynamic_model_48(), fast_options(),
                            false, zero_budget),
               PreconditionError);
  PricerGuardConfig bad_fraction;
  bad_fraction.trust_region_fraction = -0.5;
  EXPECT_THROW(OnlinePricer(paper::dynamic_model_48(), fast_options(),
                            false, bad_fraction),
               PreconditionError);
}

}  // namespace
}  // namespace tdp
