#include "dynamic/online_pricer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dynamic/paper_dynamic.hpp"

namespace tdp {
namespace {

DynamicOptimizerOptions fast_options() {
  DynamicOptimizerOptions opts;
  opts.fista.max_iterations = 1500;
  opts.mu_final = 1e-4;
  return opts;
}

TEST(OnlinePricer, InitializesFromOfflineSolution) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  EXPECT_EQ(pricer.rewards().size(), 48u);
  double max_reward = 0.0;
  for (double p : pricer.rewards()) {
    EXPECT_GE(p, 0.0);
    max_reward = std::max(max_reward, p);
  }
  EXPECT_GT(max_reward, 0.0);
}

TEST(OnlinePricer, ObservingTheForecastBarelyMovesTheReward) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const double forecast = pricer.model().arrivals().tip_demand(0);
  const double cost_before = pricer.expected_cost();
  const auto step = pricer.observe_period(0, forecast);
  EXPECT_EQ(step.period, 0u);
  // The 1-D re-optimization can only improve the objective.
  EXPECT_LE(step.expected_cost, cost_before + 1e-6);
  EXPECT_NEAR(step.new_reward, step.old_reward, 0.05);
}

TEST(OnlinePricer, Section5BOnlineExperiment) {
  // "While running the online algorithm, the ISP finds that 200 instead of
  // 230 MBps arrives in period 1" — the adjusted rewards must beat keeping
  // the nominal schedule on the updated model.
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const math::Vector nominal = pricer.rewards();
  const auto step = pricer.observe_period(0, 20.0);  // 200 MBps
  const double adjusted_cost = pricer.expected_cost();
  const double nominal_cost = pricer.model().total_cost(nominal);
  EXPECT_LE(adjusted_cost, nominal_cost + 1e-9);
  EXPECT_NE(step.new_reward, step.old_reward);
  // The updated demand estimate is in force.
  EXPECT_NEAR(pricer.model().arrivals().tip_demand(0), 20.0, 1e-9);
}

TEST(OnlinePricer, SequentialObservationsKeepImproving) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  // A day where the morning runs 10% hot and the evening 10% cold.
  double previous_cost = pricer.expected_cost();
  (void)previous_cost;
  for (std::size_t period = 0; period < 8; ++period) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    const double measured = forecast * (period < 4 ? 1.1 : 0.9);
    const auto step = pricer.observe_period(period, measured);
    // After the demand update, the 1-D step never does worse than leaving
    // this period's reward alone.
    math::Vector keep = pricer.rewards();
    keep[period] = step.old_reward;
    EXPECT_LE(step.expected_cost, pricer.model().total_cost(keep) + 1e-9);
  }
}

TEST(OnlinePricer, SurgeObservationIsClampedNotFatal) {
  // A measured surge that would push total demand past total capacity must
  // not destroy the model (the backlog recursion would have no steady
  // state); the update clamps to a stable level instead.
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const auto step = pricer.observe_period(0, 1e6);
  EXPECT_EQ(step.period, 0u);
  double total = pricer.model().arrivals().total_demand();
  double capacity = 0.0;
  for (double a : pricer.model().capacity()) capacity += a;
  EXPECT_LT(total, capacity);
  // The pricer remains usable afterwards.
  pricer.observe_period(1, pricer.model().arrivals().tip_demand(1));
}

TEST(OnlinePricer, ZeroArrivalObservation) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  const auto step = pricer.observe_period(5, 0.0);
  EXPECT_NEAR(pricer.model().arrivals().tip_demand(5), 0.0, 1e-12);
  EXPECT_GE(step.new_reward, 0.0);
}

TEST(OnlinePricer, SpeculativeModeIsBitIdenticalToSynchronous) {
  // Feed both pricers the same day: half the periods confirm the forecast
  // exactly (speculation hits), half deviate (speculation discarded and
  // recomputed). Rewards must match bitwise at every step — speculation may
  // only change latency, never results.
  OnlinePricer plain(paper::dynamic_model_48(), fast_options());
  OnlinePricer spec(paper::dynamic_model_48(), fast_options(),
                    /*speculative=*/true);
  EXPECT_FALSE(plain.speculative());
  EXPECT_TRUE(spec.speculative());

  for (std::size_t period = 0; period < 8; ++period) {
    const double forecast = plain.model().arrivals().tip_demand(period);
    const double measured =
        (period % 2 == 0) ? forecast : forecast * 0.93;
    const auto step_plain = plain.observe_period(period, measured);
    const auto step_spec = spec.observe_period(period, measured);
    EXPECT_FALSE(step_plain.speculative_hit);
    EXPECT_EQ(step_plain.new_reward, step_spec.new_reward)
        << "period " << period;
    EXPECT_EQ(step_plain.expected_cost, step_spec.expected_cost)
        << "period " << period;
  }
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(plain.rewards()[i], spec.rewards()[i]) << "reward " << i;
  }
  // The schedule above alternates confirmations and deviations, so both
  // outcomes must actually have been exercised. The first observation can
  // never hit (nothing was speculated yet), hence 3 hits from periods
  // 2, 4, 6 and misses from the odd periods.
  EXPECT_GT(spec.speculation_hits(), 0u);
  EXPECT_GT(spec.speculation_misses(), 0u);
  EXPECT_EQ(spec.speculation_hits() + spec.speculation_misses(), 7u);
  EXPECT_EQ(plain.speculation_hits(), 0u);
}

TEST(OnlinePricer, SpeculativeHitSkipsNothingObservable) {
  // A run of exactly-confirmed forecasts: every step after the first is a
  // hit, and each hit still performs the 1-D improvement step.
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options(),
                      /*speculative=*/true);
  for (std::size_t period = 0; period < 4; ++period) {
    const double forecast = pricer.model().arrivals().tip_demand(period);
    const double cost_before = pricer.expected_cost();
    const auto step = pricer.observe_period(period, forecast);
    EXPECT_EQ(step.speculative_hit, period > 0) << "period " << period;
    EXPECT_LE(step.expected_cost, cost_before + 1e-6);
  }
  EXPECT_EQ(pricer.speculation_hits(), 3u);
  EXPECT_EQ(pricer.speculation_misses(), 0u);
}

TEST(OnlinePricer, RejectsBadObservations) {
  OnlinePricer pricer(paper::dynamic_model_48(), fast_options());
  EXPECT_THROW(pricer.observe_period(48, 10.0), PreconditionError);
  EXPECT_THROW(pricer.observe_period(0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace tdp
