#include "core/deferral_kernel.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/paper_data.hpp"

namespace tdp {
namespace {

DemandProfile small_profile(LagNormalization normalization,
                            double max_reward) {
  DemandProfile profile(6);
  for (std::size_t i = 0; i < 6; ++i) {
    profile.add_class(
        i, SessionClass{std::make_shared<PowerLawWaitingFunction>(
                            0.5 + static_cast<double>(i) * 0.7, 6, max_reward,
                            1.0, normalization),
                        3.0 + static_cast<double>(i)});
  }
  return profile;
}

/// A nonlinear (gamma < 1) copy of small_profile to force the slow path.
DemandProfile nonlinear_profile(double max_reward) {
  DemandProfile profile(6);
  for (std::size_t i = 0; i < 6; ++i) {
    profile.add_class(
        i, SessionClass{std::make_shared<PowerLawWaitingFunction>(
                            0.5 + static_cast<double>(i) * 0.7, 6, max_reward,
                            0.999999999),
                        3.0 + static_cast<double>(i)});
  }
  return profile;
}

TEST(DeferralKernel, LinearFastPathMatchesGenericPath) {
  const double P = 1.5;
  const DeferralKernel fast(small_profile(LagNormalization::kDiscrete, P),
                            LagConvention::kPeriodStart);
  // gamma infinitesimally below 1 disables the fast path but is numerically
  // identical.
  const DeferralKernel slow(nonlinear_profile(P),
                            LagConvention::kPeriodStart);
  EXPECT_TRUE(fast.linear());
  EXPECT_FALSE(slow.linear());
  for (std::size_t from = 0; from < 6; ++from) {
    for (std::size_t to = 0; to < 6; ++to) {
      if (to == from) continue;
      for (double p : {0.1, 0.7, 1.4}) {
        EXPECT_NEAR(fast.pair_volume(from, to, p),
                    slow.pair_volume(from, to, p), 1e-6);
        EXPECT_NEAR(fast.pair_volume_derivative(from, to, p),
                    slow.pair_volume_derivative(from, to, p), 1e-5);
      }
    }
  }
}

TEST(DeferralKernel, InflowIsColumnSum) {
  const DeferralKernel kernel(small_profile(LagNormalization::kDiscrete, 1.5),
                              LagConvention::kPeriodStart);
  for (std::size_t into = 0; into < 6; ++into) {
    for (double p : {0.2, 0.9}) {
      double manual = 0.0;
      for (std::size_t from = 0; from < 6; ++from) {
        if (from == into) continue;
        manual += kernel.pair_volume(from, into, p);
      }
      EXPECT_NEAR(kernel.inflow(into, p), manual, 1e-12);
      EXPECT_NEAR(kernel.inflow_derivative(into, p) * p,
                  kernel.inflow(into, p), 1e-12);  // linearity in p
    }
  }
}

TEST(DeferralKernel, ConservationAcrossPeriods) {
  const DeferralKernel kernel(small_profile(LagNormalization::kDiscrete, 1.5),
                              LagConvention::kPeriodStart);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> rewards(6);
    for (double& r : rewards) r = rng.uniform(0.0, 1.5);
    double total_out = 0.0;
    double total_in = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      total_out += kernel.outflow(i, rewards);
      total_in += kernel.inflow(i, rewards[i]);
    }
    EXPECT_NEAR(total_out, total_in, 1e-10);
  }
}

TEST(DeferralKernel, UniformArrivalWeightsDifferFromDiscrete) {
  const DemandProfile discrete =
      small_profile(LagNormalization::kDiscrete, 1.5);
  const DeferralKernel start(discrete, LagConvention::kPeriodStart);
  const DeferralKernel uniform(discrete, LagConvention::kUniformArrival);
  // For a decreasing w, the uniform average over [L-1, L] exceeds the
  // endpoint sample at L.
  EXPECT_GT(uniform.pair_volume(0, 1, 1.0), start.pair_volume(0, 1, 1.0));
}

TEST(DeferralKernel, MaxSafeRewardEqualsNormalizationUnderMatchedConvention) {
  const double P = 1.5;
  // Discrete normalization + period-start lags: outflow at uniform reward r
  // is demand * r / P, so the bound is exactly P.
  const DeferralKernel discrete(
      small_profile(LagNormalization::kDiscrete, P),
      LagConvention::kPeriodStart);
  EXPECT_NEAR(discrete.max_safe_reward(), P, 1e-9);

  // Continuous normalization + uniform arrivals: the Gauss-quadrature lag
  // weights approximate the exact integral, so the bound is P up to
  // quadrature error.
  const DeferralKernel continuous(
      small_profile(LagNormalization::kContinuous, P),
      LagConvention::kUniformArrival);
  EXPECT_NEAR(continuous.max_safe_reward(), P, 1e-3);

  // Mismatched (discrete normalization, uniform lags): strictly lower.
  const DeferralKernel mismatched(
      small_profile(LagNormalization::kDiscrete, P),
      LagConvention::kUniformArrival);
  EXPECT_LT(mismatched.max_safe_reward(), P);
}

TEST(DeferralKernel, PaperProfileKernelProperties) {
  const auto model = paper::static_model_48();
  const DeferralKernel& kernel = model.kernel();
  EXPECT_TRUE(kernel.linear());
  EXPECT_EQ(kernel.periods(), 48u);
  EXPECT_NEAR(kernel.max_safe_reward(),
              paper::kStaticNormalizationReward, 1e-9);
}

TEST(LagWeight, MatchesDirectEvaluation) {
  const PowerLawWaitingFunction w(2.0, 12, 1.0);
  EXPECT_DOUBLE_EQ(lag_weight(w, 0.5, 3, LagConvention::kPeriodStart),
                   w.value(0.5, 3.0));
  // Uniform average over [2, 3] of a decreasing function lies between the
  // endpoint values.
  const double avg = lag_weight(w, 0.5, 3, LagConvention::kUniformArrival);
  EXPECT_GT(avg, w.value(0.5, 3.0));
  EXPECT_LT(avg, w.value(0.5, 2.0));
}

}  // namespace
}  // namespace tdp
