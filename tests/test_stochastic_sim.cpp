#include "dynamic/stochastic_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "dynamic/paper_dynamic.hpp"

namespace tdp {
namespace {

DynamicModel two_period_model(double capacity) {
  DemandProfile arrivals(2);
  auto w = std::make_shared<PowerLawWaitingFunction>(
      1.0, 2, 1.0, 1.0, LagNormalization::kContinuous);
  arrivals.add_class(0, {w, 10.0});
  arrivals.add_class(1, {w, 4.0});
  return DynamicModel(std::move(arrivals), capacity,
                      math::PiecewiseLinearCost::hinge(1.0));
}

TEST(StochasticSim, DeterministicBySeed) {
  const DynamicModel model = two_period_model(9.0);
  StochasticSimOptions options;
  options.days = 5;
  const auto a = simulate_stochastic(model, {0.3, 0.1}, options);
  const auto b = simulate_stochastic(model, {0.3, 0.1}, options);
  EXPECT_EQ(a.sessions_simulated, b.sessions_simulated);
  EXPECT_DOUBLE_EQ(a.mean_total_cost, b.mean_total_cost);
  options.seed += 1;
  const auto c = simulate_stochastic(model, {0.3, 0.1}, options);
  EXPECT_NE(a.mean_total_cost, c.mean_total_cost);
}

TEST(StochasticSim, MeanArrivalsMatchFluidModel) {
  const DynamicModel model = two_period_model(9.0);
  const math::Vector rewards = {0.4, 0.2};
  const auto fluid = model.evaluate(rewards);
  StochasticSimOptions options;
  options.days = 400;
  options.mean_session_size = 0.1;
  const auto sim = simulate_stochastic(model, rewards, options);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(sim.mean_arrivals[i], fluid.arrivals[i],
                0.03 * fluid.arrivals[i] + 0.05)
        << "period " << i;
  }
  EXPECT_NEAR(sim.mean_reward_cost, fluid.reward_cost,
              0.05 * fluid.reward_cost + 0.05);
  EXPECT_EQ(sim.probability_clamps, 0u);
}

TEST(StochasticSim, SmallerSessionsApproachFluidBacklog) {
  // As the mean session size b -> 0 the arrival process concentrates and
  // the realized backlog cost converges to the fluid prediction (Prop. 5's
  // fluid reduction is the law-of-large-numbers limit). Near the capacity
  // knife edge the large-b gap is huge (queueing variance the fluid model
  // ignores), so the meaningful property is monotone convergence plus
  // closeness for small sessions.
  const DynamicModel model = two_period_model(8.0);  // period 0 congested
  const math::Vector rewards = {0.0, 0.1};
  const auto fluid = model.evaluate(rewards);
  ASSERT_GT(fluid.backlog_cost, 0.5);

  std::vector<double> gaps;
  for (double b : {0.4, 0.1, 0.02}) {
    StochasticSimOptions options;
    options.mean_session_size = b;
    options.days = 300;
    const auto sim = simulate_stochastic(model, rewards, options);
    gaps.push_back(std::abs(sim.mean_backlog_cost - fluid.backlog_cost) /
                   fluid.backlog_cost);
  }
  EXPECT_LT(gaps[1], gaps[0]);
  EXPECT_LT(gaps[2], gaps[1]);
  EXPECT_LT(gaps[2], 0.35);
}

TEST(StochasticSim, DeferralFollowsRewards) {
  const DynamicModel model = two_period_model(9.0);
  StochasticSimOptions options;
  options.days = 100;
  const auto none = simulate_stochastic(model, {0.0, 0.0}, options);
  EXPECT_EQ(none.sessions_deferred, 0u);
  const auto some = simulate_stochastic(model, {0.5, 0.5}, options);
  EXPECT_GT(some.sessions_deferred, 0u);
  const auto more = simulate_stochastic(model, {0.9, 0.9}, options);
  EXPECT_GT(more.sessions_deferred, some.sessions_deferred);
}

TEST(StochasticSim, PaperModelEndToEnd) {
  // Smoke-scale run of the full 48-period paper model.
  const DynamicModel model = paper::dynamic_model_48();
  StochasticSimOptions options;
  options.days = 10;
  const auto sim = simulate_stochastic(model, math::Vector(48, 0.2), options);
  EXPECT_GT(sim.sessions_simulated, 10000u);
  EXPECT_GT(sim.sessions_deferred, 100u);
  EXPECT_GT(sim.mean_total_cost, 0.0);
  EXPECT_EQ(sim.probability_clamps, 0u);
}

TEST(StochasticSim, RejectsBadOptions) {
  const DynamicModel model = two_period_model(9.0);
  StochasticSimOptions options;
  options.mean_session_size = 0.0;
  EXPECT_THROW(simulate_stochastic(model, {0.0, 0.0}, options),
               PreconditionError);
  options.mean_session_size = 0.5;
  options.days = 0;
  EXPECT_THROW(simulate_stochastic(model, {0.0, 0.0}, options),
               PreconditionError);
  options.days = 1;
  EXPECT_THROW(simulate_stochastic(model, {0.0}, options),
               PreconditionError);
}

}  // namespace
}  // namespace tdp
