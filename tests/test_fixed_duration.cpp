#include "dynamic/fixed_duration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/numdiff.hpp"

namespace tdp {
namespace {

FixedDurationModel streaming_model(double capacity, double departure = 1.5) {
  DemandProfile arrivals(4);
  auto patient = std::make_shared<PowerLawWaitingFunction>(
      0.5, 4, 1.0, 1.0, LagNormalization::kContinuous);
  auto impatient = std::make_shared<PowerLawWaitingFunction>(
      3.0, 4, 1.0, 1.0, LagNormalization::kContinuous);
  arrivals.add_class(0, {patient, 9.0});
  arrivals.add_class(0, {impatient, 3.0});
  arrivals.add_class(1, {patient, 2.0});
  arrivals.add_class(2, {impatient, 2.0});
  arrivals.add_class(3, {patient, 4.0});
  return FixedDurationModel(std::move(arrivals), departure, capacity,
                            math::PiecewiseLinearCost::hinge(1.0));
}

TEST(FixedDuration, SteadyStateMatchesClosedForm) {
  // Constant arrivals a in every period => N converges to a/d and the mean
  // demand approaches a/d as well.
  DemandProfile arrivals(3);
  auto w = std::make_shared<PowerLawWaitingFunction>(
      1.0, 3, 1.0, 1.0, LagNormalization::kContinuous);
  for (std::size_t i = 0; i < 3; ++i) arrivals.add_class(i, {w, 6.0});
  const double d = 2.0;
  const FixedDurationModel model(std::move(arrivals), d, 100.0,
                                 math::PiecewiseLinearCost::hinge(1.0),
                                 /*warmup_days=*/20);
  const auto ev = model.evaluate(math::Vector(3, 0.0));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(ev.end_demand[i], 6.0 / d, 1e-6);
    EXPECT_NEAR(ev.mean_demand[i], 6.0 / d, 1e-6);
  }
  EXPECT_DOUBLE_EQ(ev.quality_cost, 0.0);  // ample capacity
}

TEST(FixedDuration, FasterDeparturesLowerTheLoad) {
  const auto slow = streaming_model(100.0, 0.5);
  const auto fast = streaming_model(100.0, 3.0);
  const auto ev_slow = slow.evaluate(math::Vector(4, 0.0));
  const auto ev_fast = fast.evaluate(math::Vector(4, 0.0));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(ev_slow.mean_demand[i], ev_fast.mean_demand[i]);
  }
}

class FixedDurationGradient : public ::testing::TestWithParam<int> {};

TEST_P(FixedDurationGradient, AnalyticMatchesNumeric) {
  const FixedDurationModel model = streaming_model(5.0);
  Rng rng(static_cast<std::uint64_t>(70 + GetParam()));
  math::Vector rewards(4);
  for (double& r : rewards) r = rng.uniform(0.05, 0.9);
  const double mu = 0.05;
  math::Vector analytic(4, 0.0);
  model.smoothed_gradient(rewards, mu, analytic);
  const math::Vector numeric = math::numeric_gradient(
      [&model, mu](const math::Vector& p) {
        return model.smoothed_cost(p, mu);
      },
      rewards, 1e-6);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(analytic[i], numeric[i], 1e-5) << "coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedDurationGradient, ::testing::Range(1, 7));

TEST(FixedDuration, ObjectiveIsConvex) {
  const FixedDurationModel model = streaming_model(5.0);
  Rng rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    math::Vector a(4);
    math::Vector b(4);
    for (std::size_t i = 0; i < 4; ++i) {
      a[i] = rng.uniform(0.0, 1.0);
      b[i] = rng.uniform(0.0, 1.0);
    }
    math::Vector mid(4);
    for (std::size_t i = 0; i < 4; ++i) mid[i] = 0.5 * (a[i] + b[i]);
    EXPECT_LE(model.total_cost(mid),
              0.5 * (model.total_cost(a) + model.total_cost(b)) + 1e-9);
  }
}

TEST(FixedDuration, OptimizerRelievesQualityDegradation) {
  const FixedDurationModel model = streaming_model(5.0);
  const FixedDurationSolution sol = optimize_fixed_duration_prices(model);
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.evaluation.total_cost, sol.tip_cost);
  EXPECT_LT(sol.evaluation.quality_cost,
            model.evaluate(math::Vector(4, 0.0)).quality_cost);
  double max_reward = 0.0;
  for (double p : sol.rewards) max_reward = std::max(max_reward, p);
  EXPECT_LE(max_reward, model.reward_cap() + 1e-9);
  EXPECT_GT(max_reward, 0.0);
}

TEST(FixedDuration, ArrivalConservation) {
  const FixedDurationModel model = streaming_model(5.0);
  const math::Vector rewards = {0.2, 0.6, 0.1, 0.4};
  const auto ev = model.evaluate(rewards);
  double total = 0.0;
  for (double a : ev.arrivals) total += a;
  EXPECT_NEAR(total, model.arrivals().total_demand(), 1e-9);
}

TEST(FixedDuration, RejectsBadParameters) {
  DemandProfile arrivals(3);
  auto w = std::make_shared<PowerLawWaitingFunction>(1.0, 3, 1.0);
  arrivals.add_class(0, {w, 1.0});
  EXPECT_THROW(FixedDurationModel(arrivals, 0.0, 10.0,
                                  math::PiecewiseLinearCost::hinge(1.0)),
               PreconditionError);
  EXPECT_THROW(FixedDurationModel(arrivals, 1.0, -1.0,
                                  math::PiecewiseLinearCost::hinge(1.0)),
               PreconditionError);
}

}  // namespace
}  // namespace tdp
