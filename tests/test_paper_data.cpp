#include "core/paper_data.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tdp::paper {
namespace {

TEST(PaperData, Table7TotalsReproduceTable5) {
  // Table V's published totals, in 10 MBps units (each value covers two
  // consecutive half-hour periods). Note: the paper's Table V lists 270
  // MBps for periods 45&46, but its own Table VII mix for those periods
  // sums to 26 units (260 MBps); Table VII is authoritative here — it is
  // the input the models consume and it reproduces the paper's exact
  // $4.26/user TIP cost.
  const std::vector<double> table5_pairs = {23, 20, 16, 13, 9,  8,
                                            7,  8,  11, 13, 17, 23,
                                            20, 20, 20, 22, 22, 23,
                                            22, 24, 23, 26, 26, 27};
  const auto demand = table5_demand_48();
  ASSERT_EQ(demand.size(), 48u);
  for (std::size_t pair = 0; pair < 24; ++pair) {
    EXPECT_DOUBLE_EQ(demand[2 * pair], table5_pairs[pair]) << pair;
    EXPECT_DOUBLE_EQ(demand[2 * pair + 1], table5_pairs[pair]) << pair;
  }
}

TEST(PaperData, Table8TotalsReproduceTable9) {
  const std::vector<double> table9 = {22, 13, 8,  8,  11, 19,
                                      20, 23, 24, 25, 23, 26};
  const auto demand = table9_demand_12();
  ASSERT_EQ(demand.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(demand[i], table9[i]) << "period " << i + 1;
  }
}

TEST(PaperData, Table11MixesSumToTheirLabel) {
  for (int total = 18; total <= 26; ++total) {
    const MixRow mix = table11_period1_mix(total);
    double sum = 0.0;
    for (double v : mix) sum += v;
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(total));
  }
  EXPECT_THROW(table11_period1_mix(17), PreconditionError);
  EXPECT_THROW(table11_period1_mix(27), PreconditionError);
}

TEST(PaperData, Table13PerturbationKeepsPeriod1Total) {
  // The mis-estimated period-1 mix still sums to 22 units (same demand,
  // different patience composition).
  const MixRow mix = table13_period1_mix();
  double sum = 0.0;
  for (double v : mix) sum += v;
  EXPECT_DOUBLE_EQ(sum, 22.0);
}

TEST(PaperData, Table15RowCountAndPositivity) {
  const auto mix = table15_mix_12();
  ASSERT_EQ(mix.size(), 12u);
  for (const MixRow& row : mix) {
    double sum = 0.0;
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_GT(sum, 0.0);
  }
}

TEST(PaperData, SessionExamplesCoverAllPatienceIndices) {
  for (std::size_t s = 0; s < kPatienceIndices.size(); ++s) {
    EXPECT_FALSE(session_example(s).empty());
  }
  EXPECT_EQ(session_example(0), "File backup");
  EXPECT_EQ(session_example(9), "Live sporting event");
  EXPECT_THROW(session_example(10), PreconditionError);
}

TEST(PaperData, ModelBuildersAreConsistent) {
  const StaticModel m48 = static_model_48();
  EXPECT_EQ(m48.periods(), 48u);
  EXPECT_DOUBLE_EQ(m48.capacity()[0], kStaticCapacityUnits);
  EXPECT_DOUBLE_EQ(m48.max_reward(), kStaticCostSlope);

  const StaticModel m12 = static_model_12();
  EXPECT_EQ(m12.periods(), 12u);
  EXPECT_NEAR(m12.demand().total_demand(), 222.0, 1e-12);
}

TEST(PaperData, PerturbedModelSwapsOnlyPeriod1) {
  const StaticModel base = static_model_12();
  const StaticModel perturbed =
      static_model_12_with_period1(table11_period1_mix(18));
  EXPECT_DOUBLE_EQ(perturbed.demand().tip_demand(0), 18.0);
  for (std::size_t i = 1; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(perturbed.demand().tip_demand(i),
                     base.demand().tip_demand(i));
  }
}

TEST(PaperData, NormalizationIsHalfTheMarginalCost) {
  EXPECT_DOUBLE_EQ(kStaticNormalizationReward, kStaticCostSlope / 2.0);
}

}  // namespace
}  // namespace tdp::paper
