#!/usr/bin/env python3
"""Gate the kernel perf suite: speedup floors + wall-time regression.

Reads the BENCH_kernel.json written by bench_kernel_suite and fails (exit 1)
when either

  * a machine-independent speedup ratio is below its floor (the fused static
    solve must stay >= 5x the reference objective, the incremental online
    re-solve >= 3x the full-recompute golden section), or
  * a wall-time field regressed more than --tolerance (default 15%) against
    the checked-in baseline, after normalizing both runs by their
    calibration_seconds (a fixed reference workload timed in-process, so the
    gate measures code changes rather than host-speed changes).

Usage:
  tools/check_bench_regression.py BENCH_kernel.json \
      [--baseline bench/baselines/BENCH_kernel.baseline.json] \
      [--tolerance 0.15] [--min-static-speedup 5] [--min-online-speedup 3] \
      [--update]

--update rewrites the baseline from the current run (after the speedup
floors pass) instead of comparing.

`--suite horizon` gates BENCH_horizon.json from bench_horizon instead: no
speedup floors (the long-horizon loop has no reference/fused pair), just
the normalized wall-time regression on every *_seconds field — the
multi-day loop, checkpoint encode/decode, and restore:

  tools/check_bench_regression.py --suite horizon BENCH_horizon.json \
      [--baseline bench/baselines/BENCH_horizon.baseline.json] [--update]

`--suite mechanism` gates BENCH_mechanism.json from bench_mechanism_arena:
the mechanism ordering on peak-to-average reduction must hold
(day_ahead_oracle >= tube_online >= flat_tip, up to --ordering-epsilon),
tube_online must clear a reduction floor (--min-tube-reduction, default
0.05), flat_tip must stay at zero reduction (it publishes no rewards), and
every *_seconds field is gated against the baseline like the other suites:

  tools/check_bench_regression.py --suite mechanism BENCH_mechanism.json \
      [--baseline bench/baselines/BENCH_mechanism.baseline.json] [--update]

`--suite storm` gates BENCH_storm.json from bench_storm_recovery: the
pricer must retain most of its peak-to-average reduction through a
20%-duty storm (--min-p2a-retention, default 0.85), streaming v2
checkpoint commits must stay cheap next to the bare period loop
(--max-stream-overhead, default 0.15 at CI scale; the <5% acceptance
claim is measured at 1M users), and every *_seconds field — including
recovery_wall_seconds, the crash-under-storm recovery ceiling — is gated
against the baseline like the other suites:

  tools/check_bench_regression.py --suite storm BENCH_storm.json \
      [--baseline bench/baselines/BENCH_storm.baseline.json] [--update]

`--suite fleet` gates BENCH_fleet.json from `bench_fleet_scale ... --out`:
every cell's sessions_per_second must clear the absolute floor
(--min-sessions-per-second, default 0 = disabled; the 1M-user acceptance
gate passes 1e7), the parallel 1M-user cell's fleet_wall_seconds must stay
under --max-fleet-wall-seconds when given (the sub-second acceptance
ceiling), normalized throughput must not drop more than --tolerance below
the baseline, and every *_seconds field is gated against the baseline like
the other suites:

  tools/check_bench_regression.py --suite fleet BENCH_fleet.json \
      [--baseline bench/baselines/BENCH_fleet.baseline.json] \
      [--min-sessions-per-second 1e7] [--max-fleet-wall-seconds 1.0] \
      [--update]

`--suite incident` gates BENCH_incident.json from bench_incident: the calm
run must open zero incidents (--max-false-incidents, default 0 — sensitive
alerts are fine, opened incidents are not), every injected storm onset must
be answered by the matching detector (onsets_detected == onsets_total) with
max_detection_lag_periods <= --max-detection-lag (default 4), the
engine-on-vs-off overhead must stay under --max-incident-overhead (default
0.15 at CI scale; the <=1% acceptance claim is measured at 1M users), and
every *_seconds field is gated against the baseline like the other suites:

  tools/check_bench_regression.py --suite incident BENCH_incident.json \
      [--baseline bench/baselines/BENCH_incident.baseline.json] [--update]

A second mode gates telemetry overhead instead: give it the stdout logs of
two bench_fleet_scale runs — one with observability on (TDP_OBS=1
TDP_TRACE=1), one with it off (TDP_OBS=0) — and it compares the
`fleet_wall_seconds` of matching (users, threads) cells, taking the min
across repetitions, and fails when telemetry costs more than
--overhead-tolerance (default 5%):

  tools/check_bench_regression.py \
      --fleet-overhead fleet_obs_on.log fleet_obs_off.log \
      [--overhead-tolerance 0.05]

Same-process comparison needs no calibration: both logs should come from
the same host, back to back.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

WALL_SUFFIX = "_seconds"


def load(path: Path) -> dict:
    with path.open() as handle:
        data = json.load(handle)
    if data.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {data.get('schema')!r}")
    return data


def check_speedup_floors(current: dict, floors: dict[str, tuple[str, float]]
                         ) -> list[str]:
    failures = []
    benches = current.get("benches", {})
    for bench, (field, floor) in floors.items():
        entry = benches.get(bench)
        if entry is None:
            failures.append(f"missing bench '{bench}' in current run")
            continue
        value = entry.get(field)
        if value is None:
            failures.append(f"{bench}: missing field '{field}'")
        elif value < floor:
            failures.append(
                f"{bench}: {field} = {value:.2f}x below the {floor:.0f}x floor")
        else:
            print(f"  OK  {bench}.{field} = {value:.1f}x (floor {floor:.0f}x)")
    return failures


def check_wall_regressions(current: dict, baseline: dict,
                           tolerance: float) -> list[str]:
    failures = []
    cur_cal = current.get("calibration_seconds", 0.0)
    base_cal = baseline.get("calibration_seconds", 0.0)
    if cur_cal <= 0.0 or base_cal <= 0.0:
        return ["calibration_seconds missing or non-positive; "
                "cannot normalize wall times"]

    for bench, base_entry in baseline.get("benches", {}).items():
        cur_entry = current.get("benches", {}).get(bench)
        if cur_entry is None:
            failures.append(f"missing bench '{bench}' present in baseline")
            continue
        for field, base_value in base_entry.items():
            if not field.endswith(WALL_SUFFIX):
                continue
            cur_value = cur_entry.get(field)
            if cur_value is None:
                failures.append(f"{bench}: missing wall field '{field}'")
                continue
            if base_value <= 0.0:
                continue
            ratio = (cur_value / cur_cal) / (base_value / base_cal)
            label = f"{bench}.{field}"
            if ratio > 1.0 + tolerance:
                failures.append(
                    f"{label}: {ratio:.2f}x the baseline "
                    f"(normalized; tolerance {1.0 + tolerance:.2f}x)")
            else:
                print(f"  OK  {label}: {ratio:.2f}x baseline (normalized)")
    return failures


def check_mechanism_ordering(current: dict, epsilon: float,
                             min_tube_reduction: float) -> list[str]:
    """The arena's ranking invariant: perfect day-ahead information beats
    the online pricer, which beats doing nothing."""
    failures = []
    benches = current.get("benches", {})
    reductions = {}
    for arm in ("arena_flat_tip", "arena_tube_online",
                "arena_day_ahead_oracle"):
        entry = benches.get(arm)
        if entry is None or "p2a_reduction" not in entry:
            failures.append(f"missing bench '{arm}' with p2a_reduction")
            continue
        reductions[arm] = entry["p2a_reduction"]
    if failures:
        return failures

    flat = reductions["arena_flat_tip"]
    tube = reductions["arena_tube_online"]
    oracle = reductions["arena_day_ahead_oracle"]
    print(f"  p2a_reduction: oracle {oracle:.3f} / tube {tube:.3f} / "
          f"flat {flat:.3f}")
    if oracle + epsilon < tube:
        failures.append(
            f"ordering violated: oracle {oracle:.3f} < tube {tube:.3f}")
    if tube + epsilon < flat:
        failures.append(
            f"ordering violated: tube {tube:.3f} < flat {flat:.3f}")
    if tube < min_tube_reduction:
        failures.append(
            f"tube_online p2a_reduction {tube:.3f} below the "
            f"{min_tube_reduction:.2f} floor")
    if abs(flat) > epsilon:
        failures.append(
            f"flat_tip p2a_reduction {flat:.3f} is not zero "
            f"(it publishes no rewards)")
    return failures


def check_storm_resilience(current: dict, min_retention: float,
                           max_stream_overhead: float) -> list[str]:
    """The storm suite's machine-independent gates: P2A retention under
    the 20%-duty storm and the streaming-checkpoint overhead ceiling."""
    failures = []
    benches = current.get("benches", {})

    week = benches.get("storm_week")
    if week is None or "p2a_retention" not in week:
        failures.append("missing bench 'storm_week' with p2a_retention")
    else:
        retention = week["p2a_retention"]
        if retention < min_retention:
            failures.append(
                f"storm_week: p2a_retention {retention:.3f} below the "
                f"{min_retention:.2f} floor (storm-mode P2A drift too large)")
        else:
            print(f"  OK  storm_week.p2a_retention = {retention:.3f} "
                  f"(floor {min_retention:.2f})")

    overhead_entry = benches.get("stream_overhead")
    if (overhead_entry is None
            or "stream_overhead_fraction" not in overhead_entry):
        failures.append(
            "missing bench 'stream_overhead' with stream_overhead_fraction")
    else:
        overhead = overhead_entry["stream_overhead_fraction"]
        if overhead > max_stream_overhead:
            failures.append(
                f"stream_overhead: {overhead:.3f} above the "
                f"{max_stream_overhead:.2f} ceiling")
        else:
            print(f"  OK  stream_overhead.stream_overhead_fraction = "
                  f"{overhead:.3f} (ceiling {max_stream_overhead:.2f})")
    return failures


def check_incident_engine(current: dict, max_detection_lag: float,
                          max_false_incidents: float,
                          max_overhead: float) -> list[str]:
    """The incident suite's machine-independent gates: zero false incidents
    on the calm run, every storm onset detected within the lag ceiling, and
    the pure-observer overhead ceiling."""
    failures = []
    benches = current.get("benches", {})

    calm = benches.get("incident_calm")
    if calm is None or "false_incidents" not in calm:
        failures.append("missing bench 'incident_calm' with false_incidents")
    else:
        false_incidents = calm["false_incidents"]
        if false_incidents > max_false_incidents:
            failures.append(
                f"incident_calm: {false_incidents:.0f} incidents opened on "
                f"the calm run (ceiling {max_false_incidents:.0f})")
        else:
            print(f"  OK  incident_calm.false_incidents = "
                  f"{false_incidents:.0f} (ceiling {max_false_incidents:.0f})")

    detection = benches.get("incident_detection")
    if detection is None or "onsets_total" not in detection:
        failures.append("missing bench 'incident_detection' with onset counts")
    else:
        total = detection.get("onsets_total", 0.0)
        detected = detection.get("onsets_detected", 0.0)
        lag = detection.get("max_detection_lag_periods")
        if total <= 0.0:
            failures.append("incident_detection: no storm onsets in the run "
                            "(nothing was tested)")
        elif detected < total:
            failures.append(
                f"incident_detection: only {detected:.0f}/{total:.0f} "
                f"storm onsets answered by the matching detector")
        else:
            print(f"  OK  incident_detection: {detected:.0f}/{total:.0f} "
                  f"onsets answered")
        if lag is None:
            failures.append(
                "incident_detection: missing max_detection_lag_periods")
        elif lag > max_detection_lag:
            failures.append(
                f"incident_detection: max_detection_lag_periods {lag:.0f} "
                f"above the {max_detection_lag:.0f} ceiling")
        else:
            print(f"  OK  incident_detection.max_detection_lag_periods = "
                  f"{lag:.0f} (ceiling {max_detection_lag:.0f})")

    overhead_entry = benches.get("incident_overhead")
    if (overhead_entry is None
            or "incident_overhead_fraction" not in overhead_entry):
        failures.append("missing bench 'incident_overhead' with "
                        "incident_overhead_fraction")
    else:
        overhead = overhead_entry["incident_overhead_fraction"]
        if overhead > max_overhead:
            failures.append(
                f"incident_overhead: {overhead:.3f} above the "
                f"{max_overhead:.2f} ceiling")
        else:
            print(f"  OK  incident_overhead.incident_overhead_fraction = "
                  f"{overhead:.3f} (ceiling {max_overhead:.2f})")
    return failures


def check_fleet_throughput(current: dict, baseline: dict | None,
                           min_sessions_per_second: float,
                           max_fleet_wall_seconds: float,
                           tolerance: float) -> list[str]:
    """The fleet suite's throughput gates: absolute sessions/s floor and
    wall ceiling on every cell, plus a calibration-normalized throughput
    drop check against the baseline (wall-time regressions on *_seconds
    fields ride the generic check)."""
    failures = []
    benches = current.get("benches", {})
    if not benches:
        return ["fleet suite: no benches in current run"]

    for bench, entry in sorted(benches.items()):
        sps = entry.get("sessions_per_second")
        if sps is None:
            failures.append(f"{bench}: missing sessions_per_second")
            continue
        if min_sessions_per_second > 0.0:
            if sps < min_sessions_per_second:
                failures.append(
                    f"{bench}: {sps / 1e6:.2f}M sessions/s below the "
                    f"{min_sessions_per_second / 1e6:.1f}M floor")
            else:
                print(f"  OK  {bench}.sessions_per_second = "
                      f"{sps / 1e6:.2f}M (floor "
                      f"{min_sessions_per_second / 1e6:.1f}M)")
        wall = entry.get("fleet_wall_seconds")
        if (max_fleet_wall_seconds > 0.0 and wall is not None
                and wall > max_fleet_wall_seconds):
            failures.append(
                f"{bench}: fleet_wall_seconds {wall:.3f} above the "
                f"{max_fleet_wall_seconds:.2f}s ceiling")

    if baseline is None:
        return failures
    cur_cal = current.get("calibration_seconds", 0.0)
    base_cal = baseline.get("calibration_seconds", 0.0)
    if cur_cal <= 0.0 or base_cal <= 0.0:
        return failures + ["calibration_seconds missing or non-positive; "
                           "cannot normalize throughput"]
    for bench, base_entry in baseline.get("benches", {}).items():
        base_sps = base_entry.get("sessions_per_second")
        cur_entry = benches.get(bench)
        if base_sps is None or base_sps <= 0.0:
            continue
        if cur_entry is None or "sessions_per_second" not in cur_entry:
            failures.append(f"missing bench '{bench}' present in baseline")
            continue
        # sessions/s scales inversely with host speed, so multiply by the
        # calibration time to get a host-independent throughput figure.
        ratio = ((cur_entry["sessions_per_second"] * cur_cal)
                 / (base_sps * base_cal))
        label = f"{bench}.sessions_per_second"
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{label}: {ratio:.2f}x the baseline "
                f"(normalized; tolerance {1.0 - tolerance:.2f}x)")
        else:
            print(f"  OK  {label}: {ratio:.2f}x baseline (normalized)")
    return failures


BENCH_JSON_PREFIX = "BENCH_JSON "


def parse_bench_log(path: Path) -> dict[tuple[int, int], float]:
    """Extract min fleet_wall_seconds per (users, threads) cell from the
    BENCH_JSON lines of a bench_fleet_scale stdout log."""
    cells: dict[tuple[int, int], float] = {}
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith(BENCH_JSON_PREFIX):
                continue
            record = json.loads(line[len(BENCH_JSON_PREFIX):])
            wall = record.get("fleet_wall_seconds")
            if wall is None:
                continue
            key = (int(record["users"]), int(record["threads"]))
            cells[key] = min(wall, cells.get(key, float("inf")))
    if not cells:
        sys.exit(f"{path}: no BENCH_JSON lines with fleet_wall_seconds")
    return cells


def check_fleet_overhead(on_log: Path, off_log: Path,
                         tolerance: float) -> int:
    on_cells = parse_bench_log(on_log)
    off_cells = parse_bench_log(off_log)
    failures = []
    for key in sorted(off_cells):
        users, threads = key
        label = f"fleet_scale[users={users}, threads={threads}]"
        if key not in on_cells:
            failures.append(f"{label}: missing from telemetry-on log")
            continue
        on_wall, off_wall = on_cells[key], off_cells[key]
        if off_wall <= 0.0:
            continue
        ratio = on_wall / off_wall
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{label}: telemetry-on {on_wall:.3f}s is {ratio:.3f}x "
                f"telemetry-off {off_wall:.3f}s "
                f"(tolerance {1.0 + tolerance:.2f}x)")
        else:
            print(f"  OK  {label}: on {on_wall:.3f}s / off {off_wall:.3f}s "
                  f"= {ratio:.3f}x")
    if failures:
        print("telemetry overhead gate FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("telemetry overhead gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, nargs="?",
                        help="BENCH_kernel.json / BENCH_horizon.json from "
                             "this run")
    parser.add_argument("--suite",
                        choices=("kernel", "horizon", "mechanism", "storm",
                                 "fleet", "incident"),
                        default="kernel",
                        help="which bench suite the input comes from; "
                             "'horizon' skips the kernel speedup floors, "
                             "'mechanism' checks the arena ordering, "
                             "'storm' checks P2A retention and streaming "
                             "overhead, 'fleet' checks throughput floors "
                             "and the day wall ceiling, 'incident' checks "
                             "detection lag / false incidents / engine "
                             "overhead instead")
    parser.add_argument("--fleet-overhead", nargs=2, type=Path,
                        metavar=("ON_LOG", "OFF_LOG"),
                        help="compare bench_fleet_scale stdout logs with "
                             "telemetry on vs off instead of the kernel gate")
    parser.add_argument("--overhead-tolerance", type=float, default=0.05,
                        help="allowed telemetry-on slowdown (0.05 = 5%%)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="defaults to bench/baselines/"
                             "BENCH_<suite>.baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed normalized wall-time regression "
                             "(0.15 = 15%%)")
    parser.add_argument("--min-static-speedup", type=float, default=5.0)
    parser.add_argument("--min-online-speedup", type=float, default=3.0)
    parser.add_argument("--min-tube-reduction", type=float, default=0.05,
                        help="floor on tube_online's p2a_reduction in the "
                             "mechanism suite")
    parser.add_argument("--ordering-epsilon", type=float, default=0.01,
                        help="slack allowed in the mechanism-ordering "
                             "comparisons")
    parser.add_argument("--min-p2a-retention", type=float, default=0.85,
                        help="floor on storm_week.p2a_retention in the "
                             "storm suite")
    parser.add_argument("--max-stream-overhead", type=float, default=0.15,
                        help="ceiling on stream_overhead_fraction in the "
                             "storm suite")
    parser.add_argument("--max-detection-lag", type=float, default=4.0,
                        help="ceiling on max_detection_lag_periods in the "
                             "incident suite")
    parser.add_argument("--max-false-incidents", type=float, default=0.0,
                        help="ceiling on the calm run's opened incidents in "
                             "the incident suite")
    parser.add_argument("--max-incident-overhead", type=float, default=0.15,
                        help="ceiling on incident_overhead_fraction in the "
                             "incident suite (CI scale; the acceptance "
                             "claim is <=1%% at 1M users)")
    parser.add_argument("--min-sessions-per-second", type=float, default=0.0,
                        help="absolute throughput floor for every fleet "
                             "cell (0 disables; the acceptance gate uses "
                             "1e7 at 1M users)")
    parser.add_argument("--max-fleet-wall-seconds", type=float, default=0.0,
                        help="absolute ceiling on fleet_wall_seconds for "
                             "every fleet cell (0 disables)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    args = parser.parse_args()

    if args.fleet_overhead:
        on_log, off_log = args.fleet_overhead
        return check_fleet_overhead(on_log, off_log, args.overhead_tolerance)
    if args.current is None:
        parser.error("pass BENCH_kernel.json, or use --fleet-overhead")
    if args.baseline is None:
        args.baseline = Path(
            f"bench/baselines/BENCH_{args.suite}.baseline.json")

    current = load(args.current)
    print(f"checking {args.current} (suite: {args.suite})")
    floors = {}
    if args.suite == "kernel":
        floors = {
            "static_solve": ("speedup", args.min_static_speedup),
            "online_resolve": ("speedup", args.min_online_speedup),
        }
    failures = check_speedup_floors(current, floors)
    if args.suite == "mechanism":
        failures += check_mechanism_ordering(current, args.ordering_epsilon,
                                             args.min_tube_reduction)
    if args.suite == "storm":
        failures += check_storm_resilience(current, args.min_p2a_retention,
                                           args.max_stream_overhead)
    if args.suite == "fleet":
        failures += check_fleet_throughput(current, None,
                                           args.min_sessions_per_second,
                                           args.max_fleet_wall_seconds,
                                           args.tolerance)
    if args.suite == "incident":
        failures += check_incident_engine(current, args.max_detection_lag,
                                          args.max_false_incidents,
                                          args.max_incident_overhead)

    if args.update:
        if failures:
            print("refusing to update baseline with failing speedup floors:")
            for failure in failures:
                print(f"  FAIL {failure}")
            return 1
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if args.baseline.exists():
        baseline = load(args.baseline)
        failures += check_wall_regressions(current, baseline,
                                           args.tolerance)
        if args.suite == "fleet":
            failures += check_fleet_throughput(current, baseline, 0.0, 0.0,
                                               args.tolerance)
    else:
        print(f"  (no baseline at {args.baseline}; speedup floors only)")

    if failures:
        print("perf gate FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
