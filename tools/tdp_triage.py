#!/usr/bin/env python3
"""Render an incident-engine flight-recorder dump ("TDPI") for triage.

Mirrors the byte layout of src/obs/incident/dump.cpp exactly — the field
order there is frozen as part of the determinism contract, so this reader
must never drift from it. The framing is common/serialize.hpp's: magic[4] +
version u32 LE + payload_size u64 LE, tagged sections (u32 tag + u32 byte
length + body), and a CRC-32 trailer (zlib polynomial) over the payload.

Usage:
  tdp_triage.py DUMP [--journal-jsonl FILE] [--json]

Prints a human-readable triage report: dump position, detector posture,
open/closed incidents with their attribution snapshot (storm regimes,
health-FSM state, last re-anchor decision), the alert stream, and the
flight-recorder timeline. With --journal-jsonl, incident.* journal events
are folded into the timeline. --json emits the parsed dump as JSON instead.
Exits non-zero on a malformed dump. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import zlib

MAGIC = b"TDPI"
VERSION = 1

SEC_META = 1
SEC_CONFIG = 2
SEC_STATE = 3
SEC_WALL = 4

ALERT_KINDS = [
    "measurement_cusum",
    "channel_cusum",
    "solver_cusum",
    "health_edge",
    "p2a_zscore",
    "peak_zscore",
    "pacing_bound",
]
SEVERITIES = ["MINOR", "MAJOR", "CRITICAL"]
OBJECTIVES = [
    "loop_disturbance",
    "fallback_budget",
    "p2a_regression",
    "pacing",
]
HEALTH = ["HEALTHY", "DEGRADED", "FALLBACK"]
REANCHOR = {-1: "none", 0: "adopted", 1: "deferred", 2: "rolled_back",
            3: "frozen"}
RECORDER_KINDS = [
    "disturbance",
    "channel_degraded",
    "solver_starved",
    "health_edge",
    "alert",
    "incident_open",
    "incident_close",
    "settle",
    "day_end",
    "reanchor",
]
DAY_SCOPED_PERIOD = 0xFFFFFFFF


def fail(message: str) -> None:
    print(f"tdp_triage: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class Reader:
    """Little-endian cursor over one section body (or the whole payload)."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            fail("truncated payload")
        out = self.data[self.pos:self.pos + count]
        self.pos += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def boolean(self) -> bool:
        value = self.u8()
        if value > 1:
            fail("bad boolean byte")
        return value != 0

    def string(self) -> str:
        length = self.u32()
        return self.take(length).decode("utf-8")

    def vec_f64(self) -> list:
        count = self.u64()
        if count > (len(self.data) - self.pos) // 8:
            fail("implausible f64 vector count")
        return list(struct.unpack(f"<{count}d", self.take(8 * count)))

    def at_end(self) -> bool:
        return self.pos == len(self.data)


def read_frame(path: str) -> tuple:
    """Validate the outer frame; returns {tag: body_bytes} sections."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        fail(f"{path}: {error}")
    if len(blob) < 20:
        fail(f"{path}: shorter than the smallest possible frame")
    if blob[0:4] != MAGIC:
        fail(f"{path}: bad magic {blob[0:4]!r} (want {MAGIC!r})")
    version, payload_size = struct.unpack("<IQ", blob[4:16])
    if version != VERSION:
        fail(f"{path}: unsupported version {version}")
    if 16 + payload_size + 4 != len(blob):
        fail(f"{path}: payload size {payload_size} does not match file size")
    payload = blob[16:16 + payload_size]
    (crc,) = struct.unpack("<I", blob[16 + payload_size:])
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        fail(f"{path}: CRC mismatch — corrupt dump")

    sections = []
    cursor = Reader(payload)
    while not cursor.at_end():
        tag = cursor.u32()
        length = cursor.u32()
        sections.append((tag, bytes(cursor.take(length))))
    return version, sections


def read_config(r: Reader) -> dict:
    return {
        "enabled": r.boolean(),
        "cusum_k": r.f64(),
        "cusum_h": r.f64(),
        "channel_cusum_k": r.f64(),
        "channel_cusum_h": r.f64(),
        "ewma_alpha": r.f64(),
        "ewma_z": r.f64(),
        "ewma_min_days": r.u64(),
        "pacing_max_ratio": r.f64(),
        "pacing_grace_days": r.u64(),
        "slo_short_window": r.u32(),
        "slo_long_window": r.u32(),
        "slo_short_burn": r.f64(),
        "slo_long_burn": r.f64(),
        "slo_max_fallback_per_day": r.u64(),
        "slo_p2a_floor": r.f64(),
        "slo_p2a_window_days": r.u32(),
        "recorder_capacity": r.u32(),
        "max_alerts": r.u32(),
    }


def enum_name(table, value, what: str) -> str:
    if not 0 <= value < len(table):
        fail(f"bad {what} value {value}")
    return table[value]


def read_state(r: Reader) -> dict:
    state: dict = {
        "next_alert_seq": r.u64(),
        "alerts_dropped": r.u64(),
    }
    alerts = []
    for _ in range(r.u64()):
        alerts.append({
            "seq": r.u64(),
            "day": r.u64(),
            "period": r.u32(),
            "abs_period": r.u64(),
            "kind": enum_name(ALERT_KINDS, r.u8(), "alert kind"),
            "value": r.f64(),
            "threshold": r.f64(),
        })
    state["alerts"] = alerts

    state["next_incident_id"] = r.u64()
    incidents = []
    for _ in range(r.u64()):
        incident = {
            "id": r.u64(),
            "objective": enum_name(OBJECTIVES, r.u8(), "objective"),
            "severity": enum_name(SEVERITIES, r.u8(), "severity"),
            "open_day": r.u64(),
            "open_period": r.u32(),
            "open_abs_period": r.u64(),
            "closed": r.boolean(),
            "close_abs_period": r.u64(),
            "burn_short": r.f64(),
            "burn_long": r.f64(),
        }
        storm = r.u8()
        if storm > 7:
            fail("bad incident storm flags")
        incident["storm_blackout"] = bool(storm & 1)
        incident["storm_channel"] = bool(storm & 2)
        incident["storm_solver"] = bool(storm & 4)
        incident["health"] = enum_name(HEALTH, r.u8(), "health")
        incident["last_reanchor_day"] = r.i64()
        incident["last_reanchor"] = REANCHOR.get(r.i64())
        if incident["last_reanchor"] is None:
            fail("bad reanchor state")
        incidents.append(incident)
    state["incidents"] = incidents

    for name in ("cusum_measurement", "cusum_channel", "cusum_solver"):
        state[name] = {"s": r.f64(), "samples": r.u64(),
                       "firings": r.u64()}
    for name in ("ewma_p2a", "ewma_peak"):
        state[name] = {"mean": r.f64(), "variance": r.f64(),
                       "samples": r.u64()}

    state["has_prev_health"] = r.boolean()
    state["prev_health"] = enum_name(HEALTH, r.u8(), "health")

    slo_size = r.u64()
    state["slo_window"] = [r.u8() for _ in range(slo_size)]
    if any(bit > 1 for bit in state["slo_window"]):
        fail("bad slo window bit")
    state["slo_pos"] = r.u32()
    state["slo_filled"] = r.u64()
    state["p2a_window"] = r.vec_f64()

    state["settles_seen"] = r.u64()
    state["days_seen"] = r.u64()
    state["last_day"] = r.u64()
    state["last_period"] = r.u32()
    state["last_abs_period"] = r.u64()

    storm = r.u8()
    if storm > 7:
        fail("bad storm flags")
    state["storm_blackout"] = bool(storm & 1)
    state["storm_channel"] = bool(storm & 2)
    state["storm_solver"] = bool(storm & 4)
    state["health"] = enum_name(HEALTH, r.u8(), "health")
    state["last_reanchor_day"] = r.i64()
    state["last_reanchor"] = REANCHOR.get(r.i64())
    if state["last_reanchor"] is None:
        fail("bad reanchor state")

    recorder = []
    for _ in range(r.u64()):
        recorder.append({
            "abs_period": r.u64(),
            "kind": enum_name(RECORDER_KINDS, r.u8(), "recorder kind"),
            "a": r.f64(),
            "b": r.f64(),
        })
    state["recorder"] = recorder
    state["recorder_pos"] = r.u32()
    state["recorder_overwritten"] = r.u64()
    return state


def read_wall(r: Reader) -> dict:
    counters = []
    for _ in range(r.u64()):
        name = r.string()
        counters.append((name, r.u64()))
    return {"counters": counters, "commit_latencies": r.vec_f64()}


def parse_dump(path: str) -> dict:
    _, sections = read_frame(path)
    dump: dict = {}
    for tag, body in sections:
        r = Reader(body)
        if tag == SEC_META:
            dump["day"] = r.u64()
            dump["period"] = r.u32()
            flags = r.u8()
            if flags > 1:
                fail("bad dump flags")
            dump["has_wall"] = flags != 0
        elif tag == SEC_CONFIG:
            dump["config"] = read_config(r)
        elif tag == SEC_STATE:
            dump["state"] = read_state(r)
        elif tag == SEC_WALL:
            dump["wall"] = read_wall(r)
        # Unknown tags are skipped (forward compatibility).
        if tag in (SEC_META, SEC_CONFIG, SEC_STATE, SEC_WALL):
            if not r.at_end():
                fail(f"section {tag} has {len(body) - r.pos} trailing bytes")
    for key in ("day", "config", "state"):
        if key not in dump:
            fail(f"dump missing required section ({key})")
    return dump


def recorder_timeline(state: dict) -> list:
    """Chronological recorder entries (the dump stores the unwound ring)."""
    entries = state["recorder"]
    if state["recorder_overwritten"] > 0:
        pos = state["recorder_pos"]
        entries = entries[pos:] + entries[:pos]
    return entries


def load_incident_journal(path: str) -> list:
    events = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if str(event.get("kind", "")).startswith("incident."):
                    events.append(event)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")
    return events


def describe_recorder(entry: dict) -> str:
    kind, a, b = entry["kind"], entry["a"], entry["b"]
    if kind == "disturbance":
        what = "gap" if a >= 1.0 else "repair"
        return f"measurement {what} (lost stripes {int(b)})"
    if kind == "channel_degraded":
        return f"channel degraded: {int(a)} drops, {int(b)} degraded groups"
    if kind == "solver_starved":
        return "solver starved"
    if kind == "health_edge":
        return (f"health {enum_name(HEALTH, int(a), 'health')} -> "
                f"{enum_name(HEALTH, int(b), 'health')}")
    if kind == "alert":
        return f"alert {enum_name(ALERT_KINDS, int(a), 'alert kind')}" \
               f" value={b:g}"
    if kind == "incident_open":
        return (f"incident #{int(a)} OPEN "
                f"({enum_name(OBJECTIVES, int(b), 'objective')})")
    if kind == "incident_close":
        return f"incident #{int(a)} CLOSE after {int(b)} periods"
    if kind == "settle":
        held = " (books held)" if b < 0 else f" pool={b:g}"
        return f"settle: spent={a:g}{held}"
    if kind == "day_end":
        return f"day end: p2a reduction={a:g}, fallback periods={int(b)}"
    if kind == "reanchor":
        return f"reanchor {REANCHOR.get(int(a), '?')} (day {int(b)})"
    return kind


def attribution(entry: dict) -> str:
    storms = [name for name, key in (("blackout", "storm_blackout"),
                                     ("channel", "storm_channel"),
                                     ("solver", "storm_solver"))
              if entry[key]]
    storm_text = "+".join(storms) if storms else "none"
    reanchor = entry["last_reanchor"]
    if reanchor != "none":
        reanchor += f"@day{entry['last_reanchor_day']}"
    return (f"storms={storm_text} health={entry['health']} "
            f"reanchor={reanchor}")


def render(dump: dict, journal_events: list) -> None:
    state = dump["state"]
    config = dump["config"]
    print(f"== TDP incident dump: day {dump['day']}, period "
          f"{dump['period']} ==")
    print(f"observed through abs period {state['last_abs_period']} "
          f"(day {state['last_day']}, period {state['last_period']}); "
          f"{state['days_seen']} days, {state['settles_seen']} settles")
    print(f"current attribution: {attribution(state)}")

    print("\n-- detector posture --")
    for name in ("cusum_measurement", "cusum_channel", "cusum_solver"):
        d = state[name]
        threshold = (config["channel_cusum_h"] if name == "cusum_channel"
                     else config["cusum_h"])
        print(f"  {name}: S={d['s']:g}/{threshold:g} "
              f"({d['samples']} samples, {d['firings']} firings)")
    for name in ("ewma_p2a", "ewma_peak"):
        d = state[name]
        print(f"  {name}: mean={d['mean']:g} var={d['variance']:g} "
              f"({d['samples']} days)")
    bad = sum(state["slo_window"])
    print(f"  slo window: {bad}/{len(state['slo_window'])} bad "
          f"(filled {state['slo_filled']})")

    open_count = sum(1 for i in state["incidents"] if not i["closed"])
    print(f"\n-- incidents: {len(state['incidents'])} total, "
          f"{open_count} open --")
    for incident in state["incidents"]:
        status = ("OPEN" if not incident["closed"]
                  else f"closed@{incident['close_abs_period']}")
        print(f"  #{incident['id']} {incident['objective']} "
              f"{incident['severity']} open@{incident['open_abs_period']} "
              f"{status} burn={incident['burn_short']:g}/"
              f"{incident['burn_long']:g}")
        print(f"      {attribution(incident)}")

    dropped = state["alerts_dropped"]
    suffix = f" ({dropped} dropped past the cap)" if dropped else ""
    print(f"\n-- alerts: {len(state['alerts'])} retained{suffix} --")
    for alert in state["alerts"]:
        where = ("day-scoped" if alert["period"] == DAY_SCOPED_PERIOD
                 else f"p{alert['period']}")
        print(f"  [{alert['seq']}] t={alert['abs_period']} "
              f"(day {alert['day']} {where}) {alert['kind']} "
              f"value={alert['value']:g} threshold={alert['threshold']:g}")

    timeline = recorder_timeline(state)
    overwritten = state["recorder_overwritten"]
    suffix = f" ({overwritten} older entries overwritten)" if overwritten \
        else ""
    print(f"\n-- flight recorder: {len(timeline)} moments{suffix} --")
    for entry in timeline:
        print(f"  t={entry['abs_period']}: {describe_recorder(entry)}")

    if journal_events:
        print(f"\n-- journal cross-reference: {len(journal_events)} "
              f"incident.* events --")
        for event in journal_events:
            fields = event.get("fields", {})
            detail = event.get("detail", "")
            extras = " ".join(f"{k}={v:g}" for k, v in sorted(fields.items()))
            print(f"  [{event.get('seq')}] {event.get('kind')} "
                  f"{detail} {extras}".rstrip())

    if dump.get("has_wall") and "wall" in dump:
        wall = dump["wall"]
        print(f"\n-- wall-clock extras (advisory only) --")
        for name, value in wall["counters"]:
            print(f"  {name}: {value} ns")
        latencies = wall["commit_latencies"]
        if latencies:
            worst = max(latencies)
            print(f"  checkpoint commits: {len(latencies)} "
                  f"(worst {worst * 1e3:.3f} ms)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dump", help="TDPI flight-recorder dump file")
    parser.add_argument("--journal-jsonl",
                        help="journal JSONL to cross-reference incident.* "
                             "events")
    parser.add_argument("--json", action="store_true",
                        help="emit the parsed dump as JSON instead of the "
                             "report")
    args = parser.parse_args()

    dump = parse_dump(args.dump)
    if args.json:
        json.dump(dump, sys.stdout, indent=2)
        print()
        return
    journal_events = (load_incident_journal(args.journal_jsonl)
                      if args.journal_jsonl else [])
    render(dump, journal_events)


if __name__ == "__main__":
    main()
