#!/usr/bin/env python3
"""Schema-check the observability artifacts emitted by examples/observe_day.

Validates:
  --trace FILE    Chrome trace_event JSON: a {"traceEvents": [...]} object
                  whose events have a known phase, and whose B/E events are
                  stack-matched with monotone timestamps within each thread.
  --journal FILE  structured event journal: a JSON array of objects with
                  strictly increasing "seq", known "kind" strings, and
                  numeric fields maps.
  --journal-jsonl FILE
                  the same journal schema in JSONL form (Journal::jsonl():
                  one event object per line), same invariants per event.
  --metrics FILE  registry snapshot JSON: counters/gauges/histograms maps;
                  each histogram's bucket counts must sum to its count.

Exits non-zero with a message on the first violation; prints a one-line
summary per validated file otherwise. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "M"}

# Every journal kind the codebase emits (grep journal_record call sites).
# A new emitter must be added here — the schema check is the tripwire.
KNOWN_KINDS = {
    "batch.solve",
    "channel.fallback",
    "channel.recovery",
    "fleet.measurement_gap",
    "fleet.stripe_lost",
    "guard.repair",
    "horizon.estimation_frozen",
    "horizon.reanchor_adopted",
    "horizon.reanchor_deferred",
    "horizon.reanchor_rolledback",
    "incident.advisory",
    "incident.alert",
    "incident.close",
    "incident.dump",
    "incident.open",
    "mech.publish",
    "mech.settle",
    "pricer.health",
    "pricer.solve",
    "solver.converged",
    "tube.phase",
}


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path: str):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")


def validate_trace(path: str) -> None:
    doc = load_json(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' is not an array")

    stacks: dict[tuple, list] = {}
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: event {index} is not an object")
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            fail(f"{path}: event {index} has unknown phase {phase!r}")
        if phase == "M":
            continue  # metadata events carry no timeline invariants
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{path}: event {index} has non-numeric ts {ts!r}")
        key = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(key, float("-inf")):
            fail(f"{path}: event {index} regresses ts on thread {key}")
        last_ts[key] = ts
        if phase == "B":
            name = event.get("name")
            if not isinstance(name, str) or not name:
                fail(f"{path}: B event {index} lacks a name")
            stacks.setdefault(key, []).append(name)
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                fail(f"{path}: E event {index} with no open span on {key}")
            stack.pop()
    for key, stack in stacks.items():
        if stack:
            fail(f"{path}: thread {key} ends with unclosed spans {stack}")
    print(f"validate_trace: OK {path}: {len(events)} events, "
          f"{len(last_ts)} threads")


def check_journal_event(path: str, index: int, event, previous_seq: int,
                        kinds: dict[str, int]) -> int:
    """Validate one journal event; returns its seq."""
    if not isinstance(event, dict):
        fail(f"{path}: event {index} is not an object")
    seq = event.get("seq")
    if not isinstance(seq, int) or seq <= previous_seq:
        fail(f"{path}: event {index} seq {seq!r} is not strictly "
             f"increasing (previous {previous_seq})")
    kind = event.get("kind")
    if not isinstance(kind, str) or not kind:
        fail(f"{path}: event {index} has an empty kind")
    if kind not in KNOWN_KINDS:
        fail(f"{path}: event {index} has unknown kind {kind!r}")
    kinds[kind] = kinds.get(kind, 0) + 1
    fields = event.get("fields", {})
    if not isinstance(fields, dict):
        fail(f"{path}: event {index} fields is not an object")
    for name, value in fields.items():
        if not isinstance(value, (int, float)):
            fail(f"{path}: event {index} field {name!r} is non-numeric")
    return seq


def validate_journal(path: str) -> None:
    events = load_json(path)
    if not isinstance(events, list):
        fail(f"{path}: expected a JSON array of events")
    previous_seq = -1
    kinds: dict[str, int] = {}
    for index, event in enumerate(events):
        previous_seq = check_journal_event(path, index, event, previous_seq,
                                           kinds)
    summary = ", ".join(f"{kind}={count}"
                        for kind, count in sorted(kinds.items()))
    print(f"validate_trace: OK {path}: {len(events)} events ({summary})")


def validate_journal_jsonl(path: str) -> None:
    previous_seq = -1
    kinds: dict[str, int] = {}
    count = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                line = line.strip()
                if not line:
                    fail(f"{path}: line {index + 1} is empty")
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as error:
                    fail(f"{path}: line {index + 1}: {error}")
                previous_seq = check_journal_event(path, index, event,
                                                   previous_seq, kinds)
                count += 1
    except OSError as error:
        fail(f"{path}: {error}")
    summary = ", ".join(f"{kind}={n}" for kind, n in sorted(kinds.items()))
    print(f"validate_trace: OK {path}: {count} jsonl events ({summary})")


def validate_metrics(path: str) -> None:
    doc = load_json(path)
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing '{section}' object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} is not a nonnegative integer")
    for name, histogram in doc["histograms"].items():
        buckets = histogram.get("buckets")
        if not isinstance(buckets, list) or not buckets:
            fail(f"{path}: histogram {name!r} has no buckets")
        if buckets[-1].get("le") != "+Inf":
            fail(f"{path}: histogram {name!r} lacks the +Inf bucket")
        total = sum(bucket.get("count", 0) for bucket in buckets)
        if total != histogram.get("count"):
            fail(f"{path}: histogram {name!r} buckets sum to {total}, "
                 f"count says {histogram.get('count')}")
    print(f"validate_trace: OK {path}: {len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON file")
    parser.add_argument("--journal", help="event journal JSON file")
    parser.add_argument("--journal-jsonl",
                        help="event journal JSONL file (one event per line)")
    parser.add_argument("--metrics", help="metrics snapshot JSON file")
    args = parser.parse_args()
    if not (args.trace or args.journal or args.journal_jsonl or args.metrics):
        parser.error("nothing to validate; pass "
                     "--trace/--journal/--journal-jsonl/--metrics")
    if args.trace:
        validate_trace(args.trace)
    if args.journal:
        validate_journal(args.journal)
    if args.journal_jsonl:
        validate_journal_jsonl(args.journal_jsonl)
    if args.metrics:
        validate_metrics(args.metrics)


if __name__ == "__main__":
    main()
