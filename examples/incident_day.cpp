// Incident day: a stormy multi-day horizon run with the incident engine
// watching the control loop. Emits the triage artifacts the playbook in
// README.md walks through:
//
//   incident_journal.jsonl  the structured journal in JSONL form, one event
//                           per line — incident.alert / incident.open /
//                           incident.close / incident.advisory included.
//   incident_dump.tdpi      the flight-recorder dump ("TDPI" framing):
//                           config echo, detector posture, incidents with
//                           attribution, the recorder ring, and (since this
//                           binary passes include_wall=true) the wall-clock
//                           extras. Render it with tools/tdp_triage.py.
//
// Usage: incident_day [users] [output_dir]  (defaults: 20000 users, cwd).
// CI runs it small, schema-checks the journal with tools/validate_trace.py
// and renders the dump with tools/tdp_triage.py.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/fault.hpp"
#include "dynamic/online_pricer.hpp"
#include "horizon/multi_day_driver.hpp"
#include "obs/incident/incident.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

int main(int argc, char** argv) {
  using namespace tdp;
  using namespace tdp::horizon;
  namespace inc = tdp::obs::incident;

  const std::uint64_t users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000ull;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  // Journal on so the incident.* events land in the JSONL artifact; the
  // alert stream itself is deterministic with or without it.
  obs::set_metrics_enabled(true);
  obs::set_journal_enabled(true);

  std::printf("=== incident day: %llu users, 20%%-duty correlated storms, "
              "incident engine on ===\n",
              static_cast<unsigned long long>(users));

  HorizonConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 16;
  config.warmup_days = 1;
  config.horizon_days = 4;
  config.estimation_window = 4;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;

  // Background i.i.d. chaos plus three correlated storm regimes — the
  // storm_week weather, shortened.
  config.fault.price_pull_drop = 0.02;
  config.fault.measurement_loss = 0.02;
  config.fault.seed = 424242;
  config.fault.storm_blackout = {0.06, 0.76, 1.0};
  config.fault.storm_channel = {0.06, 0.76, 0.5};
  config.fault.storm_solver = {0.06, 0.76, 1.0};

  // Health ladder + gates on, so the engine sees FSM edges and fallback
  // budget pressure during the long bursts.
  PricerGuardConfig guard = PricerGuardConfig::protective();
  guard.fallback_after = 6;
  config.pricer_guard = guard;
  config.estimation_health_gate = true;
  config.reanchor_healthy_periods = 2;

  config.incident.enabled = true;
  config.incident.slo_max_fallback_per_day = 12;
  config.incident.dump_path = out_dir + "/incident_dump.tdpi";

  MultiDayDriver driver(config);
  driver.run();

  const inc::IncidentEngine* engine = driver.incident_engine();
  std::printf("-- alert stream (%llu alerts, %llu dropped) --\n",
              static_cast<unsigned long long>(engine->alerts_emitted()),
              static_cast<unsigned long long>(engine->alerts_dropped()));
  for (const inc::Alert& alert : engine->alerts()) {
    std::printf("  [%llu] t=%llu day %llu: %s value=%.3f threshold=%.3f\n",
                static_cast<unsigned long long>(alert.seq),
                static_cast<unsigned long long>(alert.abs_period),
                static_cast<unsigned long long>(alert.day),
                to_string(alert.kind), alert.value, alert.threshold);
  }

  std::printf("-- incidents (%llu opened, %llu closed) --\n",
              static_cast<unsigned long long>(engine->incidents_opened()),
              static_cast<unsigned long long>(engine->incidents_closed()));
  for (const inc::Incident& incident : engine->incidents()) {
    std::printf("  #%llu %s %s open@t=%llu %s storms[%s%s%s] health=%s\n",
                static_cast<unsigned long long>(incident.id),
                to_string(incident.objective), to_string(incident.severity),
                static_cast<unsigned long long>(incident.open_abs_period),
                incident.closed ? "closed" : "OPEN",
                incident.storm_blackout ? "B" : "-",
                incident.storm_channel ? "C" : "-",
                incident.storm_solver ? "S" : "-",
                to_string(incident.health));
  }

  const std::string journal_path = out_dir + "/incident_journal.jsonl";
  const std::string dump_path = out_dir + "/incident_dump.tdpi";
  bool ok = obs::Journal::global().write_jsonl(journal_path);
  // Final dump with the wall extras — the per-incident dumps the engine
  // wrote along the way are deterministic-sections-only.
  ok = engine->write_dump(dump_path, /*include_wall=*/true) && ok;
  if (!ok) {
    std::fprintf(stderr, "failed to write an artifact under %s\n",
                 out_dir.c_str());
    return 1;
  }

  std::printf("-- artifacts --\n");
  std::printf("  %s (%llu journal events)\n", journal_path.c_str(),
              static_cast<unsigned long long>(
                  obs::Journal::global().appended()));
  std::printf("  %s\n", dump_path.c_str());
  std::printf("render with: tools/tdp_triage.py %s --journal-jsonl %s\n",
              dump_path.c_str(), journal_path.c_str());
  return 0;
}
