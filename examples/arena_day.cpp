// Arena day: every pricing mechanism on the SAME seeded 100,000-user day.
//
// Four FleetDrivers run identical populations (same seed, same shard/slice
// layout, same warmup) differing only in the configured mechanism:
// flat-TIP (the do-nothing control), the paper's TUBE online pricer, a
// fixed-budget rebate with a pacing controller, and the exact day-ahead
// oracle solve. The closing table compares them on peak-to-average
// reduction, ISP cost (backlog cost of the realized profile plus rewards
// paid, judged on the shared baseline fluid model), rebate budget spent,
// and user welfare — the comparison the mechanism arena exists to make
// (DESIGN.md §13). The enforced version is bench/mechanism_arena + the CI
// ordering gate.
//
//   ./examples/arena_day [users]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/fleet_metrics.hpp"
#include "mech/mechanism.hpp"

int main(int argc, char** argv) {
  using namespace tdp;

  std::uint64_t users = 100000;
  if (argc > 1) users = std::strtoull(argv[1], nullptr, 10);

  std::printf("arena day: %llu users, one fleet per mechanism\n\n",
              static_cast<unsigned long long>(users));

  const mech::MechanismKind kinds[] = {
      mech::MechanismKind::kFlatTip,
      mech::MechanismKind::kTubeOnline,
      mech::MechanismKind::kFixedBudgetRebate,
      mech::MechanismKind::kDayAheadOracle,
  };

  TextTable table({"mechanism", "P2A tip", "P2A tdp", "reduction",
                   "ISP cost", "rebate spent", "welfare"});
  for (const mech::MechanismKind kind : kinds) {
    fleet::FleetDriverConfig config;
    config.population.users = users;
    config.population.periods = 48;
    config.population.seed = 20110611;
    config.shards = 64;
    config.warmup_days = 3;  // let every settle loop reach steady state
    config.online_pricing = true;
    config.mechanism.kind = kind;

    std::printf("running %s...\n", mech::to_string(kind));
    fleet::FleetDriver driver(config);
    const DynamicModel judge =
        fleet::baseline_fluid_model(driver.population());
    const fleet::FleetMetrics m = driver.run_day();

    const double reduction =
        m.peak_to_average_tip > 0.0
            ? (m.peak_to_average_tip - m.peak_to_average_tdp) /
                  m.peak_to_average_tip
            : 0.0;
    const double isp_cost =
        mech::profile_backlog_cost(m.realized_units, judge.capacity(),
                                   judge.backlog_cost(),
                                   judge.warmup_days()) +
        m.reward_paid_units;
    std::string spent = TextTable::num(m.reward_paid_units);
    if (m.rebate_budget_pool > 0.0) {
      spent += " / " + TextTable::num(m.rebate_budget_pool);
    }
    table.add_row({mech::to_string(kind),
                   TextTable::num(m.peak_to_average_tip),
                   TextTable::num(m.peak_to_average_tdp),
                   TextTable::num(reduction), TextTable::num(isp_cost),
                   spent, TextTable::num(0.5 * m.reward_paid_units)});
  }

  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nreduction: fraction of the TIP peak-to-average ratio removed\n"
      "ISP cost:  backlog cost of the realized profile + rewards paid\n"
      "rebate:    'spent / pool' for the fixed-budget mechanism\n"
      "welfare:   0.5 x rewards paid (uniform-rent approximation)\n");
  return 0;
}
