// A production-scale day: 100,000 synthetic users, sharded simulation, the
// online pricer re-tuning one reward per period from the measured
// aggregates, and the reward schedule fanned back out through subscriber
// groups on the TUBE price channel.
#include <cstdio>

#include "fleet/fleet_driver.hpp"

int main() {
  using namespace tdp::fleet;

  FleetDriverConfig config;
  config.population.users = 100000;
  config.population.periods = 48;
  config.shards = 64;
  config.threads = 0;      // TDP_THREADS or hardware default
  config.warmup_days = 1;  // measured day sees the cyclic steady state

  std::printf("=== fleet day: %llu users, %zu periods, online TDP ===\n",
              static_cast<unsigned long long>(config.population.users),
              config.population.periods);
  FleetDriver driver(config);
  const FleetMetrics m = driver.run_day();

  std::printf("  simulated %llu sessions (%llu deferred by rewards) in "
              "%.2f s — %.2fM sessions/s, %.1fM user-periods/s\n",
              static_cast<unsigned long long>(m.sessions),
              static_cast<unsigned long long>(m.deferred_sessions),
              m.wall_seconds, m.sessions_per_second / 1e6,
              m.user_periods_per_second / 1e6);

  const double reduction = 100.0 *
                           (m.peak_to_average_tip - m.peak_to_average_tdp) /
                           m.peak_to_average_tip;
  std::printf("  peak-to-average ratio: %.3f under flat pricing -> %.3f "
              "under TDP (%.1f%% flatter)\n",
              m.peak_to_average_tip, m.peak_to_average_tdp, reduction);
  std::printf("  rewards paid: %.1f money units; pricer's expected day "
              "cost after %zu online updates: %.1f\n",
              m.reward_paid_units, m.periods * m.days,
              m.pricer_expected_cost);
  std::printf("  price server fetches: %zu (%zu groups x %zu periods x %zu "
              "days) instead of %llu per-user pulls\n",
              m.price_server_fetches, m.price_groups, m.periods, m.days,
              static_cast<unsigned long long>(m.users * m.periods * m.days));
  return 0;
}
