// Observe day: a 100,000-user fleet day with faults injected — the chaos_day
// scenario — run with every telemetry surface enabled. The run emits four
// artifacts:
//
//   observe_day_trace.json    Chrome trace_event timeline (chrome://tracing
//                             or Perfetto) of the full control loop: publish
//                             -> tables -> simulate -> aggregate -> pricer,
//                             per period, with per-shard spans inside the
//                             simulate fan-out.
//   observe_day_journal.json  structured event journal: pricer health-ladder
//                             transitions, channel fallbacks/recoveries,
//                             measurement repairs, solver records.
//   observe_day_metrics.json  merged registry snapshot (counters, gauges,
//                             histograms), name-sorted.
//   observe_day_metrics.prom  the same snapshot as Prometheus text.
//
// Usage: observe_day [users] [output_dir]  (defaults: 100000 users, cwd).
// CI runs it small (see .github/workflows/ci.yml) and schema-checks the
// artifacts with tools/validate_trace.py.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/fault.hpp"
#include "dynamic/online_pricer.hpp"
#include "fleet/fleet_driver.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace tdp;
  using namespace tdp::fleet;

  const std::uint64_t users =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000ull;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  // Every surface on, regardless of environment: this binary exists to
  // produce inspectable artifacts.
  obs::set_metrics_enabled(true);
  obs::set_journal_enabled(true);
  obs::set_trace_enabled(true);

  std::printf("=== observe day: %llu users, 5%% price-pull drops, one "
              "measurement blackout, full telemetry ===\n",
              static_cast<unsigned long long>(users));

  FleetDriverConfig config;
  config.population.users = users;
  config.population.periods = 48;
  config.shards = 64;
  config.threads = 0;
  config.warmup_days = 1;
  config.fault.price_pull_drop = 0.05;
  // Whole-fleet telemetry blackout mid-way through the measured day.
  config.fault.measurement_blackouts = {48 + 24};

  FleetDriver driver(config);
  const FleetMetrics m = driver.run_day();

  std::printf("-- health-transition timeline (observation: from -> to) --\n");
  for (const auto& t : driver.pricer().health_transitions()) {
    std::printf("  obs %4llu: %s -> %s\n",
                static_cast<unsigned long long>(t.observation),
                to_string(t.from), to_string(t.to));
  }
  std::printf("  final health: %s; %llu health transitions, %llu degraded + "
              "%llu fallback observations\n",
              m.final_health.c_str(),
              static_cast<unsigned long long>(m.health_transitions),
              static_cast<unsigned long long>(m.degraded_observations),
              static_cast<unsigned long long>(m.fallback_observations));
  std::printf("  channel: %zu drops, %zu stale, %zu fallback, %zu recovered; "
              "measurements: %zu gaps, %zu repaired\n",
              m.price_pull_drops, m.price_stale_periods,
              m.price_fallback_periods, m.price_recoveries,
              m.measurement_gaps, m.measurement_repairs);
  std::printf("  wall %.3f s (publish %.3f, tables %.3f, simulate %.3f, "
              "aggregate %.3f, pricer %.3f)\n",
              m.wall_seconds, m.publish_seconds, m.table_seconds,
              m.simulate_seconds, m.aggregate_seconds, m.pricer_seconds);

  const std::string trace_path = out_dir + "/observe_day_trace.json";
  const std::string journal_path = out_dir + "/observe_day_journal.json";
  const std::string metrics_path = out_dir + "/observe_day_metrics.json";
  const std::string prom_path = out_dir + "/observe_day_metrics.prom";

  bool ok = true;
  ok = obs::write_chrome_trace(trace_path) && ok;
  ok = obs::Journal::global().write_json(journal_path) && ok;
  ok = obs::write_text_file(metrics_path, obs::metrics_json()) && ok;
  ok = obs::write_text_file(prom_path, obs::prometheus_text()) && ok;
  if (!ok) {
    std::fprintf(stderr, "failed to write an artifact under %s\n",
                 out_dir.c_str());
    return 1;
  }

  std::printf("-- artifacts --\n");
  std::printf("  %s (%zu trace events)\n", trace_path.c_str(),
              obs::trace_event_count());
  std::printf("  %s (%llu journal events, %llu dropped)\n",
              journal_path.c_str(),
              static_cast<unsigned long long>(obs::Journal::global().appended()),
              static_cast<unsigned long long>(obs::Journal::global().dropped()));
  std::printf("  %s\n  %s\n", metrics_path.c_str(), prom_path.c_str());
  std::printf("open the trace in chrome://tracing or https://ui.perfetto.dev\n");
  return 0;
}
