// Where does a fleet day's wall time go? Runs the 100k-user online-pricing
// day and prints the driver's per-phase timing breakdown: schedule publish +
// fan-out, deferral-table builds, the sharded user walks, stripe merges, and
// the online pricer's incremental 1-D re-solves.
//
// The phases are instrumented inside FleetDriver::run_day (FleetMetrics
// *_seconds fields), so the same numbers are available from any fleet run's
// JSON — this example just renders them.
#include <cstdio>

#include "fleet/fleet_driver.hpp"

namespace {

void print_phase(const char* name, double seconds, double total) {
  const double share = total > 0.0 ? 100.0 * seconds / total : 0.0;
  const int bar = static_cast<int>(share / 2.0 + 0.5);
  std::printf("  %-22s %8.3f s  %5.1f%%  %.*s\n", name, seconds, share, bar,
              "##################################################");
}

}  // namespace

int main() {
  using namespace tdp::fleet;

  FleetDriverConfig config;
  config.population.users = 100000;
  config.population.periods = 48;
  config.shards = 64;
  config.threads = 0;
  config.warmup_days = 1;

  std::printf("=== profile day: %llu users, %zu periods, %zu warmup day ===\n",
              static_cast<unsigned long long>(config.population.users),
              config.population.periods, config.warmup_days);
  FleetDriver driver(config);
  const FleetMetrics m = driver.run_day();

  const double phase_total = m.publish_seconds + m.table_seconds +
                             m.simulate_seconds + m.aggregate_seconds +
                             m.pricer_seconds;
  std::printf("\n  %llu sessions over %zu periods x %zu days on %zu "
              "threads; %.2f s wall\n\n",
              static_cast<unsigned long long>(m.sessions), m.periods, m.days,
              m.threads, m.wall_seconds);
  print_phase("publish + fan-out", m.publish_seconds, phase_total);
  print_phase("deferral tables", m.table_seconds, phase_total);
  print_phase("shard simulation", m.simulate_seconds, phase_total);
  print_phase("aggregate merge", m.aggregate_seconds, phase_total);
  print_phase("online pricer", m.pricer_seconds, phase_total);
  std::printf("  %-22s %8.3f s  (loop coverage %.1f%% of wall)\n",
              "phase total", phase_total,
              m.wall_seconds > 0.0 ? 100.0 * phase_total / m.wall_seconds
                                   : 0.0);

  std::printf("\n  throughput: %.2fM sessions/s, %.1fM user-periods/s\n",
              m.sessions_per_second / 1e6, m.user_periods_per_second / 1e6);
  std::printf("  peak-to-average: %.3f (TIP) -> %.3f (TDP)\n",
              m.peak_to_average_tip, m.peak_to_average_tdp);
  return 0;
}
