// Quickstart: build a small time-dependent pricing problem from scratch and
// solve it.
//
// An ISP divides the day into 6 periods. Evening periods are congested,
// early-morning ones idle. Each period's demand is split into a patient
// class (file backups, beta = 0.5) and an impatient class (streaming,
// beta = 4). The ISP offers per-period rewards so that users shift load
// into the idle periods.
#include <cstdio>
#include <memory>

#include "core/static_model.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;

  const std::size_t periods = 6;
  const double max_reward = 1.0;  // normalization point P

  // Waiting functions: probability a session defers by t periods at
  // reward p (normalized so the total deferral mass at p = P is 1).
  const auto patient =
      std::make_shared<PowerLawWaitingFunction>(0.5, periods, max_reward);
  const auto impatient =
      std::make_shared<PowerLawWaitingFunction>(4.0, periods, max_reward);

  // Demand under flat (time-independent) pricing, in bandwidth units.
  DemandProfile demand(periods);
  const double patient_volume[periods] = {4, 2, 1, 3, 8, 10};
  const double impatient_volume[periods] = {2, 1, 1, 3, 6, 7};
  for (std::size_t i = 0; i < periods; ++i) {
    demand.add_class(i, {patient, patient_volume[i]});
    demand.add_class(i, {impatient, impatient_volume[i]});
  }

  // Bottleneck capacity 8 units/period; exceeding it costs 2 money units
  // per unit (so rational rewards stay below 1 = P).
  StaticModel model(std::move(demand), 8.0,
                    math::PiecewiseLinearCost::hinge(2.0));

  const PricingSolution solution = optimize_static_prices(model);

  std::printf("flat-pricing cost : %.3f\n", solution.tip_cost);
  std::printf("TDP cost          : %.3f (%.1f%% savings)\n",
              solution.total_cost,
              100.0 * (solution.tip_cost - solution.total_cost) /
                  solution.tip_cost);
  std::printf("\n%-8s %-10s %-10s %-10s\n", "period", "demand", "reward",
              "usage");
  for (std::size_t i = 0; i < periods; ++i) {
    std::printf("%-8zu %-10.1f %-10.3f %-10.2f\n", i + 1,
                patient_volume[i] + impatient_volume[i],
                solution.rewards[i], solution.usage[i]);
  }
  std::printf("\nRewards are offered for deferring INTO a period; idle "
              "periods attract the\nevening backlog, the morning spike "
              "flattens, and nobody's session is dropped.\n");
  return 0;
}
