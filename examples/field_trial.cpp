// A simulated week-long field trial ("a planned field trial ... at
// Princeton, each participant's Internet connection fee will be paid by
// the TUBE project").
//
// Seven days on the TUBE testbed with day-to-day demand drift: weekdays run
// hot in the first half of the hour-cycle, the weekend flips the pattern.
// Day 1 runs flat-priced (baseline), day 2 runs a control trial for
// profiling, days 3-7 run online-optimized TDP. The trial report tracks
// each user's weekly bill, earned rewards and moved traffic — what the real
// trial would have mailed to participants.
#include <cmath>
#include <cstdio>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tube/tube_system.hpp"

int main() {
  using namespace tdp;
  set_log_level(LogLevel::kError);

  std::printf("=== one-week TUBE field trial (emulated) ===\n");

  double week_bill[2] = {0.0, 0.0};
  double week_rewards[2] = {0.0, 0.0};
  double week_moved[2] = {0.0, 0.0};
  std::size_t week_sessions = 0;
  std::size_t week_deferrals = 0;

  const auto absorb = [&](const TubeSystem::PhaseReport& report) {
    for (std::size_t u = 0; u < 2; ++u) {
      week_bill[u] += report.user_bill_dollars[u];
      week_rewards[u] += report.user_reward_dollars[u];
      for (std::size_t c = 0; c < 3; ++c) {
        week_moved[u] += report.class_deferred_mb[u][c];
      }
    }
    week_sessions += report.sessions;
    week_deferrals += report.deferrals;
  };

  Rng rng(2012);  // the planned trial year
  for (int day = 0; day < 7; ++day) {
    TubeConfig cfg = default_testbed_config();
    cfg.seed = 9000 + static_cast<std::uint64_t>(day);  // fresh arrivals
    const bool weekend = day >= 5;
    cfg.profile.peak = 1.6;
    cfg.profile.multiplier = [weekend](double t) {
      const double phase = std::fmod(t, 3600.0) / 3600.0;
      return weekend ? 0.6 + 1.0 * phase   // weekend: ramps up
                     : 1.6 - 1.0 * phase;  // weekday: ramps down
    };
    TubeSystem tube(cfg);

    if (day == 0) {
      const auto report = tube.run_tip(2);
      absorb(report);
      std::printf("  day 1 (baseline TIP): %zu sessions, util %.0f%%\n",
                  report.sessions, 100.0 * report.mean_utilization);
      continue;
    }

    // Every day needs its own baseline + windows because the TubeSystem is
    // rebuilt per day (demand drifts); days 2+ run a quick measurement
    // cycle, then either a control trial (day 2) or optimized pricing.
    tube.run_tip(1);
    math::Vector trial_rewards(12);
    for (double& p : trial_rewards) p = rng.uniform(0.0, 0.01);
    const auto trial = tube.run_trial(trial_rewards, 1);
    if (day == 1) {
      absorb(trial);
      std::printf("  day 2 (control trial): %zu deferrals recorded\n",
                  trial.deferrals);
      continue;
    }

    const auto opt = tube.run_optimized(2);
    absorb(opt);
    std::printf("  day %d (%s, optimized): %zu deferrals, util %.0f%%\n",
                day + 1, weekend ? "weekend" : "weekday", opt.deferrals,
                100.0 * opt.mean_utilization);
  }

  std::printf("\n--- participant statements ---\n");
  for (std::size_t u = 0; u < 2; ++u) {
    std::printf("  participant %zu (%s): bill $%.2f, rewards earned $%.2f, "
                "traffic shifted %.1f GB\n",
                u + 1, u == 0 ? "impatient group" : "flexible group",
                week_bill[u], week_rewards[u], week_moved[u] / 1000.0);
  }
  std::printf("  totals: %zu sessions, %zu deferred\n", week_sessions,
              week_deferrals);
  std::printf("\nThe flexible participant funds part of their week through "
              "rewards —\nthe adoption incentive the trial was designed to "
              "demonstrate.\n");
  return 0;
}
