// Surviving a storm: a week of operations under correlated fault storms
// (seeded Markov blackout/channel/solver regimes) with the full storm-mode
// resilience stack turned on — health-gated §IV re-estimation, hysteretic
// re-anchoring behind a predicted-objective guard, and streaming v2
// checkpoints committed atomically every few periods. Halfway through the
// worst of it the process "crashes"; the restart recovers whichever of the
// committed file / torn tmp parses cleanly, restores onto a smaller host,
// and finishes the week bitwise identical to a run that never died.
//
//   ./examples/storm_week [checkpoint-path]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/online_pricer.hpp"
#include "horizon/checkpoint.hpp"
#include "horizon/checkpoint_stream.hpp"
#include "horizon/multi_day_driver.hpp"

namespace {

tdp::horizon::HorizonConfig storm_week_config() {
  tdp::horizon::HorizonConfig config;
  config.population.users = 20000;
  config.population.periods = 48;
  config.population.seed = 20110611;
  config.shards = 16;
  config.warmup_days = 1;
  config.horizon_days = 5;
  config.estimation_window = 4;
  config.estimation_min_days = 2;
  config.estimation_starts = 2;

  // Background i.i.d. chaos plus three correlated storm regimes at ~20%
  // duty (onset 0.125, persist 0.5: mean burst 2 periods, occasional long
  // ones). Each regime is its own seeded Markov chain — a pure function of
  // (seed, domain, tick) — so every run, restore, and thread layout sees
  // the same weather.
  config.fault.price_pull_drop = 0.02;
  config.fault.seed = 11;
  config.fault.storm_blackout = {0.125, 0.5, 1.0};
  config.fault.storm_channel = {0.125, 0.5, 0.5};
  config.fault.storm_solver = {0.125, 0.5, 1.0};

  // Storm-mode health gating: never fit measurements taken while the
  // pricer sat in FALLBACK, wait out a healthy streak before re-anchoring,
  // and let the objective guard roll back a re-fit that would make the
  // schedule worse by more than 5%. The ladder tolerates bursts shorter
  // than 6 periods, so only days that catch a long storm burst go
  // FALLBACK (and get frozen out of the fit window).
  tdp::PricerGuardConfig guard = tdp::PricerGuardConfig::protective();
  guard.fallback_after = 6;
  config.pricer_guard = guard;
  config.estimation_health_gate = true;
  config.reanchor_healthy_periods = 2;
  config.reanchor_objective_guard = true;
  config.reanchor_guard_tolerance = 0.05;
  return config;
}

double total(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum;
}

void print_days(const tdp::horizon::HorizonMetrics& m) {
  std::printf("  day  realized(u)  P2A(tdp)  fallback  frozen  est  "
              "reanchor\n");
  for (const auto& d : m.days) {
    const char* reanchor = d.reanchored             ? "adopted"
                           : d.reanchor_rolled_back ? "rolledback"
                           : d.estimated            ? "deferred"
                                                    : "-";
    std::printf("  %3llu  %11.1f  %8.3f  %8llu  %6s  %3s  %s\n",
                static_cast<unsigned long long>(d.day),
                total(d.realized_units), d.peak_to_average_tdp,
                static_cast<unsigned long long>(d.fallback_periods),
                d.estimation_frozen ? "yes" : "-",
                d.estimated ? "yes" : "-", reanchor);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp::horizon;

  const std::string path = argc > 1 ? argv[1] : "storm_week_checkpoint.tdpc";
  HorizonConfig config = storm_week_config();

  std::printf("=== storm week: %llu users, %zu measured days, 20%%-duty "
              "correlated storms, health gates on ===\n",
              static_cast<unsigned long long>(config.population.users),
              config.horizon_days);

  // The uninterrupted week, for comparison (no streaming).
  MultiDayDriver reference(config);
  const HorizonMetrics uninterrupted = reference.run();

  // The same week streaming incremental v2 checkpoints every 6 periods,
  // killed at 60% of the horizon — the driver is simply dropped, leaving
  // whatever the last atomic commit (or a torn tmp beside it) holds.
  HorizonConfig streaming = config;
  streaming.checkpoint_path = path;
  streaming.checkpoint_every_periods = 6;
  const std::size_t total_periods =
      (config.warmup_days + config.horizon_days) * config.population.periods;
  const std::size_t kill_step = (total_periods * 3) / 5;
  {
    MultiDayDriver victim(streaming);
    for (std::size_t step = 0; step < kill_step; ++step) victim.step_period();
  }  // crash: no final checkpoint, no flush — only streamed commits survive

  // The restart: torn-write-tolerant recovery picks whichever of the
  // committed file and its .tmp validates (later simulated clock wins),
  // then restore regroups the checkpointed slices onto a smaller host.
  const CheckpointData recovered = load_checkpoint_file_recover(path);
  unsigned version_byte = 0;  // framing: magic[4], then version u32 LE
  {
    std::ifstream in(path, std::ios::binary);
    char header[5] = {};
    if (in.read(header, 5)) version_byte = static_cast<unsigned char>(header[4]);
  }
  std::printf("\n  crashed at step %zu — recovered checkpoint at day %llu "
              "period %llu (format v%u: storm gates force the v2 section)\n",
              kill_step, static_cast<unsigned long long>(recovered.day),
              static_cast<unsigned long long>(recovered.period), version_byte);

  HorizonConfig restart = config;
  restart.shards = 4;  // the replacement host is smaller
  std::unique_ptr<MultiDayDriver> second_process =
      MultiDayDriver::restore(restart, recovered);
  const HorizonMetrics resumed = second_process->run();

  std::printf("\n  uninterrupted storm week:\n");
  print_days(uninterrupted);
  std::printf("\n  crashed-and-recovered week (restored on %zu shards):\n",
              second_process->shard_count());
  print_days(resumed);

  bool identical = uninterrupted.days.size() == resumed.days.size();
  for (std::size_t d = 0; identical && d < resumed.days.size(); ++d) {
    const auto& a = uninterrupted.days[d];
    const auto& b = resumed.days[d];
    identical = a.rewards == b.rewards &&
                a.realized_units == b.realized_units &&
                a.beta_estimate == b.beta_estimate &&
                a.fallback_periods == b.fallback_periods &&
                a.estimation_frozen == b.estimation_frozen &&
                a.reanchored == b.reanchored &&
                a.reanchor_rolled_back == b.reanchor_rolled_back;
  }
  std::printf("\n  recovered week bitwise identical to uninterrupted: %s\n",
              identical ? "yes" : "NO");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return identical ? 0 : 1;
}
