// The TUBE proof-of-concept experiment (Section VI) end to end.
//
// Emulates the Fig. 10 testbed — a 10 MBps bottleneck, two user groups
// (group 1 impatient, group 2 patient) with web/ftp/video traffic plus
// background flows — and runs the full control loop: a flat-priced
// baseline hour, control trials with experimental rewards, waiting-function
// profiling from aggregate usage, and finally online-optimized prices.
#include <cstdio>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tube/tube_system.hpp"

namespace {

void print_phase(const char* name,
                 const tdp::TubeSystem::PhaseReport& report) {
  std::printf("\n--- %s ---\n", name);
  std::printf("  sessions %zu, deferrals %zu, mean utilization %.0f%%\n",
              report.sessions, report.deferrals,
              100.0 * report.mean_utilization);
  std::printf("  per-period MB:");
  for (double v : report.total_period_mb) std::printf(" %5.0f", v);
  std::printf("\n");
  const char* classes[3] = {"web", "ftp", "video"};
  for (std::size_t u = 0; u < 2; ++u) {
    std::printf("  user %zu: bill $%6.2f, rewards $%5.2f, moved ", u + 1,
                report.user_bill_dollars[u], report.user_reward_dollars[u]);
    for (std::size_t c = 0; c < 3; ++c) {
      std::printf("%s %.0f MB  ", classes[c],
                  report.class_deferred_mb[u][c]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace tdp;
  set_log_level(LogLevel::kWarn);

  std::printf("=== TUBE emulation: 10 MBps bottleneck, 2 user groups, "
              "12 x 5-minute periods ===\n");
  TubeSystem tube;

  const auto tip = tube.run_tip(2);
  print_phase("phase 1: TIP baseline (Fig. 11)", tip);

  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    math::Vector rewards(12);
    for (double& p : rewards) p = rng.uniform(0.0, 0.01);
    const auto report = tube.run_trial(rewards, 2);
    std::printf("\n  control trial %d: %zu deferrals recorded for "
                "profiling\n",
                trial + 1, report.deferrals);
  }

  const auto profile = tube.profiler().profile();
  std::printf("\n--- profiling engine (aggregate data only) ---\n");
  std::printf("  fitted per-class patience: web %.2f, ftp %.2f, video "
              "%.2f\n",
              profile.mix.beta(0, 0), profile.mix.beta(0, 1),
              profile.mix.beta(0, 2));

  const auto opt = tube.run_optimized(2);
  print_phase("phase 3: online-optimized TDP (Fig. 12)", opt);

  std::printf("\nFinal published rewards ($/MB):");
  for (double p : opt.rewards) std::printf(" %.4f", p);
  std::printf("\nPrice history buckets recorded: %zu\n",
              tube.price_history().series().size());
  return 0;
}
