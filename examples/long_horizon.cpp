// A week of operations: the multi-day control loop with the §IV estimator
// re-fitting the fleet's patience index every day while the population
// drifts, killed by a simulated crash halfway through and restored from a
// checkpoint file the way a real process restart would — the resumed week
// finishes bitwise identical to a run that was never interrupted.
//
//   ./examples/long_horizon [checkpoint-path]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "horizon/checkpoint.hpp"
#include "horizon/multi_day_driver.hpp"

namespace {

tdp::horizon::HorizonConfig week_config() {
  tdp::horizon::HorizonConfig config;
  config.population.users = 20000;
  config.population.periods = 48;
  config.shards = 16;
  config.warmup_days = 1;
  config.horizon_days = 6;
  // The population's patience index creeps up 2%/day: yesterday's fitted
  // model goes stale, and the daily re-estimate is what keeps the reward
  // schedule anchored to reality.
  config.fault.drift_beta_rate = 0.02;
  config.fault.seed = 7;
  config.estimation_window = 4;
  config.estimation_min_days = 2;
  return config;
}

double total(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum;
}

void print_days(const tdp::horizon::HorizonMetrics& m) {
  std::printf("  day  offered(u)  realized(u)  P2A(tdp)  beta_est  "
              "reanchored\n");
  for (const auto& d : m.days) {
    std::printf("  %3llu  %10.1f  %11.1f  %8.3f  %8.4f  %s\n",
                static_cast<unsigned long long>(d.day),
                total(d.offered_units), total(d.realized_units),
                d.peak_to_average_tdp, d.estimated ? d.beta_estimate : 0.0,
                d.reanchored ? "yes" : "-");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp::horizon;

  const std::string path =
      argc > 1 ? argv[1] : "long_horizon_checkpoint.tdpc";
  const HorizonConfig config = week_config();

  std::printf("=== long horizon: %llu users, %zu warmup + %zu measured "
              "days, 2%%/day patience drift ===\n",
              static_cast<unsigned long long>(config.population.users),
              config.warmup_days, config.horizon_days);

  // The uninterrupted week, for comparison.
  MultiDayDriver reference(config);
  const HorizonMetrics uninterrupted = reference.run();

  // The same week, "crashed" mid-way: simulate half the horizon, write the
  // checkpoint to disk, and drop the driver — everything in memory is gone.
  MultiDayDriver first_process(config);
  const std::size_t total_periods =
      (config.warmup_days + config.horizon_days) * config.population.periods;
  for (std::size_t step = 0; step < total_periods / 2; ++step) {
    first_process.step_period();
  }
  save_checkpoint_file(path, first_process.checkpoint());
  std::printf("\n  crash at day %llu period %zu — checkpoint written to "
              "%s\n",
              static_cast<unsigned long long>(first_process.day()),
              first_process.period(), path.c_str());

  // The restarted process: load the file, restore (restore_counters=true
  // also reinstates the obs registry counters, since this "process" owns
  // them), and finish the week. Restore may regroup slices onto a
  // different shard/thread count — values cannot change.
  HorizonConfig restart = config;
  restart.shards = 4;  // the replacement host is smaller
  const CheckpointData data = load_checkpoint_file(path);
  std::unique_ptr<MultiDayDriver> second_process =
      MultiDayDriver::restore(restart, data, /*restore_counters=*/true);
  const HorizonMetrics resumed = second_process->run();

  std::printf("\n  uninterrupted week:\n");
  print_days(uninterrupted);
  std::printf("\n  crashed-and-restored week (restored on %zu shards):\n",
              second_process->shard_count());
  print_days(resumed);

  bool identical = uninterrupted.days.size() == resumed.days.size();
  for (std::size_t d = 0; identical && d < resumed.days.size(); ++d) {
    identical = uninterrupted.days[d].rewards == resumed.days[d].rewards &&
                uninterrupted.days[d].offered_units ==
                    resumed.days[d].offered_units &&
                uninterrupted.days[d].realized_units ==
                    resumed.days[d].realized_units &&
                uninterrupted.days[d].beta_estimate ==
                    resumed.days[d].beta_estimate;
  }
  std::printf("\n  resumed week bitwise identical to uninterrupted: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
