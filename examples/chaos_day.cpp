// Chaos day: the 100,000-user fleet day of fleet_day.cpp, but with 5% of
// price pulls dropped and one whole-fleet measurement blackout period.
// Faults touch only what the control loop observes; the simulated users are
// identical to the clean run's, so the peak-to-average comparison at the
// end shows how much of the TDP benefit survives degraded control.
#include <cstdio>

#include "common/fault.hpp"
#include "dynamic/online_pricer.hpp"
#include "fleet/fleet_driver.hpp"

namespace {

tdp::fleet::FleetMetrics run(const tdp::FaultPlan& plan, bool verbose) {
  using namespace tdp::fleet;
  FleetDriverConfig config;
  config.population.users = 100000;
  config.population.periods = 48;
  config.shards = 64;
  config.threads = 0;
  config.warmup_days = 1;
  config.fault = plan;

  FleetDriver driver(config);
  const FleetMetrics m = driver.run_day();

  if (verbose) {
    std::printf("  health-state transitions (observation: from -> to):\n");
    for (const auto& t : driver.pricer().health_transitions()) {
      std::printf("    obs %4llu: %s -> %s\n",
                  static_cast<unsigned long long>(t.observation),
                  tdp::to_string(t.from), tdp::to_string(t.to));
    }
    std::printf("  final health: %s; %llu degraded + %llu fallback "
                "observations, longest excursion %llu periods\n",
                m.final_health.c_str(),
                static_cast<unsigned long long>(m.degraded_observations),
                static_cast<unsigned long long>(m.fallback_observations),
                static_cast<unsigned long long>(m.max_recovery_periods));
    std::printf("  price pulls dropped: %zu (%zu stale group-periods, %zu "
                "flat-TIP fallbacks, %zu recoveries)\n",
                m.price_pull_drops, m.price_stale_periods,
                m.price_fallback_periods, m.price_recoveries);
    std::printf("  measurements: %zu gaps (incl. blackout), %zu repaired, "
                "%zu shard stripes lost\n",
                m.measurement_gaps, m.measurement_repairs,
                m.shard_stripes_lost);
  }
  return m;
}

}  // namespace

int main() {
  using namespace tdp;
  using namespace tdp::fleet;

  std::printf("=== chaos day: 100k users, 5%% price-pull drops, one "
              "measurement blackout ===\n");

  std::printf("-- clean reference run --\n");
  const FleetMetrics clean = run(FaultPlan{}, /*verbose=*/false);

  FaultPlan plan;
  plan.price_pull_drop = 0.05;
  // One whole-fleet telemetry blackout in the middle of the measured day
  // (absolute period index: day 1, period 24 of 48).
  plan.measurement_blackouts = {48 + 24};

  std::printf("-- chaos run --\n");
  const FleetMetrics chaos = run(plan, /*verbose=*/true);

  const double clean_reduction =
      100.0 * (clean.peak_to_average_tip - clean.peak_to_average_tdp) /
      clean.peak_to_average_tip;
  const double chaos_reduction =
      100.0 * (chaos.peak_to_average_tip - chaos.peak_to_average_tdp) /
      chaos.peak_to_average_tip;
  std::printf("\n  peak-to-average reduction: %.2f%% clean vs %.2f%% under "
              "chaos — %.1f%% of the TDP benefit retained\n",
              clean_reduction, chaos_reduction,
              clean_reduction > 0.0
                  ? 100.0 * chaos_reduction / clean_reduction
                  : 0.0);
  return 0;
}
