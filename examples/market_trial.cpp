// Planning a TDP market trial (Section IV's workflow).
//
// Before rolling out TDP an ISP runs control experiments: it offers a few
// reward schedules, records only aggregate per-period usage, and estimates
// the population's waiting functions from the TIP-vs-TDP differences. This
// example simulates that trial: synthesize the "measured" data from a
// hidden ground truth, estimate the parameters, recover the TIP baseline
// from TDP-era data, and finally price a day with the estimated functions
// to see how much accuracy the trial bought.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "core/static_optimizer.hpp"
#include "estimation/tip_estimator.hpp"
#include "estimation/wf_estimator.hpp"

int main() {
  using namespace tdp;

  const std::size_t periods = 6;
  const std::size_t types = 2;
  const double max_reward = 1.0;

  // Hidden ground truth: 40% patient backup traffic, 60% impatient
  // interactive traffic, identical across periods.
  PatienceMix truth(periods, types, max_reward);
  for (std::size_t i = 0; i < periods; ++i) {
    truth.set(i, 0, 0.4, 0.7);
    truth.set(i, 1, 0.6, 3.0);
  }
  const std::vector<double> demand = {30, 14, 10, 18, 34, 40};

  // Week one: four trial schedules, aggregate measurements only, with
  // measurement noise.
  const WaitingFunctionEstimator estimator(periods, types, max_reward);
  Rng rng(99);
  std::vector<EstimationDataset> windows;
  for (int week_day = 0; week_day < 4; ++week_day) {
    math::Vector rewards(periods);
    for (double& p : rewards) p = rng.uniform(0.0, max_reward);
    windows.push_back(estimator.synthesize(truth, demand, rewards,
                                           /*noise=*/0.05,
                                           200 + week_day));
  }
  const auto fit = estimator.estimate_tied(demand, windows);
  std::printf("=== market-trial estimation ===\n");
  std::printf("  true  : alpha = {%.2f, %.2f}, beta = {%.2f, %.2f}\n",
              truth.alpha(0, 0), truth.alpha(0, 1), truth.beta(0, 0),
              truth.beta(0, 1));
  std::printf("  fitted: alpha = {%.2f, %.2f}, beta = {%.2f, %.2f} "
              "(residual %.2e, %zu LM iterations)\n",
              fit.mix.alpha(0, 0), fit.mix.alpha(0, 1), fit.mix.beta(0, 0),
              fit.mix.beta(0, 1), fit.residual_norm2, fit.iterations);

  // Week two: TDP is live; re-estimate the TIP baseline from usage alone.
  std::vector<TipObservation> tdp_windows;
  for (int d = 0; d < 3; ++d) {
    math::Vector rewards(periods);
    for (double& p : rewards) p = rng.uniform(0.3, 1.0);
    tdp_windows.push_back(
        {rewards, predict_tdp_usage(truth, demand, rewards)});
  }
  const math::Vector baseline = estimate_tip_baseline(fit.mix, tdp_windows);
  std::printf("\n=== TIP baseline recovered from TDP-era data ===\n  ");
  for (std::size_t i = 0; i < periods; ++i) {
    std::printf("%.1f/%.0f ", baseline[i], demand[i]);
  }
  std::printf(" (estimated/true)\n");

  // Price the day with estimated vs true waiting functions.
  const auto build_model = [&](const PatienceMix& mix) {
    DemandProfile profile(periods);
    for (std::size_t i = 0; i < periods; ++i) {
      for (std::size_t j = 0; j < types; ++j) {
        profile.add_class(
            i, SessionClass{std::make_shared<PowerLawWaitingFunction>(
                                mix.beta(i, j), periods, max_reward),
                            mix.alpha(i, j) * demand[i]});
      }
    }
    return StaticModel(std::move(profile), 24.0,
                       math::PiecewiseLinearCost::hinge(2.0));
  };
  const StaticModel true_model = build_model(truth);
  const StaticModel est_model = build_model(fit.mix);
  const PricingSolution ideal = optimize_static_prices(true_model);
  const PricingSolution practical = optimize_static_prices(est_model);
  const double realized = true_model.total_cost(practical.rewards);

  std::printf("\n=== value of the trial ===\n");
  std::printf("  flat-pricing cost            : %.2f\n",
              true_model.tip_cost());
  std::printf("  TDP, perfect knowledge       : %.2f\n", ideal.total_cost);
  std::printf("  TDP, trial-estimated functions: %.2f realized "
              "(%.2f%% above the ideal)\n",
              realized,
              100.0 * (realized - ideal.total_cost) /
                  std::max(ideal.total_cost, 1e-9));
  return 0;
}
