// The "$5 a month" plan (Section VII): congestion-dependent pricing on
// auto-pilot.
//
// Prices update every 30 seconds from measured bottleneck utilization.
// A budget user configures a monthly ceiling and a price threshold; the
// autopilot parks every deferrable session until a cheap slot appears
// (email checks are marked never-defer). A full-price user on the same
// link starts everything immediately. We simulate a month of busy evening
// hours and compare bills and delivered traffic.
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>

#include "common/rng.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "netsim/traffic.hpp"
#include "tube/autopilot.hpp"

int main() {
  using namespace tdp;
  using namespace tdp::netsim;

  constexpr double kSlotSeconds = 30.0;       // fast-timescale periods
  constexpr double kHoursPerDay = 4.0;        // simulated busy window
  constexpr int kDays = 30;
  constexpr std::size_t kBulk = 0;            // downloads: deferrable
  constexpr std::size_t kMail = 1;            // email: never defer

  Simulator sim;
  BottleneckLink link(sim, 10.0);
  CongestionPricer pricer(/*full_price=*/0.004, /*threshold=*/0.6,
                          /*floor=*/0.0002);

  AutopilotAgent::Config config;
  config.max_monthly_bill = 5.0;
  config.price_ceiling = 0.0008;  // only near-idle slots
  config.never_defer = {false, true};
  AutopilotAgent budget_user(config);

  double full_user_bill = 0.0;
  double full_user_mb = 0.0;
  double current_price = pricer.full_price();

  // Parked sessions waiting for a cheap slot.
  std::deque<FlowSpec> parked;

  const auto start_budget_flow = [&](const FlowSpec& spec) {
    const double admission_price = current_price;
    link.start_flow(spec, [&budget_user, admission_price](
                              FlowId, const FlowSpec&, double served) {
      budget_user.record_usage(served, admission_price);
    });
  };

  // Budget user's traffic: bulk downloads plus light email.
  TrafficClassConfig bulk{"bulk", FlowKind::kElastic, 40.0, 25.0, 0.0, 0.0};
  TrafficClassConfig mail{"mail", FlowKind::kElastic, 20.0, 0.3, 0.0, 0.0};
  RateProfile flat{[](double) { return 1.0; }, 1.0};
  SessionSource bulk_source(sim, 11, /*user=*/0, kBulk, bulk, flat,
                            [&](const FlowSpec& spec) {
                              if (budget_user.should_start(kBulk,
                                                           current_price)) {
                                start_budget_flow(spec);
                              } else {
                                parked.push_back(spec);
                              }
                            });
  SessionSource mail_source(sim, 13, /*user=*/0, kMail, mail, flat,
                            [&](const FlowSpec& spec) {
                              start_budget_flow(spec);  // never deferred
                            });

  // Full-price user: heavy evening streaming + downloads, pays full rate.
  TrafficClassConfig heavy{"heavy", FlowKind::kElastic, 120.0, 30.0, 0.0,
                           0.0};
  RateProfile evening{[](double t) {
                        const double hour =
                            std::fmod(t / 3600.0, kHoursPerDay);
                        return hour < 2.0 ? 1.8 : 0.4;  // busy first half
                      },
                      1.8};
  SessionSource heavy_source(
      sim, 17, /*user=*/1, kBulk, heavy, evening, [&](const FlowSpec& spec) {
        const double admission_price = pricer.full_price();
        link.start_flow(spec, [&full_user_bill, &full_user_mb,
                               admission_price](FlowId, const FlowSpec&,
                                                double served) {
          full_user_bill += served * admission_price;
          full_user_mb += served;
        });
      });

  const double horizon = kDays * kHoursPerDay * 3600.0;
  bulk_source.start(horizon);
  mail_source.start(horizon);
  heavy_source.start(horizon);

  // Fast-timescale pricing loop: every 30 s, reprice from utilization and
  // release parked sessions if the slot is cheap enough.
  std::size_t released = 0;
  std::size_t slots_cheap = 0;
  std::size_t slots_total = 0;
  for (double t = kSlotSeconds; t <= horizon; t += kSlotSeconds) {
    sim.at(t, [&] {
      current_price = pricer.price(link.utilization());
      ++slots_total;
      if (budget_user.should_start(kBulk, current_price)) {
        ++slots_cheap;
        while (!parked.empty()) {
          start_budget_flow(parked.front());
          parked.pop_front();
          ++released;
        }
      }
    });
  }
  sim.run_until(horizon + 600.0);

  std::printf("=== congestion-dependent pricing, 30-second slots ===\n");
  std::printf("  cheap slots: %zu of %zu (%.0f%% of the month)\n",
              slots_cheap, slots_total,
              100.0 * slots_cheap / static_cast<double>(slots_total));
  std::printf("  parked sessions released into cheap slots: %zu (%zu still "
              "waiting)\n",
              released, parked.size());
  std::printf("\n  budget user  : %8.0f MB delivered, bill $%.2f "
              "(budget $%.2f)\n",
              budget_user.usage_mb(), budget_user.spent(),
              budget_user.config().max_monthly_bill);
  std::printf("  full-price user: %6.0f MB delivered, bill $%.2f\n",
              full_user_mb, full_user_bill);
  std::printf("\n  the autopilot rides the price valleys: a month of bulk "
              "transfer for ~$5\n  without the user ever looking at a "
              "price.\n");
  return 0;
}
