// Dynamic pricing with carry-over and online adaptation (Section III/V-B).
//
// Sessions that the bottleneck cannot serve spill into the next period, so
// evening congestion cascades deep into the night; deferral becomes far
// more valuable than the static model suggests. The online pricer then
// absorbs a demand surprise (period 1 arrives light) and re-tunes one
// reward per period as the day unfolds. A session-level stochastic run
// validates the fluid predictions.
#include <algorithm>
#include <cstdio>

#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "dynamic/paper_dynamic.hpp"
#include "dynamic/stochastic_sim.hpp"

int main() {
  using namespace tdp;

  const DynamicModel model = paper::dynamic_model_48();
  const DynamicPricingSolution offline = optimize_dynamic_prices(model);
  const auto tip = model.evaluate(math::Vector(48, 0.0));

  std::printf("=== dynamic day: capacity 210 MBps, work carries over ===\n");
  std::printf("  flat pricing : $%.2f/user/day (peak backlog %.0f MBps)\n",
              per_user_daily_cost_dollars(offline.tip_cost, kPaperUserCount),
              to_mbps(*std::max_element(tip.backlog.begin(),
                                        tip.backlog.end())));
  std::printf("  offline TDP  : $%.2f/user/day (peak backlog %.0f MBps)\n",
              per_user_daily_cost_dollars(offline.evaluation.total_cost,
                                          kPaperUserCount),
              to_mbps(*std::max_element(offline.evaluation.backlog.begin(),
                                        offline.evaluation.backlog.end())));
  double max_reward = 0.0;
  for (double p : offline.rewards) max_reward = std::max(max_reward, p);
  std::printf("  max reward   : $%.3f — above the static one-period cap of "
              "$%.3f\n",
              to_dollars(max_reward),
              to_dollars(paper::kDynamicCostSlope / 2.0));

  // Online adaptation: the morning comes in 13%% light.
  std::printf("\n--- online adaptation: period 1 arrives at 200 instead of "
              "230 MBps ---\n");
  OnlinePricer pricer(paper::dynamic_model_48());
  const math::Vector nominal = pricer.rewards();
  const auto step = pricer.observe_period(0, 20.0);
  std::printf("  period-1 reward: $%.4f -> $%.4f\n",
              to_dollars(step.old_reward), to_dollars(step.new_reward));
  for (std::size_t period = 1; period < 48; ++period) {
    pricer.observe_period(
        period, pricer.model().arrivals().tip_demand(period));
  }
  const double adjusted = pricer.expected_cost();
  const double kept = pricer.model().total_cost(nominal);
  std::printf("  day cost: $%.3f/user adjusted vs $%.3f/user nominal "
              "(%.1f%% saved by adapting)\n",
              per_user_daily_cost_dollars(adjusted, kPaperUserCount),
              per_user_daily_cost_dollars(kept, kPaperUserCount),
              100.0 * (kept - adjusted) / kept);

  // Stochastic validation at the fluid optimum.
  std::printf("\n--- session-level stochastic check (Poisson arrivals, "
              "exponential sizes) ---\n");
  StochasticSimOptions options;
  options.days = 30;
  const auto sim = simulate_stochastic(model, offline.rewards, options);
  std::printf("  %zu sessions simulated, %zu deferred\n",
              sim.sessions_simulated, sim.sessions_deferred);
  std::printf("  reward cost/day: %.1f fluid vs %.1f realized\n",
              offline.evaluation.reward_cost, sim.mean_reward_cost);
  std::printf("  backlog cost/day: %.1f fluid vs %.1f realized — the fluid\n"
              "  optimum rides the capacity knife edge, so real randomness\n"
              "  re-creates backlog; provision a capacity cushion.\n",
              offline.evaluation.backlog_cost, sim.mean_backlog_cost);
  return 0;
}
