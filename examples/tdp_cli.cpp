// tdp_cli — price a day from a CSV demand file.
//
// Input format (header required), one row per session class:
//
//     # period is 1-based; beta is the patience index; volume in demand units
//     period,beta,volume
//     1,0.5,4
//     1,2.0,3
//     2,1.5,2
//     ...
//
// Usage:
//   tdp_cli <demand.csv> <capacity> <cost-slope> [--dynamic] [--out <file>]
//
// Solves the static (default) or dynamic (carry-over) price optimization
// and prints — or writes as CSV — the optimal reward schedule and the
// resulting traffic profile. Demonstrates how a downstream ISP would feed
// its own measured demand into the library.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "core/static_model.hpp"
#include "core/static_optimizer.hpp"
#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <demand.csv> <capacity> <cost-slope> [--dynamic] "
               "[--out <file>]\n"
               "  demand.csv columns: period,beta,volume (period 1-based)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tdp;
  if (argc < 4) return usage(argv[0]);

  const std::string demand_path = argv[1];
  const double capacity = std::atof(argv[2]);
  const double slope = std::atof(argv[3]);
  bool dynamic = false;
  std::string out_path;
  for (int a = 4; a < argc; ++a) {
    if (std::strcmp(argv[a], "--dynamic") == 0) {
      dynamic = true;
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      return usage(argv[0]);
    }
  }

  try {
    const CsvTable csv = load_csv(demand_path, /*has_header=*/true);
    const std::size_t period_col = csv.column_index("period");
    const std::size_t beta_col = csv.column_index("beta");
    const std::size_t volume_col = csv.column_index("volume");

    std::size_t periods = 0;
    for (std::size_t r = 0; r < csv.row_count(); ++r) {
      periods = std::max(periods,
                         static_cast<std::size_t>(csv.number(r, period_col)));
    }
    TDP_REQUIRE(periods >= 2, "need at least two periods in the CSV");

    // Normalization at the rational cap slope/2 (the calibrated convention).
    const double normalization = 0.5 * slope;
    const LagNormalization lag_norm = dynamic
                                          ? LagNormalization::kContinuous
                                          : LagNormalization::kDiscrete;
    std::map<double, WaitingFunctionPtr> waiting_cache;
    DemandProfile demand(periods);
    for (std::size_t r = 0; r < csv.row_count(); ++r) {
      const auto period =
          static_cast<std::size_t>(csv.number(r, period_col)) - 1;
      const double beta = csv.number(r, beta_col);
      const double volume = csv.number(r, volume_col);
      auto& waiting = waiting_cache[beta];
      if (!waiting) {
        waiting = std::make_shared<PowerLawWaitingFunction>(
            beta, periods, normalization, 1.0, lag_norm);
      }
      demand.add_class(period, {waiting, volume});
    }

    math::Vector rewards;
    math::Vector profile;
    double tip_cost = 0.0;
    double tdp_cost = 0.0;
    if (dynamic) {
      DynamicModel model(std::move(demand), capacity,
                         math::PiecewiseLinearCost::hinge(slope));
      const DynamicPricingSolution sol = optimize_dynamic_prices(model);
      rewards = sol.rewards;
      profile = sol.evaluation.arrivals;
      tip_cost = sol.tip_cost;
      tdp_cost = sol.evaluation.total_cost;
    } else {
      StaticModel model(std::move(demand), capacity,
                        math::PiecewiseLinearCost::hinge(slope));
      const PricingSolution sol = optimize_static_prices(model);
      rewards = sol.rewards;
      profile = sol.usage;
      tip_cost = sol.tip_cost;
      tdp_cost = sol.total_cost;
    }

    std::printf("# model: %s, capacity %.3f, cost slope %.3f\n",
                dynamic ? "dynamic (carry-over)" : "static", capacity, slope);
    std::printf("# cost: %.4f flat -> %.4f TDP (%.1f%% savings)\n", tip_cost,
                tdp_cost,
                tip_cost > 0.0 ? 100.0 * (tip_cost - tdp_cost) / tip_cost
                               : 0.0);

    std::vector<std::vector<std::string>> rows;
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      char reward_text[32];
      char usage_text[32];
      std::snprintf(reward_text, sizeof reward_text, "%.6f", rewards[i]);
      std::snprintf(usage_text, sizeof usage_text, "%.4f", profile[i]);
      rows.push_back({std::to_string(i + 1), reward_text, usage_text});
    }
    const std::vector<std::string> header = {"period", "reward", "usage"};
    if (out_path.empty()) {
      std::fputs(to_csv(header, rows).c_str(), stdout);
    } else {
      save_csv(out_path, header, rows);
      std::printf("# schedule written to %s\n", out_path.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
