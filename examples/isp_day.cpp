// A full ISP day on the paper's data: the Section V-A study end to end.
// Loads the AT&T-trace-derived 48-period demand (Tables V/VII), solves the
// static price optimization, and prints the day's operating picture the
// way an ISP pricing team would read it.
#include <cstdio>

#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/paper_data.hpp"
#include "core/profit.hpp"
#include "core/static_optimizer.hpp"

int main() {
  using namespace tdp;

  const StaticModel model = paper::static_model_48();
  const PricingSolution sol = optimize_static_prices(model);
  const auto tip = model.demand().tip_demand_vector();

  std::printf("=== ISP day study: 48 half-hour periods, capacity 180 MBps "
              "===\n\n");
  std::printf("  time   demand  reward   usage    state\n");
  for (std::size_t i = 0; i < 48; ++i) {
    const int hour = static_cast<int>(i) / 2;
    const int minute = (i % 2) * 30;
    std::printf("  %02d:%02d  %4.0f    $%5.3f  %6.1f   %s\n", hour, minute,
                to_mbps(tip[i]), to_dollars(sol.rewards[i]),
                to_mbps(sol.usage[i]),
                sol.usage[i] > paper::kStaticCapacityUnits + 1e-6
                    ? "over capacity"
                    : (sol.usage[i] > paper::kStaticCapacityUnits - 1e-6
                           ? "at capacity"
                           : ""));
  }

  std::printf("\n--- daily summary (10 users) ---\n");
  std::printf("  cost with flat pricing : $%.2f per user\n",
              per_user_daily_cost_dollars(sol.tip_cost, kPaperUserCount));
  std::printf("  cost with TDP          : $%.2f per user (%.1f%% saved)\n",
              per_user_daily_cost_dollars(sol.total_cost, kPaperUserCount),
              100.0 * (sol.tip_cost - sol.total_cost) / sol.tip_cost);
  std::printf("  reward payout          : %.1f money units\n",
              sol.reward_cost);
  std::printf("  residue spread         : %.1f -> %.1f unit-periods\n",
              residue_spread(tip), residue_spread(sol.usage));
  std::printf("  peak-to-valley usage   : %.0f -> %.0f MBps\n",
              to_mbps(peak_to_valley(tip)),
              to_mbps(peak_to_valley(sol.usage)));
  std::printf("  traffic moved          : %.1f%% of daily volume\n",
              100.0 * redistributed_fraction(tip, sol.usage));

  // Prop. 2 in action: the same rewards maximize profit.
  const ProfitBreakdown profit = evaluate_profit(model, sol.rewards,
                                                 /*flat price*/ 2.0,
                                                 /*marginal cost*/ 0.5);
  std::printf("\n--- profit view (usage price $0.20/unit, op cost "
              "$0.05/unit) ---\n");
  std::printf("  revenue %.1f - rewards %.1f - operations %.1f - congestion "
              "%.1f = profit %.1f\n",
              profit.revenue, profit.reward_cost, profit.operational_cost,
              profit.capacity_cost, profit.profit);
  return 0;
}
