# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tdp_common_tests[1]_include.cmake")
include("/root/repo/build/tests/tdp_math_tests[1]_include.cmake")
include("/root/repo/build/tests/tdp_core_tests[1]_include.cmake")
include("/root/repo/build/tests/tdp_dynamic_tests[1]_include.cmake")
include("/root/repo/build/tests/tdp_estimation_tests[1]_include.cmake")
include("/root/repo/build/tests/tdp_netsim_tests[1]_include.cmake")
include("/root/repo/build/tests/tdp_tube_tests[1]_include.cmake")
