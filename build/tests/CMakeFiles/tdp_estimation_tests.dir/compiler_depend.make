# Empty compiler generated dependencies file for tdp_estimation_tests.
# This may be replaced when dependencies are built.
