file(REMOVE_RECURSE
  "CMakeFiles/tdp_estimation_tests.dir/test_estimation.cpp.o"
  "CMakeFiles/tdp_estimation_tests.dir/test_estimation.cpp.o.d"
  "tdp_estimation_tests"
  "tdp_estimation_tests.pdb"
  "tdp_estimation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_estimation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
