# Empty compiler generated dependencies file for tdp_tube_tests.
# This may be replaced when dependencies are built.
