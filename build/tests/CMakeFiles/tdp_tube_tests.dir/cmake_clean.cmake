file(REMOVE_RECURSE
  "CMakeFiles/tdp_tube_tests.dir/test_autopilot.cpp.o"
  "CMakeFiles/tdp_tube_tests.dir/test_autopilot.cpp.o.d"
  "CMakeFiles/tdp_tube_tests.dir/test_gui_agent.cpp.o"
  "CMakeFiles/tdp_tube_tests.dir/test_gui_agent.cpp.o.d"
  "CMakeFiles/tdp_tube_tests.dir/test_measurement_channel.cpp.o"
  "CMakeFiles/tdp_tube_tests.dir/test_measurement_channel.cpp.o.d"
  "CMakeFiles/tdp_tube_tests.dir/test_rrd.cpp.o"
  "CMakeFiles/tdp_tube_tests.dir/test_rrd.cpp.o.d"
  "CMakeFiles/tdp_tube_tests.dir/test_tube_system.cpp.o"
  "CMakeFiles/tdp_tube_tests.dir/test_tube_system.cpp.o.d"
  "tdp_tube_tests"
  "tdp_tube_tests.pdb"
  "tdp_tube_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_tube_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
