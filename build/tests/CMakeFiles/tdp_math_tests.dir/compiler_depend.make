# Empty compiler generated dependencies file for tdp_math_tests.
# This may be replaced when dependencies are built.
