file(REMOVE_RECURSE
  "CMakeFiles/tdp_math_tests.dir/test_fista.cpp.o"
  "CMakeFiles/tdp_math_tests.dir/test_fista.cpp.o.d"
  "CMakeFiles/tdp_math_tests.dir/test_golden_lm.cpp.o"
  "CMakeFiles/tdp_math_tests.dir/test_golden_lm.cpp.o.d"
  "CMakeFiles/tdp_math_tests.dir/test_matrix.cpp.o"
  "CMakeFiles/tdp_math_tests.dir/test_matrix.cpp.o.d"
  "CMakeFiles/tdp_math_tests.dir/test_piecewise_linear.cpp.o"
  "CMakeFiles/tdp_math_tests.dir/test_piecewise_linear.cpp.o.d"
  "CMakeFiles/tdp_math_tests.dir/test_quadrature.cpp.o"
  "CMakeFiles/tdp_math_tests.dir/test_quadrature.cpp.o.d"
  "tdp_math_tests"
  "tdp_math_tests.pdb"
  "tdp_math_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
