file(REMOVE_RECURSE
  "CMakeFiles/tdp_core_tests.dir/test_deferral_kernel.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_deferral_kernel.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_definite_choice.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_definite_choice.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_metrics.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_metrics.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_paper_data.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_paper_data.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_profit.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_profit.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_static_model.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_static_model.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_static_optimizer.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_static_optimizer.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_two_period.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_two_period.cpp.o.d"
  "CMakeFiles/tdp_core_tests.dir/test_waiting_function.cpp.o"
  "CMakeFiles/tdp_core_tests.dir/test_waiting_function.cpp.o.d"
  "tdp_core_tests"
  "tdp_core_tests.pdb"
  "tdp_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
