
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_deferral_kernel.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_deferral_kernel.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_deferral_kernel.cpp.o.d"
  "/root/repo/tests/test_definite_choice.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_definite_choice.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_definite_choice.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_paper_data.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_paper_data.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_paper_data.cpp.o.d"
  "/root/repo/tests/test_profit.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_profit.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_profit.cpp.o.d"
  "/root/repo/tests/test_static_model.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_static_model.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_static_model.cpp.o.d"
  "/root/repo/tests/test_static_optimizer.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_static_optimizer.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_static_optimizer.cpp.o.d"
  "/root/repo/tests/test_two_period.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_two_period.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_two_period.cpp.o.d"
  "/root/repo/tests/test_waiting_function.cpp" "tests/CMakeFiles/tdp_core_tests.dir/test_waiting_function.cpp.o" "gcc" "tests/CMakeFiles/tdp_core_tests.dir/test_waiting_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tube/CMakeFiles/tdp_tube.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/tdp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/tdp_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/tdp_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tdp_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
