# Empty compiler generated dependencies file for tdp_core_tests.
# This may be replaced when dependencies are built.
