file(REMOVE_RECURSE
  "CMakeFiles/tdp_netsim_tests.dir/test_event_queue.cpp.o"
  "CMakeFiles/tdp_netsim_tests.dir/test_event_queue.cpp.o.d"
  "CMakeFiles/tdp_netsim_tests.dir/test_link.cpp.o"
  "CMakeFiles/tdp_netsim_tests.dir/test_link.cpp.o.d"
  "CMakeFiles/tdp_netsim_tests.dir/test_netsim_stress.cpp.o"
  "CMakeFiles/tdp_netsim_tests.dir/test_netsim_stress.cpp.o.d"
  "CMakeFiles/tdp_netsim_tests.dir/test_traffic.cpp.o"
  "CMakeFiles/tdp_netsim_tests.dir/test_traffic.cpp.o.d"
  "tdp_netsim_tests"
  "tdp_netsim_tests.pdb"
  "tdp_netsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_netsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
