# Empty dependencies file for tdp_netsim_tests.
# This may be replaced when dependencies are built.
