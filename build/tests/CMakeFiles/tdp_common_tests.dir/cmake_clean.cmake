file(REMOVE_RECURSE
  "CMakeFiles/tdp_common_tests.dir/test_csv.cpp.o"
  "CMakeFiles/tdp_common_tests.dir/test_csv.cpp.o.d"
  "CMakeFiles/tdp_common_tests.dir/test_cyclic.cpp.o"
  "CMakeFiles/tdp_common_tests.dir/test_cyclic.cpp.o.d"
  "CMakeFiles/tdp_common_tests.dir/test_logging_table.cpp.o"
  "CMakeFiles/tdp_common_tests.dir/test_logging_table.cpp.o.d"
  "CMakeFiles/tdp_common_tests.dir/test_rng.cpp.o"
  "CMakeFiles/tdp_common_tests.dir/test_rng.cpp.o.d"
  "tdp_common_tests"
  "tdp_common_tests.pdb"
  "tdp_common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
