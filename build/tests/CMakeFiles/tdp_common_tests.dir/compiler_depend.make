# Empty compiler generated dependencies file for tdp_common_tests.
# This may be replaced when dependencies are built.
