# Empty compiler generated dependencies file for tdp_dynamic_tests.
# This may be replaced when dependencies are built.
