file(REMOVE_RECURSE
  "CMakeFiles/tdp_dynamic_tests.dir/test_dynamic_model.cpp.o"
  "CMakeFiles/tdp_dynamic_tests.dir/test_dynamic_model.cpp.o.d"
  "CMakeFiles/tdp_dynamic_tests.dir/test_fixed_duration.cpp.o"
  "CMakeFiles/tdp_dynamic_tests.dir/test_fixed_duration.cpp.o.d"
  "CMakeFiles/tdp_dynamic_tests.dir/test_online_pricer.cpp.o"
  "CMakeFiles/tdp_dynamic_tests.dir/test_online_pricer.cpp.o.d"
  "CMakeFiles/tdp_dynamic_tests.dir/test_stochastic_sim.cpp.o"
  "CMakeFiles/tdp_dynamic_tests.dir/test_stochastic_sim.cpp.o.d"
  "tdp_dynamic_tests"
  "tdp_dynamic_tests.pdb"
  "tdp_dynamic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_dynamic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
