# Empty dependencies file for bench_table3_estimation.
# This may be replaced when dependencies are built.
