file(REMOVE_RECURSE
  "../bench/bench_table3_estimation"
  "../bench/bench_table3_estimation.pdb"
  "CMakeFiles/bench_table3_estimation.dir/table3_estimation.cpp.o"
  "CMakeFiles/bench_table3_estimation.dir/table3_estimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
