
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sensitivity.cpp" "bench-build/CMakeFiles/bench_sensitivity.dir/sensitivity.cpp.o" "gcc" "bench-build/CMakeFiles/bench_sensitivity.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tube/CMakeFiles/tdp_tube.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/tdp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/tdp_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/tdp_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tdp_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
