file(REMOVE_RECURSE
  "../bench/bench_micro_runtime"
  "../bench/bench_micro_runtime.pdb"
  "CMakeFiles/bench_micro_runtime.dir/micro_runtime.cpp.o"
  "CMakeFiles/bench_micro_runtime.dir/micro_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
