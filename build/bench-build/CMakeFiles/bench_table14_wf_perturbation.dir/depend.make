# Empty dependencies file for bench_table14_wf_perturbation.
# This may be replaced when dependencies are built.
