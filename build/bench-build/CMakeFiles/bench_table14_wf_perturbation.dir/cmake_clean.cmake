file(REMOVE_RECURSE
  "../bench/bench_table14_wf_perturbation"
  "../bench/bench_table14_wf_perturbation.pdb"
  "CMakeFiles/bench_table14_wf_perturbation.dir/table14_wf_perturbation.cpp.o"
  "CMakeFiles/bench_table14_wf_perturbation.dir/table14_wf_perturbation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_wf_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
