# Empty compiler generated dependencies file for bench_fig7_dynamic_rewards.
# This may be replaced when dependencies are built.
