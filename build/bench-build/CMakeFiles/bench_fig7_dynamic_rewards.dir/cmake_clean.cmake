file(REMOVE_RECURSE
  "../bench/bench_fig7_dynamic_rewards"
  "../bench/bench_fig7_dynamic_rewards.pdb"
  "CMakeFiles/bench_fig7_dynamic_rewards.dir/fig7_dynamic_rewards.cpp.o"
  "CMakeFiles/bench_fig7_dynamic_rewards.dir/fig7_dynamic_rewards.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dynamic_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
