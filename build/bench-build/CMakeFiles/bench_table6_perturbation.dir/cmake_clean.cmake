file(REMOVE_RECURSE
  "../bench/bench_table6_perturbation"
  "../bench/bench_table6_perturbation.pdb"
  "CMakeFiles/bench_table6_perturbation.dir/table6_perturbation.cpp.o"
  "CMakeFiles/bench_table6_perturbation.dir/table6_perturbation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
