file(REMOVE_RECURSE
  "../bench/bench_fig8_dynamic_profile"
  "../bench/bench_fig8_dynamic_profile.pdb"
  "CMakeFiles/bench_fig8_dynamic_profile.dir/fig8_dynamic_profile.cpp.o"
  "CMakeFiles/bench_fig8_dynamic_profile.dir/fig8_dynamic_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dynamic_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
