# Empty compiler generated dependencies file for bench_fig12_tube_tdp.
# This may be replaced when dependencies are built.
