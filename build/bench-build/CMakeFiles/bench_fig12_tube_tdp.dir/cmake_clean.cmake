file(REMOVE_RECURSE
  "../bench/bench_fig12_tube_tdp"
  "../bench/bench_fig12_tube_tdp.pdb"
  "CMakeFiles/bench_fig12_tube_tdp.dir/fig12_tube_tdp.cpp.o"
  "CMakeFiles/bench_fig12_tube_tdp.dir/fig12_tube_tdp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_tube_tdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
