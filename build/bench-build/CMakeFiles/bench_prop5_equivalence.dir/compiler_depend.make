# Empty compiler generated dependencies file for bench_prop5_equivalence.
# This may be replaced when dependencies are built.
