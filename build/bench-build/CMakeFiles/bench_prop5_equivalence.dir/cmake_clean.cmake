file(REMOVE_RECURSE
  "../bench/bench_prop5_equivalence"
  "../bench/bench_prop5_equivalence.pdb"
  "CMakeFiles/bench_prop5_equivalence.dir/prop5_equivalence.cpp.o"
  "CMakeFiles/bench_prop5_equivalence.dir/prop5_equivalence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop5_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
