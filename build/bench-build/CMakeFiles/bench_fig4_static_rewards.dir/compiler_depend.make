# Empty compiler generated dependencies file for bench_fig4_static_rewards.
# This may be replaced when dependencies are built.
