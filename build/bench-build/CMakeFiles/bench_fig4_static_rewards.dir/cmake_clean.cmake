file(REMOVE_RECURSE
  "../bench/bench_fig4_static_rewards"
  "../bench/bench_fig4_static_rewards.pdb"
  "CMakeFiles/bench_fig4_static_rewards.dir/fig4_static_rewards.cpp.o"
  "CMakeFiles/bench_fig4_static_rewards.dir/fig4_static_rewards.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_static_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
