# Empty compiler generated dependencies file for bench_prop2_profit.
# This may be replaced when dependencies are built.
