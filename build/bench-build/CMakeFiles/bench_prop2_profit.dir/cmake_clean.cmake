file(REMOVE_RECURSE
  "../bench/bench_prop2_profit"
  "../bench/bench_prop2_profit.pdb"
  "CMakeFiles/bench_prop2_profit.dir/prop2_profit.cpp.o"
  "CMakeFiles/bench_prop2_profit.dir/prop2_profit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop2_profit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
