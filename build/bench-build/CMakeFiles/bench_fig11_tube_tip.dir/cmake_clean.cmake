file(REMOVE_RECURSE
  "../bench/bench_fig11_tube_tip"
  "../bench/bench_fig11_tube_tip.pdb"
  "CMakeFiles/bench_fig11_tube_tip.dir/fig11_tube_tip.cpp.o"
  "CMakeFiles/bench_fig11_tube_tip.dir/fig11_tube_tip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tube_tip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
