# Empty dependencies file for bench_fig11_tube_tip.
# This may be replaced when dependencies are built.
