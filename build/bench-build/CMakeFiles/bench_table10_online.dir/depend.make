# Empty dependencies file for bench_table10_online.
# This may be replaced when dependencies are built.
