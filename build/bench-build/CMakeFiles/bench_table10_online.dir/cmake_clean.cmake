file(REMOVE_RECURSE
  "../bench/bench_table10_online"
  "../bench/bench_table10_online.pdb"
  "CMakeFiles/bench_table10_online.dir/table10_online.cpp.o"
  "CMakeFiles/bench_table10_online.dir/table10_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
