file(REMOVE_RECURSE
  "../bench/bench_fig3_waiting_functions"
  "../bench/bench_fig3_waiting_functions.pdb"
  "CMakeFiles/bench_fig3_waiting_functions.dir/fig3_waiting_functions.cpp.o"
  "CMakeFiles/bench_fig3_waiting_functions.dir/fig3_waiting_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_waiting_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
