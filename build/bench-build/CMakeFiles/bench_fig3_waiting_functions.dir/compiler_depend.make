# Empty compiler generated dependencies file for bench_fig3_waiting_functions.
# This may be replaced when dependencies are built.
