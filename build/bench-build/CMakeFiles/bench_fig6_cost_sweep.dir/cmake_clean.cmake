file(REMOVE_RECURSE
  "../bench/bench_fig6_cost_sweep"
  "../bench/bench_fig6_cost_sweep.pdb"
  "CMakeFiles/bench_fig6_cost_sweep.dir/fig6_cost_sweep.cpp.o"
  "CMakeFiles/bench_fig6_cost_sweep.dir/fig6_cost_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cost_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
