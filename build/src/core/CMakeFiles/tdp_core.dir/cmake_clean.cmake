file(REMOVE_RECURSE
  "CMakeFiles/tdp_core.dir/deferral_kernel.cpp.o"
  "CMakeFiles/tdp_core.dir/deferral_kernel.cpp.o.d"
  "CMakeFiles/tdp_core.dir/definite_choice.cpp.o"
  "CMakeFiles/tdp_core.dir/definite_choice.cpp.o.d"
  "CMakeFiles/tdp_core.dir/demand_profile.cpp.o"
  "CMakeFiles/tdp_core.dir/demand_profile.cpp.o.d"
  "CMakeFiles/tdp_core.dir/metrics.cpp.o"
  "CMakeFiles/tdp_core.dir/metrics.cpp.o.d"
  "CMakeFiles/tdp_core.dir/paper_data.cpp.o"
  "CMakeFiles/tdp_core.dir/paper_data.cpp.o.d"
  "CMakeFiles/tdp_core.dir/profit.cpp.o"
  "CMakeFiles/tdp_core.dir/profit.cpp.o.d"
  "CMakeFiles/tdp_core.dir/static_model.cpp.o"
  "CMakeFiles/tdp_core.dir/static_model.cpp.o.d"
  "CMakeFiles/tdp_core.dir/static_optimizer.cpp.o"
  "CMakeFiles/tdp_core.dir/static_optimizer.cpp.o.d"
  "CMakeFiles/tdp_core.dir/two_period.cpp.o"
  "CMakeFiles/tdp_core.dir/two_period.cpp.o.d"
  "CMakeFiles/tdp_core.dir/waiting_function.cpp.o"
  "CMakeFiles/tdp_core.dir/waiting_function.cpp.o.d"
  "libtdp_core.a"
  "libtdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
