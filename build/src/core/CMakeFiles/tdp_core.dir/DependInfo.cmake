
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deferral_kernel.cpp" "src/core/CMakeFiles/tdp_core.dir/deferral_kernel.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/deferral_kernel.cpp.o.d"
  "/root/repo/src/core/definite_choice.cpp" "src/core/CMakeFiles/tdp_core.dir/definite_choice.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/definite_choice.cpp.o.d"
  "/root/repo/src/core/demand_profile.cpp" "src/core/CMakeFiles/tdp_core.dir/demand_profile.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/demand_profile.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/tdp_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/paper_data.cpp" "src/core/CMakeFiles/tdp_core.dir/paper_data.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/paper_data.cpp.o.d"
  "/root/repo/src/core/profit.cpp" "src/core/CMakeFiles/tdp_core.dir/profit.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/profit.cpp.o.d"
  "/root/repo/src/core/static_model.cpp" "src/core/CMakeFiles/tdp_core.dir/static_model.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/static_model.cpp.o.d"
  "/root/repo/src/core/static_optimizer.cpp" "src/core/CMakeFiles/tdp_core.dir/static_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/static_optimizer.cpp.o.d"
  "/root/repo/src/core/two_period.cpp" "src/core/CMakeFiles/tdp_core.dir/two_period.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/two_period.cpp.o.d"
  "/root/repo/src/core/waiting_function.cpp" "src/core/CMakeFiles/tdp_core.dir/waiting_function.cpp.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/waiting_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/tdp_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
