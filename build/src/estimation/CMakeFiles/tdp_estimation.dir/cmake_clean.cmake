file(REMOVE_RECURSE
  "CMakeFiles/tdp_estimation.dir/patience_mix.cpp.o"
  "CMakeFiles/tdp_estimation.dir/patience_mix.cpp.o.d"
  "CMakeFiles/tdp_estimation.dir/tip_estimator.cpp.o"
  "CMakeFiles/tdp_estimation.dir/tip_estimator.cpp.o.d"
  "CMakeFiles/tdp_estimation.dir/wf_estimator.cpp.o"
  "CMakeFiles/tdp_estimation.dir/wf_estimator.cpp.o.d"
  "libtdp_estimation.a"
  "libtdp_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
