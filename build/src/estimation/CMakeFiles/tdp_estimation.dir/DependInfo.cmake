
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimation/patience_mix.cpp" "src/estimation/CMakeFiles/tdp_estimation.dir/patience_mix.cpp.o" "gcc" "src/estimation/CMakeFiles/tdp_estimation.dir/patience_mix.cpp.o.d"
  "/root/repo/src/estimation/tip_estimator.cpp" "src/estimation/CMakeFiles/tdp_estimation.dir/tip_estimator.cpp.o" "gcc" "src/estimation/CMakeFiles/tdp_estimation.dir/tip_estimator.cpp.o.d"
  "/root/repo/src/estimation/wf_estimator.cpp" "src/estimation/CMakeFiles/tdp_estimation.dir/wf_estimator.cpp.o" "gcc" "src/estimation/CMakeFiles/tdp_estimation.dir/wf_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tdp_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
