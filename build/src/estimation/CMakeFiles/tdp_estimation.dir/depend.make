# Empty dependencies file for tdp_estimation.
# This may be replaced when dependencies are built.
