file(REMOVE_RECURSE
  "libtdp_estimation.a"
)
