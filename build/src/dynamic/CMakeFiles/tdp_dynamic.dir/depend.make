# Empty dependencies file for tdp_dynamic.
# This may be replaced when dependencies are built.
