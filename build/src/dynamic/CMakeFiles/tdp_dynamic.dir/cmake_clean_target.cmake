file(REMOVE_RECURSE
  "libtdp_dynamic.a"
)
