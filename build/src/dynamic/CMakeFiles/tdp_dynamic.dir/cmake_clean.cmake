file(REMOVE_RECURSE
  "CMakeFiles/tdp_dynamic.dir/dynamic_model.cpp.o"
  "CMakeFiles/tdp_dynamic.dir/dynamic_model.cpp.o.d"
  "CMakeFiles/tdp_dynamic.dir/dynamic_optimizer.cpp.o"
  "CMakeFiles/tdp_dynamic.dir/dynamic_optimizer.cpp.o.d"
  "CMakeFiles/tdp_dynamic.dir/fixed_duration.cpp.o"
  "CMakeFiles/tdp_dynamic.dir/fixed_duration.cpp.o.d"
  "CMakeFiles/tdp_dynamic.dir/online_pricer.cpp.o"
  "CMakeFiles/tdp_dynamic.dir/online_pricer.cpp.o.d"
  "CMakeFiles/tdp_dynamic.dir/paper_dynamic.cpp.o"
  "CMakeFiles/tdp_dynamic.dir/paper_dynamic.cpp.o.d"
  "CMakeFiles/tdp_dynamic.dir/stochastic_sim.cpp.o"
  "CMakeFiles/tdp_dynamic.dir/stochastic_sim.cpp.o.d"
  "libtdp_dynamic.a"
  "libtdp_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
