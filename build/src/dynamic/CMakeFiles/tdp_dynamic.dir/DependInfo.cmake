
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/dynamic_model.cpp" "src/dynamic/CMakeFiles/tdp_dynamic.dir/dynamic_model.cpp.o" "gcc" "src/dynamic/CMakeFiles/tdp_dynamic.dir/dynamic_model.cpp.o.d"
  "/root/repo/src/dynamic/dynamic_optimizer.cpp" "src/dynamic/CMakeFiles/tdp_dynamic.dir/dynamic_optimizer.cpp.o" "gcc" "src/dynamic/CMakeFiles/tdp_dynamic.dir/dynamic_optimizer.cpp.o.d"
  "/root/repo/src/dynamic/fixed_duration.cpp" "src/dynamic/CMakeFiles/tdp_dynamic.dir/fixed_duration.cpp.o" "gcc" "src/dynamic/CMakeFiles/tdp_dynamic.dir/fixed_duration.cpp.o.d"
  "/root/repo/src/dynamic/online_pricer.cpp" "src/dynamic/CMakeFiles/tdp_dynamic.dir/online_pricer.cpp.o" "gcc" "src/dynamic/CMakeFiles/tdp_dynamic.dir/online_pricer.cpp.o.d"
  "/root/repo/src/dynamic/paper_dynamic.cpp" "src/dynamic/CMakeFiles/tdp_dynamic.dir/paper_dynamic.cpp.o" "gcc" "src/dynamic/CMakeFiles/tdp_dynamic.dir/paper_dynamic.cpp.o.d"
  "/root/repo/src/dynamic/stochastic_sim.cpp" "src/dynamic/CMakeFiles/tdp_dynamic.dir/stochastic_sim.cpp.o" "gcc" "src/dynamic/CMakeFiles/tdp_dynamic.dir/stochastic_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tdp_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
