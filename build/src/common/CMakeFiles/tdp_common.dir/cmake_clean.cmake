file(REMOVE_RECURSE
  "CMakeFiles/tdp_common.dir/csv.cpp.o"
  "CMakeFiles/tdp_common.dir/csv.cpp.o.d"
  "CMakeFiles/tdp_common.dir/logging.cpp.o"
  "CMakeFiles/tdp_common.dir/logging.cpp.o.d"
  "CMakeFiles/tdp_common.dir/rng.cpp.o"
  "CMakeFiles/tdp_common.dir/rng.cpp.o.d"
  "CMakeFiles/tdp_common.dir/table.cpp.o"
  "CMakeFiles/tdp_common.dir/table.cpp.o.d"
  "libtdp_common.a"
  "libtdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
