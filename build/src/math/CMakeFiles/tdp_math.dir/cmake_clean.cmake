file(REMOVE_RECURSE
  "CMakeFiles/tdp_math.dir/fista.cpp.o"
  "CMakeFiles/tdp_math.dir/fista.cpp.o.d"
  "CMakeFiles/tdp_math.dir/golden_section.cpp.o"
  "CMakeFiles/tdp_math.dir/golden_section.cpp.o.d"
  "CMakeFiles/tdp_math.dir/levenberg_marquardt.cpp.o"
  "CMakeFiles/tdp_math.dir/levenberg_marquardt.cpp.o.d"
  "CMakeFiles/tdp_math.dir/matrix.cpp.o"
  "CMakeFiles/tdp_math.dir/matrix.cpp.o.d"
  "CMakeFiles/tdp_math.dir/piecewise_linear.cpp.o"
  "CMakeFiles/tdp_math.dir/piecewise_linear.cpp.o.d"
  "CMakeFiles/tdp_math.dir/quadrature.cpp.o"
  "CMakeFiles/tdp_math.dir/quadrature.cpp.o.d"
  "CMakeFiles/tdp_math.dir/vector_ops.cpp.o"
  "CMakeFiles/tdp_math.dir/vector_ops.cpp.o.d"
  "libtdp_math.a"
  "libtdp_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
