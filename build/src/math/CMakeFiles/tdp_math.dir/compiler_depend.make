# Empty compiler generated dependencies file for tdp_math.
# This may be replaced when dependencies are built.
