
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fista.cpp" "src/math/CMakeFiles/tdp_math.dir/fista.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/fista.cpp.o.d"
  "/root/repo/src/math/golden_section.cpp" "src/math/CMakeFiles/tdp_math.dir/golden_section.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/golden_section.cpp.o.d"
  "/root/repo/src/math/levenberg_marquardt.cpp" "src/math/CMakeFiles/tdp_math.dir/levenberg_marquardt.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/levenberg_marquardt.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/tdp_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/piecewise_linear.cpp" "src/math/CMakeFiles/tdp_math.dir/piecewise_linear.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/piecewise_linear.cpp.o.d"
  "/root/repo/src/math/quadrature.cpp" "src/math/CMakeFiles/tdp_math.dir/quadrature.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/quadrature.cpp.o.d"
  "/root/repo/src/math/vector_ops.cpp" "src/math/CMakeFiles/tdp_math.dir/vector_ops.cpp.o" "gcc" "src/math/CMakeFiles/tdp_math.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
