file(REMOVE_RECURSE
  "libtdp_math.a"
)
