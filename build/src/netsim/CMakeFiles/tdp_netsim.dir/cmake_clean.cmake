file(REMOVE_RECURSE
  "CMakeFiles/tdp_netsim.dir/event_queue.cpp.o"
  "CMakeFiles/tdp_netsim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tdp_netsim.dir/link.cpp.o"
  "CMakeFiles/tdp_netsim.dir/link.cpp.o.d"
  "CMakeFiles/tdp_netsim.dir/simulator.cpp.o"
  "CMakeFiles/tdp_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/tdp_netsim.dir/traffic.cpp.o"
  "CMakeFiles/tdp_netsim.dir/traffic.cpp.o.d"
  "libtdp_netsim.a"
  "libtdp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
