# Empty compiler generated dependencies file for tdp_netsim.
# This may be replaced when dependencies are built.
