file(REMOVE_RECURSE
  "libtdp_netsim.a"
)
