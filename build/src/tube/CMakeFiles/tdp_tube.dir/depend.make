# Empty dependencies file for tdp_tube.
# This may be replaced when dependencies are built.
