
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tube/autopilot.cpp" "src/tube/CMakeFiles/tdp_tube.dir/autopilot.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/autopilot.cpp.o.d"
  "/root/repo/src/tube/gui_agent.cpp" "src/tube/CMakeFiles/tdp_tube.dir/gui_agent.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/gui_agent.cpp.o.d"
  "/root/repo/src/tube/measurement.cpp" "src/tube/CMakeFiles/tdp_tube.dir/measurement.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/measurement.cpp.o.d"
  "/root/repo/src/tube/price_channel.cpp" "src/tube/CMakeFiles/tdp_tube.dir/price_channel.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/price_channel.cpp.o.d"
  "/root/repo/src/tube/profiling.cpp" "src/tube/CMakeFiles/tdp_tube.dir/profiling.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/profiling.cpp.o.d"
  "/root/repo/src/tube/rrd.cpp" "src/tube/CMakeFiles/tdp_tube.dir/rrd.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/rrd.cpp.o.d"
  "/root/repo/src/tube/tube_system.cpp" "src/tube/CMakeFiles/tdp_tube.dir/tube_system.cpp.o" "gcc" "src/tube/CMakeFiles/tdp_tube.dir/tube_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/tdp_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/tdp_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/tdp_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tdp_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
