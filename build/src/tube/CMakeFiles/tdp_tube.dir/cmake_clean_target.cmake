file(REMOVE_RECURSE
  "libtdp_tube.a"
)
