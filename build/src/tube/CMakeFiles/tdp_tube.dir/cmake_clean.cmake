file(REMOVE_RECURSE
  "CMakeFiles/tdp_tube.dir/autopilot.cpp.o"
  "CMakeFiles/tdp_tube.dir/autopilot.cpp.o.d"
  "CMakeFiles/tdp_tube.dir/gui_agent.cpp.o"
  "CMakeFiles/tdp_tube.dir/gui_agent.cpp.o.d"
  "CMakeFiles/tdp_tube.dir/measurement.cpp.o"
  "CMakeFiles/tdp_tube.dir/measurement.cpp.o.d"
  "CMakeFiles/tdp_tube.dir/price_channel.cpp.o"
  "CMakeFiles/tdp_tube.dir/price_channel.cpp.o.d"
  "CMakeFiles/tdp_tube.dir/profiling.cpp.o"
  "CMakeFiles/tdp_tube.dir/profiling.cpp.o.d"
  "CMakeFiles/tdp_tube.dir/rrd.cpp.o"
  "CMakeFiles/tdp_tube.dir/rrd.cpp.o.d"
  "CMakeFiles/tdp_tube.dir/tube_system.cpp.o"
  "CMakeFiles/tdp_tube.dir/tube_system.cpp.o.d"
  "libtdp_tube.a"
  "libtdp_tube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_tube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
