# Empty dependencies file for dynamic_day.
# This may be replaced when dependencies are built.
