file(REMOVE_RECURSE
  "CMakeFiles/dynamic_day.dir/dynamic_day.cpp.o"
  "CMakeFiles/dynamic_day.dir/dynamic_day.cpp.o.d"
  "dynamic_day"
  "dynamic_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
