# Empty compiler generated dependencies file for five_dollar_plan.
# This may be replaced when dependencies are built.
