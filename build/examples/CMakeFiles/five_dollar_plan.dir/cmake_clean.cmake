file(REMOVE_RECURSE
  "CMakeFiles/five_dollar_plan.dir/five_dollar_plan.cpp.o"
  "CMakeFiles/five_dollar_plan.dir/five_dollar_plan.cpp.o.d"
  "five_dollar_plan"
  "five_dollar_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/five_dollar_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
