# Empty dependencies file for isp_day.
# This may be replaced when dependencies are built.
