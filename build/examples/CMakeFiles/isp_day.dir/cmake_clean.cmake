file(REMOVE_RECURSE
  "CMakeFiles/isp_day.dir/isp_day.cpp.o"
  "CMakeFiles/isp_day.dir/isp_day.cpp.o.d"
  "isp_day"
  "isp_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
