file(REMOVE_RECURSE
  "CMakeFiles/tube_emulation.dir/tube_emulation.cpp.o"
  "CMakeFiles/tube_emulation.dir/tube_emulation.cpp.o.d"
  "tube_emulation"
  "tube_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tube_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
