# Empty dependencies file for tube_emulation.
# This may be replaced when dependencies are built.
