file(REMOVE_RECURSE
  "CMakeFiles/market_trial.dir/market_trial.cpp.o"
  "CMakeFiles/market_trial.dir/market_trial.cpp.o.d"
  "market_trial"
  "market_trial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_trial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
