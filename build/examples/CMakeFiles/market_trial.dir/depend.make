# Empty dependencies file for market_trial.
# This may be replaced when dependencies are built.
