# Empty dependencies file for tdp_cli.
# This may be replaced when dependencies are built.
