file(REMOVE_RECURSE
  "CMakeFiles/tdp_cli.dir/tdp_cli.cpp.o"
  "CMakeFiles/tdp_cli.dir/tdp_cli.cpp.o.d"
  "tdp_cli"
  "tdp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
