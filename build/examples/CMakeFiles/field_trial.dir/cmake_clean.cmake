file(REMOVE_RECURSE
  "CMakeFiles/field_trial.dir/field_trial.cpp.o"
  "CMakeFiles/field_trial.dir/field_trial.cpp.o.d"
  "field_trial"
  "field_trial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_trial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
