# Empty dependencies file for field_trial.
# This may be replaced when dependencies are built.
