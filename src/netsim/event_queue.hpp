// Time-ordered event queue for the discrete-event network emulator.
//
// Events at equal times fire in insertion order (a stable tiebreak keeps
// runs deterministic). Cancellation is supported through tokens because the
// link cancels and reschedules flow-completion events whenever fair-share
// rates change.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tdp::netsim {

using EventCallback = std::function<void()>;

/// Token identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule `callback` at absolute time `when` (seconds).
  EventId schedule(double when, EventCallback callback);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (lazy deletion).
  void cancel(EventId id);

  bool empty() const { return live_count_ == 0; }

  /// Time of the next live event; only valid when not empty().
  double next_time() const;

  /// Pop the next live event without running it. The caller advances its
  /// clock first, then invokes the callback, so callbacks observe the
  /// correct current time.
  struct Popped {
    double when;
    EventCallback callback;
  };
  Popped pop();

  std::size_t size() const { return live_count_; }

 private:
  struct Entry {
    double when;
    EventId id;
    // Order by time, then by id (insertion order).
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      queue_;
  std::vector<EventCallback> callbacks_;  // indexed by id
  std::vector<bool> cancelled_;
  std::size_t live_count_ = 0;
};

}  // namespace tdp::netsim
