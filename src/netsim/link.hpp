// Bottleneck link with max-min fair sharing (flow-level fluid model).
//
// The TUBE testbed (Fig. 10) funnels all user and background traffic
// through one bottleneck. We model it at flow granularity:
//
//  - elastic flows (web objects, ftp transfers) have a fixed size and
//    receive a max-min fair share of the capacity;
//  - streaming flows (video) have a fixed duration and demand a fixed rate;
//    they receive min(rate, fair share) — congestion shows up as degraded
//    throughput rather than delayed completion (Appendix G's fixed-time
//    sessions);
//  - background traffic is a time-varying rate reservation set by the
//    traffic module.
//
// Rates are recomputed by waterfilling on every arrival/departure/rate
// event; per-flow served bytes are integrated exactly between events. This
// substitutes for the testbed's packet FIFO + 120-packet buffer: the
// Fig. 11/12 measurements are per-class byte volumes per period, which the
// fluid model preserves (see DESIGN.md's substitution table).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "netsim/simulator.hpp"

namespace tdp::netsim {

using FlowId = std::uint64_t;

enum class FlowKind { kElastic, kStreaming };

/// Immutable description of a flow offered to the link.
struct FlowSpec {
  FlowKind kind = FlowKind::kElastic;
  std::size_t user = 0;      ///< user index for accounting
  std::size_t traffic_class = 0;  ///< class index (web/ftp/video/...)
  double size_mb = 0.0;      ///< elastic: total bytes to move (MB)
  double rate_mbps = 0.0;    ///< streaming: demanded rate (MBps)
  double duration_s = 0.0;   ///< streaming: how long the stream lasts
};

/// Callback invoked when a flow leaves the link (elastic: finished;
/// streaming: duration elapsed). Receives the bytes it actually moved.
using FlowDoneCallback = std::function<void(FlowId, const FlowSpec&,
                                            double served_mb)>;

class BottleneckLink {
 public:
  /// @param sim       the simulator driving events
  /// @param capacity  link capacity in MBps (the testbed uses 10 MBps)
  BottleneckLink(Simulator& sim, double capacity_mbps);

  /// Offer a flow now; returns its id. `done` may be null.
  FlowId start_flow(const FlowSpec& spec, FlowDoneCallback done = nullptr);

  /// Set the background-traffic reservation (MBps, clamped to capacity).
  void set_background_rate(double rate_mbps);

  double capacity_mbps() const { return capacity_; }
  double background_rate() const { return background_; }
  std::size_t active_flows() const { return flows_.size(); }

  /// Total bytes served so far for (user, class); used by measurement.
  double served_mb(std::size_t user, std::size_t traffic_class) const;

  /// Current utilization in [0, 1] (including background).
  double utilization() const;

 private:
  struct ActiveFlow {
    FlowSpec spec;
    FlowDoneCallback done;
    double remaining_mb = 0.0;   // elastic
    double end_time = 0.0;       // streaming
    double served_mb = 0.0;
    double current_rate = 0.0;   // MBps, set by waterfill
    EventId completion_event = 0;
    bool has_completion_event = false;
  };

  /// Integrate served bytes since last update, recompute fair shares, and
  /// reschedule completion events.
  void recompute();

  /// Serve bytes from last_update_ to now at current rates.
  void integrate_service();

  void finish_flow(FlowId id);

  Simulator& sim_;
  double capacity_;
  double background_ = 0.0;
  double last_update_ = 0.0;
  FlowId next_id_ = 1;
  std::map<FlowId, ActiveFlow> flows_;
  std::map<std::pair<std::size_t, std::size_t>, double> served_;
};

}  // namespace tdp::netsim
