#include "netsim/event_queue.hpp"

#include "common/error.hpp"

namespace tdp::netsim {

EventId EventQueue::schedule(double when, EventCallback callback) {
  TDP_REQUIRE(static_cast<bool>(callback), "callback must be set");
  const EventId id = callbacks_.size();
  callbacks_.push_back(std::move(callback));
  cancelled_.push_back(false);
  queue_.push(Entry{when, id});
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id] || !callbacks_[id]) return;
  cancelled_[id] = true;
  --live_count_;
}

void EventQueue::drop_cancelled() const {
  while (!queue_.empty() && cancelled_[queue_.top().id]) {
    queue_.pop();
  }
}

double EventQueue::next_time() const {
  drop_cancelled();
  TDP_REQUIRE(!queue_.empty(), "event queue is empty");
  return queue_.top().when;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  TDP_REQUIRE(!queue_.empty(), "event queue is empty");
  const Entry entry = queue_.top();
  queue_.pop();
  --live_count_;
  EventCallback callback = std::move(callbacks_[entry.id]);
  callbacks_[entry.id] = nullptr;  // release captured state
  return Popped{entry.when, std::move(callback)};
}

}  // namespace tdp::netsim
