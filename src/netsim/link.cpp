#include "netsim/link.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace tdp::netsim {

namespace {
constexpr double kEpsilon = 1e-9;
}

BottleneckLink::BottleneckLink(Simulator& sim, double capacity_mbps)
    : sim_(sim), capacity_(capacity_mbps) {
  TDP_REQUIRE(capacity_mbps > 0.0, "capacity must be positive");
}

FlowId BottleneckLink::start_flow(const FlowSpec& spec,
                                  FlowDoneCallback done) {
  if (spec.kind == FlowKind::kElastic) {
    TDP_REQUIRE(spec.size_mb > 0.0, "elastic flow needs a positive size");
  } else {
    TDP_REQUIRE(spec.rate_mbps > 0.0 && spec.duration_s > 0.0,
                "streaming flow needs a positive rate and duration");
  }

  integrate_service();
  const FlowId id = next_id_++;
  ActiveFlow flow;
  flow.spec = spec;
  flow.done = std::move(done);
  flow.remaining_mb = spec.size_mb;
  flow.end_time = sim_.now() + spec.duration_s;
  flows_.emplace(id, std::move(flow));

  if (spec.kind == FlowKind::kStreaming) {
    // Streaming flows always leave at their end time.
    flows_[id].completion_event =
        sim_.at(flows_[id].end_time, [this, id] { finish_flow(id); });
    flows_[id].has_completion_event = true;
  }
  recompute();
  return id;
}

void BottleneckLink::set_background_rate(double rate_mbps) {
  TDP_REQUIRE(rate_mbps >= 0.0, "background rate must be nonnegative");
  integrate_service();
  background_ = std::min(rate_mbps, capacity_);
  recompute();
}

double BottleneckLink::served_mb(std::size_t user,
                                 std::size_t traffic_class) const {
  const auto it = served_.find({user, traffic_class});
  return it == served_.end() ? 0.0 : it->second;
}

double BottleneckLink::utilization() const {
  double used = background_;
  for (const auto& [id, flow] : flows_) used += flow.current_rate;
  return std::min(used / capacity_, 1.0);
}

void BottleneckLink::integrate_service() {
  const double now = sim_.now();
  const double dt = now - last_update_;
  last_update_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    const double served = flow.current_rate * dt;
    flow.served_mb += served;
    served_[{flow.spec.user, flow.spec.traffic_class}] += served;
    if (flow.spec.kind == FlowKind::kElastic) {
      flow.remaining_mb = std::max(flow.remaining_mb - served, 0.0);
    }
  }
}

void BottleneckLink::recompute() {
  // Max-min waterfill: streaming flows are rate-capped; elastic flows are
  // uncapped and split what remains equally.
  double available = std::max(capacity_ - background_, 0.0);

  std::vector<std::pair<FlowId, double>> capped;  // (id, demanded rate)
  std::size_t elastic_count = 0;
  for (auto& [id, flow] : flows_) {
    if (flow.spec.kind == FlowKind::kStreaming) {
      capped.emplace_back(id, flow.spec.rate_mbps);
    } else {
      ++elastic_count;
    }
  }
  // Allocate to capped flows in ascending demand order.
  std::sort(capped.begin(), capped.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::size_t sharers = capped.size() + elastic_count;
  for (const auto& [id, demand] : capped) {
    const double share = sharers > 0
                             ? available / static_cast<double>(sharers)
                             : 0.0;
    const double rate = std::min(demand, share);
    flows_[id].current_rate = rate;
    available -= rate;
    --sharers;
  }
  const double elastic_share =
      elastic_count > 0 ? available / static_cast<double>(elastic_count)
                        : 0.0;

  for (auto& [id, flow] : flows_) {
    if (flow.spec.kind == FlowKind::kElastic) {
      flow.current_rate = elastic_share;
      // Reschedule the completion event at the new rate.
      if (flow.has_completion_event) {
        sim_.cancel(flow.completion_event);
        flow.has_completion_event = false;
      }
      if (flow.current_rate > kEpsilon) {
        const double eta = flow.remaining_mb / flow.current_rate;
        const FlowId flow_id = id;
        flow.completion_event =
            sim_.after(eta, [this, flow_id] { finish_flow(flow_id); });
        flow.has_completion_event = true;
      }
    }
  }
}

void BottleneckLink::finish_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;  // already gone (stale event)
  integrate_service();

  ActiveFlow flow = std::move(it->second);
  flows_.erase(it);
  recompute();
  if (flow.done) flow.done(id, flow.spec, flow.served_mb);
}

}  // namespace tdp::netsim
