// Discrete-event simulator: clock + event queue.
//
// Single-threaded by design; all model state is advanced from event
// callbacks. Time is in seconds.
#pragma once

#include "netsim/event_queue.hpp"

namespace tdp::netsim {

class Simulator {
 public:
  double now() const { return now_; }

  /// Schedule at an absolute time >= now().
  EventId at(double when, EventCallback callback);

  /// Schedule after a delay >= 0.
  EventId after(double delay, EventCallback callback);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Run events until the queue is empty or the clock would pass `horizon`.
  /// The clock finishes exactly at `horizon`.
  void run_until(double horizon);

  /// True if any events remain.
  bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  double now_ = 0.0;
};

}  // namespace tdp::netsim
