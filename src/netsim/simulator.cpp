#include "netsim/simulator.hpp"

#include "common/error.hpp"

namespace tdp::netsim {

EventId Simulator::at(double when, EventCallback callback) {
  TDP_REQUIRE(when >= now_, "cannot schedule in the past");
  return queue_.schedule(when, std::move(callback));
}

EventId Simulator::after(double delay, EventCallback callback) {
  TDP_REQUIRE(delay >= 0.0, "delay must be nonnegative");
  return queue_.schedule(now_ + delay, std::move(callback));
}

void Simulator::run_until(double horizon) {
  TDP_REQUIRE(horizon >= now_, "horizon is in the past");
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    EventQueue::Popped event = queue_.pop();
    now_ = event.when;
    event.callback();
  }
  now_ = horizon;
}

}  // namespace tdp::netsim
