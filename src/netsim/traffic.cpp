#include "netsim/traffic.hpp"

#include "common/error.hpp"

namespace tdp::netsim {

SessionSource::SessionSource(Simulator& sim, std::uint64_t seed,
                             std::size_t user, std::size_t traffic_class,
                             TrafficClassConfig config, RateProfile profile,
                             SessionHandler handler)
    : sim_(sim),
      rng_(seed),
      user_(user),
      class_(traffic_class),
      config_(std::move(config)),
      profile_(std::move(profile)),
      handler_(std::move(handler)) {
  TDP_REQUIRE(static_cast<bool>(handler_), "session handler must be set");
  TDP_REQUIRE(config_.arrivals_per_hour >= 0.0,
              "arrival rate must be nonnegative");
  TDP_REQUIRE(static_cast<bool>(profile_.multiplier),
              "rate profile must be set");
  TDP_REQUIRE(profile_.peak > 0.0, "profile peak must be positive");
}

FlowSpec SessionSource::draw_spec() {
  FlowSpec spec;
  spec.kind = config_.kind;
  spec.user = user_;
  spec.traffic_class = class_;
  if (config_.kind == FlowKind::kElastic) {
    spec.size_mb = rng_.exponential(config_.mean_size_mb);
  } else {
    spec.rate_mbps = config_.rate_mbps;
    spec.duration_s = rng_.exponential(config_.mean_duration_s);
  }
  return spec;
}

void SessionSource::start(double until) {
  TDP_REQUIRE(until >= sim_.now(), "horizon is in the past");
  until_ = until;
  if (config_.arrivals_per_hour > 0.0) schedule_next();
}

void SessionSource::schedule_next() {
  // Thinning for the nonhomogeneous Poisson process: candidate arrivals at
  // the peak rate, accepted with probability multiplier(t)/peak.
  const double peak_rate_per_s =
      config_.arrivals_per_hour * profile_.peak / 3600.0;
  const double gap = rng_.exponential(1.0 / peak_rate_per_s);
  const double when = sim_.now() + gap;
  if (when > until_) return;
  sim_.at(when, [this] {
    const double accept =
        profile_.multiplier(sim_.now()) / profile_.peak;
    if (rng_.bernoulli(accept)) {
      ++generated_;
      handler_(draw_spec());
    }
    schedule_next();
  });
}

BackgroundTraffic::BackgroundTraffic(Simulator& sim, BottleneckLink& link,
                                     Config config, std::uint64_t seed)
    : sim_(sim), link_(link), config_(config), rng_(seed) {
  TDP_REQUIRE(config.mean_on_s > 0.0 && config.mean_off_s > 0.0,
              "phase durations must be positive");
  TDP_REQUIRE(config.min_rate_mbps >= 0.0 &&
                  config.max_rate_mbps >= config.min_rate_mbps,
              "invalid background rate range");
}

void BackgroundTraffic::start(double until) {
  TDP_REQUIRE(until >= sim_.now(), "horizon is in the past");
  until_ = until;
  enter_off();
}

void BackgroundTraffic::enter_on() {
  if (sim_.now() >= until_) {
    link_.set_background_rate(0.0);
    return;
  }
  link_.set_background_rate(
      rng_.uniform(config_.min_rate_mbps, config_.max_rate_mbps));
  const double duration = rng_.exponential(config_.mean_on_s);
  sim_.at(std::min(sim_.now() + duration, until_), [this] { enter_off(); });
}

void BackgroundTraffic::enter_off() {
  link_.set_background_rate(0.0);
  if (sim_.now() >= until_) return;
  const double duration = rng_.exponential(config_.mean_off_s);
  sim_.at(std::min(sim_.now() + duration, until_), [this] { enter_on(); });
}

}  // namespace tdp::netsim
