// Traffic generation for the TUBE testbed emulation (Fig. 10).
//
// Each (user, class) pair has a SessionSource producing sessions from a
// nonhomogeneous Poisson process (thinning) whose intensity follows a
// time-of-day multiplier profile — Fig. 11's "traffic is high at the
// beginning of the hour ... lower at the end" is such a profile. Session
// sizes are exponential (elastic classes) or fixed-rate/exponential-duration
// (streaming).
//
// Sessions are delivered to a handler at their arrival instant; the TUBE
// layer decides whether to start them immediately or defer them to a later
// period (the GUI agent's reaction to prices). Background traffic is an
// on-off process that reserves a time-varying slice of the bottleneck,
// standing in for the testbed's background flows ([25]/[26] parameters).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"

namespace tdp::netsim {

/// Configuration of one traffic class for one user.
struct TrafficClassConfig {
  std::string name;                     ///< "web", "ftp", "video", ...
  FlowKind kind = FlowKind::kElastic;
  double arrivals_per_hour = 0.0;       ///< base Poisson intensity
  double mean_size_mb = 0.0;            ///< elastic: exponential mean
  double rate_mbps = 0.0;               ///< streaming: demanded rate
  double mean_duration_s = 0.0;         ///< streaming: exponential mean
};

/// Time-of-day intensity multiplier (must be bounded by `peak`).
struct RateProfile {
  std::function<double(double time_s)> multiplier;
  double peak = 1.0;
};

/// A session intent: what wants to start now.
using SessionHandler = std::function<void(const FlowSpec&)>;

class SessionSource {
 public:
  SessionSource(Simulator& sim, std::uint64_t seed, std::size_t user,
                std::size_t traffic_class, TrafficClassConfig config,
                RateProfile profile, SessionHandler handler);

  /// Begin generating sessions from now until `until` (absolute seconds).
  void start(double until);

  /// Draw the flow parameters for one session (public so deferral can
  /// re-materialize a session later with identical statistics).
  FlowSpec draw_spec();

  std::size_t sessions_generated() const { return generated_; }

 private:
  void schedule_next();

  Simulator& sim_;
  Rng rng_;
  std::size_t user_;
  std::size_t class_;
  TrafficClassConfig config_;
  RateProfile profile_;
  SessionHandler handler_;
  double until_ = 0.0;
  std::size_t generated_ = 0;
};

/// On-off background traffic: alternates exponential on/off phases; during
/// an on-phase it reserves a uniform random rate on the link.
class BackgroundTraffic {
 public:
  struct Config {
    double mean_on_s = 30.0;
    double mean_off_s = 20.0;
    double min_rate_mbps = 0.5;
    double max_rate_mbps = 3.0;
  };

  BackgroundTraffic(Simulator& sim, BottleneckLink& link, Config config,
                    std::uint64_t seed);

  /// Start alternating phases until `until`.
  void start(double until);

 private:
  void enter_on();
  void enter_off();

  Simulator& sim_;
  BottleneckLink& link_;
  Config config_;
  Rng rng_;
  double until_ = 0.0;
};

}  // namespace tdp::netsim
