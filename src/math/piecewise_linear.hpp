// Convex piecewise-linear cost functions and their Huber smoothing.
//
// The paper's capacity-exhaustion cost f is "linear or piecewise-linear,
// increasing, convex" (Prop. 3 and Appendix C); the canonical instance is
// f(x) = a * max(x, 0). We represent such functions as
//
//   f(x) = f(0) + s0 * x + sum_k d_k * max(x - b_k, 0),   d_k >= 0,
//
// i.e. a base slope plus nonnegative hinge (slope-jump) terms — closed under
// scaling and exactly the class Prop. 3 admits. Smoothing replaces each
// hinge max(y,0) with the standard one-sided quadratic blend
//
//   h_mu(y) = 0 (y<=0),  y^2/(2 mu) (0<y<mu),  y - mu/2 (y>=mu),
//
// which is convex, C^1, underestimates the hinge by at most mu/2 and has a
// 1/mu-Lipschitz derivative. The static-model optimizer minimizes the
// smoothed objective with FISTA and drives mu -> 0 by continuation.
#pragma once

#include <cstddef>
#include <vector>

namespace tdp::math {

class PiecewiseLinearCost {
 public:
  /// One kink: slope increases by `slope_jump` (>= 0) at `breakpoint`.
  struct Hinge {
    double breakpoint = 0.0;
    double slope_jump = 0.0;
  };

  /// f(x) = value_at_zero + base_slope*x + sum hinges. Hinges need not be
  /// sorted; slope jumps must be nonnegative (convexity).
  PiecewiseLinearCost(double base_slope, std::vector<Hinge> hinges,
                      double value_at_zero = 0.0);

  /// The paper's canonical cost a*max(x - b, 0).
  static PiecewiseLinearCost hinge(double slope, double breakpoint = 0.0);

  /// Exact value f(x).
  double value(double x) const;

  /// Right derivative f'(x+); equals the subgradient a.e.
  double derivative_right(double x) const;

  /// Left derivative f'(x-).
  double derivative_left(double x) const;

  /// Huber-smoothed value f_mu(x), mu > 0.
  double smoothed_value(double x, double mu) const;

  /// Derivative of the smoothed value (continuous in x).
  double smoothed_derivative(double x, double mu) const;

  /// Worst-case smoothing gap: 0 <= f(x) - f_mu(x) <= smoothing_gap(mu).
  double smoothing_gap(double mu) const;

  /// Largest slope of f — the paper's maximum marginal cost of exceeding
  /// capacity, which bounds the rational reward P.
  double max_slope() const;

  /// Smallest slope of f (slope at -infinity).
  double min_slope() const { return base_slope_; }

  /// f scaled by a >= 0 (used by the Fig. 6 cost sweep).
  PiecewiseLinearCost scaled(double factor) const;

  const std::vector<Hinge>& hinges() const { return hinges_; }
  double base_slope() const { return base_slope_; }

 private:
  double base_slope_ = 0.0;
  double value_at_zero_ = 0.0;
  std::vector<Hinge> hinges_;  // sorted by breakpoint
};

}  // namespace tdp::math
