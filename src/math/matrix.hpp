// Dense row-major matrix with the factorizations the TDP library needs:
// LU with partial pivoting (square solves), Cholesky (SPD solves inside
// Levenberg-Marquardt), and Householder QR least squares (overdetermined
// systems in the waiting-function estimator).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "math/vector_ops.hpp"

namespace tdp::math {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer lists (rows of equal width).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Matrix-vector product (x.size() must equal cols()).
  Vector multiply(const Vector& x) const;

  /// Transposed matrix-vector product (x.size() must equal rows()).
  Vector multiply_transpose(const Vector& x) const;

  /// Matrix-matrix product.
  Matrix multiply(const Matrix& other) const;

  Matrix transpose() const;

  /// A^T * A (Gram matrix), used by normal equations.
  Matrix gram() const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b for square A via LU with partial pivoting.
/// Throws NumericalError if A is (numerically) singular.
Vector solve_lu(Matrix a, Vector b);

/// Solve A x = b for symmetric positive definite A via Cholesky.
/// Throws NumericalError if A is not SPD.
Vector solve_cholesky(Matrix a, Vector b);

/// Least-squares solve min ||A x - b||_2 for rows >= cols via Householder QR.
/// Throws NumericalError on rank deficiency.
Vector solve_least_squares(Matrix a, Vector b);

}  // namespace tdp::math
