// Numerical integration.
//
// The dynamic session model (Section III / Appendix E-F) integrates waiting
// functions over uniformly distributed arrival times within a period. The
// integrands are smooth, so composite Gauss-Legendre is accurate and cheap;
// adaptive Simpson is provided as an independent cross-check for tests.
#pragma once

#include <cstddef>
#include <functional>

namespace tdp::math {

/// Integrate f over [a, b] with composite 8-point Gauss-Legendre on
/// `segments` equal subintervals.
double integrate_gauss(const std::function<double(double)>& f, double a,
                       double b, std::size_t segments = 4);

/// Integrate f over [a, b] with adaptive Simpson to absolute tolerance.
double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tolerance = 1e-10,
                                  std::size_t max_depth = 30);

}  // namespace tdp::math
