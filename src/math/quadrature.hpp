// Numerical integration.
//
// The dynamic session model (Section III / Appendix E-F) integrates waiting
// functions over uniformly distributed arrival times within a period. The
// integrands are smooth, so composite Gauss-Legendre is accurate and cheap;
// adaptive Simpson is provided as an independent cross-check for tests.
#pragma once

#include <array>
#include <cstddef>
#include <functional>

namespace tdp::math {

/// The 8-point Gauss-Legendre rule on [-1, 1] used by integrate_gauss.
/// Exposed so precomputed fast paths (core/kernel_plan) can replicate the
/// quadrature arithmetic bitwise: same nodes, same weights, same
/// accumulation order.
inline constexpr std::array<double, 8> kGauss8Nodes = {
    -0.9602898564975363, -0.7966664774136267, -0.5255324099163290,
    -0.1834346424956498, 0.1834346424956498,  0.5255324099163290,
    0.7966664774136267,  0.9602898564975363};
inline constexpr std::array<double, 8> kGauss8Weights = {
    0.1012285362903763, 0.2223810344533745, 0.3137066458778873,
    0.3626837833783620, 0.3626837833783620, 0.3137066458778873,
    0.2223810344533745, 0.1012285362903763};

/// Integrate f over [a, b] with composite 8-point Gauss-Legendre on
/// `segments` equal subintervals.
double integrate_gauss(const std::function<double(double)>& f, double a,
                       double b, std::size_t segments = 4);

/// Integrate f over [a, b] with adaptive Simpson to absolute tolerance.
double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tolerance = 1e-10,
                                  std::size_t max_depth = 30);

}  // namespace tdp::math
