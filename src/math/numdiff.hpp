// Numerical differentiation helpers (central differences).
//
// Used by the Levenberg-Marquardt solver when no analytic Jacobian is
// supplied, and by the property tests that verify analytic gradients of the
// pricing models.
#pragma once

#include <functional>

#include "math/matrix.hpp"
#include "math/vector_ops.hpp"

namespace tdp::math {

/// Central-difference gradient of a scalar function.
inline Vector numeric_gradient(const std::function<double(const Vector&)>& f,
                               const Vector& x, double h = 1e-6) {
  Vector grad(x.size(), 0.0);
  Vector probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double original = probe[i];
    probe[i] = original + h;
    const double fp = f(probe);
    probe[i] = original - h;
    const double fm = f(probe);
    probe[i] = original;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

/// Central-difference Jacobian of a vector-valued function r: R^n -> R^m.
inline Matrix numeric_jacobian(
    const std::function<Vector(const Vector&)>& r, const Vector& x,
    double h = 1e-6) {
  Vector probe = x;
  probe[0] = x.empty() ? 0.0 : probe[0];
  const Vector r0 = r(x);
  Matrix jac(r0.size(), x.size(), 0.0);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double original = probe[j];
    probe[j] = original + h;
    const Vector rp = r(probe);
    probe[j] = original - h;
    const Vector rm = r(probe);
    probe[j] = original;
    for (std::size_t i = 0; i < r0.size(); ++i) {
      jac(i, j) = (rp[i] - rm[i]) / (2.0 * h);
    }
  }
  return jac;
}

}  // namespace tdp::math
