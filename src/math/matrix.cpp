#include "math/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tdp::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    TDP_REQUIRE(row.size() == cols_, "all rows must have equal width");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Vector Matrix::multiply(const Vector& x) const {
  TDP_REQUIRE(x.size() == cols_, "multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transpose(const Vector& x) const {
  TDP_REQUIRE(x.size() == rows_, "multiply_transpose: dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) y[c] += (*this)(r, c) * x[r];
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  TDP_REQUIRE(cols_ == other.rows_, "multiply: dimension mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix out(cols_, cols_, 0.0);
  for (std::size_t k = 0; k < rows_; ++k) {
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = (*this)(k, i);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) {
        out(i, j) += a * (*this)(k, j);
      }
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

Vector solve_lu(Matrix a, Vector b) {
  TDP_REQUIRE(a.rows() == a.cols(), "solve_lu: matrix must be square");
  TDP_REQUIRE(a.rows() == b.size(), "solve_lu: rhs size mismatch");
  const std::size_t n = a.rows();

  // In-place LU with partial pivoting, applying row swaps to b directly.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(a(r, col));
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-13) {
      throw NumericalError("solve_lu: matrix is numerically singular");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      a(r, col) = 0.0;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
      }
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  Vector x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

Vector solve_cholesky(Matrix a, Vector b) {
  TDP_REQUIRE(a.rows() == a.cols(), "solve_cholesky: matrix must be square");
  TDP_REQUIRE(a.rows() == b.size(), "solve_cholesky: rhs size mismatch");
  const std::size_t n = a.rows();

  // Lower-triangular factor stored in place.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0) {
      throw NumericalError("solve_cholesky: matrix is not positive definite");
    }
    a(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= a(i, k) * a(j, k);
      a(i, j) = acc / a(j, j);
    }
  }

  // Forward solve L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= a(i, k) * y[k];
    y[i] = acc / a(i, i);
  }
  // Backward solve L^T x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= a(k, ii) * x[k];
    x[ii] = acc / a(ii, ii);
  }
  return x;
}

Vector solve_least_squares(Matrix a, Vector b) {
  TDP_REQUIRE(a.rows() >= a.cols(),
              "solve_least_squares: system must not be underdetermined");
  TDP_REQUIRE(a.rows() == b.size(), "solve_least_squares: rhs size mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // Householder QR applied to [A | b].
  for (std::size_t col = 0; col < n; ++col) {
    double norm = 0.0;
    for (std::size_t r = col; r < m; ++r) norm += a(r, col) * a(r, col);
    norm = std::sqrt(norm);
    if (norm < 1e-13) {
      throw NumericalError("solve_least_squares: rank-deficient matrix");
    }
    const double alpha = a(col, col) >= 0.0 ? -norm : norm;
    // Householder vector v, stored temporarily.
    Vector v(m - col, 0.0);
    v[0] = a(col, col) - alpha;
    for (std::size_t r = col + 1; r < m; ++r) v[r - col] = a(r, col);
    double vnorm2 = 0.0;
    for (double t : v) vnorm2 += t * t;
    if (vnorm2 < 1e-26) continue;  // column already triangular

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and to b.
    for (std::size_t c = col; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t r = col; r < m; ++r) proj += v[r - col] * a(r, c);
      proj = 2.0 * proj / vnorm2;
      for (std::size_t r = col; r < m; ++r) a(r, c) -= proj * v[r - col];
    }
    double proj = 0.0;
    for (std::size_t r = col; r < m; ++r) proj += v[r - col] * b[r];
    proj = 2.0 * proj / vnorm2;
    for (std::size_t r = col; r < m; ++r) b[r] -= proj * v[r - col];
    a(col, col) = alpha;  // enforce exact triangular value
    for (std::size_t r = col + 1; r < m; ++r) a(r, col) = 0.0;
  }

  // Back substitution on the leading n x n triangle.
  Vector x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    if (std::abs(a(ri, ri)) < 1e-13) {
      throw NumericalError("solve_least_squares: rank-deficient matrix");
    }
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

}  // namespace tdp::math
