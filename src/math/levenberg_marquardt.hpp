// Levenberg-Marquardt nonlinear least squares with box constraints.
//
// The waiting-function estimation algorithm (Section IV) fits patience
// indices beta_ji and traffic proportions alpha_ji by "nonlinear least
// squares" on the single reduced equation in the offered rewards. LM with a
// numeric Jacobian and projection onto simple bounds (alpha in [0,1],
// beta >= 0) is exactly the tool that calls for.
#pragma once

#include <functional>
#include <optional>

#include "math/vector_ops.hpp"

namespace tdp::math {

struct LmOptions {
  std::size_t max_iterations = 200;
  /// Stop when ||J^T r||_inf drops below this.
  double gradient_tolerance = 1e-10;
  /// Stop when the step is smaller than this (infinity norm).
  double step_tolerance = 1e-12;
  /// Initial damping; adapted multiplicatively.
  double initial_lambda = 1e-3;
  double lambda_increase = 10.0;
  double lambda_decrease = 0.3;
  /// Finite-difference step for the numeric Jacobian.
  double jacobian_step = 1e-6;
  /// Optional element-wise bounds; steps are projected onto them.
  std::optional<Vector> lower_bounds;
  std::optional<Vector> upper_bounds;
};

struct LmResult {
  Vector parameters;
  double residual_norm2 = 0.0;  // ||r||_2^2 at the solution
  std::size_t iterations = 0;
  bool converged = false;
};

/// Minimize ||residuals(theta)||_2^2 starting from theta0.
LmResult minimize_levenberg_marquardt(
    const std::function<Vector(const Vector&)>& residuals, Vector theta0,
    const LmOptions& options = {});

}  // namespace tdp::math
