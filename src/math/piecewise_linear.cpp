#include "math/piecewise_linear.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tdp::math {
namespace {

/// Smoothed hinge h_mu(y) ~ max(y, 0).
double smooth_hinge(double y, double mu) {
  if (y <= 0.0) return 0.0;
  if (y >= mu) return y - 0.5 * mu;
  return y * y / (2.0 * mu);
}

/// d/dy of smooth_hinge.
double smooth_hinge_derivative(double y, double mu) {
  if (y <= 0.0) return 0.0;
  if (y >= mu) return 1.0;
  return y / mu;
}

}  // namespace

PiecewiseLinearCost::PiecewiseLinearCost(double base_slope,
                                         std::vector<Hinge> hinges,
                                         double value_at_zero)
    : base_slope_(base_slope),
      value_at_zero_(value_at_zero),
      hinges_(std::move(hinges)) {
  for (const Hinge& h : hinges_) {
    TDP_REQUIRE(h.slope_jump >= 0.0,
                "hinge slope jumps must be nonnegative for convexity");
  }
  std::sort(hinges_.begin(), hinges_.end(),
            [](const Hinge& a, const Hinge& b) {
              return a.breakpoint < b.breakpoint;
            });
}

PiecewiseLinearCost PiecewiseLinearCost::hinge(double slope,
                                               double breakpoint) {
  TDP_REQUIRE(slope >= 0.0, "hinge slope must be nonnegative");
  return PiecewiseLinearCost(0.0, {{breakpoint, slope}}, 0.0);
}

double PiecewiseLinearCost::value(double x) const {
  double v = value_at_zero_ + base_slope_ * x;
  for (const Hinge& h : hinges_) {
    const double y = x - h.breakpoint;
    if (y > 0.0) v += h.slope_jump * y;
    // Keep f(0) exact: the representation anchors hinges at their raw
    // max(x-b, 0) value, so subtract the hinge's own contribution at x=0.
    const double y0 = -h.breakpoint;
    if (y0 > 0.0) v -= h.slope_jump * y0;
  }
  return v;
}

double PiecewiseLinearCost::derivative_right(double x) const {
  double s = base_slope_;
  for (const Hinge& h : hinges_) {
    if (x >= h.breakpoint) s += h.slope_jump;
  }
  return s;
}

double PiecewiseLinearCost::derivative_left(double x) const {
  double s = base_slope_;
  for (const Hinge& h : hinges_) {
    if (x > h.breakpoint) s += h.slope_jump;
  }
  return s;
}

double PiecewiseLinearCost::smoothed_value(double x, double mu) const {
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");
  double v = value_at_zero_ + base_slope_ * x;
  for (const Hinge& h : hinges_) {
    v += h.slope_jump * smooth_hinge(x - h.breakpoint, mu);
    const double y0 = -h.breakpoint;
    if (y0 > 0.0) v -= h.slope_jump * y0;
  }
  return v;
}

double PiecewiseLinearCost::smoothed_derivative(double x, double mu) const {
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");
  double s = base_slope_;
  for (const Hinge& h : hinges_) {
    s += h.slope_jump * smooth_hinge_derivative(x - h.breakpoint, mu);
  }
  return s;
}

double PiecewiseLinearCost::smoothing_gap(double mu) const {
  double total_jump = 0.0;
  for (const Hinge& h : hinges_) total_jump += h.slope_jump;
  return 0.5 * mu * total_jump;
}

double PiecewiseLinearCost::max_slope() const {
  double s = base_slope_;
  for (const Hinge& h : hinges_) s += h.slope_jump;
  return s;
}

PiecewiseLinearCost PiecewiseLinearCost::scaled(double factor) const {
  TDP_REQUIRE(factor >= 0.0, "scale factor must be nonnegative");
  std::vector<Hinge> scaled_hinges = hinges_;
  for (Hinge& h : scaled_hinges) h.slope_jump *= factor;
  return PiecewiseLinearCost(base_slope_ * factor, std::move(scaled_hinges),
                             value_at_zero_ * factor);
}

}  // namespace tdp::math
