#include "math/levenberg_marquardt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "math/matrix.hpp"
#include "math/numdiff.hpp"

namespace tdp::math {
namespace {

void project(Vector& x, const LmOptions& options) {
  if (options.lower_bounds) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::max(x[i], (*options.lower_bounds)[i]);
    }
  }
  if (options.upper_bounds) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = std::min(x[i], (*options.upper_bounds)[i]);
    }
  }
}

}  // namespace

LmResult minimize_levenberg_marquardt(
    const std::function<Vector(const Vector&)>& residuals, Vector theta0,
    const LmOptions& options) {
  TDP_REQUIRE(static_cast<bool>(residuals), "residual function must be set");
  TDP_REQUIRE(!theta0.empty(), "need at least one parameter");
  if (options.lower_bounds) {
    TDP_REQUIRE(options.lower_bounds->size() == theta0.size(),
                "lower bound size mismatch");
  }
  if (options.upper_bounds) {
    TDP_REQUIRE(options.upper_bounds->size() == theta0.size(),
                "upper bound size mismatch");
  }

  Vector theta = std::move(theta0);
  project(theta, options);
  Vector r = residuals(theta);
  double cost = dot(r, r);
  double lambda = options.initial_lambda;

  LmResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const Matrix jac = numeric_jacobian(residuals, theta,
                                        options.jacobian_step);
    const Vector gradient = jac.multiply_transpose(r);  // J^T r
    if (norm_inf(gradient) < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    Matrix normal = jac.gram();  // J^T J
    bool stepped = false;
    for (std::size_t attempt = 0; attempt < 25 && !stepped; ++attempt) {
      Matrix damped = normal;
      for (std::size_t i = 0; i < damped.rows(); ++i) {
        // Marquardt scaling: damp relative to the curvature of each axis.
        damped(i, i) += lambda * std::max(normal(i, i), 1e-12);
      }
      Vector delta;
      try {
        delta = solve_cholesky(damped, gradient);
      } catch (const NumericalError&) {
        lambda *= options.lambda_increase;
        continue;
      }
      Vector candidate = theta;
      axpy(-1.0, delta, candidate);
      project(candidate, options);
      const Vector r_new = residuals(candidate);
      const double cost_new = dot(r_new, r_new);
      if (cost_new < cost) {
        const double step_size = max_abs_diff(candidate, theta);
        theta = std::move(candidate);
        r = r_new;
        cost = cost_new;
        lambda = std::max(lambda * options.lambda_decrease, 1e-14);
        stepped = true;
        if (step_size < options.step_tolerance) {
          result.converged = true;
        }
      } else {
        lambda *= options.lambda_increase;
      }
    }
    if (!stepped || result.converged) {
      // No descent direction found at any damping => local optimum.
      result.converged = result.converged || !stepped;
      break;
    }
  }

  result.parameters = std::move(theta);
  result.residual_norm2 = cost;
  return result;
}

}  // namespace tdp::math
