#include "math/golden_section.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tdp::math {

GoldenSectionResult minimize_golden_section(
    const std::function<double(double)>& f, double lo, double hi,
    double tolerance, std::size_t max_iterations) {
  TDP_REQUIRE(static_cast<bool>(f), "objective must be set");
  TDP_REQUIRE(lo <= hi, "interval must be ordered");
  TDP_REQUIRE(tolerance > 0.0, "tolerance must be positive");

  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi

  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);

  GoldenSectionResult result;
  for (std::size_t iter = 0; iter < max_iterations && (b - a) > tolerance;
       ++iter) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    result.iterations = iter + 1;
  }

  result.converged = (b - a) <= tolerance;
  result.x = 0.5 * (a + b);
  result.value = f(result.x);
  // Endpoints can beat the midpoint when the minimizer sits on the boundary.
  const double f_lo = f(lo);
  const double f_hi = f(hi);
  if (f_lo < result.value) {
    result.x = lo;
    result.value = f_lo;
  }
  if (f_hi < result.value) {
    result.x = hi;
    result.value = f_hi;
  }
  return result;
}

}  // namespace tdp::math
