// Box-constrained first-order minimization: FISTA (accelerated projected
// gradient with backtracking line search) and plain projected gradient
// descent (kept for the ablation bench).
//
// The static-model price optimization (Prop. 1-3) is convex with simple box
// constraints 0 <= p_i <= P and at most a few hundred variables, so an
// accelerated first-order method with a smoothing continuation loop (see
// core/static_optimizer) reaches the global optimum quickly and without any
// external solver dependency.
#pragma once

#include <functional>

#include "math/vector_ops.hpp"

namespace tdp::math {

/// A differentiable objective: value and gradient at a point.
struct SmoothObjective {
  std::function<double(const Vector&)> value;
  /// Writes the gradient of `value` at x into `grad` (pre-sized to x.size()).
  std::function<void(const Vector&, Vector&)> gradient;
  /// Optional fused evaluation: returns value(x) and writes the gradient in
  /// one pass. FISTA needs both at the same extrapolated point every
  /// iteration; objectives that share work between them (the kernel-plan
  /// paths evaluate the deferral flows once instead of twice) set this.
  /// Must produce exactly the numbers value/gradient would. When set,
  /// `gradient` may be empty.
  std::function<double(const Vector&, Vector&)> value_and_gradient;
};

struct BoxBounds {
  Vector lower;
  Vector upper;
};

/// Uniform box [lo, hi]^n.
BoxBounds uniform_box(std::size_t n, double lo, double hi);

struct FistaOptions {
  std::size_t max_iterations = 5000;
  /// Stop when the projected-gradient step has infinity norm below this.
  double step_tolerance = 1e-9;
  /// Initial Lipschitz estimate; grows by `backtrack_factor` on failure.
  double initial_lipschitz = 1.0;
  double backtrack_factor = 2.0;
  /// Shrink L between iterations to adapt downward (1.0 disables).
  double lipschitz_decay = 0.9;
  /// false => plain projected gradient descent (ablation baseline).
  bool accelerated = true;
};

struct FistaResult {
  Vector x;
  double value = 0.0;
  std::size_t iterations = 0;
  /// Line-search Lipschitz growths across all iterations (a high count
  /// means the initial estimate or decay is mistuned for the objective).
  std::size_t backtracks = 0;
  bool converged = false;
};

/// Minimize a convex smooth objective over a box from starting point x0.
FistaResult minimize_box(const SmoothObjective& objective,
                         const BoxBounds& bounds, Vector x0,
                         const FistaOptions& options = {});

}  // namespace tdp::math
