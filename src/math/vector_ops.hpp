// Small dense-vector helpers used by the optimizers.
//
// The TDP problems have at most a few hundred variables, so std::vector of
// double with free functions is the right level of machinery — no expression
// templates, no BLAS dependency.
#pragma once

#include <cstddef>
#include <vector>

namespace tdp::math {

using Vector = std::vector<double>;

/// Inner product. Sizes must match.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& a);

/// Infinity norm.
double norm_inf(const Vector& a);

/// Sum of elements.
double sum(const Vector& a);

/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vector& x, Vector& y);

/// Element-wise a - b.
Vector subtract(const Vector& a, const Vector& b);

/// Element-wise a + b.
Vector add(const Vector& a, const Vector& b);

/// alpha * a.
Vector scale(double alpha, const Vector& a);

/// Project x onto the box [lo, hi] element-wise (scalar bounds).
void project_box(Vector& x, double lo, double hi);

/// Project x onto element-wise bounds (vectors of matching size).
void project_box(Vector& x, const Vector& lo, const Vector& hi);

/// Maximum absolute element-wise difference.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace tdp::math
