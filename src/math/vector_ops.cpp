#include "math/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tdp::math {

double dot(const Vector& a, const Vector& b) {
  TDP_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

double sum(const Vector& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  TDP_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(const Vector& a, const Vector& b) {
  TDP_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(const Vector& a, const Vector& b) {
  TDP_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scale(double alpha, const Vector& a) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

void project_box(Vector& x, double lo, double hi) {
  TDP_REQUIRE(lo <= hi, "project_box: bounds must be ordered");
  for (double& v : x) v = std::clamp(v, lo, hi);
}

void project_box(Vector& x, const Vector& lo, const Vector& hi) {
  TDP_REQUIRE(x.size() == lo.size() && x.size() == hi.size(),
              "project_box: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  }
}

double max_abs_diff(const Vector& a, const Vector& b) {
  TDP_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace tdp::math
