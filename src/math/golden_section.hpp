// Golden-section search for 1-D unimodal minimization.
//
// Used by the online price-determination algorithm (Section III-B), which
// re-optimizes a single period's reward with all other rewards held fixed —
// a 1-D convex subproblem.
#pragma once

#include <functional>

namespace tdp::math {

struct GoldenSectionResult {
  double x = 0.0;
  double value = 0.0;
  std::size_t iterations = 0;
  /// False when the iteration budget ran out before the interval reached
  /// `tolerance` — the result is the best midpoint so far, not a verified
  /// minimizer. Guarded callers (the online pricer's degraded path) treat
  /// this as a solve failure and keep their previous answer.
  bool converged = true;
};

/// Minimize `f` over [lo, hi] to within `tolerance` on x.
GoldenSectionResult minimize_golden_section(
    const std::function<double(double)>& f, double lo, double hi,
    double tolerance = 1e-8, std::size_t max_iterations = 200);

}  // namespace tdp::math
