#include "math/quadrature.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace tdp::math {
namespace {

// The 8-point Gauss-Legendre rule lives in the header (kGauss8Nodes /
// kGauss8Weights) so precomputed fast paths can mirror it bitwise.
constexpr const std::array<double, 8>& kNodes = kGauss8Nodes;
constexpr const std::array<double, 8>& kWeights = kGauss8Weights;

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a,
                     double fa, double b, double fb, double m, double fm,
                     double whole, double tolerance, std::size_t depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth == 0 || std::abs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tolerance,
                       depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tolerance,
                       depth - 1);
}

}  // namespace

double integrate_gauss(const std::function<double(double)>& f, double a,
                       double b, std::size_t segments) {
  TDP_REQUIRE(static_cast<bool>(f), "integrand must be set");
  TDP_REQUIRE(segments > 0, "need at least one segment");
  if (a == b) return 0.0;
  const double h = (b - a) / static_cast<double>(segments);
  double total = 0.0;
  for (std::size_t s = 0; s < segments; ++s) {
    const double lo = a + h * static_cast<double>(s);
    const double mid = lo + 0.5 * h;
    const double half = 0.5 * h;
    double acc = 0.0;
    for (std::size_t k = 0; k < kNodes.size(); ++k) {
      acc += kWeights[k] * f(mid + half * kNodes[k]);
    }
    total += acc * half;
  }
  return total;
}

double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tolerance,
                                  std::size_t max_depth) {
  TDP_REQUIRE(static_cast<bool>(f), "integrand must be set");
  TDP_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  if (a == b) return 0.0;
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive_step(f, a, fa, b, fb, m, fm, whole, tolerance, max_depth);
}

}  // namespace tdp::math
