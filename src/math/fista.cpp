#include "math/fista.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/registry.hpp"

namespace tdp::math {

BoxBounds uniform_box(std::size_t n, double lo, double hi) {
  TDP_REQUIRE(lo <= hi, "box bounds must be ordered");
  return BoxBounds{Vector(n, lo), Vector(n, hi)};
}

FistaResult minimize_box(const SmoothObjective& objective,
                         const BoxBounds& bounds, Vector x0,
                         const FistaOptions& options) {
  TDP_REQUIRE(static_cast<bool>(objective.value) &&
                  (static_cast<bool>(objective.gradient) ||
                   static_cast<bool>(objective.value_and_gradient)),
              "objective callbacks must be set");
  TDP_REQUIRE(x0.size() == bounds.lower.size() &&
                  x0.size() == bounds.upper.size(),
              "bounds must match variable count");
  TDP_REQUIRE(options.initial_lipschitz > 0.0 &&
                  options.backtrack_factor > 1.0,
              "invalid line-search parameters");

  const std::size_t n = x0.size();
  project_box(x0, bounds.lower, bounds.upper);

  Vector x = x0;        // current iterate
  Vector x_prev = x0;   // previous iterate (for momentum)
  Vector y = x0;        // extrapolated point
  Vector grad(n, 0.0);
  Vector candidate(n, 0.0);

  double lipschitz = options.initial_lipschitz;
  double momentum_t = 1.0;
  double fx = objective.value(x);

  FistaResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double fy = 0.0;
    if (objective.value_and_gradient) {
      fy = objective.value_and_gradient(y, grad);
    } else {
      fy = objective.value(y);
      objective.gradient(y, grad);
    }

    // Backtracking: find L such that the quadratic model at y upper-bounds
    // the objective at the projected step.
    double f_candidate = 0.0;
    for (;;) {
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = std::clamp(y[i] - grad[i] / lipschitz,
                                  bounds.lower[i], bounds.upper[i]);
      }
      f_candidate = objective.value(candidate);
      double linear = 0.0;
      double quad = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = candidate[i] - y[i];
        linear += grad[i] * d;
        quad += d * d;
      }
      if (f_candidate <= fy + linear + 0.5 * lipschitz * quad + 1e-14 ||
          lipschitz > 1e18) {
        break;
      }
      lipschitz *= options.backtrack_factor;
      ++result.backtracks;
    }

    const double step_norm = max_abs_diff(candidate, y);

    x_prev = x;
    x = candidate;

    // Monotone safeguard: FISTA is not monotone; if the new point is worse
    // than the previous iterate, restart momentum from the better point.
    const double f_new = f_candidate;
    if (options.accelerated && f_new > fx) {
      momentum_t = 1.0;
      y = x;
    } else if (options.accelerated) {
      const double t_next =
          0.5 * (1.0 + std::sqrt(1.0 + 4.0 * momentum_t * momentum_t));
      const double beta = (momentum_t - 1.0) / t_next;
      for (std::size_t i = 0; i < n; ++i) {
        y[i] = std::clamp(x[i] + beta * (x[i] - x_prev[i]), bounds.lower[i],
                          bounds.upper[i]);
      }
      momentum_t = t_next;
    } else {
      y = x;
    }
    fx = std::min(fx, f_new);

    result.iterations = iter + 1;
    if (step_norm <= options.step_tolerance) {
      result.converged = true;
      break;
    }
    lipschitz = std::max(options.initial_lipschitz,
                         lipschitz * options.lipschitz_decay);
  }

  result.x = std::move(x);
  result.value = objective.value(result.x);

  // Solver telemetry: totals only, bumped once per solve so the iteration
  // loop itself stays untouched. Gated — a disabled registry costs one
  // relaxed load here.
  if (obs::metrics_enabled()) {
    static obs::Counter& solves =
        obs::Registry::global().counter("fista.solves_total");
    static obs::Counter& iterations =
        obs::Registry::global().counter("fista.iterations_total");
    static obs::Counter& backtracks =
        obs::Registry::global().counter("fista.backtracks_total");
    static obs::Counter& failures =
        obs::Registry::global().counter("fista.nonconverged_total");
    solves.add_always(1);
    iterations.add_always(result.iterations);
    backtracks.add_always(result.backtracks);
    if (!result.converged) failures.add_always(1);
  }
  return result;
}

}  // namespace tdp::math
