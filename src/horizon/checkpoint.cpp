#include "horizon/checkpoint.hpp"

#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "horizon/checkpoint_sections.hpp"
#include "obs/incident/incident.hpp"

namespace tdp::horizon {
namespace {

using detail::SectionTag;

/// Upper bound used only to reject absurd structural counts early; real
/// allocation safety comes from Reader's remaining-bytes bound.
constexpr std::size_t kMaxPeriods = 1 << 14;
constexpr std::size_t kMaxListed = 1 << 22;

void write_day_metrics(ser::Writer& w, const DayMetrics& m) {
  w.u64(m.day);
  w.vec_f64(m.offered_units);
  w.vec_f64(m.realized_units);
  w.vec_f64(m.rewards);
  w.u64(m.sessions);
  w.u64(m.deferred_sessions);
  w.f64(m.reward_paid_units);
  w.f64(m.peak_to_average_tip);
  w.f64(m.peak_to_average_tdp);
  w.boolean(m.estimated);
  w.f64(m.beta_estimate);
  w.f64(m.estimate_residual);
  w.boolean(m.reanchored);
  w.f64(m.reward_step_linf);
}

DayMetrics read_day_metrics(ser::Reader& r) {
  DayMetrics m;
  m.day = r.u64();
  m.offered_units = r.vec_f64(kMaxPeriods);
  m.realized_units = r.vec_f64(kMaxPeriods);
  m.rewards = r.vec_f64(kMaxPeriods);
  m.sessions = r.u64();
  m.deferred_sessions = r.u64();
  m.reward_paid_units = r.f64();
  m.peak_to_average_tip = r.f64();
  m.peak_to_average_tdp = r.f64();
  m.estimated = r.boolean();
  m.beta_estimate = r.f64();
  m.estimate_residual = r.f64();
  m.reanchored = r.boolean();
  m.reward_step_linf = r.f64();
  return m;
}

void write_telemetry(ser::Writer& w, const SubscriberTelemetry& t) {
  w.u64(t.fetches);
  w.u64(t.cache_hits);
  w.u64(t.dropped_attempts);
  w.u64(t.retries);
  w.u64(t.stale_periods);
  w.u64(t.fallback_periods);
  w.u64(t.skewed_periods);
  w.u64(t.recoveries);
  w.u64(t.missed_streak);
}

SubscriberTelemetry read_telemetry(ser::Reader& r) {
  SubscriberTelemetry t;
  t.fetches = static_cast<std::size_t>(r.u64());
  t.cache_hits = static_cast<std::size_t>(r.u64());
  t.dropped_attempts = static_cast<std::size_t>(r.u64());
  t.retries = static_cast<std::size_t>(r.u64());
  t.stale_periods = static_cast<std::size_t>(r.u64());
  t.fallback_periods = static_cast<std::size_t>(r.u64());
  t.skewed_periods = static_cast<std::size_t>(r.u64());
  t.recoveries = static_cast<std::size_t>(r.u64());
  t.missed_streak = static_cast<std::size_t>(r.u64());
  return t;
}

void write_health_stats(ser::Writer& w, const PricerHealthStats& s) {
  w.u64(s.healthy_observations);
  w.u64(s.degraded_observations);
  w.u64(s.fallback_observations);
  w.u64(s.transitions);
  w.u64(s.solve_failures);
  w.u64(s.clamped_steps);
  w.u64(s.skipped_updates);
  w.u64(s.missed_observations);
  w.u64(s.recoveries);
  w.u64(s.max_recovery_periods);
}

PricerHealthStats read_health_stats(ser::Reader& r) {
  PricerHealthStats s;
  s.healthy_observations = r.u64();
  s.degraded_observations = r.u64();
  s.fallback_observations = r.u64();
  s.transitions = r.u64();
  s.solve_failures = r.u64();
  s.clamped_steps = r.u64();
  s.skipped_updates = r.u64();
  s.missed_observations = r.u64();
  s.recoveries = r.u64();
  s.max_recovery_periods = r.u64();
  return s;
}

PricerHealth read_health(ser::Reader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > 2) throw ser::FormatError("checkpoint: invalid health rung");
  return static_cast<PricerHealth>(raw);
}

}  // namespace

namespace detail {

bool needs_v2(const CheckpointData& data) {
  return data.fault.storm_blackout.enabled() ||
         data.fault.storm_channel.enabled() ||
         data.fault.storm_solver.enabled() ||
         data.carry_floor_fraction != 0.5 || data.estimation_health_gate ||
         data.reanchor_healthy_periods != 0 ||
         data.reanchor_objective_guard ||
         data.reanchor_guard_tolerance != 0.0 || data.incident_enabled;
}

std::uint32_t format_version_for(const CheckpointData& data) {
  return needs_v2(data) ? kCheckpointVersion : 1u;
}

bool section_present(SectionTag tag, const CheckpointData& data) {
  switch (tag) {
    case kSecMech:
      return data.mechanism_kind != 0 || data.adaptive_users;
    case kSecStorm:
      return needs_v2(data);
    case kSecIncident:
      return data.incident_enabled;
    default:
      return true;
  }
}

bool section_dirty_within_day(SectionTag tag) {
  switch (tag) {
    case kSecConfig:  // pure config echo, fixed for the whole run
    case kSecWindow:  // estimation window only moves at finish_day
    case kSecDays:    // completed-day list only grows at finish_day
    case kSecMech:    // settle/adaptation only run at finish_day
      return false;
    default:
      // kSecIncident is deliberately dirty: the CUSUM accumulators and the
      // recorder ring move every observed period.
      return true;
  }
}

void write_section(ser::Writer& w, SectionTag tag,
                   const CheckpointData& data) {
  const std::size_t s = w.begin_section(tag);
  switch (tag) {
    case kSecConfig:
      w.u64(data.users);
      w.u32(data.periods);
      w.u64(data.population_seed);
      w.f64(data.sessions_per_day);
      w.u64(data.slices);
      w.u32(data.warmup_days);
      w.u32(data.horizon_days);
      w.boolean(data.online_pricing);
      w.boolean(data.estimation);
      w.u32(data.estimation_window);
      w.u32(data.estimation_min_days);
      w.u32(data.estimation_starts);
      w.boolean(data.reanchor);
      w.f64(data.fault.price_pull_drop);
      w.f64(data.fault.clock_skew);
      w.f64(data.fault.measurement_loss);
      w.f64(data.fault.measurement_nan);
      w.f64(data.fault.measurement_negative);
      w.f64(data.fault.measurement_spike);
      w.f64(data.fault.spike_factor);
      w.vec_u64(data.fault.measurement_blackouts);
      w.f64(data.fault.solver_exhaustion);
      w.u64(data.fault.solver_starved_budget);
      w.f64(data.fault.drift_beta_rate);
      w.f64(data.fault.drift_beta_step);
      w.u64(data.fault.drift_step_day);
      w.u64(data.fault.seed);
      w.u64(data.staleness_ttl);
      w.u64(data.max_retries);
      w.f64(data.max_spike_factor);
      w.u64(data.max_carry_forward);
      break;
    case kSecClock:
      w.u64(data.day);
      w.u32(data.period);
      w.u32(data.ring_head);
      break;
    case kSecRings:
      w.u64(data.ring_work.size());
      for (std::size_t i = 0; i < data.ring_work.size(); ++i) {
        w.vec_f64(data.ring_work[i]);
        w.vec_f64(data.ring_reward[i]);
      }
      break;
    case kSecChannel:
      w.vec_f64(data.channel.published);
      w.u64(data.channel.publish_count);
      w.u64(data.channel.subscribers.size());
      for (const PriceChannelState::Subscriber& sub :
           data.channel.subscribers) {
        w.vec_f64(sub.cache);
        w.u64(sub.last_pull_period);
        w.boolean(sub.pulled_ever);
        write_telemetry(w, sub.stats);
      }
      break;
    case kSecFanout:
      w.u64(data.fanout_schedules.size());
      for (const math::Vector& schedule : data.fanout_schedules) {
        w.vec_f64(schedule);
      }
      break;
    case kSecGuard: {
      w.vec_f64(data.guard.last_good);
      std::vector<std::uint64_t> flags(data.guard.has_last_good.size());
      for (std::size_t i = 0; i < flags.size(); ++i) {
        flags[i] = data.guard.has_last_good[i] ? 1 : 0;
      }
      w.vec_u64(flags);
      w.vec_u64(data.guard.gap_streak);
      w.u64(data.guard.gaps_filled);
      w.u64(data.guard.nan_rejected);
      w.u64(data.guard.negative_rejected);
      w.u64(data.guard.spikes_clamped);
      break;
    }
    case kSecPricer:
      w.vec_f64(data.pricer.rewards);
      w.f64(data.pricer.reward_cap);
      w.u64(data.pricer.volumes.size());
      for (const std::vector<double>& v : data.pricer.volumes) w.vec_f64(v);
      w.u8(static_cast<std::uint8_t>(data.pricer.health));
      write_health_stats(w, data.pricer.stats);
      w.u64(data.pricer.log.size());
      for (const OnlinePricer::HealthTransition& t : data.pricer.log) {
        w.u64(t.observation);
        w.u8(static_cast<std::uint8_t>(t.from));
        w.u8(static_cast<std::uint8_t>(t.to));
      }
      w.u64(data.pricer.observation_count);
      w.u64(data.pricer.consecutive_bad);
      w.u64(data.pricer.consecutive_good);
      w.u64(data.pricer.excursion_periods);
      w.u32(static_cast<std::uint32_t>(data.model_source));
      w.f64(data.model_beta);
      w.vec_f64(data.model_volumes);
      break;
    case kSecWindow:
      w.u64(data.window.size());
      for (const DayRecord& record : data.window) {
        w.vec_f64(record.rewards);
        w.vec_f64(record.usage_change);
        w.vec_f64(record.tip_demand);
      }
      break;
    case kSecDays:
      w.u64(data.completed_days.size());
      for (const DayMetrics& m : data.completed_days) {
        write_day_metrics(w, m);
      }
      break;
    case kSecPartial:
      write_day_metrics(w, data.partial);
      w.vec_f64(data.prev_day_start_rewards);
      w.boolean(data.has_prev_day_start);
      break;
    case kSecObs:
      w.u64(data.counters.size());
      for (const auto& [name, value] : data.counters) {
        w.str(name);
        w.u64(value);
      }
      break;
    case kSecMech:
      w.u32(data.mechanism_kind);
      w.f64(data.rebate_pool);
      w.f64(data.rebate_share_blend);
      w.f64(data.rebate_inflow_floor);
      w.boolean(data.oracle_refine);
      w.f64(data.oracle_capacity_target);
      w.vec_f64(data.mech_state.rewards);
      w.vec_f64(data.mech_state.scalars);
      w.u64(data.mech_state.vectors.size());
      for (const std::vector<double>& v : data.mech_state.vectors) {
        w.vec_f64(v);
      }
      w.boolean(data.adaptive_users);
      w.f64(data.adaptation_rate);
      w.f64(data.adaptation_gain);
      w.vec_f64(data.adapt_scale);
      break;
    case kSecStorm: {
      w.f64(data.fault.storm_blackout.onset);
      w.f64(data.fault.storm_blackout.persist);
      w.f64(data.fault.storm_blackout.intensity);
      w.f64(data.fault.storm_channel.onset);
      w.f64(data.fault.storm_channel.persist);
      w.f64(data.fault.storm_channel.intensity);
      w.f64(data.fault.storm_solver.onset);
      w.f64(data.fault.storm_solver.persist);
      w.f64(data.fault.storm_solver.intensity);
      w.f64(data.carry_floor_fraction);
      w.boolean(data.estimation_health_gate);
      w.u64(data.reanchor_healthy_periods);
      w.boolean(data.reanchor_objective_guard);
      w.f64(data.reanchor_guard_tolerance);
      w.u64(data.healthy_streak_periods);
      // Per-day health extras: parallel arrays over kSecDays plus one
      // trailing entry for the partial day.
      w.u64(data.completed_days.size() + 1);
      const auto write_extra = [&w](const DayMetrics& m) {
        w.u64(m.fallback_periods);
        std::uint8_t flags = 0;
        if (m.estimation_frozen) flags |= 1;
        if (m.reanchor_rolled_back) flags |= 2;
        w.u8(flags);
      };
      for (const DayMetrics& m : data.completed_days) write_extra(m);
      write_extra(data.partial);
      break;
    }
    case kSecIncident:
      obs::incident::write_config_echo(w, data.incident_config);
      obs::incident::write_state(w, data.incident);
      break;
  }
  w.end_section(s);
}

}  // namespace detail

std::vector<std::uint8_t> encode(const CheckpointData& data) {
  ser::Writer w(kCheckpointMagic, detail::format_version_for(data));
  for (const SectionTag tag : detail::kSectionOrder) {
    if (detail::section_present(tag, data)) {
      detail::write_section(w, tag, data);
    }
  }
  return w.finish();
}

CheckpointData decode(const std::uint8_t* bytes, std::size_t size) {
  ser::Reader r(bytes, size, kCheckpointMagic, 1, kCheckpointVersion);
  CheckpointData data;
  bool seen[15] = {};

  while (!r.at_end()) {
    const std::uint32_t tag = r.begin_section();
    if (tag >= 1 && tag <= 14 && seen[tag]) {
      throw ser::FormatError("checkpoint: duplicate section");
    }
    switch (tag) {
      case detail::kSecConfig:
        data.users = r.u64();
        data.periods = r.u32();
        data.population_seed = r.u64();
        data.sessions_per_day = r.f64();
        data.slices = r.u64();
        data.warmup_days = r.u32();
        data.horizon_days = r.u32();
        data.online_pricing = r.boolean();
        data.estimation = r.boolean();
        data.estimation_window = r.u32();
        data.estimation_min_days = r.u32();
        data.estimation_starts = r.u32();
        data.reanchor = r.boolean();
        data.fault.price_pull_drop = r.f64();
        data.fault.clock_skew = r.f64();
        data.fault.measurement_loss = r.f64();
        data.fault.measurement_nan = r.f64();
        data.fault.measurement_negative = r.f64();
        data.fault.measurement_spike = r.f64();
        data.fault.spike_factor = r.f64();
        data.fault.measurement_blackouts = r.vec_u64(kMaxListed);
        data.fault.solver_exhaustion = r.f64();
        data.fault.solver_starved_budget =
            static_cast<std::size_t>(r.u64());
        data.fault.drift_beta_rate = r.f64();
        data.fault.drift_beta_step = r.f64();
        data.fault.drift_step_day = static_cast<std::size_t>(r.u64());
        data.fault.seed = r.u64();
        data.staleness_ttl = r.u64();
        data.max_retries = r.u64();
        data.max_spike_factor = r.f64();
        data.max_carry_forward = r.u64();
        if (data.periods < 2 || data.periods > kMaxPeriods) {
          throw ser::FormatError("checkpoint: implausible period count");
        }
        if (data.users == 0 || data.slices == 0 ||
            data.slices > data.users) {
          throw ser::FormatError("checkpoint: implausible slice layout");
        }
        break;
      case detail::kSecClock:
        data.day = r.u64();
        data.period = r.u32();
        data.ring_head = r.u32();
        break;
      case detail::kSecRings: {
        const std::uint64_t count = r.u64();
        if (count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible ring count");
        }
        data.ring_work.reserve(static_cast<std::size_t>(count));
        data.ring_reward.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          data.ring_work.push_back(r.vec_f64_finite(kMaxPeriods));
          data.ring_reward.push_back(r.vec_f64_finite(kMaxPeriods));
        }
        break;
      }
      case detail::kSecChannel: {
        data.channel.published = r.vec_f64(kMaxPeriods);
        data.channel.publish_count = r.u64();
        const std::uint64_t count = r.u64();
        if (count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible subscriber count");
        }
        data.channel.subscribers.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          PriceChannelState::Subscriber sub;
          sub.cache = r.vec_f64(kMaxPeriods);
          sub.last_pull_period = r.u64();
          sub.pulled_ever = r.boolean();
          sub.stats = read_telemetry(r);
          data.channel.subscribers.push_back(std::move(sub));
        }
        break;
      }
      case detail::kSecFanout: {
        const std::uint64_t count = r.u64();
        if (count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible group count");
        }
        data.fanout_schedules.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          data.fanout_schedules.push_back(r.vec_f64(kMaxPeriods));
        }
        break;
      }
      case detail::kSecGuard: {
        data.guard.last_good = r.vec_f64(kMaxPeriods);
        const std::vector<std::uint64_t> flags = r.vec_u64(kMaxPeriods);
        data.guard.has_last_good.resize(flags.size());
        for (std::size_t i = 0; i < flags.size(); ++i) {
          if (flags[i] > 1) {
            throw ser::FormatError("checkpoint: invalid guard flag");
          }
          data.guard.has_last_good[i] = flags[i] != 0;
        }
        data.guard.gap_streak = r.vec_u64(kMaxPeriods);
        data.guard.gaps_filled = r.u64();
        data.guard.nan_rejected = r.u64();
        data.guard.negative_rejected = r.u64();
        data.guard.spikes_clamped = r.u64();
        break;
      }
      case detail::kSecPricer: {
        data.pricer.rewards = r.vec_f64_finite(kMaxPeriods);
        data.pricer.reward_cap = r.f64();
        const std::uint64_t vol_count = r.u64();
        if (vol_count > kMaxPeriods) {
          throw ser::FormatError("checkpoint: implausible volume count");
        }
        data.pricer.volumes.reserve(static_cast<std::size_t>(vol_count));
        for (std::uint64_t i = 0; i < vol_count; ++i) {
          data.pricer.volumes.push_back(r.vec_f64_finite(kMaxListed));
        }
        data.pricer.health = read_health(r);
        data.pricer.stats = read_health_stats(r);
        const std::uint64_t log_count = r.u64();
        if (log_count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible transition log");
        }
        data.pricer.log.reserve(static_cast<std::size_t>(log_count));
        for (std::uint64_t i = 0; i < log_count; ++i) {
          OnlinePricer::HealthTransition t;
          t.observation = r.u64();
          const std::uint8_t from = r.u8();
          const std::uint8_t to = r.u8();
          if (from > 2 || to > 2) {
            throw ser::FormatError("checkpoint: invalid health transition");
          }
          t.from = static_cast<PricerHealth>(from);
          t.to = static_cast<PricerHealth>(to);
          data.pricer.log.push_back(t);
        }
        data.pricer.observation_count = r.u64();
        data.pricer.consecutive_bad = r.u64();
        data.pricer.consecutive_good = r.u64();
        data.pricer.excursion_periods = r.u64();
        const std::uint32_t source = r.u32();
        if (source > 1) {
          throw ser::FormatError("checkpoint: unknown model source");
        }
        data.model_source = static_cast<ModelSource>(source);
        data.model_beta = r.f64();
        data.model_volumes = r.vec_f64(kMaxPeriods);
        break;
      }
      case detail::kSecWindow: {
        const std::uint64_t count = r.u64();
        if (count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible window depth");
        }
        data.window.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          DayRecord record;
          record.rewards = r.vec_f64_finite(kMaxPeriods);
          record.usage_change = r.vec_f64_finite(kMaxPeriods);
          record.tip_demand = r.vec_f64_finite(kMaxPeriods);
          data.window.push_back(std::move(record));
        }
        break;
      }
      case detail::kSecDays: {
        const std::uint64_t count = r.u64();
        if (count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible day count");
        }
        data.completed_days.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          data.completed_days.push_back(read_day_metrics(r));
        }
        break;
      }
      case detail::kSecPartial:
        data.partial = read_day_metrics(r);
        data.prev_day_start_rewards = r.vec_f64(kMaxPeriods);
        data.has_prev_day_start = r.boolean();
        break;
      case detail::kSecObs: {
        const std::uint64_t count = r.u64();
        if (count > kMaxListed) {
          throw ser::FormatError("checkpoint: implausible counter count");
        }
        data.counters.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          std::string name = r.str();
          const std::uint64_t value = r.u64();
          data.counters.emplace_back(std::move(name), value);
        }
        break;
      }
      case detail::kSecMech: {
        data.mechanism_kind = r.u32();
        if (data.mechanism_kind > 3) {
          throw ser::FormatError("checkpoint: unknown mechanism kind");
        }
        data.rebate_pool = r.f64();
        data.rebate_share_blend = r.f64();
        data.rebate_inflow_floor = r.f64();
        data.oracle_refine = r.boolean();
        data.oracle_capacity_target = r.f64();
        data.mech_state.rewards = r.vec_f64_finite(kMaxPeriods);
        data.mech_state.scalars = r.vec_f64(kMaxPeriods);
        const std::uint64_t vec_count = r.u64();
        if (vec_count > kMaxPeriods) {
          throw ser::FormatError("checkpoint: implausible mech vectors");
        }
        data.mech_state.vectors.reserve(static_cast<std::size_t>(vec_count));
        for (std::uint64_t i = 0; i < vec_count; ++i) {
          data.mech_state.vectors.push_back(r.vec_f64_finite(kMaxPeriods));
        }
        data.adaptive_users = r.boolean();
        data.adaptation_rate = r.f64();
        data.adaptation_gain = r.f64();
        data.adapt_scale = r.vec_f64_finite(kMaxPeriods);
        break;
      }
      case detail::kSecStorm: {
        if (r.version() < 2) {
          // A version-1 reader does not know this tag: honor the
          // unknown-section policy so v1 semantics — skip v2-only
          // sections cleanly — are exercised for real (the compat test
          // patches the header version on genuine v2 bytes).
          r.skip_section();
          continue;
        }
        data.fault.storm_blackout.onset = r.f64();
        data.fault.storm_blackout.persist = r.f64();
        data.fault.storm_blackout.intensity = r.f64();
        data.fault.storm_channel.onset = r.f64();
        data.fault.storm_channel.persist = r.f64();
        data.fault.storm_channel.intensity = r.f64();
        data.fault.storm_solver.onset = r.f64();
        data.fault.storm_solver.persist = r.f64();
        data.fault.storm_solver.intensity = r.f64();
        data.carry_floor_fraction = r.f64();
        data.estimation_health_gate = r.boolean();
        data.reanchor_healthy_periods = r.u64();
        data.reanchor_objective_guard = r.boolean();
        data.reanchor_guard_tolerance = r.f64();
        data.healthy_streak_periods = r.u64();
        const std::uint64_t count = r.u64();
        if (count != data.completed_days.size() + 1) {
          // The extras are parallel arrays over kSecDays + the partial
          // day, so kSecDays/kSecPartial must precede kSecStorm (the
          // canonical order) and the counts must line up.
          throw ser::FormatError(
              "checkpoint: storm extras do not match day count");
        }
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t fallback = r.u64();
          const std::uint8_t flags = r.u8();
          if (flags > 3) {
            throw ser::FormatError("checkpoint: invalid storm day flags");
          }
          DayMetrics& m =
              (i + 1 == count)
                  ? data.partial
                  : data.completed_days[static_cast<std::size_t>(i)];
          m.fallback_periods = fallback;
          m.estimation_frozen = (flags & 1) != 0;
          m.reanchor_rolled_back = (flags & 2) != 0;
        }
        break;
      }
      case detail::kSecIncident: {
        if (r.version() < 2) {
          // Same v1-reader policy as kSecStorm: an unknown tag skips.
          r.skip_section();
          continue;
        }
        data.incident_config = obs::incident::read_config_echo(r);
        data.incident = obs::incident::read_state(r);
        data.incident_enabled = data.incident_config.enabled;
        break;
      }
      default:
        // Unknown section from a future writer: skip under the documented
        // compatibility policy (skip_section also closes the section).
        r.skip_section();
        continue;
    }
    r.end_section();
    if (tag >= 1 && tag <= 14) seen[tag] = true;
  }

  for (std::uint32_t tag = 1; tag <= 11; ++tag) {
    if (!seen[tag]) {
      throw ser::FormatError("checkpoint: missing required section");
    }
  }
  if (data.ring_work.size() != data.ring_reward.size() ||
      data.ring_work.size() != data.slices) {
    throw ser::FormatError("checkpoint: ring count does not match slices");
  }
  for (std::size_t i = 0; i < data.ring_work.size(); ++i) {
    if (data.ring_work[i].size() != data.periods ||
        data.ring_reward[i].size() != data.periods) {
      throw ser::FormatError("checkpoint: ring size does not match periods");
    }
  }
  if (data.ring_head >= data.periods || data.period >= data.periods) {
    throw ser::FormatError("checkpoint: clock out of range");
  }
  if (data.mechanism_kind != 0 &&
      data.mech_state.rewards.size() != data.periods) {
    throw ser::FormatError("checkpoint: mechanism rewards size mismatch");
  }
  return data;
}

CheckpointData decode(const std::vector<std::uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

void save_checkpoint_file(const std::string& path,
                          const CheckpointData& data) {
  const std::vector<std::uint8_t> bytes = encode(data);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw Error("cannot open checkpoint file for writing: " + path);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_err = std::fclose(f);
  if (written != bytes.size() || close_err != 0) {
    throw Error("short write to checkpoint file: " + path);
  }
}

CheckpointData load_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error("cannot open checkpoint file: " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw Error("read error on checkpoint file: " + path);
  return decode(bytes);
}

}  // namespace tdp::horizon
