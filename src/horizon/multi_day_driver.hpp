// Long-horizon operations: the multi-day control loop with online §IV
// re-estimation and versioned checkpoint/restore.
//
// A MultiDayDriver runs the TUBE control loop (fleet_driver.hpp's
// publish → fan-out → simulate → aggregate → observe pipeline, period for
// period, bitwise identical on a clean day) for many consecutive simulated
// days. On top of the single-day loop it adds the operational layer a
// deployment needs:
//
//   * Online estimation. Each finished day contributes one DayRecord of
//     fleet aggregates — published rewards, offered (TIP) demand and the
//     per-period usage change T_i = offered - realized — to a sliding
//     window. Once the window is deep enough, the §IV estimator re-fits a
//     tied patience index to the window (estimate_multistart, tied m = 1)
//     and, when re-anchoring is enabled, the pricer's fluid model is
//     rebuilt from the estimate and re-solved. The population may *drift*
//     (FaultPlan::drift_*): simulated users' patience indices move day by
//     day, and the estimator is how the control loop finds out.
//
//   * Checkpoint/restore. checkpoint() serializes the complete control-loop
//     state at any period boundary (horizon/checkpoint.hpp). restore()
//     rebuilds a driver from those bytes such that the continued run is
//     **bitwise identical** to the uninterrupted one — under any shard
//     count from 1 to the checkpointed slice count and any thread count:
//     the canonical slice layout is recorded in the checkpoint and shards
//     regroup whole slices on restore.
//
// Determinism: every DayMetrics field is a pure function of the
// configuration (population seed, fault plan, estimation settings). The
// kill-and-restore property tests compare EXPECT_EQ on raw doubles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "dynamic/online_pricer.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/fleet_driver.hpp"
#include "fleet/population.hpp"
#include "fleet/price_fanout.hpp"
#include "fleet/shard.hpp"
#include "horizon/checkpoint.hpp"
#include "horizon/checkpoint_stream.hpp"
#include "horizon/horizon_metrics.hpp"
#include "mech/mechanism.hpp"
#include "obs/incident/incident.hpp"
#include "tube/measurement_guard.hpp"
#include "tube/price_channel.hpp"

namespace tdp::horizon {

struct HorizonConfig {
  fleet::PopulationConfig population;
  /// Execution grouping (clamped to the slice count); never affects values.
  std::size_t shards = 8;
  /// Canonical slice layout; 0 = one slice per shard. Recorded in every
  /// checkpoint — restore() reuses the checkpointed layout, so a restoring
  /// config must leave this 0 or repeat the stored value.
  std::size_t slices = 0;
  std::size_t threads = 0;  ///< 0 = TDP_THREADS / hardware default

  /// Days simulated before the measured horizon to warm the deferral rings
  /// (their DayMetrics are kept but excluded from metrics().days).
  std::size_t warmup_days = 1;
  /// Measured days after warmup.
  std::size_t horizon_days = 7;

  bool online_pricing = true;
  DynamicOptimizerOptions offline_options;

  /// Pricing mechanism (DESIGN.md §13). The default TubeOnline config
  /// keeps every pre-arena horizon run bitwise unchanged.
  mech::MechanismConfig mechanism;

  /// Day-over-day user adaptation: after each settled day, every patience
  /// class's index is pulled toward a target set by the mean published
  /// reward (higher rewards -> lower beta -> more patient users). The
  /// EWMA'd scale composes multiplicatively with FaultPlan drift.
  bool adaptive_users = false;
  /// EWMA rate toward the target scale per day, in (0, 1].
  double adaptation_rate = 0.25;
  /// Sensitivity of the target scale to the mean reward.
  double adaptation_gain = 0.5;

  /// Fault plan. Observation faults behave exactly as in FleetDriver; the
  /// drift_* fields additionally move the simulated population's patience
  /// indices day by day (never arming guards — drift is reality changing,
  /// not telemetry lying).
  FaultPlan fault;
  ChannelResilienceConfig resilience;
  MeasurementGuardConfig measurement_guard;
  std::optional<PricerGuardConfig> pricer_guard;

  /// Incident engine (off by default). A pure observer fed the same
  /// aggregates the drivers already compute; enabling it never changes a
  /// simulated or priced value. Its state checkpoints (kSecIncident) so
  /// the alert stream survives kill/restore bitwise; the threshold fields
  /// are config-echoed and restore rejects mismatches.
  obs::incident::IncidentConfig incident;

  /// Run the §IV estimator over the sliding window after each measured day.
  bool estimation = true;
  /// Window depth in days (records beyond this age are dropped).
  std::size_t estimation_window = 5;
  /// Minimum records in the window before the first estimate.
  std::size_t estimation_min_days = 2;
  /// Multi-start count for estimate_multistart (start 0 is deterministic).
  std::size_t estimation_starts = 4;
  /// Rebuild + re-solve the pricer's fluid model from each estimate.
  bool reanchor = true;

  // -- storm-mode health gating (all defaults preserve legacy behavior) ---

  /// Freeze §IV re-estimation for any day during which the pricer FSM sat
  /// in FALLBACK: measurements from a fallback window describe the safety
  /// schedule's world, not the control loop's, and must never be fitted.
  bool estimation_health_gate = false;
  /// Hysteresis: re-anchor only after this many consecutive HEALTHY
  /// periods (0 = re-anchor as soon as an estimate lands, legacy).
  std::size_t reanchor_healthy_periods = 0;
  /// Guard adopt_model with a predicted-objective check: re-solve the
  /// candidate model and roll the re-fit back when its own objective says
  /// the new schedule is worse than the anchored one.
  bool reanchor_objective_guard = false;
  /// Relative slack for the objective guard: adopt while
  /// candidate_cost <= anchored_cost * (1 + tolerance).
  double reanchor_guard_tolerance = 0.0;

  // -- streaming checkpoints (execution knobs; never config-echoed) -------

  /// When non-empty, stream incremental v2 checkpoints to this path at
  /// period boundaries (atomic tmp-file/rename commits).
  std::string checkpoint_path;
  /// Commit every k-th period boundary in addition to day boundaries
  /// (0 = day boundaries only).
  std::size_t checkpoint_every_periods = 0;
};

class MultiDayDriver {
 public:
  explicit MultiDayDriver(HorizonConfig config);

  /// Rebuild a driver from checkpoint bytes. The configuration must agree
  /// with the checkpoint's determinism-relevant echo (population, fault
  /// plan, estimation settings...); shards/threads are free to differ —
  /// that is the point. `restore_counters` additionally forces the global
  /// obs registry's counters to the checkpointed values (process-restart
  /// fidelity; leave off when other components share the process).
  static std::unique_ptr<MultiDayDriver> restore(HorizonConfig config,
                                                 const CheckpointData& data,
                                                 bool restore_counters = false);
  static std::unique_ptr<MultiDayDriver> restore(
      HorizonConfig config, const std::vector<std::uint8_t>& bytes,
      bool restore_counters = false);

  const fleet::Population& population() const { return population_; }
  /// The TubeOnline mechanism's online pricer. Requires the default
  /// (tube_online) mechanism; other mechanisms have no pricer.
  const OnlinePricer& pricer() const;
  /// The active pricing mechanism (always present).
  const mech::PricingMechanism& mechanism() const { return *mechanism_; }
  /// Per-class adaptive patience scale (all ones unless adaptive_users).
  const std::vector<double>& adaptive_scale() const { return adapt_scale_; }
  std::size_t slice_count() const { return aggregator_.stripes(); }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return threads_; }

  /// Simulated clock: the *next* period to simulate.
  std::uint64_t day() const { return day_; }
  std::size_t period() const { return period_; }
  bool done() const {
    return day_ >= config_.warmup_days + config_.horizon_days;
  }

  /// Simulate exactly one period (precondition: !done()). Rolls the day
  /// over — including estimation and re-anchoring — when it was the day's
  /// last period.
  void step_period();

  /// Simulate to the end of the current day (at least one period).
  void run_day();

  /// Simulate to the end of the horizon and return the run summary.
  HorizonMetrics run();

  /// All finished days, warmup included (completed_days()[d].day == d).
  const std::vector<DayMetrics>& completed_days() const {
    return completed_days_;
  }

  /// Run summary so far (days = measured days only, warmup dropped).
  HorizonMetrics metrics() const;

  /// Serialize the complete control-loop state (period boundary).
  CheckpointData checkpoint() const;
  std::vector<std::uint8_t> checkpoint_bytes() const;

  /// The incident engine, or nullptr when not enabled.
  const obs::incident::IncidentEngine* incident_engine() const {
    return incident_.get();
  }

 private:
  struct RestoreTag {};
  MultiDayDriver(RestoreTag, HorizonConfig config, const CheckpointData& data,
                 bool restore_counters);

  /// Shared by both constructors: validates config, builds population-
  /// derived components. `slice_override` pins the canonical layout (the
  /// checkpointed value on restore; 0 = derive from config).
  MultiDayDriver(HorizonConfig config, std::size_t slice_override);

  void start_day();
  void finish_day();
  void build_drift_tables();
  /// True when any storm-mode health gate is configured. Health tracking
  /// (healthy_streak_periods_, DayMetrics::fallback_periods) runs only when
  /// gated, so ungated runs keep the new fields at zero and their
  /// checkpoints stay byte-identical to format v1.
  bool health_gated() const {
    return config_.estimation_health_gate ||
           config_.reanchor_healthy_periods > 0 ||
           config_.reanchor_objective_guard;
  }
  /// Stream a checkpoint commit if the clock warrants one.
  void maybe_stream_commit();
  /// The estimated fluid model: one tied class per period at the window's
  /// mean TIP volumes, with the baseline's capacity and cost.
  DynamicModel estimated_model(double beta,
                               const std::vector<double>& volumes) const;
  /// Baseline-or-estimated model per model_source_ (restore path).
  DynamicModel rebuild_model() const;

  struct Observation {
    std::optional<double> sample;
    std::size_t lost_stripes = 0;
  };
  Observation observe(std::size_t period, std::uint64_t abs_period,
                      double calibration,
                      const fleet::PeriodStats& merged) const;

  HorizonConfig config_;
  fleet::Population population_;
  FaultInjector injector_;
  std::unique_ptr<mech::PricingMechanism> mechanism_;
  PriceChannel channel_;
  fleet::PriceFanout fanout_;
  MeasurementGuard guard_;
  /// Heap-held so construction can run on the pool workers (first-touch
  /// NUMA placement of each shard's arena).
  std::vector<std::unique_ptr<fleet::Shard>> shards_;
  fleet::StripedAggregator aggregator_;
  std::size_t threads_;

  // Simulated clock (next period to simulate).
  std::uint64_t day_ = 0;
  std::size_t period_ = 0;
  bool day_started_ = false;

  /// Current day's drifted lag tables (empty = no drift, use the
  /// population's own). Rebuilt each day, never serialized.
  std::vector<UniformLagWeightTable> drift_tables_;

  /// Per-class adaptive patience scale (EWMA; all ones when adaptation is
  /// off). Composes multiplicatively with the injector's drift scale.
  std::vector<double> adapt_scale_;

  // Online estimation state.
  std::vector<DayRecord> window_;
  ModelSource model_source_ = ModelSource::kBaseline;
  double model_beta_ = 0.0;
  std::vector<double> model_volumes_;

  /// Consecutive HEALTHY periods (tracked only when health_gated()).
  std::uint64_t healthy_streak_periods_ = 0;

  /// Streaming checkpoint writer (present when checkpoint_path is set).
  std::unique_ptr<CheckpointStream> stream_;

  /// Incident engine (present when config_.incident.enabled).
  std::unique_ptr<obs::incident::IncidentEngine> incident_;

  // Metrics.
  std::vector<DayMetrics> completed_days_;
  DayMetrics partial_;
  math::Vector prev_day_start_rewards_;
  bool has_prev_day_start_ = false;
  double wall_seconds_ = 0.0;
};

}  // namespace tdp::horizon
