#include "horizon/horizon_metrics.hpp"

#include <cstdio>

namespace tdp::horizon {
namespace {

void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_field(std::string& out, const char* key, double value) {
  out += '"';
  out += key;
  out += "\":";
  append_number(out, value);
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += '"';
  out += key;
  out += "\":";
  out += buffer;
}

void append_field(std::string& out, const char* key, bool value) {
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

void append_array(std::string& out, const char* key,
                  const std::vector<double>& values) {
  out += '"';
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    append_number(out, values[i]);
  }
  out += ']';
}

void append_day(std::string& out, const DayMetrics& day) {
  out += '{';
  append_field(out, "day", day.day);
  out += ',';
  append_field(out, "sessions", day.sessions);
  out += ',';
  append_field(out, "deferred_sessions", day.deferred_sessions);
  out += ',';
  append_field(out, "reward_paid_units", day.reward_paid_units);
  out += ',';
  append_field(out, "peak_to_average_tip", day.peak_to_average_tip);
  out += ',';
  append_field(out, "peak_to_average_tdp", day.peak_to_average_tdp);
  out += ',';
  append_field(out, "estimated", day.estimated);
  out += ',';
  append_field(out, "beta_estimate", day.beta_estimate);
  out += ',';
  append_field(out, "estimate_residual", day.estimate_residual);
  out += ',';
  append_field(out, "reanchored", day.reanchored);
  out += ',';
  append_field(out, "fallback_periods", day.fallback_periods);
  out += ',';
  append_field(out, "estimation_frozen", day.estimation_frozen);
  out += ',';
  append_field(out, "reanchor_rolled_back", day.reanchor_rolled_back);
  out += ',';
  append_field(out, "reward_step_linf", day.reward_step_linf);
  out += ',';
  append_array(out, "offered_units", day.offered_units);
  out += ',';
  append_array(out, "realized_units", day.realized_units);
  out += ',';
  append_array(out, "rewards", day.rewards);
  out += '}';
}

}  // namespace

std::string HorizonMetrics::to_json() const {
  std::string out = "{";
  append_field(out, "users", users);
  out += ',';
  append_field(out, "periods", static_cast<std::uint64_t>(periods));
  out += ',';
  append_field(out, "slices", static_cast<std::uint64_t>(slices));
  out += ',';
  append_field(out, "shards", static_cast<std::uint64_t>(shards));
  out += ',';
  append_field(out, "threads", static_cast<std::uint64_t>(threads));
  out += ',';
  append_field(out, "warmup_days", static_cast<std::uint64_t>(warmup_days));
  out += ',';
  append_field(out, "horizon_days", static_cast<std::uint64_t>(horizon_days));
  out += ',';
  append_field(out, "wall_seconds", wall_seconds);
  out += ',';
  out += "\"final_health\":\"";
  out += final_health;
  out += "\",";
  out += "\"days\":[";
  for (std::size_t i = 0; i < days.size(); ++i) {
    if (i) out += ',';
    append_day(out, days[i]);
  }
  out += "]}";
  return out;
}

}  // namespace tdp::horizon
