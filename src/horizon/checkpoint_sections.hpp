// Internal: the checkpoint's section inventory, shared by the
// stop-the-world encoder (checkpoint.cpp) and the incremental streamer
// (checkpoint_stream.cpp).
//
// Each section is self-contained — tag, byte length, fields — so the two
// writers can produce identical bytes by construction: encode() writes
// every present section through one Writer; the streamer encodes each
// present section through its own Writer, caches the chunks, and frames
// their concatenation. Keeping the inventory (order, presence, dirtiness)
// in one place is what makes "streamed bytes == encode(checkpoint())" a
// structural property instead of a test-enforced coincidence.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/serialize.hpp"
#include "horizon/checkpoint.hpp"

namespace tdp::horizon::detail {

/// Section tags. v1 wrote 1..12 (12 conditionally); v2 appends kSecStorm,
/// which v1 readers skip under the unknown-tag policy.
enum SectionTag : std::uint32_t {
  kSecConfig = 1,
  kSecClock = 2,
  kSecRings = 3,
  kSecChannel = 4,
  kSecFanout = 5,
  kSecGuard = 6,
  kSecPricer = 7,
  kSecWindow = 8,
  kSecDays = 9,
  kSecPartial = 10,
  kSecObs = 11,
  // Optional: written only when the run departs from the defaults (a
  // non-TubeOnline mechanism or adaptive users). Absent = TubeOnline, no
  // adaptation — keeps pre-arena checkpoints and golden fixtures valid
  // byte for byte.
  kSecMech = 12,
  // v2 only: storm-regime echo, guard carry floor, health-gate knobs and
  // state, and the per-day health extras. Must follow kSecDays/kSecPartial
  // (its per-day arrays index into them).
  kSecStorm = 13,
  // v2 only, written only when the incident engine is enabled: the
  // engine's config echo and complete state (obs/incident/incident.hpp's
  // write_config_echo + write_state).
  kSecIncident = 14,
};

/// Canonical write order (encode() and the streamer must agree).
inline constexpr SectionTag kSectionOrder[] = {
    kSecConfig, kSecClock,  kSecRings,  kSecChannel, kSecFanout,
    kSecGuard,  kSecPricer, kSecWindow, kSecDays,    kSecPartial,
    kSecObs,    kSecMech,   kSecStorm,  kSecIncident,
};
inline constexpr std::size_t kSectionCount =
    sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);

/// True when the checkpoint uses a v2 feature: a storm regime, a non-default
/// guard carry floor, any health gate, or the incident engine. A pure
/// function of the config echo, so legacy configurations keep writing
/// byte-identical v1 files.
bool needs_v2(const CheckpointData& data);

/// The format version the writer emits for `data` (1 or 2).
std::uint32_t format_version_for(const CheckpointData& data);

/// Whether this checkpoint writes `tag` at all (kSecMech, kSecStorm, and
/// kSecIncident are conditional; everything else is required).
bool section_present(SectionTag tag, const CheckpointData& data);

/// Encode exactly one tagged section — begin_section through end_section —
/// into `w`.
void write_section(ser::Writer& w, SectionTag tag, const CheckpointData& data);

/// True when the section's bytes can change between two period-boundary
/// commits inside the same day. False means only a day rollover (settle,
/// estimation, adaptation) can dirty it — the streamer reuses the cached
/// chunk for mid-day commits.
bool section_dirty_within_day(SectionTag tag);

}  // namespace tdp::horizon::detail
