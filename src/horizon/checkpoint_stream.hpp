// Streaming incremental checkpoints with atomic commit and torn-write
// recovery (DESIGN.md §14).
//
// The stop-the-world path (encode + save_checkpoint_file) re-serializes
// the entire CheckpointData every time — at a million users the
// completed-day list, estimation window, and counter table are re-encoded
// for every period boundary even though they only change at day rollovers.
// CheckpointStream instead caches each section's encoded payload chunk and
// re-encodes only the sections that can have changed since the last
// commit: per-period sections (clock, rings, channel, guard, pricer,
// partial, ...) every commit, day-scoped sections (window, days, mech) at
// day boundaries, the config echo once. The framed result is byte-for-byte
// identical to encode(checkpoint()) because both writers emit the same
// self-contained sections in the same canonical order
// (checkpoint_sections.hpp) — a property pinned by test.
//
// Commit protocol: write the framed buffer to `path + ".tmp"`, flush and
// fsync, then std::rename over `path` — a crash at any point leaves either
// the previous committed file, a torn tmp beside it, or both.
// load_checkpoint_file_recover() sorts that out: it takes whichever of the
// two parses cleanly (CRC-validated), preferring the later simulated
// clock when both do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "horizon/checkpoint.hpp"
#include "horizon/checkpoint_sections.hpp"

namespace tdp::horizon {

class CheckpointStream {
 public:
  /// @param path final (committed) checkpoint path; commits stage through
  ///             `path + ".tmp"`.
  explicit CheckpointStream(std::string path);

  /// Re-encode the dirty sections of `data`, frame the cached chunks, and
  /// atomically replace the committed file. `day_boundary` marks commits
  /// taken right after a day rollover, where the day-scoped sections
  /// (window, completed days, mechanism state) must be refreshed too.
  void commit(const CheckpointData& data, bool day_boundary);

  const std::string& path() const { return path_; }
  std::string tmp_path() const { return path_ + ".tmp"; }

  std::uint64_t commits() const { return commits_; }
  /// Sections re-encoded across all commits — the streaming-efficiency
  /// diagnostic (a stop-the-world writer would re-encode all of them).
  std::uint64_t sections_reencoded() const { return sections_reencoded_; }

 private:
  std::string path_;
  /// Encoded payload chunk per canonical section slot (empty = not yet
  /// encoded or section absent).
  std::vector<std::vector<std::uint8_t>> chunks_;
  bool first_commit_ = true;
  std::uint64_t commits_ = 0;
  std::uint64_t sections_reencoded_ = 0;
};

/// Torn-write-tolerant loader: try `path` and `path + ".tmp"`, reject
/// whichever fails validation (missing, truncated, CRC mismatch), and when
/// both parse prefer the later simulated clock (day, period) — a complete
/// tmp the crash beat to the rename is newer than the committed file.
/// Throws tdp::Error when neither is recoverable.
CheckpointData load_checkpoint_file_recover(const std::string& path);

}  // namespace tdp::horizon
