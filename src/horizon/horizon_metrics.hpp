// Per-day and whole-run metrics for long-horizon operations.
//
// Everything in DayMetrics except nothing — all fields — is a deterministic
// function of the run's configuration: the kill-and-restore property tests
// compare DayMetrics with EXPECT_EQ on the raw doubles. Wall-clock timing
// lives only in HorizonMetrics::wall_seconds and is explicitly excluded
// from bitwise comparisons.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tdp::horizon {

/// One simulated day's deterministic outcomes.
struct DayMetrics {
  std::uint64_t day = 0;  ///< absolute day index (warmup included)

  // Traffic shape (demand units per period).
  std::vector<double> offered_units;   ///< pre-deferral (TIP baseline)
  std::vector<double> realized_units;  ///< post-deferral (under TDP)
  /// Published reward each period saw when it was simulated.
  std::vector<double> rewards;

  std::uint64_t sessions = 0;
  std::uint64_t deferred_sessions = 0;
  double reward_paid_units = 0.0;
  double peak_to_average_tip = 0.0;
  double peak_to_average_tdp = 0.0;

  // Online §IV estimation (when the sliding window was deep enough).
  bool estimated = false;
  double beta_estimate = 0.0;     ///< tied patience index fitted to the window
  double estimate_residual = 0.0; ///< squared residual norm of the fit
  bool reanchored = false;        ///< pricer re-solved on the estimated model

  // Storm-mode health gating (all zero unless the gates are configured, so
  // legacy runs serialize unchanged).
  std::uint64_t fallback_periods = 0;  ///< periods the pricer sat in FALLBACK
  bool estimation_frozen = false;      ///< day excluded from the fit window
  bool reanchor_rolled_back = false;   ///< objective guard rejected the re-fit

  /// L-inf distance between this day's starting reward schedule and the
  /// previous day's — the limit-cycle diagnostic (0 for the first day).
  double reward_step_linf = 0.0;
};

/// Whole-run summary. `days` holds the measured (post-warmup) days.
struct HorizonMetrics {
  std::uint64_t users = 0;
  std::size_t periods = 0;
  std::size_t slices = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::size_t warmup_days = 0;
  std::size_t horizon_days = 0;

  std::vector<DayMetrics> days;
  std::string final_health = "HEALTHY";
  double wall_seconds = 0.0;  ///< NOT deterministic; excluded from comparisons

  /// Compact single-object JSON (per-day profiles as arrays of arrays).
  std::string to_json() const;
};

}  // namespace tdp::horizon
