// The long-horizon checkpoint format (DESIGN.md §12).
//
// A checkpoint is a full snapshot of the control-loop state at a period
// boundary: the simulated clock, every canonical slice's deferral rings,
// the price channel and fan-out caches, the measurement guard, the online
// pricer (rewards, demand volumes, health ladder) and its model source,
// the estimator's sliding window, completed and in-progress day metrics,
// and the observability counters. A run killed after writing one and
// restored from it is bitwise identical to the uninterrupted run — under
// any shard or thread count that groups whole slices.
//
// Encoding: the versioned little-endian framing of common/serialize.hpp —
// magic "TDPC", tagged sections, CRC-32 trailer. decode() is safe on
// hostile bytes: every failure is a ser::FormatError, never UB (fuzzed in
// tests/test_horizon.cpp).
//
// Versioning (DESIGN.md §14): the writer emits format version 1 unless the
// run actually uses a storm-mode feature (storm regimes, guard carry
// floor, health-gated re-anchoring) — then it emits version 2, which
// appends one extra section (kSecStorm) that version-1 readers skip under
// the unknown-tag policy. Legacy configurations therefore keep producing
// byte-identical v1 checkpoints (golden-fixture tripwire), and v1 files
// decode into the v2 defaults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "dynamic/online_pricer.hpp"
#include "horizon/horizon_metrics.hpp"
#include "math/vector_ops.hpp"
#include "mech/mechanism.hpp"
#include "obs/incident/incident.hpp"
#include "tube/measurement_guard.hpp"
#include "tube/price_channel.hpp"

namespace tdp::horizon {

inline constexpr char kCheckpointMagic[] = "TDPC";
/// Newest format this build writes; emitted only when a v2 feature is in
/// use (see the versioning note above).
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// How the pricer's *baseline* fluid model is rebuilt on restore.
enum class ModelSource : std::uint32_t {
  kBaseline = 0,   ///< population-derived (fleet::baseline_fluid_model)
  kEstimated = 1,  ///< rebuilt from a tied §IV estimate (beta + volumes)
};

/// One day of fleet aggregates retained for online §IV estimation.
struct DayRecord {
  math::Vector rewards;            ///< published reward per period
  math::Vector usage_change;       ///< T_i = offered - realized, demand units
  std::vector<double> tip_demand;  ///< offered (TIP) demand units per period
};

/// The complete serializable state of a MultiDayDriver.
struct CheckpointData {
  // -- configuration echo (determinism-relevant; validated on restore) ----
  std::uint64_t users = 0;
  std::uint32_t periods = 0;
  std::uint64_t population_seed = 0;
  double sessions_per_day = 0.0;
  std::uint64_t slices = 0;  ///< canonical layout; restore reuses this
  std::uint32_t warmup_days = 0;
  std::uint32_t horizon_days = 0;
  bool online_pricing = true;
  bool estimation = false;
  std::uint32_t estimation_window = 0;
  std::uint32_t estimation_min_days = 0;
  std::uint32_t estimation_starts = 0;
  bool reanchor = false;
  FaultPlan fault;  ///< full plan, drift + storm fields included
  std::uint64_t staleness_ttl = 0;
  std::uint64_t max_retries = 0;
  double max_spike_factor = 0.0;
  std::uint64_t max_carry_forward = 0;

  // -- storm-mode extensions (kSecStorm; serialized only at version 2) ----
  // Config echo: the guard's carry floor and the health-gate knobs.
  double carry_floor_fraction = 0.5;
  bool estimation_health_gate = false;
  std::uint64_t reanchor_healthy_periods = 0;
  bool reanchor_objective_guard = false;
  double reanchor_guard_tolerance = 0.0;
  // State: the re-anchor hysteresis counter (always 0 when ungated).
  std::uint64_t healthy_streak_periods = 0;

  // -- simulated clock ----------------------------------------------------
  std::uint64_t day = 0;     ///< next day to simulate
  std::uint32_t period = 0;  ///< next period to simulate within `day`
  std::uint32_t ring_head = 0;

  // -- per-slice deferral rings (ascending slice order) -------------------
  std::vector<std::vector<double>> ring_work;
  std::vector<std::vector<double>> ring_reward;

  // -- TUBE control-loop components ---------------------------------------
  PriceChannelState channel;
  std::vector<math::Vector> fanout_schedules;
  MeasurementGuardState guard;
  OnlinePricerState pricer;
  ModelSource model_source = ModelSource::kBaseline;
  double model_beta = 0.0;                ///< kEstimated only
  std::vector<double> model_volumes;      ///< kEstimated only, per period

  // -- pricing mechanism (DESIGN.md §13) ----------------------------------
  // Serialized as an optional section: checkpoints written under the
  // default TubeOnline mechanism with no user adaptation omit it and stay
  // byte-identical to the pre-arena format (golden-fixture compatibility).
  std::uint32_t mechanism_kind = 0;  ///< mech::MechanismKind
  double rebate_pool = 0.0;
  double rebate_share_blend = 0.0;
  double rebate_inflow_floor = 0.0;
  bool oracle_refine = true;
  double oracle_capacity_target = 0.85;
  mech::MechanismState mech_state;  ///< non-TubeOnline internal state
  bool adaptive_users = false;
  double adaptation_rate = 0.0;
  double adaptation_gain = 0.0;
  std::vector<double> adapt_scale;  ///< per-class patience scale (EWMA)

  // -- online estimation sliding window -----------------------------------
  std::vector<DayRecord> window;

  // -- metrics ------------------------------------------------------------
  std::vector<DayMetrics> completed_days;
  DayMetrics partial;  ///< current day's accumulators
  math::Vector prev_day_start_rewards;
  bool has_prev_day_start = false;

  // -- incident engine (kSecIncident; serialized only when enabled) -------
  // Config echo (restore rejects threshold mismatches — they would fork
  // the alert stream) plus the complete engine state, so a restored run
  // continues the deterministic alert/incident streams bitwise.
  bool incident_enabled = false;
  obs::incident::IncidentConfig incident_config;
  obs::incident::EngineState incident;

  // -- observability counters (name, merged value) ------------------------
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Serialize to the framed byte format.
std::vector<std::uint8_t> encode(const CheckpointData& data);

/// Parse framed bytes. Throws ser::FormatError on any structural problem —
/// corruption, truncation, or version/magic mismatch — never crashes.
CheckpointData decode(const std::uint8_t* data, std::size_t size);
CheckpointData decode(const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers (binary, whole-buffer). save throws tdp::Error
/// on I/O failure; load throws tdp::Error on I/O failure and
/// ser::FormatError on bad content.
void save_checkpoint_file(const std::string& path, const CheckpointData& data);
CheckpointData load_checkpoint_file(const std::string& path);

}  // namespace tdp::horizon
