#include "horizon/checkpoint_stream.hpp"

#include <cstdio>
#include <optional>
#include <utility>

#include <unistd.h>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace tdp::horizon {
namespace {

/// Write `bytes` to `path`, flushed and fsync'd, so the subsequent rename
/// publishes fully-durable content.
void write_file_durable(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw Error("cannot open checkpoint staging file: " + path);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fflush(f) == 0;
  if (ok) ok = ::fsync(fileno(f)) == 0;
  const int close_err = std::fclose(f);
  if (!ok || close_err != 0) {
    throw Error("short write to checkpoint staging file: " + path);
  }
}

std::optional<CheckpointData> try_load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return std::nullopt;
  try {
    return decode(bytes);
  } catch (const ser::FormatError&) {
    // Torn, truncated, or corrupt — exactly what recovery must tolerate.
    return std::nullopt;
  }
}

}  // namespace

CheckpointStream::CheckpointStream(std::string path)
    : path_(std::move(path)), chunks_(detail::kSectionCount) {
  TDP_REQUIRE(!path_.empty(), "checkpoint stream needs a path");
}

void CheckpointStream::commit(const CheckpointData& data, bool day_boundary) {
  // Refresh the dirty chunks. Each section is encoded through its own
  // Writer whose raw payload (no header/CRC) is exactly that section's
  // bytes — self-contained framing makes concatenation associative.
  const std::uint32_t version = detail::format_version_for(data);
  for (std::size_t i = 0; i < detail::kSectionCount; ++i) {
    const detail::SectionTag tag = detail::kSectionOrder[i];
    if (!detail::section_present(tag, data)) {
      chunks_[i].clear();
      continue;
    }
    const bool dirty = first_commit_ || day_boundary ||
                       detail::section_dirty_within_day(tag);
    if (!dirty && !chunks_[i].empty()) continue;
    ser::Writer w(kCheckpointMagic, version);
    detail::write_section(w, tag, data);
    chunks_[i] = w.take_payload();
    ++sections_reencoded_;
  }
  first_commit_ = false;

  std::size_t total = 0;
  for (const std::vector<std::uint8_t>& chunk : chunks_) {
    total += chunk.size();
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(total);
  for (const std::vector<std::uint8_t>& chunk : chunks_) {
    payload.insert(payload.end(), chunk.begin(), chunk.end());
  }
  const std::vector<std::uint8_t> framed =
      ser::Writer::frame(kCheckpointMagic, version, payload);

  // Atomic publish: stage, fsync, rename. POSIX rename replaces the
  // destination atomically, so readers only ever see the old file or the
  // new one — never a prefix of either.
  const std::string tmp = tmp_path();
  write_file_durable(tmp, framed);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw Error("cannot publish checkpoint: rename failed for " + path_);
  }
  ++commits_;
}

CheckpointData load_checkpoint_file_recover(const std::string& path) {
  std::optional<CheckpointData> committed = try_load(path);
  std::optional<CheckpointData> staged = try_load(path + ".tmp");
  if (committed.has_value() && staged.has_value()) {
    // Both complete: the crash landed between fsync and rename. Resume
    // from the later simulated clock; on a tie the committed file wins
    // (the tmp is then a byte-identical re-commit in flight).
    const bool staged_newer =
        staged->day > committed->day ||
        (staged->day == committed->day && staged->period > committed->period);
    return staged_newer ? std::move(*staged) : std::move(*committed);
  }
  if (committed.has_value()) return std::move(*committed);
  if (staged.has_value()) return std::move(*staged);
  throw Error("no recoverable checkpoint at " + path +
              " (committed and staged copies both unreadable)");
}

}  // namespace tdp::horizon
