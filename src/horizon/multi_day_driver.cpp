#include "horizon/multi_day_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/paper_data.hpp"
#include "core/waiting_function.hpp"
#include "estimation/wf_estimator.hpp"
#include "fleet/fleet_metrics.hpp"
#include "mech/tube_online.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace tdp::horizon {
namespace {

struct HorizonCounters {
  obs::Counter& periods =
      obs::Registry::global().counter("horizon.periods_total");
  obs::Counter& days = obs::Registry::global().counter("horizon.days_total");
  obs::Counter& estimates =
      obs::Registry::global().counter("horizon.estimates_total");
  obs::Counter& reanchors =
      obs::Registry::global().counter("horizon.reanchors_total");
  obs::Counter& checkpoints =
      obs::Registry::global().counter("horizon.checkpoints_total");
  obs::Counter& restores =
      obs::Registry::global().counter("horizon.restores_total");
  obs::Counter& gaps =
      obs::Registry::global().counter("horizon.measurement_gaps_total");
  obs::Counter& stripes_lost =
      obs::Registry::global().counter("horizon.stripes_lost_total");
  obs::Counter& mech_settles =
      obs::Registry::global().counter("mech.settles_total");
  obs::Counter& adaptations =
      obs::Registry::global().counter("mech.adaptations_total");
  obs::Counter& frozen =
      obs::Registry::global().counter("horizon.estimation_frozen_total");
  obs::Counter& deferred =
      obs::Registry::global().counter("horizon.reanchor_deferred_total");
  obs::Counter& rollbacks =
      obs::Registry::global().counter("horizon.reanchor_rollbacks_total");
  obs::Counter& stream_commits =
      obs::Registry::global().counter("horizon.stream_commits_total");
};

HorizonCounters& horizon_counters() {
  static HorizonCounters counters;
  return counters;
}

/// Canonical slice count (same rule as FleetDriver): an explicit override
/// (the checkpointed layout) wins, else config.slices, else one slice per
/// shard; always clamped to [1, users].
std::size_t effective_slices(const HorizonConfig& config,
                             std::size_t slice_override,
                             std::uint64_t users) {
  std::size_t requested = slice_override;
  if (requested == 0) {
    requested = config.slices != 0 ? config.slices
                                   : std::max<std::size_t>(config.shards, 1);
  }
  return std::min<std::size_t>(std::max<std::size_t>(requested, 1),
                               static_cast<std::size_t>(users));
}

PricerGuardConfig guard_config_for(const HorizonConfig& config,
                                   const FaultInjector& injector) {
  return config.pricer_guard.value_or(injector.enabled()
                                          ? PricerGuardConfig::protective()
                                          : PricerGuardConfig{});
}

double linf_distance(const math::Vector& a, const math::Vector& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// The incident engine keeps its own Health enum (it sits below the
/// pricing layers); the driver maps the pricer's ladder over.
obs::incident::Health map_health(PricerHealth health) {
  switch (health) {
    case PricerHealth::kHealthy:
      return obs::incident::Health::kHealthy;
    case PricerHealth::kDegraded:
      return obs::incident::Health::kDegraded;
    default:
      return obs::incident::Health::kFallback;
  }
}

/// Restore-time validation: the checkpoint must describe the same
/// experiment this config describes. Execution knobs (shards, threads) are
/// deliberately not compared.
HorizonConfig validate_restore(HorizonConfig config,
                               const CheckpointData& data) {
  TDP_REQUIRE(config.population.users == data.users &&
                  config.population.periods == data.periods &&
                  config.population.seed == data.population_seed &&
                  config.population.sessions_per_day == data.sessions_per_day,
              "checkpoint population does not match configuration");
  TDP_REQUIRE(config.slices == 0 || config.slices == data.slices,
              "checkpoint slice layout does not match configuration");
  TDP_REQUIRE(config.warmup_days == data.warmup_days &&
                  config.horizon_days == data.horizon_days,
              "checkpoint horizon does not match configuration");
  TDP_REQUIRE(config.online_pricing == data.online_pricing &&
                  config.estimation == data.estimation &&
                  config.estimation_window == data.estimation_window &&
                  config.estimation_min_days == data.estimation_min_days &&
                  config.estimation_starts == data.estimation_starts &&
                  config.reanchor == data.reanchor,
              "checkpoint estimation settings do not match configuration");
  const FaultPlan& a = config.fault;
  const FaultPlan& b = data.fault;
  TDP_REQUIRE(a.price_pull_drop == b.price_pull_drop &&
                  a.clock_skew == b.clock_skew &&
                  a.measurement_loss == b.measurement_loss &&
                  a.measurement_nan == b.measurement_nan &&
                  a.measurement_negative == b.measurement_negative &&
                  a.measurement_spike == b.measurement_spike &&
                  a.spike_factor == b.spike_factor &&
                  a.measurement_blackouts == b.measurement_blackouts &&
                  a.solver_exhaustion == b.solver_exhaustion &&
                  a.solver_starved_budget == b.solver_starved_budget &&
                  a.drift_beta_rate == b.drift_beta_rate &&
                  a.drift_beta_step == b.drift_beta_step &&
                  a.drift_step_day == b.drift_step_day && a.seed == b.seed,
              "checkpoint fault plan does not match configuration");
  TDP_REQUIRE(a.storm_blackout.onset == b.storm_blackout.onset &&
                  a.storm_blackout.persist == b.storm_blackout.persist &&
                  a.storm_blackout.intensity == b.storm_blackout.intensity &&
                  a.storm_channel.onset == b.storm_channel.onset &&
                  a.storm_channel.persist == b.storm_channel.persist &&
                  a.storm_channel.intensity == b.storm_channel.intensity &&
                  a.storm_solver.onset == b.storm_solver.onset &&
                  a.storm_solver.persist == b.storm_solver.persist &&
                  a.storm_solver.intensity == b.storm_solver.intensity,
              "checkpoint storm plan does not match configuration");
  TDP_REQUIRE(config.estimation_health_gate == data.estimation_health_gate &&
                  config.reanchor_healthy_periods ==
                      data.reanchor_healthy_periods &&
                  config.reanchor_objective_guard ==
                      data.reanchor_objective_guard &&
                  config.reanchor_guard_tolerance ==
                      data.reanchor_guard_tolerance,
              "checkpoint health gates do not match configuration");
  TDP_REQUIRE(config.resilience.staleness_ttl == data.staleness_ttl &&
                  config.resilience.max_retries == data.max_retries,
              "checkpoint resilience policy does not match configuration");
  TDP_REQUIRE(
      config.measurement_guard.max_spike_factor == data.max_spike_factor &&
          config.measurement_guard.max_carry_forward ==
              data.max_carry_forward &&
          config.measurement_guard.carry_floor_fraction ==
              data.carry_floor_fraction,
      "checkpoint guard policy does not match configuration");
  TDP_REQUIRE(data.day <= config.warmup_days + config.horizon_days,
              "checkpoint clock is past the configured horizon");
  TDP_REQUIRE(
      static_cast<std::uint32_t>(config.mechanism.kind) == data.mechanism_kind,
      "checkpoint mechanism does not match configuration");
  if (config.mechanism.kind == mech::MechanismKind::kFixedBudgetRebate) {
    TDP_REQUIRE(
        config.mechanism.rebate_pool == data.rebate_pool &&
            config.mechanism.rebate_share_blend == data.rebate_share_blend &&
            config.mechanism.rebate_inflow_floor == data.rebate_inflow_floor,
        "checkpoint rebate parameters do not match configuration");
  }
  if (config.mechanism.kind == mech::MechanismKind::kDayAheadOracle) {
    TDP_REQUIRE(config.mechanism.oracle_refine == data.oracle_refine &&
                    config.mechanism.oracle_capacity_target ==
                        data.oracle_capacity_target,
                "checkpoint oracle settings do not match configuration");
  }
  TDP_REQUIRE(config.adaptive_users == data.adaptive_users,
              "checkpoint adaptation mode does not match configuration");
  if (config.adaptive_users) {
    TDP_REQUIRE(config.adaptation_rate == data.adaptation_rate &&
                    config.adaptation_gain == data.adaptation_gain,
                "checkpoint adaptation settings do not match configuration");
  }
  TDP_REQUIRE(config.incident.enabled == data.incident_enabled,
              "checkpoint incident-engine mode does not match configuration");
  if (config.incident.enabled) {
    // Mismatched thresholds would fork the alert stream at the restore
    // point — the detectors carry accumulated state tuned to the echoed
    // config, so the restore must prove it is the same experiment.
    TDP_REQUIRE(
        obs::incident::config_echo_matches(config.incident,
                                           data.incident_config),
        "checkpoint incident thresholds do not match configuration");
  }
  return config;
}

}  // namespace

MultiDayDriver::MultiDayDriver(HorizonConfig config,
                               std::size_t slice_override)
    : config_(std::move(config)),
      population_(config_.population),
      injector_(config_.fault),
      channel_(config_.population.periods),
      fanout_(channel_, paper::kPatienceIndices.size()),
      guard_(population_.expected_demand_units(), config_.measurement_guard),
      aggregator_(
          effective_slices(config_, slice_override, population_.users()),
          population_.periods()),
      threads_(config_.threads == 0 ? default_thread_count()
                                    : config_.threads) {
  TDP_REQUIRE(config_.horizon_days >= 1, "horizon needs at least one day");
  TDP_REQUIRE(config_.estimation_window >= 1 &&
                  config_.estimation_min_days >= 1 &&
                  config_.estimation_starts >= 1,
              "estimation settings must be positive");
  channel_.set_resilience(config_.resilience);
  if (injector_.enabled()) channel_.set_fault_injector(&injector_);

  const std::size_t slices = aggregator_.stripes();
  const std::size_t shard_count =
      std::min<std::size_t>(std::max<std::size_t>(config_.shards, 1), slices);
  // Built on the pool so each shard's arena pages are first-touched by a
  // worker (see fleet::Shard's ctor comment on NUMA placement).
  shards_.resize(shard_count);
  parallel_for(
      shard_count,
      [&](std::size_t s) {
        const std::size_t begin = slices * s / shard_count;
        const std::size_t end = slices * (s + 1) / shard_count;
        shards_[s] = std::make_unique<fleet::Shard>(population_, begin, end,
                                                    slices);
      },
      threads_);
  TDP_REQUIRE(!config_.adaptive_users ||
                  (config_.adaptation_rate > 0.0 &&
                   config_.adaptation_rate <= 1.0 &&
                   config_.adaptation_gain >= 0.0),
              "adaptation settings out of range");
  adapt_scale_.assign(population_.patience_classes(), 1.0);
  if (config_.incident.enabled) {
    incident_ =
        std::make_unique<obs::incident::IncidentEngine>(config_.incident);
  }
}

const OnlinePricer& MultiDayDriver::pricer() const {
  const OnlinePricer* pricer = mechanism_->online_pricer();
  TDP_REQUIRE(pricer != nullptr,
              "pricer() needs the tube_online mechanism; use mechanism()");
  return *pricer;
}

MultiDayDriver::MultiDayDriver(HorizonConfig config)
    : MultiDayDriver(std::move(config), /*slice_override=*/0) {
  mechanism_ = mech::make_mechanism(
      config_.mechanism, fleet::baseline_fluid_model(population_),
      config_.offline_options, guard_config_for(config_, injector_));
  if (!config_.checkpoint_path.empty()) {
    stream_ = std::make_unique<CheckpointStream>(config_.checkpoint_path);
  }
  TDP_LOG_INFO << "horizon: " << population_.users() << " users, "
               << config_.warmup_days << "+" << config_.horizon_days
               << " days over " << aggregator_.stripes() << " slices in "
               << shards_.size() << " shards under "
               << mechanism_->name();
}

MultiDayDriver::MultiDayDriver(RestoreTag, HorizonConfig config,
                               const CheckpointData& data,
                               bool restore_counters)
    : MultiDayDriver(validate_restore(std::move(config), data), data.slices) {
  // Per-slice rings regroup onto whatever shards this run configured.
  for (const auto& shard : shards_) {
    for (std::size_t s = shard->begin_slice(); s < shard->end_slice(); ++s) {
      shard->restore_slice_rings(s, data.ring_work[s], data.ring_reward[s]);
    }
    shard->set_ring_head(data.ring_head);
  }

  channel_.restore_state(data.channel);
  fanout_.restore_schedules(data.fanout_schedules);
  guard_.restore_state(data.guard);

  model_source_ = data.model_source;
  model_beta_ = data.model_beta;
  model_volumes_ = data.model_volumes;
  if (config_.mechanism.kind == mech::MechanismKind::kTubeOnline) {
    // The pricer section carries the full online-pricer state; rebuilding
    // through it keeps kill-and-restore bitwise.
    mechanism_ = std::make_unique<mech::TubeOnlineMechanism>(
        OnlinePricer::restore(rebuild_model(), data.pricer,
                              guard_config_for(config_, injector_)));
  } else {
    mechanism_ = mech::make_mechanism(
        config_.mechanism, rebuild_model(), config_.offline_options,
        guard_config_for(config_, injector_));
    mechanism_->restore_state(data.mech_state);
  }
  if (config_.adaptive_users) {
    TDP_REQUIRE(data.adapt_scale.size() == population_.patience_classes(),
                "checkpoint adaptive scale does not match the population");
    adapt_scale_ = data.adapt_scale;
  }

  day_ = data.day;
  period_ = data.period;
  healthy_streak_periods_ = data.healthy_streak_periods;
  window_ = data.window;
  completed_days_ = data.completed_days;
  partial_ = data.partial;
  prev_day_start_rewards_ = data.prev_day_start_rewards;
  has_prev_day_start_ = data.has_prev_day_start;
  // Mid-day checkpoints resume into an already-started day: the day-start
  // bookkeeping ran before the checkpoint, only the (never-serialized)
  // drifted lag tables need rebuilding.
  day_started_ = period_ > 0;
  if (day_started_) build_drift_tables();

  if (incident_ != nullptr) {
    // Detector accumulators, burn windows, and the recorder ring resume
    // exactly where the checkpoint froze them, so the continued alert
    // stream is bitwise the uninterrupted one.
    incident_->restore_state(data.incident);
  }

  if (restore_counters) {
    obs::Registry& registry = obs::Registry::global();
    for (const auto& [name, value] : data.counters) {
      registry.set_counter_value(name, value);
    }
  }
  if (!config_.checkpoint_path.empty()) {
    stream_ = std::make_unique<CheckpointStream>(config_.checkpoint_path);
  }
  horizon_counters().restores.add(1);
}

std::unique_ptr<MultiDayDriver> MultiDayDriver::restore(
    HorizonConfig config, const CheckpointData& data, bool restore_counters) {
  return std::unique_ptr<MultiDayDriver>(new MultiDayDriver(
      RestoreTag{}, std::move(config), data, restore_counters));
}

std::unique_ptr<MultiDayDriver> MultiDayDriver::restore(
    HorizonConfig config, const std::vector<std::uint8_t>& bytes,
    bool restore_counters) {
  return restore(std::move(config), decode(bytes), restore_counters);
}

DynamicModel MultiDayDriver::estimated_model(
    double beta, const std::vector<double>& volumes) const {
  const std::size_t n = population_.periods();
  TDP_REQUIRE(volumes.size() == n, "estimated volumes size mismatch");
  DemandProfile profile(n);
  const WaitingFunctionPtr waiting =
      std::make_shared<PowerLawWaitingFunction>(
          beta, n, paper::kStaticNormalizationReward, 1.0,
          LagNormalization::kContinuous);
  for (std::size_t p = 0; p < n; ++p) {
    profile.add_class(p, SessionClass{waiting, volumes[p]});
  }
  const DynamicModel baseline = fleet::baseline_fluid_model(population_);
  return DynamicModel(std::move(profile), baseline.capacity(),
                      baseline.backlog_cost(), baseline.warmup_days());
}

DynamicModel MultiDayDriver::rebuild_model() const {
  if (model_source_ == ModelSource::kEstimated) {
    return estimated_model(model_beta_, model_volumes_);
  }
  return fleet::baseline_fluid_model(population_);
}

void MultiDayDriver::build_drift_tables() {
  drift_tables_.clear();
  const std::size_t classes = population_.patience_classes();
  std::vector<double> scale(classes, 1.0);
  bool all_one = true;
  if (injector_.plan().drifts()) {
    for (std::uint32_t c = 0; c < classes; ++c) {
      scale[c] = injector_.beta_drift_scale(c, static_cast<std::size_t>(day_));
    }
  }
  // Adaptive users compose with injected drift: drift is the world
  // changing, adaptation is users responding to published rewards.
  for (std::size_t c = 0; c < classes; ++c) {
    scale[c] *= adapt_scale_[c];
    if (scale[c] != 1.0) all_one = false;
  }
  if (all_one) return;  // bitwise identical to an undrifted population
  drift_tables_ = population_.scaled_lag_tables(scale);
}

void MultiDayDriver::start_day() {
  day_started_ = true;
  build_drift_tables();
  const std::size_t n = population_.periods();
  partial_ = DayMetrics{};
  partial_.day = day_;
  partial_.offered_units.assign(n, 0.0);
  partial_.realized_units.assign(n, 0.0);
  partial_.rewards.assign(n, 0.0);
  const math::Vector& rewards = mechanism_->rewards();
  if (has_prev_day_start_) {
    partial_.reward_step_linf =
        linf_distance(rewards, prev_day_start_rewards_);
  }
  prev_day_start_rewards_ = rewards;
  has_prev_day_start_ = true;
}

MultiDayDriver::Observation MultiDayDriver::observe(
    std::size_t period, std::uint64_t abs_period, double calibration,
    const fleet::PeriodStats& merged) const {
  Observation obs;
  if (!injector_.enabled()) {
    obs.sample = merged.offered_work * calibration;
    return obs;
  }
  // Identical discipline to FleetDriver::observe — slices are the
  // measurement fault domains, the aggregate stream is one more on top —
  // so a single-day chaos run and day 0 of a horizon run see the same
  // faults at the same sites.
  fleet::PeriodStats survived;
  for (std::size_t s = 0; s < aggregator_.stripes(); ++s) {
    if (injector_.measurement_fault(s, abs_period) ==
        FaultInjector::MeasurementFault::kLost) {
      ++obs.lost_stripes;
      continue;
    }
    survived += aggregator_.stripe(s, period);
  }
  const double value = survived.offered_work * calibration;
  const FaultInjector::MeasurementFault fault = injector_.measurement_fault(
      FaultInjector::kAggregateEntity, abs_period);
  if (fault == FaultInjector::MeasurementFault::kLost) return obs;
  obs.sample = injector_.corrupt(fault, value);
  return obs;
}

void MultiDayDriver::step_period() {
  TDP_REQUIRE(!done(), "the horizon is complete");
  if (!day_started_) start_day();

  const std::size_t n = population_.periods();
  const std::size_t classes = population_.patience_classes();
  const double calibration = population_.unit_calibration();
  const std::uint64_t abs_period = day_ * n + period_;
  HorizonCounters& hc = horizon_counters();
  hc.periods.add(1);

  SubscriberTelemetry chan_before;
  if (incident_ != nullptr) chan_before = fanout_.total_telemetry();

  channel_.publish(mechanism_->rewards());
  fanout_.sync(static_cast<std::size_t>(abs_period));
  std::vector<const math::Vector*> schedules(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    schedules[c] = &fanout_.schedule(c);
  }
  const fleet::DeferralTable table(
      population_, schedules, period_,
      drift_tables_.empty() ? nullptr : &drift_tables_);

  parallel_for(
      shards_.size(),
      [&](std::size_t s) {
        shards_[s]->simulate_period(static_cast<std::size_t>(day_), period_,
                                   table, aggregator_);
      },
      threads_);

  const fleet::PeriodStats merged = aggregator_.merged(period_);
  partial_.sessions += merged.sessions;
  partial_.deferred_sessions += merged.deferred_sessions;
  partial_.offered_units[period_] = merged.offered_work * calibration;
  partial_.realized_units[period_] = merged.realized_work * calibration;
  partial_.reward_paid_units += merged.reward_paid * calibration;
  // The reward this period's index published when the period ran — the
  // schedule users responded to, and the estimator's p_k for this day.
  partial_.rewards[period_] = mechanism_->rewards()[period_];

  bool sig_gap = false;
  bool sig_repaired = false;
  std::size_t sig_lost = 0;
  if (config_.online_pricing) {
    const Observation obs = observe(period_, abs_period, calibration, merged);
    sig_lost = obs.lost_stripes;
    if (obs.lost_stripes > 0) {
      hc.stripes_lost.add_always(obs.lost_stripes);
    }
    if (!obs.sample.has_value()) {
      hc.gaps.add_always(1);
      sig_gap = true;
      mechanism_->observe_missed(period_);
    } else {
      const MeasurementGuard::Admitted admitted =
          guard_.admit(period_, obs.sample);
      sig_repaired = admitted.degraded;
      const std::size_t budget =
          injector_.exhaust_solver(abs_period)
              ? injector_.plan().solver_starved_budget
              : mechanism_->solver_budget();
      mechanism_->observe_period(period_, admitted.value,
                                 admitted.degraded || obs.lost_stripes > 0,
                                 budget);
    }
  }

  // Health tracking for the storm gates. Runs only when a gate is
  // configured so ungated runs keep fallback_periods/healthy_streak at
  // zero and their checkpoints stay byte-identical to format v1.
  if (health_gated() && config_.online_pricing) {
    switch (mechanism_->health()) {
      case PricerHealth::kHealthy:
        ++healthy_streak_periods_;
        break;
      case PricerHealth::kFallback:
        ++partial_.fallback_periods;
        healthy_streak_periods_ = 0;
        break;
      default:  // DEGRADED: not fallback-tainted, but not healthy either
        healthy_streak_periods_ = 0;
        break;
    }
  }

  if (incident_ != nullptr) {
    // Fed before the clock rolls so a checkpoint committed at this period
    // boundary carries this period's alerts (kill/restore bit-identity).
    const SubscriberTelemetry chan = fanout_.total_telemetry();
    obs::incident::PeriodSignals sig;
    sig.day = day_;
    sig.period = static_cast<std::uint32_t>(period_);
    sig.abs_period = abs_period;
    sig.offered_units = partial_.offered_units[period_];
    sig.realized_units = partial_.realized_units[period_];
    sig.measurement_gap = sig_gap;
    sig.measurement_repaired = sig_repaired;
    sig.lost_stripes = sig_lost;
    sig.price_groups = fanout_.groups();
    sig.failed_attempts = chan.dropped_attempts - chan_before.dropped_attempts;
    sig.degraded_groups = (chan.stale_periods - chan_before.stale_periods) +
                          (chan.fallback_periods -
                           chan_before.fallback_periods) +
                          (chan.skewed_periods - chan_before.skewed_periods);
    sig.solver_starved =
        config_.online_pricing && injector_.exhaust_solver(abs_period);
    sig.health = map_health(mechanism_->health());
    sig.storm_blackout = injector_.storm_active(
        FaultInjector::StormDomain::kBlackout, abs_period);
    sig.storm_channel = injector_.storm_active(
        FaultInjector::StormDomain::kChannel, abs_period);
    sig.storm_solver = injector_.storm_active(
        FaultInjector::StormDomain::kSolver, abs_period);
    incident_->observe_period(sig);
  }

  ++period_;
  if (period_ == n) finish_day();
  maybe_stream_commit();
}

void MultiDayDriver::maybe_stream_commit() {
  if (stream_ == nullptr) return;
  // finish_day has already rolled the clock when this is a day boundary.
  const bool day_boundary = period_ == 0;
  const bool periodic = config_.checkpoint_every_periods > 0 &&
                        period_ % config_.checkpoint_every_periods == 0;
  if (!day_boundary && !periodic) return;
  const auto start = std::chrono::steady_clock::now();
  stream_->commit(checkpoint(), day_boundary);
  if (incident_ != nullptr) {
    // Wall clock — advisory only; never enters the deterministic streams.
    incident_->note_commit_latency(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  horizon_counters().stream_commits.add(1);
}

void MultiDayDriver::finish_day() {
  const std::size_t n = population_.periods();
  partial_.peak_to_average_tip =
      fleet::peak_to_average(partial_.offered_units);
  partial_.peak_to_average_tdp =
      fleet::peak_to_average(partial_.realized_units);

  // Settle the finished day with the mechanism first: a settle that moves
  // the schedule (the rebate's share re-fit) must land before estimation
  // so tomorrow's publishes and the next day-start L-inf see it.
  {
    mech::DaySettlement settlement;
    settlement.offered_units = partial_.offered_units;
    settlement.realized_units = partial_.realized_units;
    settlement.reward_paid_units = partial_.reward_paid_units;
    const mech::SettleInfo settle = mechanism_->settle_day(settlement);
    horizon_counters().mech_settles.add(1);
    obs::journal_record(
        "mech.settle", -1, -1, mechanism_->name(),
        {{"day", static_cast<double>(day_)},
         {"budget_spent", settle.budget_spent},
         {"budget_pool", settle.budget_pool},
         {"schedule_changed", settle.schedule_changed ? 1.0 : 0.0}});
    if (incident_ != nullptr) {
      obs::incident::SettleSignals sig;
      sig.day = day_;
      sig.abs_period = day_ * n + (n - 1);
      sig.schedule_changed = settle.schedule_changed;
      sig.books_held = settle.books_held;
      sig.budget_spent = settle.budget_spent;
      sig.budget_pool = settle.budget_pool;
      incident_->observe_settle(sig);
    }
  }

  // User adaptation: pull every class's patience index toward the target
  // implied by the day's mean published reward (higher rewards -> lower
  // beta scale -> more patient). Applied at day boundaries only, so the
  // day itself stays a pure function of its starting state.
  if (config_.adaptive_users) {
    double mean_reward = 0.0;
    for (std::size_t p = 0; p < n; ++p) mean_reward += partial_.rewards[p];
    mean_reward /= static_cast<double>(n);
    const double target =
        1.0 / (1.0 + config_.adaptation_gain * mean_reward /
                         paper::kStaticNormalizationReward);
    for (double& scale : adapt_scale_) {
      scale = (1.0 - config_.adaptation_rate) * scale +
              config_.adaptation_rate * target;
    }
    horizon_counters().adaptations.add(1);
  }

  // Measured days feed the estimator's sliding window; warmup days are the
  // rings filling up and would bias the fit.
  const bool measured = day_ >= config_.warmup_days;
  bool reanchor_deferred = false;

  // Health gate: a day containing FALLBACK periods measured the safety
  // schedule's world, not the control loop's. Freezing re-estimation
  // excludes the whole day from the window — the model must provably
  // never be re-fit from fallback-window data.
  const bool tainted = config_.estimation_health_gate &&
                       partial_.fallback_periods > 0;
  if (measured && config_.estimation && tainted) {
    partial_.estimation_frozen = true;
    horizon_counters().frozen.add(1);
    obs::journal_record(
        "horizon.estimation_frozen", -1, -1, "fallback-tainted day",
        {{"day", static_cast<double>(day_)},
         {"fallback_periods",
          static_cast<double>(partial_.fallback_periods)}});
  }
  if (measured && config_.estimation && !tainted) {
    DayRecord record;
    record.rewards = partial_.rewards;
    record.tip_demand = partial_.offered_units;
    record.usage_change.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      record.usage_change[p] =
          partial_.offered_units[p] - partial_.realized_units[p];
    }
    window_.push_back(std::move(record));
    while (window_.size() > config_.estimation_window) {
      window_.erase(window_.begin());
    }

    if (window_.size() >= config_.estimation_min_days) {
      // Tied m = 1 fit: one patience index shared by every period — the
      // profiling-engine parameterization that stays identifiable from a
      // handful of day records.
      std::vector<double> tip(n, 0.0);
      for (const DayRecord& r : window_) {
        for (std::size_t p = 0; p < n; ++p) tip[p] += r.tip_demand[p];
      }
      for (std::size_t p = 0; p < n; ++p) {
        tip[p] /= static_cast<double>(window_.size());
      }
      std::vector<EstimationDataset> data;
      data.reserve(window_.size());
      for (const DayRecord& r : window_) {
        data.push_back(EstimationDataset{r.rewards, r.usage_change});
      }
      WaitingFunctionEstimator estimator(n, /*types=*/1,
                                         paper::kStaticNormalizationReward);
      WaitingFunctionEstimator::MultiStartOptions options;
      options.starts = config_.estimation_starts;
      options.seed = 1;
      options.threads = threads_;
      options.tied = true;
      const WaitingFunctionEstimate estimate =
          estimator.estimate_multistart(tip, data, options);
      partial_.estimated = true;
      partial_.beta_estimate = estimate.mix.beta(0, 0);
      partial_.estimate_residual = estimate.residual_norm2;
      horizon_counters().estimates.add(1);

      // Re-anchoring is an online-pricer concern; mechanisms without one
      // (flat, rebate, oracle) keep their own schedules.
      OnlinePricer* online = mechanism_->online_pricer();
      if (config_.reanchor && config_.online_pricing && online != nullptr &&
          std::isfinite(partial_.beta_estimate) &&
          partial_.beta_estimate > 0.0) {
        if (config_.reanchor_healthy_periods > 0 &&
            healthy_streak_periods_ < config_.reanchor_healthy_periods) {
          // Hysteresis: a pricer freshly back from an excursion re-anchors
          // only after K consecutive healthy periods — one good reading is
          // not proof the storm has passed.
          reanchor_deferred = true;
          horizon_counters().deferred.add(1);
          obs::journal_record(
              "horizon.reanchor_deferred", -1, -1, "hysteresis",
              {{"day", static_cast<double>(day_)},
               {"healthy_streak",
                static_cast<double>(healthy_streak_periods_)},
               {"required",
                static_cast<double>(config_.reanchor_healthy_periods)}});
        } else if (config_.reanchor_objective_guard) {
          // Predicted-objective guard: re-solve the candidate model and
          // adopt only when its own objective says the new schedule beats
          // the anchored one (within tolerance). A re-fit poisoned by
          // residual storm corruption predicts a worse day and rolls back.
          DynamicModel candidate = estimated_model(partial_.beta_estimate,
                                                   tip);
          const DynamicPricingSolution solved =
              optimize_dynamic_prices(candidate, config_.offline_options);
          const double candidate_cost = candidate.total_cost(solved.rewards);
          const double anchored_cost = candidate.total_cost(online->rewards());
          if (candidate_cost <=
              anchored_cost * (1.0 + config_.reanchor_guard_tolerance)) {
            model_beta_ = partial_.beta_estimate;
            model_volumes_ = tip;
            model_source_ = ModelSource::kEstimated;
            online->adopt_model(std::move(candidate),
                                config_.offline_options, solved.rewards);
            partial_.reanchored = true;
            horizon_counters().reanchors.add(1);
            obs::journal_record(
                "horizon.reanchor_adopted", -1, -1, "objective guard",
                {{"day", static_cast<double>(day_)},
                 {"candidate_cost", candidate_cost},
                 {"anchored_cost", anchored_cost}});
          } else {
            partial_.reanchor_rolled_back = true;
            horizon_counters().rollbacks.add(1);
            obs::journal_record(
                "horizon.reanchor_rolledback", -1, -1, "objective guard",
                {{"day", static_cast<double>(day_)},
                 {"candidate_cost", candidate_cost},
                 {"anchored_cost", anchored_cost}});
          }
        } else {
          model_beta_ = partial_.beta_estimate;
          model_volumes_ = tip;
          model_source_ = ModelSource::kEstimated;
          online->adopt_model(estimated_model(model_beta_, model_volumes_),
                              config_.offline_options);
          partial_.reanchored = true;
          horizon_counters().reanchors.add(1);
        }
      }
    }
  }

  if (incident_ != nullptr) {
    obs::incident::DaySignals sig;
    sig.day = day_;
    sig.abs_period = day_ * n + (n - 1);
    sig.peak_to_average_tip = partial_.peak_to_average_tip;
    sig.peak_to_average_tdp = partial_.peak_to_average_tdp;
    sig.peak_realized_units = *std::max_element(
        partial_.realized_units.begin(), partial_.realized_units.end());
    sig.fallback_periods = partial_.fallback_periods;
    sig.estimation_frozen = partial_.estimation_frozen;
    sig.reanchored = partial_.reanchored;
    sig.reanchor_deferred = reanchor_deferred;
    sig.reanchor_rolled_back = partial_.reanchor_rolled_back;
    incident_->observe_day(sig);
  }

  completed_days_.push_back(partial_);
  horizon_counters().days.add(1);
  ++day_;
  period_ = 0;
  day_started_ = false;
}

void MultiDayDriver::run_day() {
  TDP_REQUIRE(!done(), "the horizon is complete");
  const std::uint64_t current = day_;
  while (!done() && day_ == current) step_period();
}

HorizonMetrics MultiDayDriver::run() {
  const auto start = std::chrono::steady_clock::now();
  while (!done()) step_period();
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return metrics();
}

HorizonMetrics MultiDayDriver::metrics() const {
  HorizonMetrics m;
  m.users = population_.users();
  m.periods = population_.periods();
  m.slices = aggregator_.stripes();
  m.shards = shards_.size();
  m.threads = threads_;
  m.warmup_days = config_.warmup_days;
  m.horizon_days = config_.horizon_days;
  const std::size_t skip =
      std::min(config_.warmup_days, completed_days_.size());
  m.days.assign(completed_days_.begin() + static_cast<std::ptrdiff_t>(skip),
                completed_days_.end());
  m.final_health = to_string(mechanism_->health());
  m.wall_seconds = wall_seconds_;
  return m;
}

CheckpointData MultiDayDriver::checkpoint() const {
  CheckpointData d;
  d.users = population_.users();
  d.periods = static_cast<std::uint32_t>(population_.periods());
  d.population_seed = config_.population.seed;
  d.sessions_per_day = config_.population.sessions_per_day;
  d.slices = aggregator_.stripes();
  d.warmup_days = static_cast<std::uint32_t>(config_.warmup_days);
  d.horizon_days = static_cast<std::uint32_t>(config_.horizon_days);
  d.online_pricing = config_.online_pricing;
  d.estimation = config_.estimation;
  d.estimation_window = static_cast<std::uint32_t>(config_.estimation_window);
  d.estimation_min_days =
      static_cast<std::uint32_t>(config_.estimation_min_days);
  d.estimation_starts = static_cast<std::uint32_t>(config_.estimation_starts);
  d.reanchor = config_.reanchor;
  d.fault = config_.fault;
  d.staleness_ttl = config_.resilience.staleness_ttl;
  d.max_retries = config_.resilience.max_retries;
  d.max_spike_factor = config_.measurement_guard.max_spike_factor;
  d.max_carry_forward = config_.measurement_guard.max_carry_forward;
  d.carry_floor_fraction = config_.measurement_guard.carry_floor_fraction;
  d.estimation_health_gate = config_.estimation_health_gate;
  d.reanchor_healthy_periods = config_.reanchor_healthy_periods;
  d.reanchor_objective_guard = config_.reanchor_objective_guard;
  d.reanchor_guard_tolerance = config_.reanchor_guard_tolerance;
  d.healthy_streak_periods = healthy_streak_periods_;

  d.day = day_;
  d.period = static_cast<std::uint32_t>(period_);
  d.ring_head = static_cast<std::uint32_t>(shards_.front()->ring_head());

  d.ring_work.reserve(aggregator_.stripes());
  d.ring_reward.reserve(aggregator_.stripes());
  for (const auto& shard : shards_) {
    for (std::size_t s = shard->begin_slice(); s < shard->end_slice(); ++s) {
      std::vector<double> work;
      std::vector<double> reward;
      shard->export_slice_rings(s, work, reward);
      d.ring_work.push_back(std::move(work));
      d.ring_reward.push_back(std::move(reward));
    }
  }

  d.channel = channel_.export_state();
  d.fanout_schedules = fanout_.export_schedules();
  d.guard = guard_.export_state();
  if (const OnlinePricer* online = mechanism_->online_pricer()) {
    d.pricer = online->export_state();
  } else {
    // No online pricer behind this mechanism: the section still needs a
    // schedule so pre-arena readers keep a usable view.
    d.pricer.rewards = mechanism_->rewards();
    d.pricer.reward_cap = mechanism_->reward_cap();
  }
  d.model_source = model_source_;
  d.model_beta = model_beta_;
  d.model_volumes = model_volumes_;

  d.mechanism_kind = static_cast<std::uint32_t>(config_.mechanism.kind);
  d.rebate_pool = config_.mechanism.rebate_pool;
  d.rebate_share_blend = config_.mechanism.rebate_share_blend;
  d.rebate_inflow_floor = config_.mechanism.rebate_inflow_floor;
  d.oracle_refine = config_.mechanism.oracle_refine;
  d.oracle_capacity_target = config_.mechanism.oracle_capacity_target;
  if (config_.mechanism.kind != mech::MechanismKind::kTubeOnline) {
    d.mech_state = mechanism_->export_state();
  }
  d.adaptive_users = config_.adaptive_users;
  d.adaptation_rate = config_.adaptation_rate;
  d.adaptation_gain = config_.adaptation_gain;
  if (config_.adaptive_users) d.adapt_scale = adapt_scale_;

  d.window = window_;
  d.completed_days = completed_days_;
  d.partial = partial_;
  d.prev_day_start_rewards = prev_day_start_rewards_;
  d.has_prev_day_start = has_prev_day_start_;

  d.incident_enabled = config_.incident.enabled;
  if (incident_ != nullptr) {
    d.incident_config = config_.incident;
    d.incident = incident_->state();
  }

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  d.counters.reserve(snap.counters.size());
  for (const obs::Snapshot::CounterRow& row : snap.counters) {
    d.counters.emplace_back(row.name, row.value);
  }
  horizon_counters().checkpoints.add(1);
  return d;
}

std::vector<std::uint8_t> MultiDayDriver::checkpoint_bytes() const {
  return encode(checkpoint());
}

}  // namespace tdp::horizon
