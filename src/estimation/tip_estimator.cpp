#include "estimation/tip_estimator.hpp"

#include "common/error.hpp"
#include "math/matrix.hpp"

namespace tdp {

math::Vector predict_tdp_usage(const PatienceMix& mix,
                               const std::vector<double>& tip_demand,
                               const math::Vector& rewards) {
  const std::size_t n = mix.periods();
  TDP_REQUIRE(tip_demand.size() == n, "demand vector size mismatch");
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  math::Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = tip_demand[i] - mix.net_outflow(i, tip_demand, rewards);
  }
  return x;
}

math::Vector estimate_tip_baseline(
    const PatienceMix& mix, const std::vector<TipObservation>& windows) {
  const std::size_t n = mix.periods();
  TDP_REQUIRE(!windows.empty(), "need at least one observation window");
  for (const TipObservation& w : windows) {
    TDP_REQUIRE(w.rewards.size() == n && w.usage.size() == n,
                "observation size mismatch");
  }

  math::Matrix system(windows.size() * n, n, 0.0);
  math::Vector rhs(windows.size() * n, 0.0);
  std::size_t row = 0;
  for (const TipObservation& w : windows) {
    for (std::size_t i = 0; i < n; ++i, ++row) {
      double omega_out = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        omega_out += mix.omega(i, k, w.rewards[k]);
        // Inflow from period k at period i's reward.
        system(row, k) += mix.omega(k, i, w.rewards[i]);
      }
      system(row, i) += 1.0 - omega_out;
      rhs[row] = w.usage[i];
    }
  }
  return math::solve_least_squares(std::move(system), std::move(rhs));
}

}  // namespace tdp
