// Waiting-function estimation (Section IV).
//
// Given observations of aggregate demand under TIP and TDP — per-period net
// traffic changes T_i = (TIP demand) - (TDP usage) at known offered rewards
// — estimate each period's session-type proportions alpha_ji and patience
// indices beta_ji by nonlinear least squares. "Our proposed algorithm
// requires only aggregate usage data under TIP and TDP."
//
// Two fitting modes:
//  - estimate(): fit all parameters against every independent balance
//    equation (i = 1..n-1; the n-th is redundant since sum_i T_i = 0) from
//    every dataset. This is the library's primary estimator.
//  - estimate_reduced3(): the paper's illustration for n = 3 — eliminate
//    Q_12 and Q_21 and fit the single remaining equation (eq. 8). Used to
//    reproduce Table III / Fig. 2 faithfully, including the estimator's
//    characteristic alpha misidentification under short-lag ambiguity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "estimation/patience_mix.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

/// One controlled observation: rewards offered for a stretch of time and
/// the measured per-period difference T_i between TIP and TDP demand.
struct EstimationDataset {
  math::Vector rewards;        ///< p_k per period
  math::Vector usage_change;   ///< T_i per period (sums to ~0)
};

struct WaitingFunctionEstimate {
  PatienceMix mix;             ///< fitted parameters
  double residual_norm2 = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

class WaitingFunctionEstimator {
 public:
  /// @param periods     n
  /// @param types       m session types per period
  /// @param max_reward  normalization point P for the power laws
  WaitingFunctionEstimator(std::size_t periods, std::size_t types,
                           double max_reward);

  /// Generate a synthetic dataset from a ground-truth mix (used by tests,
  /// benches and market-trial planning): evaluates T_i at the rewards and
  /// adds optional Gaussian noise of the given standard deviation.
  EstimationDataset synthesize(const PatienceMix& truth,
                               const std::vector<double>& tip_demand,
                               const math::Vector& rewards,
                               double noise_stddev = 0.0,
                               std::uint64_t seed = 1) const;

  /// Full estimator: fit alpha/beta for every period against all datasets.
  /// `initial` optionally seeds the search (defaults to uniform mix,
  /// beta = 2).
  WaitingFunctionEstimate estimate(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data,
      const std::optional<PatienceMix>& initial = std::nullopt) const;

  /// Time-invariant variant: one (alpha_j, beta_j) per session type shared
  /// by every period — "the profiling engine estimates a patience index for
  /// each traffic class". Far fewer parameters, so it stays identifiable
  /// with few observation windows.
  WaitingFunctionEstimate estimate_tied(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data) const;

  /// The paper's single-equation reduction for n = 3 (eq. 8).
  WaitingFunctionEstimate estimate_reduced3(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data,
      const std::optional<PatienceMix>& initial = std::nullopt) const;

  /// Multi-start configuration for estimate_multistart.
  struct MultiStartOptions {
    /// Total starts: start 0 is the deterministic default start, starts
    /// 1..starts-1 are drawn uniformly inside the parameter box.
    std::size_t starts = 8;
    /// Seed for the random starts. Start i draws from fork_stream(i) of a
    /// generator seeded with this, so each start's initial point — and
    /// hence its whole LM trajectory — is independent of thread count.
    std::uint64_t seed = 1;
    /// Parallelism for the independent fits; 0 = default_thread_count().
    std::size_t threads = 0;
    /// Fit the tied (time-invariant) parameterization instead of the full.
    bool tied = false;
  };

  /// Multi-start Levenberg-Marquardt: run `starts` independent fits in
  /// parallel and return the lowest-residual one (ties broken by start
  /// index, so the result is deterministic for any thread count). The
  /// estimation objective is nonconvex in (alpha, beta); restarts are the
  /// standard defense against the local minima the paper's Table III
  /// alpha-aliasing hints at.
  WaitingFunctionEstimate estimate_multistart(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data,
      const MultiStartOptions& options) const;
  WaitingFunctionEstimate estimate_multistart(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data) const {
    return estimate_multistart(tip_demand, data, MultiStartOptions());
  }

  std::size_t periods() const { return periods_; }
  std::size_t types() const { return types_; }
  double max_reward() const { return max_reward_; }

 private:
  /// theta <-> PatienceMix packing: per period (or once, when tied),
  /// (m-1) free proportions (the last is 1 - sum) followed by m patience
  /// indices.
  std::size_t parameter_count(bool tied) const;
  PatienceMix unpack(const math::Vector& theta, bool tied) const;
  math::Vector pack(const PatienceMix& mix) const;
  math::Vector default_theta(bool tied) const;
  void parameter_bounds(bool tied, math::Vector& lower,
                        math::Vector& upper) const;

  void validate_fit_inputs(const std::vector<double>& tip_demand,
                           const std::vector<EstimationDataset>& data,
                           bool reduced3) const;

  /// One LM fit from an explicit start (inputs already validated). Pure in
  /// theta0, so concurrent calls over shared data are safe.
  WaitingFunctionEstimate fit_from(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data, const math::Vector& theta0,
      bool reduced3, bool tied) const;

  WaitingFunctionEstimate run_fit(
      const std::vector<double>& tip_demand,
      const std::vector<EstimationDataset>& data,
      const std::optional<PatienceMix>& initial, bool reduced3,
      bool tied) const;

  std::size_t periods_;
  std::size_t types_;
  double max_reward_;
};

}  // namespace tdp
