#include "estimation/wf_estimator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "math/levenberg_marquardt.hpp"

namespace tdp {
namespace {

constexpr double kBetaLower = 0.05;
constexpr double kBetaUpper = 8.0;

}  // namespace

WaitingFunctionEstimator::WaitingFunctionEstimator(std::size_t periods,
                                                   std::size_t types,
                                                   double max_reward)
    : periods_(periods), types_(types), max_reward_(max_reward) {
  TDP_REQUIRE(periods >= 2, "need at least two periods");
  TDP_REQUIRE(types >= 1, "need at least one type");
  TDP_REQUIRE(max_reward > 0.0, "max reward must be positive");
}

EstimationDataset WaitingFunctionEstimator::synthesize(
    const PatienceMix& truth, const std::vector<double>& tip_demand,
    const math::Vector& rewards, double noise_stddev,
    std::uint64_t seed) const {
  TDP_REQUIRE(truth.periods() == periods_, "mix period mismatch");
  TDP_REQUIRE(tip_demand.size() == periods_, "demand vector size mismatch");
  TDP_REQUIRE(rewards.size() == periods_, "reward vector size mismatch");
  TDP_REQUIRE(noise_stddev >= 0.0, "noise must be nonnegative");

  Rng rng(seed);
  EstimationDataset dataset;
  dataset.rewards = rewards;
  dataset.usage_change.assign(periods_, 0.0);
  for (std::size_t i = 0; i < periods_; ++i) {
    double t = truth.net_outflow(i, tip_demand, rewards);
    if (noise_stddev > 0.0) t += rng.normal(0.0, noise_stddev);
    dataset.usage_change[i] = t;
  }
  return dataset;
}

std::size_t WaitingFunctionEstimator::parameter_count(bool tied) const {
  // Per period (or once when tied): m-1 free proportions + m patience
  // indices.
  const std::size_t per_block = 2 * types_ - 1;
  return tied ? per_block : periods_ * per_block;
}

PatienceMix WaitingFunctionEstimator::unpack(const math::Vector& theta,
                                             bool tied) const {
  TDP_REQUIRE(theta.size() == parameter_count(tied), "theta size mismatch");
  PatienceMix mix(periods_, types_, max_reward_);
  const std::size_t stride = 2 * types_ - 1;
  for (std::size_t i = 0; i < periods_; ++i) {
    const std::size_t base = tied ? 0 : i * stride;
    double alpha_sum = 0.0;
    for (std::size_t j = 0; j + 1 < types_; ++j) {
      alpha_sum += theta[base + j];
    }
    for (std::size_t j = 0; j < types_; ++j) {
      // Clamp defensively: finite-difference probes step slightly past the
      // box bounds when forming the numeric Jacobian.
      const double alpha = (j + 1 < types_)
                               ? std::clamp(theta[base + j], 0.0, 1.0)
                               : std::max(1.0 - alpha_sum, 0.0);
      const double beta = std::max(theta[base + (types_ - 1) + j], 0.0);
      mix.set(i, j, alpha, beta);
    }
  }
  return mix;
}

math::Vector WaitingFunctionEstimator::pack(const PatienceMix& mix) const {
  TDP_REQUIRE(mix.periods() == periods_ && mix.types() == types_,
              "mix shape mismatch");
  math::Vector theta(parameter_count(false), 0.0);
  const std::size_t stride = 2 * types_ - 1;
  for (std::size_t i = 0; i < periods_; ++i) {
    for (std::size_t j = 0; j + 1 < types_; ++j) {
      theta[i * stride + j] = mix.alpha(i, j);
    }
    for (std::size_t j = 0; j < types_; ++j) {
      theta[i * stride + (types_ - 1) + j] = mix.beta(i, j);
    }
  }
  return theta;
}

math::Vector WaitingFunctionEstimator::default_theta(bool tied) const {
  math::Vector theta(parameter_count(tied), 0.0);
  const std::size_t stride = 2 * types_ - 1;
  const std::size_t blocks = tied ? 1 : periods_;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t j = 0; j + 1 < types_; ++j) {
      theta[b * stride + j] = 1.0 / static_cast<double>(types_);
    }
    for (std::size_t j = 0; j < types_; ++j) {
      // Spread initial betas so types are distinguishable to the fit.
      theta[b * stride + (types_ - 1) + j] = 1.0 + static_cast<double>(j);
    }
  }
  return theta;
}

void WaitingFunctionEstimator::parameter_bounds(bool tied,
                                                math::Vector& lower,
                                                math::Vector& upper) const {
  lower.assign(parameter_count(tied), 0.0);
  upper.assign(parameter_count(tied), 0.0);
  const std::size_t stride = 2 * types_ - 1;
  const std::size_t blocks = tied ? 1 : periods_;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t j = 0; j + 1 < types_; ++j) {
      lower[b * stride + j] = 0.0;
      upper[b * stride + j] = 1.0;
    }
    for (std::size_t j = 0; j < types_; ++j) {
      lower[b * stride + (types_ - 1) + j] = kBetaLower;
      upper[b * stride + (types_ - 1) + j] = kBetaUpper;
    }
  }
}

void WaitingFunctionEstimator::validate_fit_inputs(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data, bool reduced3) const {
  TDP_REQUIRE(tip_demand.size() == periods_, "demand vector size mismatch");
  TDP_REQUIRE(!data.empty(), "need at least one dataset");
  if (reduced3) {
    TDP_REQUIRE(periods_ == 3,
                "the reduced estimator is the paper's 3-period illustration");
  }
  for (const EstimationDataset& d : data) {
    TDP_REQUIRE(d.rewards.size() == periods_ &&
                    d.usage_change.size() == periods_,
                "dataset size mismatch");
  }
}

WaitingFunctionEstimate WaitingFunctionEstimator::fit_from(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data, const math::Vector& theta0,
    bool reduced3, bool tied) const {
  const auto residuals = [this, &tip_demand, &data, reduced3,
                          tied](const math::Vector& theta) {
    const PatienceMix mix = unpack(theta, tied);
    math::Vector r;
    r.reserve(data.size() * (reduced3 ? 1 : periods_ - 1));
    for (const EstimationDataset& d : data) {
      if (reduced3) {
        // Eq. 8 (0-based periods): T_2 = Q_23 - Q_32 - (T_1 + Q_31 - Q_13).
        const double q23 = mix.deferred(1, 2, tip_demand[1], d.rewards[2]);
        const double q32 = mix.deferred(2, 1, tip_demand[2], d.rewards[1]);
        const double q31 = mix.deferred(2, 0, tip_demand[2], d.rewards[0]);
        const double q13 = mix.deferred(0, 2, tip_demand[0], d.rewards[2]);
        const double predicted =
            q23 - q32 - (d.usage_change[0] + q31 - q13);
        r.push_back(predicted - d.usage_change[1]);
      } else {
        // All independent balance equations (the n-th is redundant).
        for (std::size_t i = 0; i + 1 < periods_; ++i) {
          r.push_back(mix.net_outflow(i, tip_demand, d.rewards) -
                      d.usage_change[i]);
        }
      }
    }
    return r;
  };

  math::LmOptions lm;
  lm.max_iterations = 400;
  math::Vector lower;
  math::Vector upper;
  parameter_bounds(tied, lower, upper);
  lm.lower_bounds = lower;
  lm.upper_bounds = upper;

  const math::LmResult fit =
      math::minimize_levenberg_marquardt(residuals, theta0, lm);

  WaitingFunctionEstimate out{unpack(fit.parameters, tied),
                              fit.residual_norm2, fit.iterations,
                              fit.converged};
  return out;
}

WaitingFunctionEstimate WaitingFunctionEstimator::run_fit(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data,
    const std::optional<PatienceMix>& initial, bool reduced3,
    bool tied) const {
  validate_fit_inputs(tip_demand, data, reduced3);
  TDP_REQUIRE(!tied || !initial.has_value(),
              "tied estimation uses the default start");
  const math::Vector theta0 =
      initial.has_value() ? pack(*initial) : default_theta(tied);
  return fit_from(tip_demand, data, theta0, reduced3, tied);
}

WaitingFunctionEstimate WaitingFunctionEstimator::estimate_multistart(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data,
    const MultiStartOptions& options) const {
  validate_fit_inputs(tip_demand, data, /*reduced3=*/false);
  TDP_REQUIRE(options.starts >= 1, "need at least one start");

  math::Vector lower;
  math::Vector upper;
  parameter_bounds(options.tied, lower, upper);
  const Rng parent(options.seed);

  std::vector<WaitingFunctionEstimate> fits;
  fits.reserve(options.starts);
  for (std::size_t s = 0; s < options.starts; ++s) {
    fits.emplace_back(WaitingFunctionEstimate{
        PatienceMix(periods_, types_, max_reward_), 0.0, 0, false});
  }
  parallel_for(
      options.starts,
      [&](std::size_t s) {
        math::Vector theta0;
        if (s == 0) {
          theta0 = default_theta(options.tied);
        } else {
          // Each start owns stream s of the shared parent; the draw order
          // inside a start is fixed, so theta0 — and the whole LM
          // trajectory behind it — never depends on scheduling.
          Rng stream = parent.fork_stream(s);
          theta0.resize(lower.size());
          for (std::size_t k = 0; k < theta0.size(); ++k) {
            theta0[k] = stream.uniform(lower[k], upper[k]);
          }
        }
        fits[s] = fit_from(tip_demand, data, theta0, /*reduced3=*/false,
                           options.tied);
      },
      options.threads);

  // Lowest residual wins; ties go to the earliest start index, so the
  // selection is a pure function of the fit results.
  std::size_t best = 0;
  for (std::size_t s = 1; s < options.starts; ++s) {
    if (fits[s].residual_norm2 < fits[best].residual_norm2) best = s;
  }
  TDP_LOG_DEBUG << "multi-start LM: " << options.starts << " starts, best #"
                << best << " residual " << fits[best].residual_norm2;
  return fits[best];
}

WaitingFunctionEstimate WaitingFunctionEstimator::estimate(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data,
    const std::optional<PatienceMix>& initial) const {
  return run_fit(tip_demand, data, initial, /*reduced3=*/false,
                 /*tied=*/false);
}

WaitingFunctionEstimate WaitingFunctionEstimator::estimate_tied(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data) const {
  return run_fit(tip_demand, data, std::nullopt, /*reduced3=*/false,
                 /*tied=*/true);
}

WaitingFunctionEstimate WaitingFunctionEstimator::estimate_reduced3(
    const std::vector<double>& tip_demand,
    const std::vector<EstimationDataset>& data,
    const std::optional<PatienceMix>& initial) const {
  return run_fit(tip_demand, data, initial, /*reduced3=*/true,
                 /*tied=*/false);
}

}  // namespace tdp
