// Parametrized per-period traffic mixes for waiting-function estimation
// (Section IV).
//
// In each period i there are m session types; type j takes proportion
// alpha_ji of the period's traffic and defers according to the power law
// with patience index beta_ji:
//
//   Q_ik = X_i * sum_j alpha_ji * C(beta_ji) * p_k / (lag(i,k)+1)^beta_ji,
//
// the amount of traffic deferred from period i to period k at reward p_k
// (eq. 6). C(beta) is the standard normalization at the maximum reward P.
#pragma once

#include <cstddef>
#include <vector>

#include "math/vector_ops.hpp"

namespace tdp {

class PatienceMix {
 public:
  /// @param periods     n
  /// @param types       m session types per period
  /// @param max_reward  P used in the normalization constant C(beta)
  PatienceMix(std::size_t periods, std::size_t types, double max_reward);

  std::size_t periods() const { return periods_; }
  std::size_t types() const { return types_; }
  double max_reward() const { return max_reward_; }

  /// Set type j's parameters in period i. Proportions need not be
  /// normalized here; callers usually keep sum_j alpha_ji == 1.
  void set(std::size_t period, std::size_t type, double alpha, double beta);

  double alpha(std::size_t period, std::size_t type) const;
  double beta(std::size_t period, std::size_t type) const;

  /// Aggregate normalized waiting value of period i's mix for deferring to
  /// period k (cyclic lag) at reward p: sum_j alpha_ji C(beta_ji)
  /// p / (lag+1)^beta_ji.
  double omega(std::size_t from, std::size_t to, double reward) const;

  /// Q_ik (eq. 6): traffic deferred from `from` to `to`, given the TIP
  /// demand of the source period.
  double deferred(std::size_t from, std::size_t to, double tip_demand,
                  double reward) const;

  /// T_i (eq. 7): net traffic leaving period i under a reward vector,
  /// given all periods' TIP demands. sum_i net_outflow(...) == 0.
  double net_outflow(std::size_t period,
                     const std::vector<double>& tip_demand,
                     const math::Vector& rewards) const;

 private:
  std::size_t periods_;
  std::size_t types_;
  double max_reward_;
  std::vector<double> alpha_;  // period-major [period * types + type]
  std::vector<double> beta_;
  /// Cached normalization constants C(beta) = 1/(P * lag_sum(beta)),
  /// refreshed by set(); omega() is on the estimator's hot path.
  std::vector<double> normalization_;
};

}  // namespace tdp
