// Baseline (TIP) demand re-estimation (Section IV, eq. 9).
//
// Once waiting functions are known, the ISP can recover the demand-under-TIP
// baseline X_i from TDP-era measurements alone: with known deferral weights
// omega_ik (the mix's waiting value from i to k at the offered rewards), the
// observed TDP usage satisfies the linear balance
//
//   x_i = X_i (1 - sum_k omega_ik) + sum_k X_k omega_ki.
//
// Each observation window (reward vector + measured usage) contributes n
// equations; multiple windows are stacked and solved in least squares —
// "different sets of rewards may give different X_i; the ISP can take an
// average", which least squares does optimally.
#pragma once

#include <vector>

#include "estimation/patience_mix.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

/// One TDP observation window.
struct TipObservation {
  math::Vector rewards;  ///< rewards offered during the window
  math::Vector usage;    ///< measured TDP usage x_i per period
};

/// Recover the TIP baseline demand X from TDP observations, given the
/// (estimated) waiting-function mix. Throws NumericalError if the stacked
/// system is rank-deficient (e.g. all rewards zero makes X unidentifiable
/// beyond x itself).
math::Vector estimate_tip_baseline(const PatienceMix& mix,
                                   const std::vector<TipObservation>& windows);

/// Forward model used by estimate_tip_baseline and tests: the TDP usage
/// that baseline `tip_demand` produces under `rewards`.
math::Vector predict_tdp_usage(const PatienceMix& mix,
                               const std::vector<double>& tip_demand,
                               const math::Vector& rewards);

}  // namespace tdp
