#include "estimation/patience_mix.hpp"

#include <cmath>

#include "common/cyclic.hpp"
#include "common/error.hpp"
#include "core/waiting_function.hpp"

namespace tdp {

PatienceMix::PatienceMix(std::size_t periods, std::size_t types,
                         double max_reward)
    : periods_(periods),
      types_(types),
      max_reward_(max_reward),
      alpha_(periods * types, 0.0),
      beta_(periods * types, 1.0),
      normalization_(periods * types, 0.0) {
  TDP_REQUIRE(periods >= 2, "need at least two periods");
  TDP_REQUIRE(types >= 1, "need at least one session type");
  TDP_REQUIRE(max_reward > 0.0, "max reward must be positive");
  for (std::size_t k = 0; k < normalization_.size(); ++k) {
    normalization_[k] =
        1.0 / (max_reward_ *
               PowerLawWaitingFunction::lag_sum(beta_[k], periods_));
  }
}

void PatienceMix::set(std::size_t period, std::size_t type, double alpha,
                      double beta) {
  TDP_REQUIRE(period < periods_ && type < types_, "index out of range");
  TDP_REQUIRE(alpha >= 0.0, "proportion must be nonnegative");
  TDP_REQUIRE(beta >= 0.0, "patience index must be nonnegative");
  alpha_[period * types_ + type] = alpha;
  beta_[period * types_ + type] = beta;
  normalization_[period * types_ + type] =
      1.0 / (max_reward_ *
             PowerLawWaitingFunction::lag_sum(beta, periods_));
}

double PatienceMix::alpha(std::size_t period, std::size_t type) const {
  TDP_REQUIRE(period < periods_ && type < types_, "index out of range");
  return alpha_[period * types_ + type];
}

double PatienceMix::beta(std::size_t period, std::size_t type) const {
  TDP_REQUIRE(period < periods_ && type < types_, "index out of range");
  return beta_[period * types_ + type];
}

double PatienceMix::omega(std::size_t from, std::size_t to,
                          double reward) const {
  TDP_REQUIRE(from < periods_ && to < periods_ && from != to,
              "invalid period pair");
  if (reward <= 0.0) return 0.0;
  const double lag = static_cast<double>(cyclic_lag(from, to, periods_));
  double total = 0.0;
  for (std::size_t j = 0; j < types_; ++j) {
    const std::size_t k = from * types_ + j;
    total += alpha_[k] * normalization_[k] * reward *
             std::pow(lag + 1.0, -beta_[k]);
  }
  return total;
}

double PatienceMix::deferred(std::size_t from, std::size_t to,
                             double tip_demand, double reward) const {
  TDP_REQUIRE(tip_demand >= 0.0, "demand must be nonnegative");
  return tip_demand * omega(from, to, reward);
}

double PatienceMix::net_outflow(std::size_t period,
                                const std::vector<double>& tip_demand,
                                const math::Vector& rewards) const {
  TDP_REQUIRE(tip_demand.size() == periods_, "demand vector size mismatch");
  TDP_REQUIRE(rewards.size() == periods_, "reward vector size mismatch");
  double out = 0.0;
  double in = 0.0;
  for (std::size_t k = 0; k < periods_; ++k) {
    if (k == period) continue;
    out += deferred(period, k, tip_demand[period], rewards[k]);
    in += deferred(k, period, tip_demand[k], rewards[period]);
  }
  return out - in;
}

}  // namespace tdp
