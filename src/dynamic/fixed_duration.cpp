#include "dynamic/fixed_duration.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tdp {

FixedDurationModel::FixedDurationModel(DemandProfile arrivals,
                                       double departure_rate,
                                       double capacity,
                                       math::PiecewiseLinearCost quality_cost,
                                       std::size_t warmup_days)
    : arrivals_(std::move(arrivals)),
      departure_rate_(departure_rate),
      capacity_(arrivals_.periods(), capacity),
      cost_(std::move(quality_cost)),
      kernel_(arrivals_, LagConvention::kUniformArrival),
      warmup_days_(warmup_days) {
  TDP_REQUIRE(departure_rate_ > 0.0, "departure rate must be positive");
  TDP_REQUIRE(capacity >= 0.0, "capacity must be nonnegative");
  TDP_REQUIRE(warmup_days_ >= 1, "need at least one warmup day");
  // dN/dt = nu - d N over a unit period:
  //   end  = e^{-d} y0 + (1 - e^{-d})/d * a
  //   mean = (1-e^{-d})/d * y0 + (1/d)(1 - (1-e^{-d})/d) * a
  const double d = departure_rate_;
  const double decay = std::exp(-d);
  coef_e_ = decay;
  coef_g_ = (1.0 - decay) / d;
  coef_m_ = (1.0 - decay) / d;
  coef_h_ = (1.0 - coef_m_) / d;
}

FixedDurationModel::Step FixedDurationModel::advance(double y0,
                                                     double a) const {
  return Step{coef_e_ * y0 + coef_g_ * a, coef_m_ * y0 + coef_h_ * a};
}

FixedDurationModel::Evaluation FixedDurationModel::evaluate(
    const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");

  Evaluation ev;
  ev.arrivals.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    ev.arrivals[i] = arrivals_.tip_demand(i) - kernel_.outflow(i, rewards) +
                     kernel_.inflow(i, rewards[i]);
  }
  ev.mean_demand.assign(n, 0.0);
  ev.end_demand.assign(n, 0.0);

  double y = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      const Step step = advance(y, ev.arrivals[i]);
      y = step.end;
      if (last) {
        ev.end_demand[i] = step.end;
        ev.mean_demand[i] = step.mean;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    ev.reward_cost += rewards[i] * kernel_.inflow(i, rewards[i]);
    ev.quality_cost += cost_.value(ev.mean_demand[i] - capacity_[i]);
  }
  ev.total_cost = ev.reward_cost + ev.quality_cost;
  return ev;
}

double FixedDurationModel::total_cost(const math::Vector& rewards) const {
  return evaluate(rewards).total_cost;
}

double FixedDurationModel::tip_cost() const {
  return total_cost(math::Vector(periods(), 0.0));
}

double FixedDurationModel::smoothed_cost(const math::Vector& rewards,
                                         double mu) const {
  const std::size_t n = periods();
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");
  const Evaluation ev = evaluate(rewards);  // dynamics are exact (affine)
  double cost = ev.reward_cost;
  for (std::size_t i = 0; i < n; ++i) {
    cost += cost_.smoothed_value(ev.mean_demand[i] - capacity_[i], mu);
  }
  return cost;
}

void FixedDurationModel::smoothed_gradient(const math::Vector& rewards,
                                           double mu,
                                           math::Vector& grad) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(grad.size() == n, "gradient vector size mismatch");

  // Arrival Jacobian.
  std::vector<math::Vector> darr(n, math::Vector(n, 0.0));
  math::Vector arr(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    arr[i] = arrivals_.tip_demand(i) - kernel_.outflow(i, rewards) +
             kernel_.inflow(i, rewards[i]);
    for (std::size_t m = 0; m < n; ++m) {
      darr[i][m] = (m == i)
                       ? kernel_.inflow_derivative(i, rewards[i])
                       : -kernel_.pair_volume_derivative(i, m, rewards[m]);
    }
  }

  std::fill(grad.begin(), grad.end(), 0.0);
  double y = 0.0;
  math::Vector dy(n, 0.0);
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      const Step step = advance(y, arr[i]);
      if (last) {
        const double fprime = cost_.smoothed_derivative(
            step.mean - capacity_[i], mu);
        for (std::size_t m = 0; m < n; ++m) {
          grad[m] += fprime * (coef_m_ * dy[m] + coef_h_ * darr[i][m]);
        }
      }
      for (std::size_t m = 0; m < n; ++m) {
        dy[m] = coef_e_ * dy[m] + coef_g_ * darr[i][m];
      }
      y = step.end;
    }
  }

  for (std::size_t m = 0; m < n; ++m) {
    grad[m] += kernel_.inflow(m, rewards[m]) +
               rewards[m] * kernel_.inflow_derivative(m, rewards[m]);
  }
}

double FixedDurationModel::reward_cap() const {
  const double validity = kernel_.max_safe_reward();
  const double run_cap =
      static_cast<double>(periods()) * cost_.max_slope();
  return std::min(validity, run_cap);
}

FixedDurationSolution optimize_fixed_duration_prices(
    const FixedDurationModel& model) {
  const std::size_t n = model.periods();
  const math::BoxBounds box = math::uniform_box(n, 0.0, model.reward_cap());
  math::Vector p(n, 0.0);
  FixedDurationSolution solution;
  bool all_converged = true;

  for (double mu = 1.0;; mu *= 0.1) {
    mu = std::max(mu, 1e-5);
    math::SmoothObjective objective;
    objective.value = [&model, mu](const math::Vector& rewards) {
      return model.smoothed_cost(rewards, mu);
    };
    objective.gradient = [&model, mu](const math::Vector& rewards,
                                      math::Vector& grad) {
      model.smoothed_gradient(rewards, mu, grad);
    };
    math::FistaOptions options;
    options.max_iterations = 6000;
    options.step_tolerance = 1e-10;
    const math::FistaResult stage =
        math::minimize_box(objective, box, p, options);
    p = stage.x;
    solution.iterations += stage.iterations;
    all_converged = all_converged && stage.converged;
    if (mu <= 1e-5) break;
  }

  solution.rewards = p;
  solution.evaluation = model.evaluate(p);
  solution.tip_cost = model.tip_cost();
  solution.converged = all_converged;
  return solution;
}

}  // namespace tdp
