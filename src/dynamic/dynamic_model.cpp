#include "dynamic/dynamic_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tdp {
namespace {

/// Smoothed hinge and its derivative (same blend as PiecewiseLinearCost).
double smooth_hinge(double y, double mu) {
  if (y <= 0.0) return 0.0;
  if (y >= mu) return y - 0.5 * mu;
  return y * y / (2.0 * mu);
}

double smooth_hinge_derivative(double y, double mu) {
  if (y <= 0.0) return 0.0;
  if (y >= mu) return 1.0;
  return y / mu;
}

}  // namespace

DynamicModel::DynamicModel(DemandProfile arrivals,
                           std::vector<double> capacity,
                           math::PiecewiseLinearCost backlog_cost,
                           std::size_t warmup_days)
    : arrivals_(std::move(arrivals)),
      capacity_(std::move(capacity)),
      cost_(std::move(backlog_cost)),
      kernel_(arrivals_, LagConvention::kUniformArrival),
      warmup_days_(warmup_days) {
  TDP_REQUIRE(capacity_.size() == arrivals_.periods(),
              "capacity vector must cover every period");
  TDP_REQUIRE(warmup_days_ >= 1, "need at least one warmup day");
  double total_capacity = 0.0;
  for (double a : capacity_) {
    TDP_REQUIRE(a >= 0.0, "capacity must be nonnegative");
    total_capacity += a;
  }
  TDP_REQUIRE(arrivals_.total_demand() < total_capacity,
              "daily demand must not exceed daily capacity or the backlog "
              "diverges and no steady state exists");
  tip_ = arrivals_.tip_demand_vector();
}

DynamicModel::DynamicModel(DemandProfile arrivals, double capacity,
                           math::PiecewiseLinearCost backlog_cost,
                           std::size_t warmup_days)
    : arrivals_(std::move(arrivals)),
      capacity_(arrivals_.periods(), capacity),
      cost_(std::move(backlog_cost)),
      kernel_(arrivals_, LagConvention::kUniformArrival),
      warmup_days_(warmup_days) {
  TDP_REQUIRE(capacity >= 0.0, "capacity must be nonnegative");
  TDP_REQUIRE(warmup_days_ >= 1, "need at least one warmup day");
  TDP_REQUIRE(arrivals_.total_demand() <
                  capacity * static_cast<double>(periods()),
              "daily demand must not exceed daily capacity or the backlog "
              "diverges and no steady state exists");
  tip_ = arrivals_.tip_demand_vector();
}

void DynamicModel::arrivals_after_deferral(const math::Vector& rewards,
                                           math::Vector& out) const {
  const std::size_t n = periods();
  out.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = arrivals_.tip_demand(i) - kernel_.outflow(i, rewards) +
             kernel_.inflow(i, rewards[i]);
  }
}

DynamicModel::Evaluation DynamicModel::evaluate(
    const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");

  Evaluation ev;
  arrivals_after_deferral(rewards, ev.arrivals);
  ev.backlog.assign(n, 0.0);
  ev.served.assign(n, 0.0);

  double backlog = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      const double load = backlog + ev.arrivals[i];
      const double served = std::min(load, capacity_[i]);
      backlog = load - served;
      if (last) {
        ev.backlog[i] = backlog;
        ev.served[i] = served;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    ev.reward_cost += rewards[i] * kernel_.inflow(i, rewards[i]);
    ev.backlog_cost += cost_.value(ev.backlog[i]);
  }
  ev.total_cost = ev.reward_cost + ev.backlog_cost;
  return ev;
}

double DynamicModel::total_cost(const math::Vector& rewards) const {
  return evaluate(rewards).total_cost;
}

double DynamicModel::tip_cost() const {
  return total_cost(math::Vector(periods(), 0.0));
}

double DynamicModel::smoothed_cost(const math::Vector& rewards,
                                   double mu) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");

  math::Vector arr;
  arrivals_after_deferral(rewards, arr);

  double cost = 0.0;
  double backlog = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      backlog = smooth_hinge(backlog + arr[i] - capacity_[i], mu);
      if (last) cost += cost_.smoothed_value(backlog, mu);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    cost += rewards[i] * kernel_.inflow(i, rewards[i]);
  }
  return cost;
}

void DynamicModel::smoothed_gradient(const math::Vector& rewards, double mu,
                                     math::Vector& grad) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(grad.size() == n, "gradient vector size mismatch");
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");

  math::Vector arr;
  arrivals_after_deferral(rewards, arr);

  // Jacobian of post-deferral arrivals: darr[i][m] = d a_i / d p_m.
  std::vector<math::Vector> darr(n, math::Vector(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < n; ++m) {
      if (m == i) {
        darr[i][m] = kernel_.inflow_derivative(i, rewards[i]);
      } else {
        darr[i][m] = -kernel_.pair_volume_derivative(i, m, rewards[m]);
      }
    }
  }

  // Forward accumulation of backlog sensitivities through the warmup chain.
  std::fill(grad.begin(), grad.end(), 0.0);
  math::Vector dbacklog(n, 0.0);
  double backlog = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      const double pre = backlog + arr[i] - capacity_[i];
      const double sigma = smooth_hinge_derivative(pre, mu);
      backlog = smooth_hinge(pre, mu);
      for (std::size_t m = 0; m < n; ++m) {
        dbacklog[m] = sigma * (dbacklog[m] + darr[i][m]);
      }
      if (last) {
        const double fprime = cost_.smoothed_derivative(backlog, mu);
        for (std::size_t m = 0; m < n; ++m) {
          grad[m] += fprime * dbacklog[m];
        }
      }
    }
  }

  // Reward-cost gradient: d/dp_m [ p_m * inflow(m, p_m) ].
  for (std::size_t m = 0; m < n; ++m) {
    grad[m] += kernel_.inflow(m, rewards[m]) +
               rewards[m] * kernel_.inflow_derivative(m, rewards[m]);
  }
}

// ---- Fused fast path -------------------------------------------------------
// Each assembly reproduces the reference method's floating-point operations
// in order, reading the deferral flows from the FlowState instead of
// re-walking the kernel (tests/test_kernel_plan.cpp checks bitwise
// identity).

void DynamicModel::prime_flow_state(const math::Vector& rewards,
                                    bool with_derivatives,
                                    FlowState& state) const {
  kernel_.plan()->evaluate(rewards, with_derivatives, state);
}

double DynamicModel::assemble_total_cost(FlowState& state) const {
  const std::size_t n = periods();
  math::Vector& arr = state.aux_a;
  math::Vector& end_backlog = state.aux_b;
  arr.resize(n);
  end_backlog.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    arr[i] = tip_[i] - state.outflow[i] + state.inflow[i];
  }

  double backlog = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      const double load = backlog + arr[i];
      const double served = std::min(load, capacity_[i]);
      backlog = load - served;
      if (last) end_backlog[i] = backlog;
    }
  }

  double reward_total = 0.0;
  double backlog_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    reward_total += state.rewards[i] * state.inflow[i];
    backlog_total += cost_.value(end_backlog[i]);
  }
  return reward_total + backlog_total;
}

double DynamicModel::total_cost(const math::Vector& rewards,
                                FlowState& state) const {
  prime_flow_state(rewards, /*with_derivatives=*/false, state);
  return assemble_total_cost(state);
}

double DynamicModel::total_cost_with_coordinate(std::size_t period,
                                                double reward,
                                                FlowState& state) const {
  kernel_.plan()->update_coordinate(period, reward, /*with_derivatives=*/false,
                                    state);
  return assemble_total_cost(state);
}

double DynamicModel::smoothed_cost(const math::Vector& rewards, double mu,
                                   FlowState& state) const {
  const std::size_t n = periods();
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");
  prime_flow_state(rewards, /*with_derivatives=*/false, state);

  math::Vector& arr = state.aux_a;
  arr.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    arr[i] = tip_[i] - state.outflow[i] + state.inflow[i];
  }

  double cost = 0.0;
  double backlog = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      backlog = smooth_hinge(backlog + arr[i] - capacity_[i], mu);
      if (last) cost += cost_.smoothed_value(backlog, mu);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    cost += rewards[i] * state.inflow[i];
  }
  return cost;
}

double DynamicModel::smoothed_cost_and_gradient(const math::Vector& rewards,
                                                double mu, math::Vector& grad,
                                                FlowState& state) const {
  const std::size_t n = periods();
  TDP_REQUIRE(grad.size() == n, "gradient vector size mismatch");
  TDP_REQUIRE(mu > 0.0, "smoothing parameter must be positive");
  prime_flow_state(rewards, /*with_derivatives=*/true, state);

  math::Vector& arr = state.aux_a;
  math::Vector& dbacklog = state.aux_b;
  arr.resize(n);
  dbacklog.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    arr[i] = tip_[i] - state.outflow[i] + state.inflow[i];
  }

  // One warmup sweep computes the smoothed cost and the forward-accumulated
  // backlog sensitivities together; the arrival Jacobian rows are read
  // straight off the cached derivative matrix
  // (darr[i][m] = inflow'(i) if m == i else -dV[i][m]).
  const double* dV = state.pair_derivative.data();
  std::fill(grad.begin(), grad.end(), 0.0);
  double cost = 0.0;
  double backlog = 0.0;
  for (std::size_t day = 0; day < warmup_days_; ++day) {
    const bool last = (day + 1 == warmup_days_);
    for (std::size_t i = 0; i < n; ++i) {
      const double pre = backlog + arr[i] - capacity_[i];
      const double sigma = smooth_hinge_derivative(pre, mu);
      backlog = smooth_hinge(pre, mu);
      for (std::size_t m = 0; m < n; ++m) {
        const double darr_im =
            m == i ? state.inflow_derivative[i] : -dV[i * n + m];
        dbacklog[m] = sigma * (dbacklog[m] + darr_im);
      }
      if (last) {
        cost += cost_.smoothed_value(backlog, mu);
        const double fprime = cost_.smoothed_derivative(backlog, mu);
        for (std::size_t m = 0; m < n; ++m) {
          grad[m] += fprime * dbacklog[m];
        }
      }
    }
  }
  for (std::size_t m = 0; m < n; ++m) {
    cost += rewards[m] * state.inflow[m];
    grad[m] += state.inflow[m] + rewards[m] * state.inflow_derivative[m];
  }
  return cost;
}

double DynamicModel::reward_cap() const {
  // Longest run (cyclically) of periods whose TIP load keeps the link
  // saturated, under the no-deferral backlog recursion.
  const std::size_t n = periods();
  math::Vector arr(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) arr[i] = arrivals_.tip_demand(i);

  double backlog = 0.0;
  std::size_t run = 0;
  std::size_t longest = 1;
  // Two warmed-up days to capture cyclic runs.
  for (std::size_t pass = 0; pass < 2 + warmup_days_; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      backlog = std::max(backlog + arr[i] - capacity_[i], 0.0);
      if (backlog > 0.0) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
  }
  longest = std::min(longest, n);
  const double run_cap = static_cast<double>(longest) * cost_.max_slope();
  // Never exceed the probabilistic validity bound: beyond it some period
  // would "defer out" more traffic than it has.
  return std::min(run_cap, kernel_.max_safe_reward());
}

}  // namespace tdp
