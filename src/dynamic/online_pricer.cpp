#include "dynamic/online_pricer.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/golden_section.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp {
namespace {

/// Registry mirrors of PricerHealthStats: bumped at the same sites as the
/// per-instance stats (always on — FleetMetrics reads these as deltas), so
/// registry views and health_stats() can never disagree.
struct PricerCounters {
  obs::Counter& solve_failures =
      obs::Registry::global().counter("pricer.solve_failures_total");
  obs::Counter& clamped_steps =
      obs::Registry::global().counter("pricer.clamped_steps_total");
  obs::Counter& skipped_updates =
      obs::Registry::global().counter("pricer.skipped_updates_total");
  obs::Counter& transitions =
      obs::Registry::global().counter("pricer.health_transitions_total");
  obs::Counter& recoveries =
      obs::Registry::global().counter("pricer.recoveries_total");
  obs::Counter& healthy_observations =
      obs::Registry::global().counter("pricer.healthy_observations_total");
  obs::Counter& degraded_observations =
      obs::Registry::global().counter("pricer.degraded_observations_total");
  obs::Counter& fallback_observations =
      obs::Registry::global().counter("pricer.fallback_observations_total");
  obs::Counter& missed_observations =
      obs::Registry::global().counter("pricer.missed_observations_total");
};

PricerCounters& pricer_counters() {
  static PricerCounters counters;
  return counters;
}

}  // namespace

const char* to_string(PricerHealth health) {
  switch (health) {
    case PricerHealth::kHealthy:
      return "HEALTHY";
    case PricerHealth::kDegraded:
      return "DEGRADED";
    case PricerHealth::kFallback:
      return "FALLBACK";
  }
  return "UNKNOWN";
}

PricerGuardConfig PricerGuardConfig::protective() {
  PricerGuardConfig guard;
  guard.trust_region_fraction = 0.1;
  guard.keep_reward_on_failure = true;
  return guard;
}

OnlinePricer::OnlinePricer(DynamicModel model,
                           DynamicOptimizerOptions offline_options,
                           bool speculative, PricerGuardConfig guard,
                           bool incremental)
    : model_(std::move(model)), reward_cap_(0.0), guard_(guard),
      speculative_(speculative), incremental_(incremental) {
  TDP_REQUIRE(guard_.solver_max_iterations >= 1,
              "solver budget must allow at least one iteration");
  TDP_REQUIRE(guard_.fallback_after >= 1 && guard_.recover_after >= 1,
              "health thresholds must be at least one observation");
  TDP_REQUIRE(guard_.trust_region_fraction > 0.0,
              "trust region must be positive");
  const DynamicPricingSolution offline =
      optimize_dynamic_prices(model_, offline_options);
  rewards_ = offline.rewards;
  reward_cap_ = model_.reward_cap() * offline_options.reward_cap_factor;
}

OnlinePricer::~OnlinePricer() { join_speculation(); }

OnlinePricer::OnlinePricer(RestoreTag, DynamicModel model,
                           const OnlinePricerState& state,
                           PricerGuardConfig guard, bool speculative,
                           bool incremental)
    : model_(std::move(model)), rewards_(state.rewards),
      reward_cap_(state.reward_cap), guard_(guard), health_(state.health),
      health_stats_(state.stats), health_log_(state.log),
      observation_count_(state.observation_count),
      consecutive_bad_(state.consecutive_bad),
      consecutive_good_(state.consecutive_good),
      excursion_periods_(state.excursion_periods), speculative_(speculative),
      incremental_(incremental) {
  TDP_REQUIRE(rewards_.size() == model_.periods(),
              "restored rewards do not match the model's period count");
  TDP_REQUIRE(reward_cap_ > 0.0, "restored reward cap must be positive");
}

OnlinePricerState OnlinePricer::export_state() const {
  OnlinePricerState state;
  state.rewards = rewards_;
  state.reward_cap = reward_cap_;
  state.volumes.resize(model_.periods());
  for (std::size_t p = 0; p < model_.periods(); ++p) {
    for (const SessionClass& sc : model_.arrivals().classes(p)) {
      state.volumes[p].push_back(sc.volume);
    }
  }
  state.health = health_;
  state.stats = health_stats_;
  state.log = health_log_;
  state.observation_count = observation_count_;
  state.consecutive_bad = consecutive_bad_;
  state.consecutive_good = consecutive_good_;
  state.excursion_periods = excursion_periods_;
  return state;
}

std::unique_ptr<OnlinePricer> OnlinePricer::restore(
    DynamicModel baseline, const OnlinePricerState& state,
    PricerGuardConfig guard, bool speculative, bool incremental) {
  TDP_REQUIRE(state.volumes.size() == baseline.periods(),
              "restored volumes do not match the model's period count");
  // The online updates only ever rescale per-period volumes; installing the
  // saved volumes into the baseline profile therefore reproduces the
  // updated model exactly (set_volume is bit-exact, unlike a scale factor).
  DemandProfile profile = baseline.arrivals();
  for (std::size_t p = 0; p < baseline.periods(); ++p) {
    TDP_REQUIRE(state.volumes[p].size() == profile.classes(p).size(),
                "restored volumes do not match the model's class mix");
    for (std::size_t c = 0; c < state.volumes[p].size(); ++c) {
      profile.set_volume(p, c, state.volumes[p][c]);
    }
  }
  DynamicModel updated(std::move(profile), baseline.capacity(),
                       baseline.backlog_cost(), baseline.warmup_days());
  return std::unique_ptr<OnlinePricer>(
      new OnlinePricer(RestoreTag{}, std::move(updated), state, guard,
                       speculative, incremental));
}

void OnlinePricer::adopt_model(DynamicModel model,
                               const DynamicOptimizerOptions& offline_options) {
  join_speculation();
  speculation_.reset();
  model_ = std::move(model);
  const DynamicPricingSolution offline =
      optimize_dynamic_prices(model_, offline_options);
  rewards_ = offline.rewards;
  reward_cap_ = model_.reward_cap() * offline_options.reward_cap_factor;
}

void OnlinePricer::adopt_model(DynamicModel model,
                               const DynamicOptimizerOptions& offline_options,
                               math::Vector solved_rewards) {
  TDP_REQUIRE(solved_rewards.size() == model.periods(),
              "solved schedule does not match the adopted model");
  join_speculation();
  speculation_.reset();
  model_ = std::move(model);
  rewards_ = std::move(solved_rewards);
  reward_cap_ = model_.reward_cap() * offline_options.reward_cap_factor;
}

math::GoldenSectionResult OnlinePricer::solve_period(
    const DynamicModel& model, math::Vector rewards, std::size_t period,
    double reward_cap, std::size_t max_iterations) {
  const auto objective = [&model, &rewards, period](double candidate) {
    rewards[period] = candidate;
    return model.total_cost(rewards);
  };
  return math::minimize_golden_section(objective, 0.0, reward_cap, 1e-7,
                                       max_iterations);
}

math::GoldenSectionResult OnlinePricer::solve_period_incremental(
    const DynamicModel& model, const math::Vector& rewards,
    std::size_t period, double reward_cap, std::size_t max_iterations,
    FlowState& scratch) {
  // Resync instead of reprime when the scratch already holds this kernel's
  // pair matrix: after a confirmed-forecast update the rescaled demand is
  // bitwise unchanged, the construction memo returns the same shared kernel
  // state, and only the coordinates accepted since the last solve need an
  // O(n) column refresh.
  const KernelPlan* plan = model.kernel().plan().get();
  if (scratch.plan == plan && scratch.plan_serial == plan->serial() &&
      scratch.rewards.size() == rewards.size()) {
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      if (scratch.rewards[i] != rewards[i]) {
        plan->update_coordinate(i, rewards[i], /*with_derivatives=*/false,
                                scratch);
      }
    }
  } else {
    model.prime_flow_state(rewards, /*with_derivatives=*/false, scratch);
  }
  const auto objective = [&model, &scratch, period](double candidate) {
    return model.total_cost_with_coordinate(period, candidate, scratch);
  };
  return math::minimize_golden_section(objective, 0.0, reward_cap, 1e-7,
                                       max_iterations);
}

math::GoldenSectionResult OnlinePricer::run_solve(
    const DynamicModel& model, const math::Vector& rewards,
    std::size_t period, std::size_t max_iterations) {
  if (incremental_) {
    return solve_period_incremental(model, rewards, period, reward_cap_,
                                    max_iterations, solve_scratch_);
  }
  return solve_period(model, rewards, period, reward_cap_, max_iterations);
}

void OnlinePricer::join_speculation() {
  if (speculation_thread_.joinable()) speculation_thread_.join();
}

void OnlinePricer::launch_speculation(std::size_t next_period) {
  // Snapshot the model and rewards so the worker never touches live state;
  // the assumed measurement is the current forecast, under which the model
  // update is a scale-by-1.0 no-op and this pre-solve is exactly the step
  // the synchronous path would take.
  speculation_ = std::make_unique<Speculation>(
      next_period, model_.arrivals().tip_demand(next_period), model_,
      rewards_);
  Speculation* task = speculation_.get();
  const double cap = reward_cap_;
  const std::size_t budget = guard_.solver_max_iterations;
  const bool incremental = incremental_;
  speculation_thread_ = std::thread([task, cap, budget, incremental] {
    if (incremental) {
      // Worker-private scratch: the member scratch belongs to the
      // synchronous path's thread.
      FlowState scratch;
      task->best = solve_period_incremental(task->model, task->rewards,
                                            task->period, cap, budget,
                                            scratch);
    } else {
      task->best =
          solve_period(task->model, task->rewards, task->period, cap, budget);
    }
  });
}

void OnlinePricer::update_health(bool bad) {
  ++observation_count_;
  if (bad) {
    ++consecutive_bad_;
    consecutive_good_ = 0;
  } else {
    ++consecutive_good_;
    consecutive_bad_ = 0;
  }

  const PricerHealth prev = health_;
  PricerHealth next = prev;
  if (bad) {
    if (consecutive_bad_ >= guard_.fallback_after) {
      next = PricerHealth::kFallback;
    } else if (prev == PricerHealth::kHealthy) {
      next = PricerHealth::kDegraded;
    }
  } else if (consecutive_good_ >= guard_.recover_after) {
    // Climb one rung per recover_after-long clean streak.
    if (prev == PricerHealth::kFallback) {
      next = PricerHealth::kDegraded;
      consecutive_good_ = 0;
    } else if (prev == PricerHealth::kDegraded) {
      next = PricerHealth::kHealthy;
      consecutive_good_ = 0;
    }
  }

  if (prev != PricerHealth::kHealthy) ++excursion_periods_;
  if (next != prev) {
    ++health_stats_.transitions;
    pricer_counters().transitions.add_always(1);
    if (health_log_.size() < kMaxTransitionLog) {
      health_log_.push_back({observation_count_ - 1, prev, next});
    }
    obs::journal_record(
        "pricer.health", -1, -1,
        std::string(to_string(prev)) + "->" + to_string(next),
        {{"observation", static_cast<double>(observation_count_ - 1)}});
    TDP_LOG_INFO << "online pricer health: " << to_string(prev) << " -> "
                 << to_string(next) << " after observation "
                 << observation_count_ - 1;
    if (prev == PricerHealth::kHealthy) {
      excursion_periods_ = 1;  // this observation opened the excursion
    } else if (next == PricerHealth::kHealthy) {
      ++health_stats_.recoveries;
      pricer_counters().recoveries.add_always(1);
      health_stats_.max_recovery_periods = std::max(
          health_stats_.max_recovery_periods, excursion_periods_);
      excursion_periods_ = 0;
    }
  }
  health_ = next;

  switch (health_) {
    case PricerHealth::kHealthy:
      ++health_stats_.healthy_observations;
      pricer_counters().healthy_observations.add_always(1);
      break;
    case PricerHealth::kDegraded:
      ++health_stats_.degraded_observations;
      pricer_counters().degraded_observations.add_always(1);
      break;
    case PricerHealth::kFallback:
      ++health_stats_.fallback_observations;
      pricer_counters().fallback_observations.add_always(1);
      break;
  }
}

void OnlinePricer::observe_missed(std::size_t period) {
  TDP_REQUIRE(period < model_.periods(), "period out of range");
  ++health_stats_.missed_observations;
  pricer_counters().missed_observations.add_always(1);
  TDP_LOG_WARN << "online pricer: no measurement for period " << period
               << "; schedule frozen";
  update_health(/*bad=*/true);
}

OnlinePricer::StepResult OnlinePricer::observe_period(
    std::size_t period, double measured_arrivals) {
  return observe_period_ex(period, measured_arrivals, /*degraded_input=*/
                           false, guard_.solver_max_iterations);
}

OnlinePricer::StepResult OnlinePricer::observe_period_ex(
    std::size_t period, double measured_arrivals, bool degraded_input,
    std::size_t iteration_budget) {
  TDP_OBS_SPAN("pricer.observe");
  TDP_REQUIRE(period < model_.periods(), "period out of range");
  TDP_REQUIRE(measured_arrivals >= 0.0, "arrivals must be nonnegative");
  TDP_REQUIRE(iteration_budget >= 1, "need at least one solver iteration");
  join_speculation();

  StepResult result;
  result.period = period;
  result.old_reward = rewards_[period];

  // In FALLBACK a degraded input carries no trustworthy information: skip
  // the model update and the solve entirely and keep publishing the
  // last-known-good schedule. A clean measurement is the recovery probe
  // and takes the normal path below.
  if (health_ == PricerHealth::kFallback && degraded_input) {
    if (speculation_) ++speculation_misses_;
    speculation_.reset();
    ++health_stats_.skipped_updates;
    pricer_counters().skipped_updates.add_always(1);
    result.new_reward = result.old_reward;
    result.expected_cost = model_.total_cost(rewards_, cost_scratch_);
    result.skipped = true;
    TDP_LOG_DEBUG << "online update period " << period
                  << " skipped (FALLBACK, degraded input)";
    update_health(/*bad=*/true);
    if (speculative_) launch_speculation((period + 1) % model_.periods());
    return result;
  }

  // A confirmed forecast leaves the model bitwise unchanged (the rescale
  // factor is exactly 1), so a pre-solve made under that assumption is the
  // synchronous answer and both the demand update and the golden-section
  // search can be skipped.
  const bool hit = speculation_ && speculation_->period == period &&
                   measured_arrivals == speculation_->assumed_arrivals &&
                   model_.arrivals().tip_demand(period) == measured_arrivals;

  math::GoldenSectionResult best;
  if (hit) {
    ++speculation_hits_;
    result.speculative_hit = true;
    best = speculation_->best;
    TDP_LOG_DEBUG << "online update period " << period
                  << " (speculative hit): reward " << result.old_reward
                  << " -> " << best.x;
  } else {
    if (speculation_) ++speculation_misses_;
    // Rescale the period's demand estimate to the measurement. A surge
    // measurement must not push total daily demand to (or past) total daily
    // capacity — the backlog would have no steady state — so the update is
    // clamped to keep a 2% stability margin; the excess is treated as
    // transient burst rather than recurring demand.
    const double previous = model_.arrivals().tip_demand(period);
    if (previous > 0.0) {
      double total_capacity = 0.0;
      for (double a : model_.capacity()) total_capacity += a;
      const double other_demand =
          model_.arrivals().total_demand() - previous;
      const double max_period_demand =
          std::max(0.98 * total_capacity - other_demand, 0.0);
      const double target = std::min(measured_arrivals, max_period_demand);
      if (target < measured_arrivals) {
        TDP_LOG_WARN << "online update clamps period " << period
                     << " demand from " << measured_arrivals << " to "
                     << target << " to preserve a stable backlog";
      }
      DemandProfile updated = model_.arrivals();
      updated.scale_period(period, target / previous);
      model_ = DynamicModel(std::move(updated), model_.capacity(),
                            model_.backlog_cost(), model_.warmup_days());
    }

    // 1-D re-optimization of this period's reward, all others fixed.
    best = run_solve(model_, rewards_, period, iteration_budget);
    TDP_LOG_DEBUG << "online update period " << period << ": reward "
                  << result.old_reward << " -> " << best.x;
  }
  speculation_.reset();

  // Guarded acceptance: a failed solve (budget starved or non-finite) can
  // keep the previous reward; an accepted step can be trust-region bound.
  const bool failed = !best.converged || !std::isfinite(best.x) ||
                      !std::isfinite(best.value);
  if (failed) {
    ++health_stats_.solve_failures;
    pricer_counters().solve_failures.add_always(1);
  }
  if (failed && guard_.keep_reward_on_failure) {
    result.solve_failed = true;
    result.new_reward = result.old_reward;
    result.expected_cost = model_.total_cost(rewards_, cost_scratch_);
    TDP_LOG_WARN << "online update period " << period
                 << ": solve failed, keeping reward " << result.old_reward;
  } else {
    result.solve_failed = failed;
    double accepted = best.x;
    double cost = best.value;
    const double max_step = guard_.trust_region_fraction * reward_cap_;
    if (std::isfinite(max_step) &&
        std::fabs(accepted - result.old_reward) > max_step) {
      accepted = std::clamp(accepted, result.old_reward - max_step,
                            result.old_reward + max_step);
      accepted = std::clamp(accepted, 0.0, reward_cap_);
      ++health_stats_.clamped_steps;
      result.clamped = true;
      math::Vector probe = rewards_;
      probe[period] = accepted;
      // Plan-based evaluation: bitwise identical to the reference
      // model_.total_cost(probe) (same pair volumes, same reduction and
      // assembly order) at a fraction of the virtual-dispatch cost.
      cost = model_.total_cost(probe, cost_scratch_);
      TDP_LOG_WARN << "online update period " << period
                   << ": trust region clamps reward step to " << accepted;
    }
    if (result.clamped) pricer_counters().clamped_steps.add_always(1);
    rewards_[period] = accepted;
    result.new_reward = accepted;
    result.expected_cost = cost;
  }

  update_health(degraded_input || result.solve_failed);

  if (obs::metrics_enabled()) {
    obs::journal_record(
        "pricer.solve", static_cast<std::int64_t>(period), -1,
        result.solve_failed ? "period re-solve failed" : "period re-solve",
        {{"iterations", static_cast<double>(best.iterations)},
         {"converged", best.converged ? 1.0 : 0.0},
         {"cost", result.expected_cost},
         {"step", result.new_reward - result.old_reward}});
  }
  if (speculative_) {
    launch_speculation((period + 1) % model_.periods());
  }
  return result;
}

}  // namespace tdp
