#include "dynamic/online_pricer.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/golden_section.hpp"

namespace tdp {

OnlinePricer::OnlinePricer(DynamicModel model,
                           DynamicOptimizerOptions offline_options,
                           bool speculative)
    : model_(std::move(model)), reward_cap_(0.0), speculative_(speculative) {
  const DynamicPricingSolution offline =
      optimize_dynamic_prices(model_, offline_options);
  rewards_ = offline.rewards;
  reward_cap_ = model_.reward_cap() * offline_options.reward_cap_factor;
}

OnlinePricer::~OnlinePricer() { join_speculation(); }

math::GoldenSectionResult OnlinePricer::solve_period(
    const DynamicModel& model, math::Vector rewards, std::size_t period,
    double reward_cap) {
  const auto objective = [&model, &rewards, period](double candidate) {
    rewards[period] = candidate;
    return model.total_cost(rewards);
  };
  return math::minimize_golden_section(objective, 0.0, reward_cap, 1e-7);
}

void OnlinePricer::join_speculation() {
  if (speculation_thread_.joinable()) speculation_thread_.join();
}

void OnlinePricer::launch_speculation(std::size_t next_period) {
  // Snapshot the model and rewards so the worker never touches live state;
  // the assumed measurement is the current forecast, under which the model
  // update is a scale-by-1.0 no-op and this pre-solve is exactly the step
  // the synchronous path would take.
  speculation_ = std::make_unique<Speculation>(
      next_period, model_.arrivals().tip_demand(next_period), model_,
      rewards_);
  Speculation* task = speculation_.get();
  const double cap = reward_cap_;
  speculation_thread_ = std::thread([task, cap] {
    task->best =
        solve_period(task->model, task->rewards, task->period, cap);
  });
}

OnlinePricer::StepResult OnlinePricer::observe_period(
    std::size_t period, double measured_arrivals) {
  TDP_REQUIRE(period < model_.periods(), "period out of range");
  TDP_REQUIRE(measured_arrivals >= 0.0, "arrivals must be nonnegative");
  join_speculation();

  // A confirmed forecast leaves the model bitwise unchanged (the rescale
  // factor is exactly 1), so a pre-solve made under that assumption is the
  // synchronous answer and both the demand update and the golden-section
  // search can be skipped.
  const bool hit = speculation_ && speculation_->period == period &&
                   measured_arrivals == speculation_->assumed_arrivals &&
                   model_.arrivals().tip_demand(period) == measured_arrivals;

  StepResult result;
  result.period = period;
  result.old_reward = rewards_[period];

  if (hit) {
    ++speculation_hits_;
    result.speculative_hit = true;
    rewards_[period] = speculation_->best.x;
    result.new_reward = speculation_->best.x;
    result.expected_cost = speculation_->best.value;
    TDP_LOG_DEBUG << "online update period " << period
                  << " (speculative hit): reward " << result.old_reward
                  << " -> " << result.new_reward;
  } else {
    if (speculation_) ++speculation_misses_;
    // Rescale the period's demand estimate to the measurement. A surge
    // measurement must not push total daily demand to (or past) total daily
    // capacity — the backlog would have no steady state — so the update is
    // clamped to keep a 2% stability margin; the excess is treated as
    // transient burst rather than recurring demand.
    const double previous = model_.arrivals().tip_demand(period);
    if (previous > 0.0) {
      double total_capacity = 0.0;
      for (double a : model_.capacity()) total_capacity += a;
      const double other_demand =
          model_.arrivals().total_demand() - previous;
      const double max_period_demand =
          std::max(0.98 * total_capacity - other_demand, 0.0);
      const double target = std::min(measured_arrivals, max_period_demand);
      if (target < measured_arrivals) {
        TDP_LOG_WARN << "online update clamps period " << period
                     << " demand from " << measured_arrivals << " to "
                     << target << " to preserve a stable backlog";
      }
      DemandProfile updated = model_.arrivals();
      updated.scale_period(period, target / previous);
      model_ = DynamicModel(std::move(updated), model_.capacity(),
                            model_.backlog_cost(), model_.warmup_days());
    }

    // 1-D re-optimization of this period's reward, all others fixed.
    const math::GoldenSectionResult best =
        solve_period(model_, rewards_, period, reward_cap_);
    rewards_[period] = best.x;
    result.new_reward = best.x;
    result.expected_cost = best.value;
    TDP_LOG_DEBUG << "online update period " << period << ": reward "
                  << result.old_reward << " -> " << result.new_reward;
  }
  speculation_.reset();

  if (speculative_) {
    launch_speculation((period + 1) % model_.periods());
  }
  return result;
}

}  // namespace tdp
