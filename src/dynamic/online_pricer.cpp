#include "dynamic/online_pricer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/golden_section.hpp"

namespace tdp {

OnlinePricer::OnlinePricer(DynamicModel model,
                           DynamicOptimizerOptions offline_options)
    : model_(std::move(model)), reward_cap_(0.0) {
  const DynamicPricingSolution offline =
      optimize_dynamic_prices(model_, offline_options);
  rewards_ = offline.rewards;
  reward_cap_ = model_.reward_cap() * offline_options.reward_cap_factor;
}

OnlinePricer::StepResult OnlinePricer::observe_period(
    std::size_t period, double measured_arrivals) {
  TDP_REQUIRE(period < model_.periods(), "period out of range");
  TDP_REQUIRE(measured_arrivals >= 0.0, "arrivals must be nonnegative");

  // Rescale the period's demand estimate to the measurement. A surge
  // measurement must not push total daily demand to (or past) total daily
  // capacity — the backlog would have no steady state — so the update is
  // clamped to keep a 2% stability margin; the excess is treated as
  // transient burst rather than recurring demand.
  const double previous = model_.arrivals().tip_demand(period);
  if (previous > 0.0) {
    double total_capacity = 0.0;
    for (double a : model_.capacity()) total_capacity += a;
    const double other_demand = model_.arrivals().total_demand() - previous;
    const double max_period_demand =
        std::max(0.98 * total_capacity - other_demand, 0.0);
    const double target = std::min(measured_arrivals, max_period_demand);
    if (target < measured_arrivals) {
      TDP_LOG_WARN << "online update clamps period " << period
                   << " demand from " << measured_arrivals << " to "
                   << target << " to preserve a stable backlog";
    }
    DemandProfile updated = model_.arrivals();
    updated.scale_period(period, target / previous);
    model_ = DynamicModel(std::move(updated), model_.capacity(),
                          model_.backlog_cost(), model_.warmup_days());
  }

  // 1-D re-optimization of this period's reward, all others fixed.
  StepResult result;
  result.period = period;
  result.old_reward = rewards_[period];
  math::Vector trial = rewards_;
  const auto objective = [this, &trial, period](double candidate) {
    trial[period] = candidate;
    return model_.total_cost(trial);
  };
  const math::GoldenSectionResult best =
      math::minimize_golden_section(objective, 0.0, reward_cap_, 1e-7);
  rewards_[period] = best.x;
  result.new_reward = best.x;
  result.expected_cost = best.value;
  TDP_LOG_DEBUG << "online update period " << period << ": reward "
                << result.old_reward << " -> " << result.new_reward;
  return result;
}

}  // namespace tdp
