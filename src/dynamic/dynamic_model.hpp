// The offline dynamic session model (Section III-A, Props. 4-5).
//
// For a single bottleneck the dynamic model reduces to a fluid model
// (Prop. 5): arrivals within a period are uniformly distributed, the link
// serves up to A_i units of work per period, and *unserved work carries
// over* into the next period as backlog. The per-period cost is
//
//   C_i = p_i * (work deferred into i) + f(backlog at the end of i),
//
// where f(b N(i)) penalizes sessions still in the network at the period
// boundary. Deferral uses the uniform-arrival lag convention: a session
// arriving at offset u in its period and deferring by L periods waits
// L - 1 + u periods, so the aggregate weight is the integral of w over
// [L-1, L].
//
// The backlog recursion B_i = max(B_{i-1} + a_i(p) - A_i, 0) composes a
// nondecreasing convex hinge with affine functions of the rewards, so the
// total cost remains convex in p (for waiting functions linear/concave in
// p) and the smoothing + FISTA machinery of the static model carries over.
// The model is evaluated in day-cyclic steady state: the recursion is
// warmed up over several identical days and only the final day is costed.
#pragma once

#include <cstddef>
#include <vector>

#include "core/deferral_kernel.hpp"
#include "core/demand_profile.hpp"
#include "core/kernel_plan.hpp"
#include "math/piecewise_linear.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

class DynamicModel {
 public:
  /// @param arrivals     work arriving in each period under TIP, by class
  ///                     (demand units of work per period).
  /// @param capacity     A_i: work the bottleneck can serve per period.
  /// @param backlog_cost f, applied to the end-of-period backlog.
  DynamicModel(DemandProfile arrivals, std::vector<double> capacity,
               math::PiecewiseLinearCost backlog_cost,
               std::size_t warmup_days = 6);

  DynamicModel(DemandProfile arrivals, double capacity,
               math::PiecewiseLinearCost backlog_cost,
               std::size_t warmup_days = 6);

  std::size_t periods() const { return arrivals_.periods(); }
  const DemandProfile& arrivals() const { return arrivals_; }
  const std::vector<double>& capacity() const { return capacity_; }
  const math::PiecewiseLinearCost& backlog_cost() const { return cost_; }
  const DeferralKernel& kernel() const { return kernel_; }
  std::size_t warmup_days() const { return warmup_days_; }

  /// Full steady-state day evaluation at a reward vector.
  struct Evaluation {
    math::Vector arrivals;  ///< post-deferral work arriving per period
    math::Vector backlog;   ///< end-of-period backlog (steady-state day)
    math::Vector served;    ///< work served per period
    double reward_cost = 0.0;
    double backlog_cost = 0.0;
    double total_cost = 0.0;
  };
  Evaluation evaluate(const math::Vector& rewards) const;

  /// Exact steady-state daily cost.
  double total_cost(const math::Vector& rewards) const;

  /// Cost with no rewards — the TIP baseline.
  double tip_cost() const;

  /// Smoothed objective: hinges in both the backlog recursion and f are
  /// mu-smoothed so the objective is C^1; used by the optimizer.
  double smoothed_cost(const math::Vector& rewards, double mu) const;

  /// Analytic gradient of smoothed_cost via forward accumulation through
  /// the warmed-up backlog recursion (grad pre-sized to periods()).
  void smoothed_gradient(const math::Vector& rewards, double mu,
                         math::Vector& grad) const;

  /// Rational reward cap: with carry-over, one deferred unit can save
  /// backlog cost in up to `longest congested run` consecutive periods, so
  /// the cap is that run length times f's max slope (evaluated under TIP).
  double reward_cap() const;

  // ---- Fused fast path (core/kernel_plan) --------------------------------
  // Bitwise identical to the reference methods of the same name; the
  // online pricer's per-period golden-section solve runs on
  // total_cost_with_coordinate so each candidate costs O(n) kernel work.

  /// Fill `state` with the deferral flows at `rewards`.
  void prime_flow_state(const math::Vector& rewards, bool with_derivatives,
                        FlowState& state) const;

  /// total_cost via the plan; primes `state` at `rewards`.
  double total_cost(const math::Vector& rewards, FlowState& state) const;

  /// total_cost after changing only coordinate `period`'s reward against
  /// the matrix cached in `state` (must be primed on this model). Leaves
  /// `state` at the updated reward vector.
  double total_cost_with_coordinate(std::size_t period, double reward,
                                    FlowState& state) const;

  /// smoothed_cost via the plan; primes `state` at `rewards`.
  double smoothed_cost(const math::Vector& rewards, double mu,
                       FlowState& state) const;

  /// smoothed_cost and its gradient in one flow evaluation.
  double smoothed_cost_and_gradient(const math::Vector& rewards, double mu,
                                    math::Vector& grad,
                                    FlowState& state) const;

 private:
  /// Post-deferral arrivals a_i(p) and optionally their Jacobian rows.
  void arrivals_after_deferral(const math::Vector& rewards,
                               math::Vector& out) const;

  /// Exact steady-state cost from a filled FlowState (shared by the fast
  /// total_cost entry points).
  double assemble_total_cost(FlowState& state) const;

  DemandProfile arrivals_;
  std::vector<double> capacity_;
  math::PiecewiseLinearCost cost_;
  DeferralKernel kernel_;
  std::size_t warmup_days_;
  math::Vector tip_;  ///< cached tip_demand_vector() for the fast path
};

}  // namespace tdp
