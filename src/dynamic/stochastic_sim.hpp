// Stochastic validation of the fluid dynamic model (Section III-A).
//
// The paper's dynamic model assumes Poisson session arrivals with
// exponentially distributed sizes and uniformly distributed arrival times,
// served by a single bottleneck. This simulator realizes that process
// exactly — individual sessions, random sizes, per-session probabilistic
// deferral decisions, continuous-time work-conserving service within each
// period — and measures the realized per-day costs. Tests verify that the
// long-run averages converge to the fluid model's predictions, validating
// the Prop. 4/5 reduction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "dynamic/dynamic_model.hpp"

namespace tdp {

struct StochasticSimOptions {
  /// Mean session size b (demand units of work).
  double mean_session_size = 0.5;
  /// Measured days (after warmup).
  std::size_t days = 50;
  /// Warmup days excluded from statistics.
  std::size_t warmup_days = 5;
  std::uint64_t seed = 20110611;  // ICDCS'11 vintage
};

struct StochasticSimResult {
  math::Vector mean_arrivals;  ///< post-deferral work arriving per period
  math::Vector mean_backlog;   ///< end-of-period backlog
  double mean_reward_cost = 0.0;   ///< per day
  double mean_backlog_cost = 0.0;  ///< per day
  double mean_total_cost = 0.0;    ///< per day
  std::size_t sessions_simulated = 0;
  std::size_t sessions_deferred = 0;
  /// Sessions whose deferral probabilities summed above one and had to be
  /// renormalized — nonzero only when rewards exceed the validity bound.
  std::size_t probability_clamps = 0;
};

/// Run the session-level simulation of `model` under a reward vector.
StochasticSimResult simulate_stochastic(const DynamicModel& model,
                                        const math::Vector& rewards,
                                        const StochasticSimOptions& options = {});

}  // namespace tdp
