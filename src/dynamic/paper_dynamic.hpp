// Paper-configured dynamic models (Section V-B).
//
// "We finally simulate the offline dynamic model, with the same ten waiting
// function types ... a single bottleneck network with constant capacity 210
// MBps ... Marginal cost of exceeding capacity is $0.10."
//
// Waiting functions use the continuous-lag normalization (see
// core/waiting_function.hpp) so deferral probabilities remain valid under
// the dynamic model's uniform arrival times.
#pragma once

#include "dynamic/dynamic_model.hpp"

namespace tdp::paper {

/// The 48-period dynamic model: Table VII arrivals, capacity 21 demand
/// units (210 MBps), backlog cost f(x) = 1 * max(x, 0) per period.
DynamicModel dynamic_model_48();

/// Same model with period 1's arrivals scaled to `period1_units` (the
/// Section V-B online experiment observes 20 units instead of 23).
DynamicModel dynamic_model_48_with_period1(double period1_units);

}  // namespace tdp::paper
