// Dynamic model for fixed-time sessions (Appendix G).
//
// Streaming-style sessions "stay in the network for a fixed amount of time
// and then leave; low bandwidth availability is reflected in sound and
// image quality and not session completion." The session count follows
//
//   dN/dt = nu_i - d_i * N(t)
//
// within period i (arrival rate nu_i after deferral, exponential departures
// at rate d_i), with deferred sessions re-entering at their target period's
// start (eq. 38). Each active session demands a fixed rate r, so quality
// degradation costs f(r * Nbar_i - A_i) per period, where Nbar_i is the
// time-averaged session count (the integral of the closed-form exponential
// solution).
//
// Because N(t) is affine in the (post-deferral) arrival rates and the
// initial counts, and f is convex nondecreasing, the objective stays convex
// in the rewards for waiting functions linear/concave in p — the same
// smoothing + FISTA machinery applies.
#pragma once

#include <cstddef>
#include <vector>

#include "core/deferral_kernel.hpp"
#include "core/demand_profile.hpp"
#include "math/fista.hpp"
#include "math/piecewise_linear.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

class FixedDurationModel {
 public:
  /// @param arrivals       session-arrival volume per period, by class
  ///                       (sessions x rate, i.e. demand units).
  /// @param departure_rate d_i > 0: inverse mean session duration, in
  ///                       1/periods (same for every period here).
  /// @param capacity       A_i (demand units the link can carry).
  /// @param quality_cost   f, applied to (demand rate - capacity).
  FixedDurationModel(DemandProfile arrivals, double departure_rate,
                     double capacity, math::PiecewiseLinearCost quality_cost,
                     std::size_t warmup_days = 6);

  std::size_t periods() const { return arrivals_.periods(); }
  const DemandProfile& arrivals() const { return arrivals_; }
  double departure_rate() const { return departure_rate_; }

  struct Evaluation {
    math::Vector arrivals;       ///< post-deferral arrival volume per period
    math::Vector mean_demand;    ///< time-averaged active demand per period
    math::Vector end_demand;     ///< active demand at each period's end
    double reward_cost = 0.0;
    double quality_cost = 0.0;
    double total_cost = 0.0;
  };
  Evaluation evaluate(const math::Vector& rewards) const;

  double total_cost(const math::Vector& rewards) const;
  double tip_cost() const;

  /// Smoothed objective and analytic gradient (for the optimizer). The
  /// dynamics are affine, so only f needs smoothing.
  double smoothed_cost(const math::Vector& rewards, double mu) const;
  void smoothed_gradient(const math::Vector& rewards, double mu,
                         math::Vector& grad) const;

  /// Reward search bound (probabilistic validity, as in DynamicModel).
  double reward_cap() const;

 private:
  /// One period of the exponential dynamics: given starting demand y0 and
  /// arrival volume a (spread uniformly over the period), returns
  /// {end demand, mean demand}. Both are affine in (y0, a).
  struct Step {
    double end;
    double mean;
  };
  Step advance(double y0, double a) const;

  DemandProfile arrivals_;
  double departure_rate_;
  std::vector<double> capacity_;
  math::PiecewiseLinearCost cost_;
  DeferralKernel kernel_;
  std::size_t warmup_days_;
  // Precomputed dynamics coefficients: end = e*y0 + g*a; mean = m*y0 + h*a.
  double coef_e_, coef_g_, coef_m_, coef_h_;
};

struct FixedDurationSolution {
  math::Vector rewards;
  FixedDurationModel::Evaluation evaluation;
  double tip_cost = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// FISTA + smoothing continuation, as for the other convex models.
FixedDurationSolution optimize_fixed_duration_prices(
    const FixedDurationModel& model);

}  // namespace tdp
