// The online price-determination algorithm (Section III-B).
//
//   1. Start with rewards for the next n periods from the offline model.
//   2. After each period, update the demand estimate with the measured
//      arrivals and recompute the optimal reward for the n-th period after
//      the current one, holding the other n-1 rewards fixed.
//
// Holding all but one reward fixed makes each step a 1-D convex problem,
// solved exactly by golden section on the true (unsmoothed) dynamic cost —
// "while sub-optimal, this algorithm is easy to implement and avoids the
// high dimensionality of a full dynamic programming solution."
#pragma once

#include <cstddef>

#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"

namespace tdp {

class OnlinePricer {
 public:
  /// Initializes rewards by solving the offline dynamic model.
  explicit OnlinePricer(DynamicModel model,
                        DynamicOptimizerOptions offline_options = {});

  std::size_t periods() const { return model_.periods(); }

  /// Rewards currently published for the next day (cyclic by period index).
  const math::Vector& rewards() const { return rewards_; }

  /// The model with all demand updates applied so far.
  const DynamicModel& model() const { return model_; }

  struct StepResult {
    std::size_t period = 0;       ///< period index whose reward was updated
    double old_reward = 0.0;
    double new_reward = 0.0;
    double expected_cost = 0.0;   ///< daily cost at the updated rewards
  };

  /// Report the arrivals measured in `period` (demand units under TIP, i.e.
  /// what the waiting-function estimator attributes to the baseline). The
  /// period's demand estimate is rescaled to match, and the reward for that
  /// period index — which next binds one full day ahead — is re-optimized
  /// with the other n-1 rewards fixed.
  StepResult observe_period(std::size_t period, double measured_arrivals);

  /// Daily cost of the current rewards under the current demand estimate.
  double expected_cost() const { return model_.total_cost(rewards_); }

 private:
  DynamicModel model_;
  math::Vector rewards_;
  double reward_cap_;
};

}  // namespace tdp
