// The online price-determination algorithm (Section III-B).
//
//   1. Start with rewards for the next n periods from the offline model.
//   2. After each period, update the demand estimate with the measured
//      arrivals and recompute the optimal reward for the n-th period after
//      the current one, holding the other n-1 rewards fixed.
//
// Holding all but one reward fixed makes each step a 1-D convex problem,
// solved exactly by golden section on the true (unsmoothed) dynamic cost —
// "while sub-optimal, this algorithm is easy to implement and avoids the
// high dimensionality of a full dynamic programming solution."
//
// Speculative mode: while a period's measurements stream in, the pricer
// pre-solves the next period's 1-D problem on a background thread under the
// assumption that the measurement will match the current forecast. When the
// real measurement arrives and equals the forecast exactly, the published
// result is the precomputed one — bit-identical to what the synchronous
// path would produce, since the model update at an exactly-confirmed
// forecast is a scale-by-1.0 no-op. Any deviation discards the speculation
// and recomputes synchronously, so outputs never depend on whether
// speculation is enabled, only the latency does.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>

#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "math/golden_section.hpp"

namespace tdp {

class OnlinePricer {
 public:
  /// Initializes rewards by solving the offline dynamic model.
  /// `speculative` pre-solves each next period in the background.
  explicit OnlinePricer(DynamicModel model,
                        DynamicOptimizerOptions offline_options = {},
                        bool speculative = false);
  ~OnlinePricer();

  OnlinePricer(const OnlinePricer&) = delete;
  OnlinePricer& operator=(const OnlinePricer&) = delete;

  std::size_t periods() const { return model_.periods(); }

  /// Rewards currently published for the next day (cyclic by period index).
  const math::Vector& rewards() const { return rewards_; }

  /// The model with all demand updates applied so far.
  const DynamicModel& model() const { return model_; }

  struct StepResult {
    std::size_t period = 0;       ///< period index whose reward was updated
    double old_reward = 0.0;
    double new_reward = 0.0;
    double expected_cost = 0.0;   ///< daily cost at the updated rewards
    bool speculative_hit = false; ///< result came from the pre-solve
  };

  /// Report the arrivals measured in `period` (demand units under TIP, i.e.
  /// what the waiting-function estimator attributes to the baseline). The
  /// period's demand estimate is rescaled to match, and the reward for that
  /// period index — which next binds one full day ahead — is re-optimized
  /// with the other n-1 rewards fixed.
  StepResult observe_period(std::size_t period, double measured_arrivals);

  /// Daily cost of the current rewards under the current demand estimate.
  double expected_cost() const { return model_.total_cost(rewards_); }

  bool speculative() const { return speculative_; }
  /// Steps answered from the background pre-solve / recomputed live.
  std::size_t speculation_hits() const { return speculation_hits_; }
  std::size_t speculation_misses() const { return speculation_misses_; }

 private:
  /// The synchronous 1-D step: minimize the daily cost over `period`'s
  /// reward with the others fixed at `rewards`.
  static math::GoldenSectionResult solve_period(const DynamicModel& model,
                                                math::Vector rewards,
                                                std::size_t period,
                                                double reward_cap);

  void launch_speculation(std::size_t next_period);
  void join_speculation();

  DynamicModel model_;
  math::Vector rewards_;
  double reward_cap_;

  /// One in-flight pre-solve; owned and joined by the calling thread, so
  /// the worker only ever touches its private snapshot in `speculation_`.
  struct Speculation {
    std::size_t period = 0;
    double assumed_arrivals = 0.0;        ///< forecast the pre-solve assumed
    math::GoldenSectionResult best;       ///< written by the worker thread
    DynamicModel model;                   ///< private snapshot
    math::Vector rewards;                 ///< private snapshot
    Speculation(std::size_t p, double assumed, DynamicModel m,
                math::Vector r)
        : period(p), assumed_arrivals(assumed), model(std::move(m)),
          rewards(std::move(r)) {}
  };
  bool speculative_ = false;
  std::thread speculation_thread_;
  std::unique_ptr<Speculation> speculation_;
  std::size_t speculation_hits_ = 0;
  std::size_t speculation_misses_ = 0;
};

}  // namespace tdp
