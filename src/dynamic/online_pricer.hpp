// The online price-determination algorithm (Section III-B).
//
//   1. Start with rewards for the next n periods from the offline model.
//   2. After each period, update the demand estimate with the measured
//      arrivals and recompute the optimal reward for the n-th period after
//      the current one, holding the other n-1 rewards fixed.
//
// Holding all but one reward fixed makes each step a 1-D convex problem,
// solved exactly by golden section on the true (unsmoothed) dynamic cost —
// "while sub-optimal, this algorithm is easy to implement and avoids the
// high dimensionality of a full dynamic programming solution."
//
// Speculative mode: while a period's measurements stream in, the pricer
// pre-solves the next period's 1-D problem on a background thread under the
// assumption that the measurement will match the current forecast. When the
// real measurement arrives and equals the forecast exactly, the published
// result is the precomputed one — bit-identical to what the synchronous
// path would produce, since the model update at an exactly-confirmed
// forecast is a scale-by-1.0 no-op. Any deviation discards the speculation
// and recomputes synchronously, so outputs never depend on whether
// speculation is enabled, only the latency does.
//
// Guarded observe path: a production pricer's inputs degrade — measurements
// get synthesized by the guard, solves get starved of iterations, demand
// shifts under it. `observe_period_ex` wraps the step with (a) a per-step
// iteration budget, (b) a trust-region clamp on how far one observation may
// move a reward, and (c) keep-previous-reward when the solve fails — and
// drives an explicit health ladder:
//
//   HEALTHY --bad observation--> DEGRADED --fallback_after bad--> FALLBACK
//      ^                            |  ^                             |
//      +--- recover_after good ----+  +----- recover_after good ----+
//
// A "bad" observation is a degraded/synthesized input, a missed one, or a
// failed solve. In FALLBACK the pricer freezes its schedule on degraded
// input (last-known-good rewards keep publishing) and only probes the model
// again when a clean measurement arrives. The default PricerGuardConfig is
// a no-op (infinite trust region, legacy iteration budget, failures
// accepted as before), so existing callers — and any zero-fault plan — are
// bit-identical to the unguarded pricer; the ladder still *tracks* health
// either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "dynamic/dynamic_model.hpp"
#include "dynamic/dynamic_optimizer.hpp"
#include "math/golden_section.hpp"

namespace tdp {

enum class PricerHealth { kHealthy, kDegraded, kFallback };

const char* to_string(PricerHealth health);

/// Degradation policy for the guarded observe path. The default is
/// behavior-preserving: nothing clamps, nothing is kept back, solves get
/// the same budget as before this config existed.
struct PricerGuardConfig {
  /// Iteration budget per 1-D solve (golden section max_iterations).
  std::size_t solver_max_iterations = 200;
  /// Trust region: one observation may move a reward by at most this
  /// fraction of the reward cap. Infinity = unclamped (legacy).
  double trust_region_fraction = std::numeric_limits<double>::infinity();
  /// Keep the previous reward when a solve fails (budget exhausted or a
  /// non-finite result). False = accept the best-so-far point (legacy).
  bool keep_reward_on_failure = false;
  /// Consecutive bad observations before DEGRADED escalates to FALLBACK.
  std::size_t fallback_after = 3;
  /// Consecutive good observations to climb one rung back toward HEALTHY.
  std::size_t recover_after = 2;

  /// The armed preset chaos runs use: tight trust region, failures keep
  /// the previous reward.
  static PricerGuardConfig protective();
};

/// Monotone counters for the health ladder (all-zero on a clean run except
/// healthy_observations).
struct PricerHealthStats {
  std::uint64_t healthy_observations = 0;
  std::uint64_t degraded_observations = 0;  ///< observed while DEGRADED
  std::uint64_t fallback_observations = 0;  ///< observed while FALLBACK
  std::uint64_t transitions = 0;            ///< state changes
  std::uint64_t solve_failures = 0;
  std::uint64_t clamped_steps = 0;       ///< trust region bound
  std::uint64_t skipped_updates = 0;     ///< FALLBACK froze the schedule
  std::uint64_t missed_observations = 0; ///< observe_missed calls
  std::uint64_t recoveries = 0;          ///< returns to HEALTHY
  std::uint64_t max_recovery_periods = 0;///< longest excursion from HEALTHY
};

struct OnlinePricerState;

class OnlinePricer {
 public:
  /// Initializes rewards by solving the offline dynamic model.
  /// `speculative` pre-solves each next period in the background.
  /// `incremental` runs each 1-D solve on the kernel plan's cached pair
  /// matrix (core/kernel_plan): the first candidate primes or resyncs the
  /// matrix and every later candidate is an O(n) column update instead of a
  /// full O(n^2) cost evaluation. Published rewards are bitwise identical
  /// either way (the incremental objective is property-tested against the
  /// reference); disable to run the reference path.
  explicit OnlinePricer(DynamicModel model,
                        DynamicOptimizerOptions offline_options = {},
                        bool speculative = false,
                        PricerGuardConfig guard = {},
                        bool incremental = true);
  ~OnlinePricer();

  OnlinePricer(const OnlinePricer&) = delete;
  OnlinePricer& operator=(const OnlinePricer&) = delete;

  std::size_t periods() const { return model_.periods(); }

  /// Rewards currently published for the next day (cyclic by period index).
  const math::Vector& rewards() const { return rewards_; }

  /// The model with all demand updates applied so far.
  const DynamicModel& model() const { return model_; }

  struct StepResult {
    std::size_t period = 0;       ///< period index whose reward was updated
    double old_reward = 0.0;
    double new_reward = 0.0;
    double expected_cost = 0.0;   ///< daily cost at the updated rewards
    bool speculative_hit = false; ///< result came from the pre-solve
    bool solve_failed = false;    ///< budget exhausted / non-finite result
    bool clamped = false;         ///< trust region bound the step
    bool skipped = false;         ///< FALLBACK froze the schedule
  };

  /// Report the arrivals measured in `period` (demand units under TIP, i.e.
  /// what the waiting-function estimator attributes to the baseline). The
  /// period's demand estimate is rescaled to match, and the reward for that
  /// period index — which next binds one full day ahead — is re-optimized
  /// with the other n-1 rewards fixed.
  StepResult observe_period(std::size_t period, double measured_arrivals);

  /// The guarded observe path. `degraded_input` marks a synthesized or
  /// altered measurement (see MeasurementGuard); `iteration_budget` caps
  /// this step's 1-D solve (pass guard().solver_max_iterations when no
  /// fault wants to starve it). Equal to observe_period when called with
  /// (false, guard().solver_max_iterations) under the default guard.
  StepResult observe_period_ex(std::size_t period, double measured_arrivals,
                               bool degraded_input,
                               std::size_t iteration_budget);

  /// The period's measurement never arrived at all (TTL-expired blackout):
  /// advance the health ladder with a bad observation, keep the schedule.
  void observe_missed(std::size_t period);

  /// Daily cost of the current rewards under the current demand estimate.
  /// Evaluated through the KernelPlan (bitwise identical to the reference
  /// DeferralKernel path, ~50x cheaper than the per-pair virtual walk).
  double expected_cost() const {
    return model_.total_cost(rewards_, cost_scratch_);
  }

  bool speculative() const { return speculative_; }
  bool incremental() const { return incremental_; }
  /// Steps answered from the background pre-solve / recomputed live.
  std::size_t speculation_hits() const { return speculation_hits_; }
  std::size_t speculation_misses() const { return speculation_misses_; }

  const PricerGuardConfig& guard() const { return guard_; }
  PricerHealth health() const { return health_; }
  const PricerHealthStats& health_stats() const { return health_stats_; }

  struct HealthTransition {
    std::uint64_t observation = 0;  ///< 0-based observe counter
    PricerHealth from = PricerHealth::kHealthy;
    PricerHealth to = PricerHealth::kHealthy;
  };
  /// First kMaxTransitionLog transitions (diagnostics; bounded memory).
  const std::vector<HealthTransition>& health_transitions() const {
    return health_log_;
  }

  // ---- Long-horizon hooks (checkpoint/restore, daily re-anchoring) -------

  /// Snapshot everything observe_period / observe_missed mutate: the
  /// published rewards, the per-period demand volumes (the only part of the
  /// model online updates change), and the health ladder. Any in-flight
  /// speculation is deliberately not captured — restore never resumes a
  /// pre-solve, and speculation cannot change published values, only
  /// latency.
  OnlinePricerState export_state() const;

  /// Rebuild a pricer from the *baseline* fluid model (same construction as
  /// the original run's) plus a state snapshot, skipping the offline solve:
  /// volumes and rewards are installed bit-for-bit, so the restored pricer's
  /// next observation is bitwise identical to the uninterrupted one's.
  static std::unique_ptr<OnlinePricer> restore(
      DynamicModel baseline, const OnlinePricerState& state,
      PricerGuardConfig guard = {}, bool speculative = false,
      bool incremental = true);

  /// Replace the fluid model (the multi-day driver's daily re-anchor after
  /// re-estimating the population): runs the offline solve on `model` and
  /// publishes its schedule, but keeps the health ladder and its statistics
  /// — re-anchoring is maintenance, not recovery.
  void adopt_model(DynamicModel model,
                   const DynamicOptimizerOptions& offline_options = {});

  /// Same, but install an already-solved schedule instead of re-running the
  /// offline solve — the health-gated re-anchor path solves the candidate
  /// model first (to compare its predicted objective against the anchored
  /// plan) and must not pay for, or risk divergence from, a second solve.
  void adopt_model(DynamicModel model,
                   const DynamicOptimizerOptions& offline_options,
                   math::Vector solved_rewards);

 private:
  struct RestoreTag {};
  OnlinePricer(RestoreTag, DynamicModel model, const OnlinePricerState& state,
               PricerGuardConfig guard, bool speculative, bool incremental);

  static constexpr std::size_t kMaxTransitionLog = 256;

  /// The synchronous 1-D step: minimize the daily cost over `period`'s
  /// reward with the others fixed at `rewards` (reference path).
  static math::GoldenSectionResult solve_period(const DynamicModel& model,
                                                math::Vector rewards,
                                                std::size_t period,
                                                double reward_cap,
                                                std::size_t max_iterations);

  /// Incremental variant: primes (or resyncs) `scratch`'s cached pair
  /// matrix, then evaluates every golden-section candidate through
  /// total_cost_with_coordinate. Bitwise identical to solve_period.
  static math::GoldenSectionResult solve_period_incremental(
      const DynamicModel& model, const math::Vector& rewards,
      std::size_t period, double reward_cap, std::size_t max_iterations,
      FlowState& scratch);

  /// Dispatch on incremental_ using this pricer's member scratch.
  math::GoldenSectionResult run_solve(const DynamicModel& model,
                                      const math::Vector& rewards,
                                      std::size_t period,
                                      std::size_t max_iterations);

  void launch_speculation(std::size_t next_period);
  void join_speculation();

  /// Advance the health ladder after one observation.
  void update_health(bool bad);

  DynamicModel model_;
  math::Vector rewards_;
  double reward_cap_;
  PricerGuardConfig guard_;

  PricerHealth health_ = PricerHealth::kHealthy;
  PricerHealthStats health_stats_;
  std::vector<HealthTransition> health_log_;
  std::uint64_t observation_count_ = 0;
  std::uint64_t consecutive_bad_ = 0;
  std::uint64_t consecutive_good_ = 0;
  std::uint64_t excursion_periods_ = 0;  ///< observations since HEALTHY

  /// One in-flight pre-solve; owned and joined by the calling thread, so
  /// the worker only ever touches its private snapshot in `speculation_`.
  struct Speculation {
    std::size_t period = 0;
    double assumed_arrivals = 0.0;        ///< forecast the pre-solve assumed
    math::GoldenSectionResult best;       ///< written by the worker thread
    DynamicModel model;                   ///< private snapshot
    math::Vector rewards;                 ///< private snapshot
    Speculation(std::size_t p, double assumed, DynamicModel m,
                math::Vector r)
        : period(p), assumed_arrivals(assumed), model(std::move(m)),
          rewards(std::move(r)) {}
  };
  bool speculative_ = false;
  bool incremental_ = true;
  /// Pair-matrix cache reused across synchronous solves; the resync in
  /// solve_period_incremental keeps warm starts cheap when the demand
  /// update was a confirmed-forecast no-op (same memoized kernel state).
  FlowState solve_scratch_;
  /// Scratch for the plan-based full-cost evaluations (expected_cost and
  /// the skip / failure / trust-region-probe paths in observe_period_ex).
  /// Distinct from solve_scratch_ so expected_cost() never invalidates a
  /// primed solver state; mutable because expected_cost() is const.
  mutable FlowState cost_scratch_;
  std::thread speculation_thread_;
  std::unique_ptr<Speculation> speculation_;
  std::size_t speculation_hits_ = 0;
  std::size_t speculation_misses_ = 0;
};

/// The serializable slice of an OnlinePricer (see export_state / restore).
struct OnlinePricerState {
  math::Vector rewards;
  double reward_cap = 0.0;
  /// volumes[p] = period p's per-class demand volumes, in class order.
  std::vector<std::vector<double>> volumes;
  PricerHealth health = PricerHealth::kHealthy;
  PricerHealthStats stats;
  std::vector<OnlinePricer::HealthTransition> log;
  std::uint64_t observation_count = 0;
  std::uint64_t consecutive_bad = 0;
  std::uint64_t consecutive_good = 0;
  std::uint64_t excursion_periods = 0;
};

}  // namespace tdp
