#include "dynamic/stochastic_sim.hpp"

#include <algorithm>
#include <vector>

#include "common/cyclic.hpp"
#include "common/error.hpp"

namespace tdp {
namespace {

/// One session arrival within a period: offset in [0,1) and work amount.
struct Arrival {
  double offset = 0.0;
  double work = 0.0;
};

}  // namespace

StochasticSimResult simulate_stochastic(const DynamicModel& model,
                                        const math::Vector& rewards,
                                        const StochasticSimOptions& options) {
  const std::size_t n = model.periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(options.mean_session_size > 0.0,
              "mean session size must be positive");
  TDP_REQUIRE(options.days > 0, "need at least one measured day");

  Rng rng(options.seed);
  const double b = options.mean_session_size;
  const std::size_t total_days = options.warmup_days + options.days;

  // Work deferred into future periods, indexed by lag from "now".
  // ring[l] = work arriving at the start of the period l periods ahead.
  std::vector<double> deferred_ring(n, 0.0);
  std::size_t ring_head = 0;
  // Reward owed for deferred work, credited in the arrival period.
  std::vector<double> reward_ring(n, 0.0);

  StochasticSimResult result;
  result.mean_arrivals.assign(n, 0.0);
  result.mean_backlog.assign(n, 0.0);

  double backlog = 0.0;
  std::vector<Arrival> arrivals;
  std::vector<double> defer_prob(n, 0.0);

  for (std::size_t day = 0; day < total_days; ++day) {
    const bool measured = day >= options.warmup_days;
    for (std::size_t i = 0; i < n; ++i) {
      const double capacity = model.capacity()[i];
      arrivals.clear();

      // Deferred work arrives at the period start.
      const double deferred_in = deferred_ring[ring_head];
      const double reward_due = reward_ring[ring_head];
      deferred_ring[ring_head] = 0.0;
      reward_ring[ring_head] = 0.0;
      if (deferred_in > 0.0) arrivals.push_back({0.0, deferred_in});

      // Fresh Poisson arrivals per class, with per-session deferral draws.
      for (const SessionClass& sc : model.arrivals().classes(i)) {
        const double rate = sc.volume / b;  // sessions per period
        const std::uint64_t count = rng.poisson(rate);
        for (std::uint64_t s = 0; s < count; ++s) {
          const double offset = rng.uniform();
          const double work = rng.exponential(b);
          ++result.sessions_simulated;

          // Deferral probabilities to each lag 1..n-1, using the same
          // uniform-arrival-averaged weights as the fluid kernel so the
          // simulation matches the model exactly in expectation.
          double total_prob = 0.0;
          for (std::size_t lag = 1; lag < n; ++lag) {
            const std::size_t target = cyclic_advance(i, lag, n);
            defer_prob[lag] = lag_weight(*sc.waiting, rewards[target], lag,
                                         model.kernel().convention());
            total_prob += defer_prob[lag];
          }
          if (total_prob > 1.0) {
            // Rewards above the probabilistic validity bound; renormalize
            // defensively and report it.
            ++result.probability_clamps;
            for (std::size_t lag = 1; lag < n; ++lag) {
              defer_prob[lag] /= total_prob;
            }
            total_prob = 1.0;
          }

          double draw = rng.uniform();
          std::size_t chosen_lag = 0;  // 0 = stay
          for (std::size_t lag = 1; lag < n; ++lag) {
            if (draw < defer_prob[lag]) {
              chosen_lag = lag;
              break;
            }
            draw -= defer_prob[lag];
          }

          if (chosen_lag == 0) {
            arrivals.push_back({offset, work});
          } else {
            ++result.sessions_deferred;
            const std::size_t target = cyclic_advance(i, chosen_lag, n);
            const std::size_t slot = (ring_head + chosen_lag) % n;
            deferred_ring[slot] += work;
            reward_ring[slot] += rewards[target] * work;
          }
        }
      }

      // Continuous-time work-conserving service within the period.
      std::sort(arrivals.begin(), arrivals.end(),
                [](const Arrival& a, const Arrival& c) {
                  return a.offset < c.offset;
                });
      double clock = 0.0;
      double arrived_total = 0.0;
      for (const Arrival& a : arrivals) {
        backlog = std::max(backlog - capacity * (a.offset - clock), 0.0);
        clock = a.offset;
        backlog += a.work;
        arrived_total += a.work;
      }
      backlog = std::max(backlog - capacity * (1.0 - clock), 0.0);

      if (measured) {
        result.mean_arrivals[i] += arrived_total;
        result.mean_backlog[i] += backlog;
        result.mean_backlog_cost += model.backlog_cost().value(backlog);
        result.mean_reward_cost += reward_due;
      }
      ring_head = (ring_head + 1) % n;
    }
  }

  const double days = static_cast<double>(options.days);
  for (std::size_t i = 0; i < n; ++i) {
    result.mean_arrivals[i] /= days;
    result.mean_backlog[i] /= days;
  }
  result.mean_reward_cost /= days;
  result.mean_backlog_cost /= days;
  result.mean_total_cost = result.mean_reward_cost + result.mean_backlog_cost;
  return result;
}

}  // namespace tdp
