#include "dynamic/paper_dynamic.hpp"

#include "common/error.hpp"
#include "core/paper_data.hpp"
#include "math/piecewise_linear.hpp"

namespace tdp::paper {

DynamicModel dynamic_model_48() {
  DemandProfile arrivals =
      make_profile(table7_mix_48(), kStaticNormalizationReward,
                   LagNormalization::kContinuous);
  return DynamicModel(
      std::move(arrivals), kDynamicCapacityUnits,
      math::PiecewiseLinearCost::hinge(kDynamicCostSlope, 0.0));
}

DynamicModel dynamic_model_48_with_period1(double period1_units) {
  TDP_REQUIRE(period1_units >= 0.0, "arrivals must be nonnegative");
  DemandProfile arrivals =
      make_profile(table7_mix_48(), kStaticNormalizationReward,
                   LagNormalization::kContinuous);
  const double baseline = arrivals.tip_demand(0);
  arrivals.scale_period(0, period1_units / baseline);
  return DynamicModel(
      std::move(arrivals), kDynamicCapacityUnits,
      math::PiecewiseLinearCost::hinge(kDynamicCostSlope, 0.0));
}

}  // namespace tdp::paper
