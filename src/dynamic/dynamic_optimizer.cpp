#include "dynamic/dynamic_optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp {

DynamicPricingSolution optimize_dynamic_prices(
    const DynamicModel& model, const DynamicOptimizerOptions& options) {
  TDP_OBS_SPAN("solver.dynamic");
  TDP_REQUIRE(options.mu_initial >= options.mu_final && options.mu_final > 0.0,
              "invalid smoothing schedule");
  TDP_REQUIRE(options.mu_decay > 0.0 && options.mu_decay < 1.0,
              "mu decay must be in (0, 1)");
  TDP_REQUIRE(options.reward_cap_factor > 0.0, "reward cap must be positive");

  const std::size_t n = model.periods();
  const double cap = model.reward_cap() * options.reward_cap_factor;
  const math::BoxBounds box = math::uniform_box(n, 0.0, cap);

  FlowState scratch;
  math::Vector p(n, 0.0);
  DynamicPricingSolution solution;
  bool all_converged = true;

  for (double mu = options.mu_initial;; mu *= options.mu_decay) {
    mu = std::max(mu, options.mu_final);

    math::SmoothObjective objective;
    if (options.fused) {
      objective.value = [&model, mu, &scratch](const math::Vector& rewards) {
        return model.smoothed_cost(rewards, mu, scratch);
      };
      objective.value_and_gradient = [&model, mu, &scratch](
                                         const math::Vector& rewards,
                                         math::Vector& grad) {
        return model.smoothed_cost_and_gradient(rewards, mu, grad, scratch);
      };
    } else {
      objective.value = [&model, mu](const math::Vector& rewards) {
        return model.smoothed_cost(rewards, mu);
      };
      objective.gradient = [&model, mu](const math::Vector& rewards,
                                        math::Vector& grad) {
        model.smoothed_gradient(rewards, mu, grad);
      };
    }

    const math::FistaResult stage =
        math::minimize_box(objective, box, p, options.fista);
    p = stage.x;
    solution.iterations += stage.iterations;
    all_converged = all_converged && stage.converged;
    TDP_LOG_DEBUG << "dynamic stage mu=" << mu << " cost=" << stage.value
                  << " iters=" << stage.iterations;

    if (mu <= options.mu_final) break;
  }

  solution.rewards = p;
  solution.evaluation = model.evaluate(p);
  solution.tip_cost = model.tip_cost();
  solution.converged = all_converged;

  if (obs::metrics_enabled()) {
    static obs::Counter& solves =
        obs::Registry::global().counter("solver.dynamic_solves_total");
    static obs::Counter& iterations =
        obs::Registry::global().counter("solver.dynamic_iterations_total");
    solves.add_always(1);
    iterations.add_always(solution.iterations);
    obs::journal_record(
        "solver.converged", -1, -1,
        all_converged ? "dynamic solve converged" : "dynamic solve hit cap",
        {{"iterations", static_cast<double>(solution.iterations)},
         {"cost", solution.evaluation.total_cost},
         {"converged", all_converged ? 1.0 : 0.0}});
  }
  return solution;
}

}  // namespace tdp
