// Price determination for the offline dynamic model.
//
// Same smoothing-continuation + FISTA scheme as the static optimizer; the
// reward box is wider because carry-over lets one deferred unit save backlog
// cost across a whole congested run (the static P = max f' cap no longer
// binds — the paper's "breaking the $0.15 barrier").
#pragma once

#include "dynamic/dynamic_model.hpp"
#include "math/fista.hpp"

namespace tdp {

struct DynamicOptimizerOptions {
  double mu_initial = 1.0;
  double mu_final = 1e-5;
  double mu_decay = 0.1;
  /// Upper bound on rewards, in multiples of the model's reward_cap().
  /// The cap itself already over-approximates the rational maximum.
  double reward_cap_factor = 1.0;
  math::FistaOptions fista;
  /// Evaluate the continuation stages through the fused kernel plan
  /// (bitwise identical to the reference objective; disable to run the
  /// reference path as the oracle).
  bool fused = true;

  DynamicOptimizerOptions() {
    fista.max_iterations = 6000;
    fista.step_tolerance = 1e-10;
  }
};

struct DynamicPricingSolution {
  math::Vector rewards;
  DynamicModel::Evaluation evaluation;  ///< steady-state day at `rewards`
  double tip_cost = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

DynamicPricingSolution optimize_dynamic_prices(
    const DynamicModel& model, const DynamicOptimizerOptions& options = {});

}  // namespace tdp
