// The definite-choice session model (Appendix D).
//
// Instead of deferring probabilistically, each session class moves ALL of
// its traffic to the single lag maximizing its waiting function under the
// offered rewards — "users defer to one definite period". A class stays put
// unless its best achievable waiting value exceeds a stay threshold
// (Appendix D pins w(0, t) = 0 so that zero rewards mean no deferral; the
// threshold generalizes that to a minimum utility for moving at all).
//
// The resulting usage is piecewise constant in the rewards (the argmax
// switches discontinuously), so the ISP's problem is non-convex and
// gradient-free — "this model's optimization problem is likely non-convex".
// optimize_definite_choice therefore runs a deterministic multi-start
// coordinate grid search; tests exhibit an explicit convexity violation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/demand_profile.hpp"
#include "math/piecewise_linear.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

class DefiniteChoiceModel {
 public:
  /// @param stay_threshold  minimum waiting value required to move at all.
  DefiniteChoiceModel(DemandProfile demand, std::vector<double> capacity,
                      math::PiecewiseLinearCost capacity_cost,
                      double stay_threshold = 0.0);

  DefiniteChoiceModel(DemandProfile demand, double capacity,
                      math::PiecewiseLinearCost capacity_cost,
                      double stay_threshold = 0.0);

  std::size_t periods() const { return demand_.periods(); }
  const DemandProfile& demand() const { return demand_; }
  double max_reward() const { return cost_.max_slope(); }

  /// The lag (0 = stay) class `c` of period `i` chooses under `rewards`.
  std::size_t chosen_lag(std::size_t period, std::size_t class_index,
                         const math::Vector& rewards) const;

  /// Usage per period after every class moves to its chosen target.
  math::Vector usage(const math::Vector& rewards) const;

  /// Reward payout + capacity cost under the definite choices.
  double total_cost(const math::Vector& rewards) const;

  /// Cost with zero rewards (nothing moves).
  double tip_cost() const;

 private:
  DemandProfile demand_;
  std::vector<double> capacity_;
  math::PiecewiseLinearCost cost_;
  double stay_threshold_;
};

struct DefiniteChoiceOptions {
  /// Number of grid levels per coordinate in [0, max_reward].
  std::size_t grid_levels = 16;
  /// Coordinate-descent sweeps per start.
  std::size_t max_sweeps = 8;
  /// Deterministic multi-start count.
  std::size_t starts = 4;
};

struct DefiniteChoiceSolution {
  math::Vector rewards;
  math::Vector usage;
  double total_cost = 0.0;
  double tip_cost = 0.0;
  std::size_t evaluations = 0;
};

/// Heuristic (grid coordinate-descent, multi-start) optimizer for the
/// non-convex definite-choice pricing problem. Returns the best local
/// optimum found; no global guarantee exists for this model.
DefiniteChoiceSolution optimize_definite_choice(
    const DefiniteChoiceModel& model, const DefiniteChoiceOptions& options = {});

}  // namespace tdp
