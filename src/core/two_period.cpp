#include "core/two_period.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace tdp {

TwoPeriodSolution optimize_two_period_prices(const StaticModel& model,
                                             const TwoPeriodOptions& options) {
  TDP_REQUIRE(options.reward_levels >= 2 && options.threshold_levels >= 2,
              "need at least two grid levels");
  const std::size_t n = model.periods();
  const auto tip = model.demand().tip_demand_vector();
  const double demand_lo = *std::min_element(tip.begin(), tip.end());
  const double demand_hi = *std::max_element(tip.begin(), tip.end());
  // Rational rewards never exceed half the marginal capacity cost for
  // linear-in-p waiting functions (Appendix C).
  const double reward_hi = 0.5 * model.max_reward();

  TwoPeriodSolution best;
  best.total_cost = std::numeric_limits<double>::infinity();

  for (std::size_t t = 0; t < options.threshold_levels; ++t) {
    const double threshold =
        demand_lo + (demand_hi - demand_lo) * static_cast<double>(t + 1) /
                        static_cast<double>(options.threshold_levels + 1);
    std::vector<bool> off_peak(n, false);
    bool any_off = false;
    bool any_peak = false;
    for (std::size_t i = 0; i < n; ++i) {
      off_peak[i] = tip[i] < threshold;
      any_off = any_off || off_peak[i];
      any_peak = any_peak || !off_peak[i];
    }
    if (!any_off || !any_peak) continue;  // degenerate classification

    for (std::size_t r = 0; r < options.reward_levels; ++r) {
      const double reward = reward_hi * static_cast<double>(r) /
                            static_cast<double>(options.reward_levels - 1);
      math::Vector schedule(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (off_peak[i]) schedule[i] = reward;
      }
      const double cost = model.total_cost(schedule);
      if (cost < best.total_cost) {
        best.total_cost = cost;
        best.off_peak_reward = reward;
        best.demand_threshold = threshold;
        best.off_peak = off_peak;
        best.rewards = schedule;
      }
    }
  }

  TDP_REQUIRE(best.total_cost < std::numeric_limits<double>::infinity(),
              "no valid 2-period classification exists");
  best.usage = model.usage(best.rewards);
  best.tip_cost = model.tip_cost();
  return best;
}

}  // namespace tdp
