// The paper's published input data (Section V and Appendices H-I).
//
// All demand figures are in demand units of 10 MBps (the unit of Tables
// VII-XV). Monetary values are in units of $0.10. The ten patience indices
// and their example applications come from Table IV.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "core/demand_profile.hpp"
#include "core/static_model.hpp"

namespace tdp::paper {

/// The ten patience indices of Table IV (0.5 steps from 0.5 to 5).
inline constexpr std::array<double, 10> kPatienceIndices = {
    0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0};

/// Example application for each patience index (Table IV).
std::string_view session_example(std::size_t patience_slot);

/// A row of a demand-mix table: demand units per patience index.
using MixRow = std::array<double, 10>;

/// Table VII: demand under TIP by patience index, 48 periods. Returned as
/// 48 rows (the paper lists 24 rows, each covering two periods).
std::vector<MixRow> table7_mix_48();

/// Table VIII: demand under TIP by patience index, 12 periods.
std::vector<MixRow> table8_mix_12();

/// Table V totals (derived from Table VII; validated against Table V in
/// tests): X_i in demand units for 48 periods.
std::vector<double> table5_demand_48();

/// Table IX totals for the 12-period model.
std::vector<double> table9_demand_12();

/// Table XI: perturbed period-1 mixes for total demand 18..26 demand units
/// (the Table VI / XII perturbation study). `total_units` must be in
/// [18, 26]; 22 is the baseline (equals Table VIII period 1... the study's
/// row for 22).
MixRow table11_period1_mix(int total_units);

/// Table XIII: mis-estimated period-1 mix (waiting-function perturbation).
MixRow table13_period1_mix();

/// Table XV: mis-estimated mixes for all 12 periods.
std::vector<MixRow> table15_mix_12();

/// Build a demand profile from mix rows. Waiting functions are power laws
/// normalized for `periods` periods at normalization point `max_reward`,
/// on the discrete (static) or continuous (dynamic) lag grid. `gamma` is
/// the reward exponent: 1 (the paper's linear choice) by default; values in
/// (0, 1) give the nonlinear concave family (used by the perf suite, where
/// the nonlinear kernel path is the interesting one).
DemandProfile make_profile(
    const std::vector<MixRow>& mix, double max_reward,
    LagNormalization normalization = LagNormalization::kDiscrete,
    double gamma = 1.0);

/// Headline 48-period static model: Table VII demand, capacity 180 MBps
/// (18 units), capacity cost f(x) = 3 max(x, 0).
StaticModel static_model_48();

/// 12-period model used in the perturbation studies: Table VIII demand,
/// capacity 18 units, f(x) = 3 max(x, 0).
StaticModel static_model_12();

/// 12-period model with period 1's mix replaced (Tables VI/XI/XII study).
StaticModel static_model_12_with_period1(const MixRow& period1_mix);

/// 12-period model built from arbitrary mix rows (Table XV study).
StaticModel static_model_12_with_mix(const std::vector<MixRow>& mix);

/// The static capacity: 180 MBps, i.e. 80% of the physical bottleneck.
inline constexpr double kStaticCapacityUnits = 18.0;

/// Marginal cost of exceeding capacity in the static model (money units).
inline constexpr double kStaticCostSlope = 3.0;

/// Waiting-function normalization point P — "the maximum possible reward
/// offered". For linear-in-p waiting functions Appendix C bounds rational
/// rewards by HALF the maximum marginal capacity cost (2pC <= 3C), so
/// P = 1.5 money units. Calibration note: with this value the 48-period
/// static model reproduces the paper's headline numbers essentially exactly
/// (cost $3.26 vs our $3.23, spread ratio 0.512 vs our 0.512, peak-to-valley
/// 119 MBps vs our 119 MBps); normalizing at the marginal cost 3.0 instead
/// does not (13% savings, ratio 0.74).
inline constexpr double kStaticNormalizationReward = 1.5;

/// Dynamic-model constants (Section V-B): capacity 210 MBps, marginal cost
/// of exceeding capacity $0.10 (= 1 money unit).
inline constexpr double kDynamicCapacityUnits = 21.0;
inline constexpr double kDynamicCostSlope = 1.0;

}  // namespace tdp::paper
