// Profit accounting (Prop. 2): minimizing cost == maximizing profit.
//
// Profit under TDP (eq. 12):
//   pi = p_flat * sum_i X_i                (revenue under TIP)
//        - sum_i p_i * (deferred into i)   (cost of rewards)
//        - d * sum_i x_i                   (operational cost)
//        - sum_i f(x_i - A_i)              (cost of exceeding capacity).
// Because sessions never disappear, sum x_i == sum X_i, so pi differs from
// -C by a constant and the two optimization problems coincide.
#pragma once

#include "core/static_model.hpp"

namespace tdp {

struct ProfitBreakdown {
  double revenue = 0.0;          ///< p_flat * total TIP demand
  double reward_cost = 0.0;      ///< sum p_i * deferred-in
  double operational_cost = 0.0; ///< d * total usage
  double capacity_cost = 0.0;    ///< sum f(x_i - A_i)
  double profit = 0.0;
};

/// Evaluate the TDP profit (eq. 12) for a reward vector.
/// @param flat_usage_price  p: TIP usage price per demand unit (money units)
/// @param marginal_op_cost  d: cost of carrying one demand unit (money units)
ProfitBreakdown evaluate_profit(const StaticModel& model,
                                const math::Vector& rewards,
                                double flat_usage_price,
                                double marginal_op_cost);

}  // namespace tdp
