#include "core/kernel_plan.hpp"

#include <atomic>
#include <cmath>
#include <unordered_map>

#include "common/cyclic.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "math/quadrature.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp {
namespace {

constexpr std::size_t kGaussN = math::kGauss8Nodes.size();

/// The Gauss abscissa integrate_gauss(f, lag-1, lag, 1) evaluates at node k,
/// reproduced operation for operation (lo = a + h*0, mid = lo + h/2).
double gauss_abscissa(std::size_t lag, std::size_t k, double& half_out) {
  const double t = static_cast<double>(lag);
  const double a = t - 1.0;
  const double h = (t - a) / 1.0;
  const double lo = a + h * 0.0;
  const double mid = lo + 0.5 * h;
  half_out = 0.5 * h;
  return mid + half_out * math::kGauss8Nodes[k];
}

}  // namespace

KernelPlan::KernelPlan(const DeferralKernel& kernel)
    : periods_(kernel.periods()),
      convention_(kernel.convention()),
      linear_(kernel.linear()) {
  TDP_OBS_SPAN("kernel.plan_build");
  {
    static obs::Counter& builds =
        obs::Registry::global().counter("kernel.plan_builds_total");
    builds.add(1);
  }
  static std::atomic<std::uint64_t> next_serial{1};
  serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = periods_;
  TDP_REQUIRE(n >= 2, "need at least two periods");

  // Flatten the class lists, registering each distinct waiting function
  // once. Term order within a period matches class order — the reference
  // path's accumulation order.
  std::unordered_map<const WaitingFunction*, std::uint32_t> ids;
  period_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    period_begin_[i] = term_wf_.size();
    for (const SessionClass& sc : kernel.classes(i)) {
      const WaitingFunction* raw = sc.waiting.get();
      auto [it, inserted] = ids.emplace(
          raw, static_cast<std::uint32_t>(functions_.size()));
      if (inserted) {
        WfEntry entry;
        entry.wf = sc.waiting;
        if (const auto* power =
                dynamic_cast<const PowerLawWaitingFunction*>(raw)) {
          entry.kind = convention_ == LagConvention::kPeriodStart
                           ? WfKind::kPowerStart
                           : WfKind::kPowerUniform;
          entry.norm = power->normalization();
          entry.gamma = power->gamma();
          entry.norm_gamma = power->normalization() * power->gamma();
        }
        functions_.push_back(std::move(entry));
      }
      term_wf_.push_back(it->second);
      term_volume_.push_back(sc.volume);
    }
  }
  period_begin_[n] = term_wf_.size();

  lag_.assign(n * n, 0);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (to == from) continue;
      lag_[from * n + to] = static_cast<std::uint32_t>(cyclic_lag(from, to, n));
    }
  }

  if (linear_) {
    // Linear kernels evaluate through the unit-reward tables; no per-lag
    // power tables are needed.
    unit_ = kernel.unit_table();
    unit_inflow_ = kernel.unit_inflow_table();
    return;
  }

  // Per-(function, lag) weight tables for the power-law family. The same
  // pow(..., -beta) values serve both the value and the derivative — the
  // power law shares its lag factor between them.
  const std::size_t nwf = functions_.size();
  if (convention_ == LagConvention::kPeriodStart) {
    lag_pow_.assign(nwf * n, 0.0);
  } else {
    node_pow_.assign(nwf * n * kGaussN, 0.0);
    lag_half_.assign(n, 0.0);
  }
  for (std::size_t w = 0; w < nwf; ++w) {
    if (functions_[w].kind == WfKind::kGeneric) continue;
    const auto* power =
        dynamic_cast<const PowerLawWaitingFunction*>(functions_[w].wf.get());
    const double beta = power->beta();
    for (std::size_t lag = 1; lag < n; ++lag) {
      if (convention_ == LagConvention::kPeriodStart) {
        const double t = static_cast<double>(lag);
        lag_pow_[w * n + lag] = std::pow(t + 1.0, -beta);
      } else {
        for (std::size_t k = 0; k < kGaussN; ++k) {
          double half = 0.0;
          const double u = gauss_abscissa(lag, k, half);
          node_pow_[(w * n + lag) * kGaussN + k] = std::pow(u + 1.0, -beta);
          lag_half_[lag] = half;
        }
      }
    }
  }

  // SIMD eligibility: the vector fill path processes four `from` rows in
  // lockstep, so every period must flatten to the same master slot
  // sequence (same waiting-function ids, same order, all power-law). Any
  // mismatch — ragged class lists, a generic waiting function — falls
  // back to the scalar column loop. Volumes are re-laid out column-major
  // per slot so a row group's four lane volumes load contiguously.
  const std::size_t slots = period_begin_[1] - period_begin_[0];
  bool uniform = slots > 0;
  for (std::size_t i = 0; i < n && uniform; ++i) {
    if (period_begin_[i + 1] - period_begin_[i] != slots) {
      uniform = false;
      break;
    }
    for (std::size_t t = 0; t < slots; ++t) {
      if (term_wf_[period_begin_[i] + t] != term_wf_[t]) {
        uniform = false;
        break;
      }
    }
  }
  for (std::size_t t = 0; t < slots && uniform; ++t) {
    if (functions_[term_wf_[t]].kind == WfKind::kGeneric) uniform = false;
  }
  simd_ready_ = uniform;
  if (simd_ready_) {
    slot_volume_.assign(slots * n, 0.0);
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t t = 0; t < slots; ++t) {
        slot_volume_[t * n + from] = term_volume_[period_begin_[from] + t];
      }
    }
  }
}

void KernelPlan::fill_column(std::size_t to, double reward,
                             bool with_derivatives, FlowState& s) const {
  const std::size_t n = periods_;
  double* V = s.pair.data();
  double* dV = s.pair_derivative.data();

  if (linear_) {
    for (std::size_t from = 0; from < n; ++from) {
      if (from == to) continue;
      const double unit = unit_[from * n + to];
      V[from * n + to] = reward <= 0.0 ? 0.0 : unit * reward;
      if (with_derivatives) dV[from * n + to] = unit;
    }
    return;
  }

  // Reward factors shared by every slot in this column: one pow per
  // distinct power-law function instead of one per (class, pair).
  const bool positive = reward > 0.0;
  double* factor = s.wf_factor.data();
  double* dfactor = s.wf_factor_derivative.data();
  for (std::size_t w = 0; w < functions_.size(); ++w) {
    const WfEntry& e = functions_[w];
    if (e.kind == WfKind::kGeneric) continue;
    if (positive) factor[w] = e.norm * std::pow(reward, e.gamma);
    if (with_derivatives) {
      double r = reward < 0.0 ? 0.0 : reward;
      if (e.gamma == 1.0) {
        dfactor[w] = e.norm;
      } else {
        if (r == 0.0) r = 1e-12;
        dfactor[w] = e.norm_gamma * std::pow(r, e.gamma - 1.0);
      }
    }
  }

#if defined(TDP_HAVE_AVX2)
  if (simd_ready_ && simd::mode() == simd::Mode::kAvx2) {
    fill_column_avx2(to, reward, positive, with_derivatives, s);
    return;
  }
#endif

  for (std::size_t from = 0; from < n; ++from) {
    if (from == to) continue;
    fill_cell(from, to, lag_[from * n + to], reward, positive,
              with_derivatives, s);
  }
}

void KernelPlan::fill_cell(std::size_t from, std::size_t to, std::size_t lag,
                           double reward, bool positive,
                           bool with_derivatives, FlowState& s) const {
  const std::size_t n = periods_;
  double* V = s.pair.data();
  double* dV = s.pair_derivative.data();
  const double* factor = s.wf_factor.data();
  const double* dfactor = s.wf_factor_derivative.data();
  double vol = 0.0;
  double dvol = 0.0;
  const std::size_t end = period_begin_[from + 1];
  for (std::size_t t = period_begin_[from]; t < end; ++t) {
    const std::uint32_t w = term_wf_[t];
    const double v = term_volume_[t];
    switch (functions_[w].kind) {
      case WfKind::kPowerStart: {
        const double lp = lag_pow_[w * n + lag];
        if (positive) vol += v * (factor[w] * lp);
        if (with_derivatives) dvol += v * (dfactor[w] * lp);
        break;
      }
      case WfKind::kPowerUniform: {
        const double* np = &node_pow_[(w * n + lag) * kGaussN];
        const double half = lag_half_[lag];
        if (positive) {
          double acc = 0.0;
          for (std::size_t k = 0; k < kGaussN; ++k) {
            acc += math::kGauss8Weights[k] * (factor[w] * np[k]);
          }
          vol += v * (acc * half);
        }
        if (with_derivatives) {
          double acc = 0.0;
          for (std::size_t k = 0; k < kGaussN; ++k) {
            acc += math::kGauss8Weights[k] * (dfactor[w] * np[k]);
          }
          dvol += v * (acc * half);
        }
        break;
      }
      case WfKind::kGeneric: {
        const WaitingFunction& wf = *functions_[w].wf;
        if (positive && with_derivatives) {
          double wv = 0.0;
          double wd = 0.0;
          lag_weight_pair(wf, reward, lag, convention_, wv, wd);
          vol += v * wv;
          dvol += v * wd;
        } else if (positive) {
          vol += v * lag_weight(wf, reward, lag, convention_);
        } else if (with_derivatives) {
          dvol += v * lag_weight_derivative(wf, reward, lag, convention_);
        }
        break;
      }
    }
  }
  // pair_volume returns 0 outright for nonpositive rewards; the
  // derivative has no such early exit.
  V[from * n + to] = positive ? vol : 0.0;
  if (with_derivatives) dV[from * n + to] = dvol;
}

void KernelPlan::reduce_inflow(std::size_t into, bool with_derivatives,
                               FlowState& s) const {
  const std::size_t n = periods_;
  const double reward = s.rewards[into];
  if (linear_) {
    s.inflow[into] = reward <= 0.0 ? 0.0 : unit_inflow_[into] * reward;
    if (with_derivatives) s.inflow_derivative[into] = unit_inflow_[into];
    return;
  }
  double total = 0.0;
  for (std::size_t from = 0; from < n; ++from) {
    if (from == into) continue;
    total += s.pair[from * n + into];
  }
  s.inflow[into] = reward <= 0.0 ? 0.0 : total;
  if (with_derivatives) {
    double dtotal = 0.0;
    for (std::size_t from = 0; from < n; ++from) {
      if (from == into) continue;
      dtotal += s.pair_derivative[from * n + into];
    }
    s.inflow_derivative[into] = dtotal;
  }
}

void KernelPlan::reduce_outflow(std::size_t from, FlowState& s) const {
  const std::size_t n = periods_;
  double total = 0.0;
  for (std::size_t to = 0; to < n; ++to) {
    if (to == from) continue;
    total += s.pair[from * n + to];
  }
  s.outflow[from] = total;
}

void KernelPlan::evaluate(const std::vector<double>& rewards,
                          bool with_derivatives, FlowState& s) const {
  const std::size_t n = periods_;
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  s.plan = this;
  s.plan_serial = serial_;
  s.has_derivatives = with_derivatives;
  s.rewards = rewards;
  s.pair.assign(n * n, 0.0);
  s.inflow.assign(n, 0.0);
  s.outflow.assign(n, 0.0);
  if (with_derivatives) {
    s.pair_derivative.assign(n * n, 0.0);
    s.inflow_derivative.assign(n, 0.0);
  }
  s.wf_factor.resize(functions_.size());
  s.wf_factor_derivative.resize(functions_.size());
  for (std::size_t to = 0; to < n; ++to) {
    fill_column(to, rewards[to], with_derivatives, s);
  }
  std::size_t i = 0;
#if defined(TDP_HAVE_AVX2)
  // Four column sums at a time over the freshly filled pair matrix; each
  // lane keeps the scalar reduction order. The linear path's inflow is a
  // table lookup, not a matrix reduction — leave it scalar.
  if (!linear_ && simd::mode() == simd::Mode::kAvx2) {
    for (; i + 4 <= n; i += 4) reduce_inflow4_avx2(i, with_derivatives, s);
  }
#endif
  for (; i < n; ++i) reduce_inflow(i, with_derivatives, s);
  for (std::size_t i2 = 0; i2 < n; ++i2) reduce_outflow(i2, s);
}

void KernelPlan::update_coordinate(std::size_t m, double reward,
                                   bool with_derivatives,
                                   FlowState& s) const {
  TDP_REQUIRE(s.plan == this && s.plan_serial == serial_,
              "FlowState not primed for this plan (call evaluate first)");
  TDP_REQUIRE(m < periods_, "period out of range");
  TDP_REQUIRE(!with_derivatives || s.has_derivatives,
              "state was primed without derivatives");
  // Keep every cached array coherent: refresh derivatives whenever the
  // priming evaluate computed them, so the postcondition (bitwise equal to
  // a full evaluate) holds for the whole state.
  const bool wd = s.has_derivatives;
  s.rewards[m] = reward;
  fill_column(m, reward, wd, s);
  reduce_inflow(m, wd, s);
  // inflow for i != m depends only on column i — unchanged. outflow(from)
  // sums row `from` across columns including m, so every row containing
  // the refreshed column is re-reduced over cached values in the reference
  // order; outflow(m) itself excludes column m and is untouched.
  for (std::size_t from = 0; from < periods_; ++from) {
    if (from == m) continue;
    reduce_outflow(from, s);
  }
}

UniformLagWeightTable::UniformLagWeightTable(WaitingFunctionPtr wf,
                                             std::size_t periods)
    : wf_(std::move(wf)), periods_(periods) {
  TDP_REQUIRE(wf_ != nullptr, "waiting function must be set");
  TDP_REQUIRE(periods_ >= 2, "need at least two periods");
  const auto* power =
      dynamic_cast<const PowerLawWaitingFunction*>(wf_.get());
  if (power == nullptr) return;
  power_ = true;
  norm_ = power->normalization();
  gamma_ = power->gamma();
  const double beta = power->beta();
  node_pow_.assign(periods_ * kGaussN, 0.0);
  half_.assign(periods_, 0.0);
  for (std::size_t lag = 1; lag < periods_; ++lag) {
    for (std::size_t k = 0; k < kGaussN; ++k) {
      double half = 0.0;
      const double u = gauss_abscissa(lag, k, half);
      node_pow_[lag * kGaussN + k] = std::pow(u + 1.0, -beta);
      half_[lag] = half;
    }
  }
}

double UniformLagWeightTable::weight(double reward, std::size_t lag) const {
  TDP_REQUIRE(lag >= 1 && lag < periods_, "lag out of range");
  if (!power_) {
    return lag_weight(*wf_, reward, lag, LagConvention::kUniformArrival);
  }
  if (reward <= 0.0) return 0.0;
  const double factor = norm_ * std::pow(reward, gamma_);
  const double* np = &node_pow_[lag * kGaussN];
  double acc = 0.0;
  for (std::size_t k = 0; k < kGaussN; ++k) {
    acc += math::kGauss8Weights[k] * (factor * np[k]);
  }
  return acc * half_[lag];
}

}  // namespace tdp
