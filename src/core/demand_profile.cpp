#include "core/demand_profile.hpp"

#include "common/error.hpp"

namespace tdp {

DemandProfile::DemandProfile(std::size_t periods) : mixes_(periods) {
  TDP_REQUIRE(periods >= 2, "a pricing day needs at least two periods");
}

void DemandProfile::add_class(std::size_t period, SessionClass session_class) {
  TDP_REQUIRE(period < mixes_.size(), "period out of range");
  TDP_REQUIRE(session_class.waiting != nullptr,
              "session class needs a waiting function");
  TDP_REQUIRE(session_class.volume >= 0.0, "volume must be nonnegative");
  mixes_[period].push_back(std::move(session_class));
}

const std::vector<SessionClass>& DemandProfile::classes(
    std::size_t period) const {
  TDP_REQUIRE(period < mixes_.size(), "period out of range");
  return mixes_[period];
}

double DemandProfile::tip_demand(std::size_t period) const {
  TDP_REQUIRE(period < mixes_.size(), "period out of range");
  double total = 0.0;
  for (const SessionClass& sc : mixes_[period]) total += sc.volume;
  return total;
}

std::vector<double> DemandProfile::tip_demand_vector() const {
  std::vector<double> out(mixes_.size(), 0.0);
  for (std::size_t i = 0; i < mixes_.size(); ++i) out[i] = tip_demand(i);
  return out;
}

double DemandProfile::total_demand() const {
  double total = 0.0;
  for (std::size_t i = 0; i < mixes_.size(); ++i) total += tip_demand(i);
  return total;
}

void DemandProfile::set_classes(std::size_t period,
                                std::vector<SessionClass> classes) {
  TDP_REQUIRE(period < mixes_.size(), "period out of range");
  for (const SessionClass& sc : classes) {
    TDP_REQUIRE(sc.waiting != nullptr, "session class needs a waiting function");
    TDP_REQUIRE(sc.volume >= 0.0, "volume must be nonnegative");
  }
  mixes_[period] = std::move(classes);
}

void DemandProfile::set_volume(std::size_t period, std::size_t class_index,
                               double volume) {
  TDP_REQUIRE(period < mixes_.size(), "period out of range");
  TDP_REQUIRE(class_index < mixes_[period].size(), "class index out of range");
  TDP_REQUIRE(volume >= 0.0, "volume must be nonnegative");
  mixes_[period][class_index].volume = volume;
}

void DemandProfile::scale_period(std::size_t period, double factor) {
  TDP_REQUIRE(period < mixes_.size(), "period out of range");
  TDP_REQUIRE(factor >= 0.0, "scale factor must be nonnegative");
  for (SessionClass& sc : mixes_[period]) sc.volume *= factor;
}

}  // namespace tdp
