// Demand profiles: who wants how much bandwidth in each period, and how
// willing each slice of that demand is to wait.
//
// A period's demand is a mix of session classes; each class has an aggregate
// volume (in demand units, i.e. 10 MBps sustained for one period) and a
// waiting function. This matches the paper's setup where "waiting functions
// may ... represent an aggregate of users' willingnesses to wait, averaged
// over concurrent sessions" and the evaluation's per-patience-index mixes
// (Tables VII, VIII).
#pragma once

#include <cstddef>
#include <vector>

#include "core/waiting_function.hpp"

namespace tdp {

/// One homogeneous slice of a period's demand.
struct SessionClass {
  WaitingFunctionPtr waiting;  ///< never null
  double volume = 0.0;         ///< demand units originally in this period
};

/// Demand under time-independent pricing for all n periods.
class DemandProfile {
 public:
  explicit DemandProfile(std::size_t periods);

  std::size_t periods() const { return mixes_.size(); }

  /// Add a session class to period i (0-based).
  void add_class(std::size_t period, SessionClass session_class);

  const std::vector<SessionClass>& classes(std::size_t period) const;

  /// X_i: total demand under TIP in period i.
  double tip_demand(std::size_t period) const;

  /// All X_i as a vector.
  std::vector<double> tip_demand_vector() const;

  /// Total daily demand (sum of X_i).
  double total_demand() const;

  /// Replace period `period`'s classes wholesale (perturbation studies).
  void set_classes(std::size_t period, std::vector<SessionClass> classes);

  /// Scale all class volumes in a period by `factor` >= 0. Used by the
  /// online algorithm when measured arrivals differ from the forecast.
  void scale_period(std::size_t period, double factor);

  /// Overwrite one class's volume exactly. Checkpoint restore rebuilds a
  /// baseline profile and installs the saved volumes bit-for-bit through
  /// this (scale_period cannot: a multiply round-trips through rounding).
  void set_volume(std::size_t period, std::size_t class_index, double volume);

 private:
  std::vector<std::vector<SessionClass>> mixes_;
};

}  // namespace tdp
