// Deferral kernel: aggregate deferred volume between period pairs.
//
// Both the static and dynamic models repeatedly need
//
//   V(from, to, p) = sum_{j in from} v_j * w_j(p, lag(from, to))
//
// — the volume deferred from one period to another at reward p — and its
// reward derivative. The kernel snapshots the demand mix, supports two lag
// conventions (Prop. 5):
//
//   kPeriodStart:    sessions start at the period boundary; the lag is the
//                    integer cyclic distance (static model, Section II);
//   kUniformArrival: arrival times are uniform within the period, so the
//                    effective waiting-function weight is the average
//                    integral_0^1 w(p, L-1+u) du (dynamic model, Appendix F);
//
// and precomputes unit-reward coefficients when every waiting function is
// linear in the reward, making model evaluations pure arithmetic.
#pragma once

#include <cstddef>
#include <vector>

#include "core/demand_profile.hpp"

namespace tdp {

enum class LagConvention { kPeriodStart, kUniformArrival };

/// Effective waiting weight for a whole-period lag L under a convention:
/// w(p, L) for kPeriodStart, or the uniform-arrival average
/// integral_{L-1}^{L} w(p, u) du for kUniformArrival. Shared by the kernel
/// and the session-level stochastic simulator so the two agree exactly in
/// expectation.
double lag_weight(const WaitingFunction& w, double reward, std::size_t lag,
                  LagConvention convention);

/// d/dp of lag_weight.
double lag_weight_derivative(const WaitingFunction& w, double reward,
                             std::size_t lag, LagConvention convention);

class DeferralKernel {
 public:
  DeferralKernel(const DemandProfile& demand, LagConvention convention);

  std::size_t periods() const { return periods_; }
  LagConvention convention() const { return convention_; }

  /// True when all waiting functions are linear in the reward, enabling the
  /// precomputed fast path.
  bool linear() const { return linear_; }

  /// Volume deferred from `from` to `to` (!= from) at reward p.
  double pair_volume(std::size_t from, std::size_t to, double reward) const;

  /// d/dp of pair_volume.
  double pair_volume_derivative(std::size_t from, std::size_t to,
                                double reward) const;

  /// sum over sources k != into of pair_volume(k, into, reward).
  double inflow(std::size_t into, double reward) const;

  /// d/dp of inflow.
  double inflow_derivative(std::size_t into, double reward) const;

  /// sum over targets m != from of pair_volume(from, m, rewards[m]).
  double outflow(std::size_t from, const std::vector<double>& rewards) const;

  /// Largest uniform reward r such that no period's outflow at rewards
  /// r*(1,...,1) exceeds its demand — the model's probabilistic validity
  /// bound ("usage deferred out of a period is not greater than demand
  /// under TIP"). Under a normalization matched to the kernel's lag
  /// convention this equals the normalization point P. Returns +inf when
  /// there is no demand to defer.
  double max_safe_reward() const;

 private:
  std::size_t periods_;
  LagConvention convention_;
  bool linear_ = false;
  /// Snapshot of the demand mix (shared waiting-function handles).
  std::vector<std::vector<SessionClass>> classes_;
  /// unit_[from * n + to]: pair volume at unit reward (linear fast path).
  std::vector<double> unit_;
  /// Column sums: inflow into each target at unit reward.
  std::vector<double> unit_inflow_;
};

}  // namespace tdp
