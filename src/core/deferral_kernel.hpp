// Deferral kernel: aggregate deferred volume between period pairs.
//
// Both the static and dynamic models repeatedly need
//
//   V(from, to, p) = sum_{j in from} v_j * w_j(p, lag(from, to))
//
// — the volume deferred from one period to another at reward p — and its
// reward derivative. The kernel snapshots the demand mix, supports two lag
// conventions (Prop. 5):
//
//   kPeriodStart:    sessions start at the period boundary; the lag is the
//                    integer cyclic distance (static model, Section II);
//   kUniformArrival: arrival times are uniform within the period, so the
//                    effective waiting-function weight is the average
//                    integral_0^1 w(p, L-1+u) du (dynamic model, Appendix F);
//
// and precomputes unit-reward coefficients when every waiting function is
// linear in the reward, making model evaluations pure arithmetic.
//
// Construction is memoized: kernels built from bitwise-identical demand
// snapshots (same waiting-function objects, same volume bit patterns, same
// convention) share one immutable state — the unit tables, the lazily
// computed validity bound, and the fused evaluation plan (core/kernel_plan)
// are computed once per distinct profile, not once per model. The batch
// solver's anchor pattern and the online pricer's confirmed-forecast
// rescale (a scale-by-1.0 no-op) both hit this cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/demand_profile.hpp"

namespace tdp {

enum class LagConvention { kPeriodStart, kUniformArrival };

class KernelPlan;
struct DeferralKernelState;

/// Effective waiting weight for a whole-period lag L under a convention:
/// w(p, L) for kPeriodStart, or the uniform-arrival average
/// integral_{L-1}^{L} w(p, u) du for kUniformArrival. Shared by the kernel
/// and the session-level stochastic simulator so the two agree exactly in
/// expectation.
double lag_weight(const WaitingFunction& w, double reward, std::size_t lag,
                  LagConvention convention);

/// d/dp of lag_weight.
double lag_weight_derivative(const WaitingFunction& w, double reward,
                             std::size_t lag, LagConvention convention);

/// lag_weight and lag_weight_derivative in one pass: each waiting function
/// is evaluated once per (lag, reward) — one fused virtual call for
/// kPeriodStart, one quadrature sweep accumulating both integrals for
/// kUniformArrival — with results bitwise identical to the separate calls.
void lag_weight_pair(const WaitingFunction& w, double reward, std::size_t lag,
                     LagConvention convention, double& value_out,
                     double& derivative_out);

class DeferralKernel {
 public:
  DeferralKernel(const DemandProfile& demand, LagConvention convention);

  std::size_t periods() const { return periods_; }
  LagConvention convention() const { return convention_; }

  /// True when all waiting functions are linear in the reward, enabling the
  /// precomputed fast path.
  bool linear() const { return linear_; }

  /// Volume deferred from `from` to `to` (!= from) at reward p.
  double pair_volume(std::size_t from, std::size_t to, double reward) const;

  /// d/dp of pair_volume.
  double pair_volume_derivative(std::size_t from, std::size_t to,
                                double reward) const;

  /// sum over sources k != into of pair_volume(k, into, reward).
  double inflow(std::size_t into, double reward) const;

  /// d/dp of inflow.
  double inflow_derivative(std::size_t into, double reward) const;

  /// sum over targets m != from of pair_volume(from, m, rewards[m]).
  double outflow(std::size_t from, const std::vector<double>& rewards) const;

  /// Largest uniform reward r such that no period's outflow at rewards
  /// r*(1,...,1) exceeds its demand — the model's probabilistic validity
  /// bound ("usage deferred out of a period is not greater than demand
  /// under TIP"). Under a normalization matched to the kernel's lag
  /// convention this equals the normalization point P. Returns +inf when
  /// there is no demand to defer. Computed once per shared state.
  double max_safe_reward() const;

  /// The fused structure-of-arrays evaluation plan for this demand
  /// snapshot, built lazily once per shared state (see core/kernel_plan).
  std::shared_ptr<const KernelPlan> plan() const;

  /// Class mix snapshot for period i (plan construction, tests).
  const std::vector<SessionClass>& classes(std::size_t period) const;

  /// Unit-reward pair volumes / column sums (empty unless linear()).
  const std::vector<double>& unit_table() const;
  const std::vector<double>& unit_inflow_table() const;

  /// Identity of the shared construction state — equal for kernels that hit
  /// the same memo entry. Diagnostics/tests only.
  const void* state_id() const;

  /// Monotone counters for the construction memo (process-wide).
  static std::uint64_t cache_hits();
  static std::uint64_t cache_misses();

 private:
  std::size_t periods_;
  LagConvention convention_;
  bool linear_ = false;
  /// Shared immutable snapshot: class lists, unit tables, lazy validity
  /// bound and evaluation plan. Kernels from bitwise-identical profiles
  /// point at the same state (bounded process-wide memo).
  std::shared_ptr<const DeferralKernelState> state_;
};

}  // namespace tdp
