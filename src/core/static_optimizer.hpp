// Price determination for the static model: smoothing continuation + FISTA.
//
// The exact objective is convex but nonsmooth (f has kinks at capacity).
// We minimize the mu-smoothed objective — also convex, with an analytic
// gradient — and shrink mu geometrically, warm-starting each stage from the
// previous solution. The smoothing gap is bounded by f's total slope jump
// times mu/2 per period, so the final stage's solution is within a provable
// tolerance of the true optimum guaranteed by Prop. 3.
#pragma once

#include <cstddef>

#include "core/static_model.hpp"
#include "math/fista.hpp"

namespace tdp {

struct StaticOptimizerOptions {
  /// Smoothing continuation: mu runs from initial to final, multiplied by
  /// decay at each stage.
  double mu_initial = 1.0;
  double mu_final = 1e-5;
  double mu_decay = 0.1;
  /// Reward upper bound as a multiple of the model's max_reward() (P).
  /// 1.0 is correct for the static model (no rational reward exceeds P).
  double reward_cap_factor = 1.0;
  /// Optional warm start: when non-empty (and sized to the model's period
  /// count) the continuation begins from this reward vector, projected onto
  /// the box, instead of zeros. The problem is convex, so the optimum is
  /// unchanged; a start near the solution just cuts FISTA iterations. The
  /// batch engine feeds each task's warm start deterministically.
  math::Vector initial_rewards;
  math::FistaOptions fista;

  StaticOptimizerOptions() {
    fista.max_iterations = 4000;
    fista.step_tolerance = 1e-10;
  }
};

struct PricingSolution {
  math::Vector rewards;       ///< optimal p_i (money units)
  math::Vector usage;         ///< x_i under those rewards (demand units)
  double total_cost = 0.0;    ///< exact objective at `rewards`
  double reward_cost = 0.0;   ///< sum p_i * (deferred into i)
  double capacity_cost = 0.0; ///< sum f(x_i - A_i)
  double tip_cost = 0.0;      ///< baseline cost with no rewards
  std::size_t iterations = 0; ///< total FISTA iterations over all stages
  bool converged = false;
};

/// Solve the static model's price optimization (globally, per Prop. 3).
PricingSolution optimize_static_prices(
    const StaticModel& model, const StaticOptimizerOptions& options = {});

}  // namespace tdp
