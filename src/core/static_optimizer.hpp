// Price determination for the static model: smoothing continuation + FISTA.
//
// The exact objective is convex but nonsmooth (f has kinks at capacity).
// We minimize the mu-smoothed objective — also convex, with an analytic
// gradient — and shrink mu geometrically, warm-starting each stage from the
// previous solution. The smoothing gap is bounded by f's total slope jump
// times mu/2 per period, so the final stage's solution is within a provable
// tolerance of the true optimum guaranteed by Prop. 3.
#pragma once

#include <cstddef>

#include "core/static_model.hpp"
#include "math/fista.hpp"
#include "math/golden_section.hpp"

namespace tdp {

struct StaticOptimizerOptions {
  /// Smoothing continuation: mu runs from initial to final, multiplied by
  /// decay at each stage.
  double mu_initial = 1.0;
  double mu_final = 1e-5;
  double mu_decay = 0.1;
  /// Reward upper bound as a multiple of the model's max_reward() (P).
  /// 1.0 is correct for the static model (no rational reward exceeds P).
  double reward_cap_factor = 1.0;
  /// Optional warm start: when non-empty (and sized to the model's period
  /// count) the continuation begins from this reward vector, projected onto
  /// the box, instead of zeros. The problem is convex, so the optimum is
  /// unchanged; a start near the solution just cuts FISTA iterations. The
  /// batch engine feeds each task's warm start deterministically.
  math::Vector initial_rewards;
  math::FistaOptions fista;
  /// Evaluate the continuation stages through the fused kernel plan
  /// (core/kernel_plan): one structure-of-arrays flow evaluation per FISTA
  /// value/gradient instead of O(n^2) per-class kernel walks. Bitwise
  /// identical to the reference path (property-tested); disable to run the
  /// reference objective as the oracle.
  bool fused = true;

  StaticOptimizerOptions() {
    fista.max_iterations = 4000;
    fista.step_tolerance = 1e-10;
  }
};

struct PricingSolution {
  math::Vector rewards;       ///< optimal p_i (money units)
  math::Vector usage;         ///< x_i under those rewards (demand units)
  double total_cost = 0.0;    ///< exact objective at `rewards`
  double reward_cost = 0.0;   ///< sum p_i * (deferred into i)
  double capacity_cost = 0.0; ///< sum f(x_i - A_i)
  double tip_cost = 0.0;      ///< baseline cost with no rewards
  std::size_t iterations = 0; ///< total FISTA iterations over all stages
  bool converged = false;
};

/// Solve the static model's price optimization (globally, per Prop. 3).
PricingSolution optimize_static_prices(
    const StaticModel& model, const StaticOptimizerOptions& options = {});

/// Re-solve a single period's reward with all others held fixed, by
/// golden-section search over the exact objective. Uses the incremental
/// kernel-plan path: the first evaluation primes (or reuses) `state`'s
/// cached pair matrix and every candidate after that is an O(n) column
/// update instead of a full O(n^2) evaluation. On return `rewards[period]`
/// holds the minimizer and `state` is positioned at the updated vector.
///
/// `state` must either be unprimed (prime happens here) or already primed
/// on this model's kernel plan at `rewards` — reusing one state across a
/// sweep of coordinate re-solves amortizes the O(n^2) prime once.
math::GoldenSectionResult resolve_static_coordinate(
    const StaticModel& model, math::Vector& rewards, std::size_t period,
    FlowState& state, double reward_cap, double tolerance = 1e-7,
    std::size_t max_iterations = 200);

}  // namespace tdp
