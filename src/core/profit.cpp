#include "core/profit.hpp"

#include "common/error.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

ProfitBreakdown evaluate_profit(const StaticModel& model,
                                const math::Vector& rewards,
                                double flat_usage_price,
                                double marginal_op_cost) {
  TDP_REQUIRE(flat_usage_price >= 0.0, "flat price must be nonnegative");
  TDP_REQUIRE(marginal_op_cost >= 0.0, "marginal cost must be nonnegative");

  ProfitBreakdown out;
  // One fused kernel evaluation covers both usage and the reward cost
  // (bitwise identical to the per-call reference accessors).
  FlowState state;
  const math::Vector x = model.usage(rewards, state);
  out.revenue = flat_usage_price * model.demand().total_demand();
  out.reward_cost = model.reward_cost(state);
  out.operational_cost = marginal_op_cost * math::sum(x);
  out.capacity_cost = model.capacity_cost_value(x);
  out.profit = out.revenue - out.reward_cost - out.operational_cost -
               out.capacity_cost;
  return out;
}

}  // namespace tdp
