// The static session model (Section II, Props. 1-3).
//
// Variables are the per-period rewards p_i >= 0. Usage obeys the flow
// balance (eq. 2)
//
//   x_i = X_i - sum_{j in i} v_j sum_{k != i} w_j(p_k, k-i)
//             + sum_{k != i} sum_{j in k} v_j w_j(p_i, i-k),
//
// and the ISP minimizes (eq. 1)
//
//   C(p) = sum_i [ p_i * (traffic deferred into i) + f(x_i - A_i) ].
//
// With waiting functions concave increasing in p and f piecewise linear this
// is convex (Prop. 3); the optimizer minimizes a Huber-smoothed version of
// f with an analytic gradient and drives the smoothing to zero.
#pragma once

#include <cstddef>
#include <vector>

#include "core/deferral_kernel.hpp"
#include "core/demand_profile.hpp"
#include "core/kernel_plan.hpp"
#include "math/piecewise_linear.hpp"
#include "math/vector_ops.hpp"

namespace tdp {

class StaticModel {
 public:
  /// @param demand        per-period TIP demand mixes.
  /// @param capacity      A_i per period (demand units); size must equal
  ///                      demand.periods().
  /// @param capacity_cost f, applied to (x_i - A_i) in every period.
  StaticModel(DemandProfile demand, std::vector<double> capacity,
              math::PiecewiseLinearCost capacity_cost);

  /// Convenience: constant capacity in every period.
  StaticModel(DemandProfile demand, double capacity,
              math::PiecewiseLinearCost capacity_cost);

  std::size_t periods() const { return demand_.periods(); }
  const DemandProfile& demand() const { return demand_; }
  const std::vector<double>& capacity() const { return capacity_; }
  const math::PiecewiseLinearCost& capacity_cost() const { return cost_; }

  /// P: the maximum rational reward = max marginal cost of exceeding
  /// capacity (Appendix C's argument). Used as the optimizer's box bound
  /// and as the waiting-function normalization point.
  double max_reward() const { return cost_.max_slope(); }

  /// Traffic deferred into period i when its reward is p_i (demand units).
  double deferred_in(std::size_t into, double reward) const;

  /// d/dp of deferred_in.
  double deferred_in_derivative(std::size_t into, double reward) const;

  /// Traffic deferred out of period i under the full reward vector.
  double deferred_out(std::size_t from, const math::Vector& rewards) const;

  /// Sensitivity of period `from`'s outflow toward period `to` w.r.t. the
  /// reward of period `to`:  sum_{j in from} v_j * dw_j/dp (p_to, lag).
  double outflow_derivative(std::size_t from, std::size_t to,
                            double reward_to) const;

  /// x_i for all periods under the reward vector (eq. 2).
  math::Vector usage(const math::Vector& rewards) const;

  /// sum_i p_i * deferred_in(i, p_i).
  double reward_cost(const math::Vector& rewards) const;

  /// sum_i f(x_i - A_i) for a given usage vector.
  double capacity_cost_value(const math::Vector& usage) const;

  /// Exact objective C(p) (eq. 1).
  double total_cost(const math::Vector& rewards) const;

  /// Cost with no rewards offered — the TIP baseline.
  double tip_cost() const;

  /// Objective with f replaced by its mu-smoothed version.
  double smoothed_cost(const math::Vector& rewards, double mu) const;

  /// Analytic gradient of smoothed_cost (grad pre-sized to periods()).
  void smoothed_gradient(const math::Vector& rewards, double mu,
                         math::Vector& grad) const;

  /// The pairwise deferral kernel (period-start lag convention).
  const DeferralKernel& kernel() const { return kernel_; }

  // ---- Fused fast path (core/kernel_plan) --------------------------------
  // These overloads evaluate through the kernel's structure-of-arrays plan
  // with a caller-owned FlowState scratch. Every result is bitwise
  // identical to the reference method of the same name; the reference path
  // stays as the oracle (tests/test_kernel_plan.cpp).

  /// Fill `state` with the deferral flows at `rewards` (the pair matrix is
  /// cached inside `state` for subsequent update_coordinate calls).
  void prime_flow_state(const math::Vector& rewards, bool with_derivatives,
                        FlowState& state) const;

  /// total_cost via the plan; primes `state` at `rewards`.
  double total_cost(const math::Vector& rewards, FlowState& state) const;

  /// total_cost after changing only coordinate `period`'s reward — O(n)
  /// kernel work against the matrix cached in `state` (which must have been
  /// primed on this model). Leaves `state` at the updated reward vector.
  double total_cost_with_coordinate(std::size_t period, double reward,
                                    FlowState& state) const;

  /// usage via the plan; primes `state` at `rewards` (no derivatives).
  math::Vector usage(const math::Vector& rewards, FlowState& state) const;

  /// reward_cost read off an already-primed `state`.
  double reward_cost(const FlowState& state) const;

  /// smoothed_cost via the plan; primes `state` at `rewards`.
  double smoothed_cost(const math::Vector& rewards, double mu,
                       FlowState& state) const;

  /// smoothed_cost and its gradient in one flow evaluation (the reference
  /// path recomputes the flows for the value and again for the gradient).
  double smoothed_cost_and_gradient(const math::Vector& rewards, double mu,
                                    math::Vector& grad,
                                    FlowState& state) const;

 private:
  double assemble_total_cost(FlowState& state) const;

  DemandProfile demand_;
  std::vector<double> capacity_;
  math::PiecewiseLinearCost cost_;
  DeferralKernel kernel_;
  math::Vector tip_;  ///< cached tip_demand_vector() for the fast path
};

}  // namespace tdp
