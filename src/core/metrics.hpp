// Traffic-profile metrics used throughout the evaluation (Section V).
//
// "Residue spread" is the paper's measure of how uneven a traffic profile
// is: the area between the profile and the constant profile with the same
// total usage. We compute it in demand-unit-periods (10 MBps sustained for
// one period) and provide conversions to MB/GB. The paper's absolute GB
// figures use an unstated time convention (see DESIGN.md); all comparisons
// in EXPERIMENTS.md are therefore made on ratios, which are unit-free.
#pragma once

#include <cstddef>
#include <vector>

namespace tdp {

/// Area between `profile` and the constant profile with equal total usage,
/// in (demand units) x (periods).
double residue_spread(const std::vector<double>& profile);

/// Area between two profiles of equal length: sum_i |a_i - b_i|.
double area_between(const std::vector<double>& a,
                    const std::vector<double>& b);

/// max_i profile_i - min_i profile_i.
double peak_to_valley(const std::vector<double>& profile);

/// Fraction of total traffic moved between periods: half the area between
/// the TIP and TDP profiles divided by total traffic (every moved unit
/// leaves one period and enters another, so the area double-counts it).
double redistributed_fraction(const std::vector<double>& tip,
                              const std::vector<double>& tdp);

/// Convert demand-unit-periods to megabytes (10 MBps * 1800 s per unit).
double unit_periods_to_mb(double unit_periods);

/// Convert demand-unit-periods to gigabytes.
double unit_periods_to_gb(double unit_periods);

/// Per-user daily cost in dollars from a cost in money units ($0.10).
double per_user_daily_cost_dollars(double cost_money_units,
                                   std::size_t users);

}  // namespace tdp
