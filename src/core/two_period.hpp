// Two-period TDP baseline (the day/evening schemes of Table I).
//
// The paper argues that "the multiple peaks and valleys in bandwidth usage
// over one day make 2 period TDP inadequate." This module implements the
// classical scheme as a constrained special case of the static model: the
// day is pre-classified into peak and off-peak periods (by TIP demand
// against a threshold), a single reward level applies to every off-peak
// period, and peak periods get none. The optimizer brute-forces the
// (threshold, reward) pair — exactly the design space a 2-period tariff
// has — so the gap to the n-period optimum quantifies the intro's claim.
#pragma once

#include <cstddef>
#include <vector>

#include "core/static_model.hpp"

namespace tdp {

struct TwoPeriodSolution {
  double off_peak_reward = 0.0;
  double demand_threshold = 0.0;    ///< periods with TIP demand below this
                                    ///< are off-peak (reward targets)
  std::vector<bool> off_peak;       ///< classification per period
  math::Vector rewards;             ///< expanded per-period schedule
  math::Vector usage;
  double total_cost = 0.0;
  double tip_cost = 0.0;
};

struct TwoPeriodOptions {
  std::size_t reward_levels = 64;     ///< grid on [0, max rational reward]
  std::size_t threshold_levels = 24;  ///< grid between min and max demand
};

/// Best 2-period tariff for the given model.
TwoPeriodSolution optimize_two_period_prices(
    const StaticModel& model, const TwoPeriodOptions& options = {});

}  // namespace tdp
