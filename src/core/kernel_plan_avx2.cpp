// AVX2 implementation of the KernelPlan fill/reduce inner loops.
// Compiled with -mavx2 (per-source flag in src/core/CMakeLists.txt);
// reached only when simd::mode() == kAvx2 at runtime.
//
// Lane discipline (see common/simd.hpp): a lane is one independent output
// — one (from, to) pair volume or one column's inflow sum — and executes
// exactly the scalar operation sequence for that output. No horizontal
// reductions, no fused multiply-adds (-ffp-contract=off globally, and the
// intrinsics below are explicit mul/add), no transcendentals (the pow
// calls happened once at plan build; the reward factors are computed
// scalar-side in fill_column's prologue). Scalar and AVX2 evaluations are
// therefore bitwise identical; tests/test_simd.cpp flips the mode at
// runtime and EXPECT_EQs every double.
//
// Row grouping: for a fixed column `to`, the cyclic lag decreases by
// exactly 1 as `from` increases, on each of the two runs [0, to) and
// (to, n). A group of four consecutive rows therefore reads four
// *consecutive* table lags — lag_pow / lag_half load contiguously (with a
// lane reversal, since lag descends as the lane index ascends) and the
// 8-node Gauss rows of node_pow transpose from four adjacent rows.
#include "core/kernel_plan.hpp"

#if defined(TDP_HAVE_AVX2)

#include <immintrin.h>

#include "math/quadrature.hpp"

namespace tdp {
namespace {

constexpr std::size_t kGaussN = math::kGauss8Nodes.size();

// [m0, m1, m2, m3] -> [m3, m2, m1, m0]: maps an ascending-lag memory load
// onto ascending-lane (descending-lag) order.
inline __m256d reverse(__m256d v) { return _mm256_permute4x64_pd(v, 0x1B); }

// Transpose four 4-wide row loads into four lane-major columns:
// out_j[l] = row_l[j].
inline void transpose4(__m256d r0, __m256d r1, __m256d r2, __m256d r3,
                       __m256d out[4]) {
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  out[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
  out[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
  out[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
  out[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
}

}  // namespace

void KernelPlan::fill_column_avx2(std::size_t to, double reward,
                                  bool positive, bool with_derivatives,
                                  FlowState& s) const {
  const std::size_t n = periods_;
  const std::size_t slots = period_begin_[1] - period_begin_[0];
  double* V = s.pair.data();
  double* dV = s.pair_derivative.data();
  const double* factor = s.wf_factor.data();
  const double* dfactor = s.wf_factor_derivative.data();

  // One run of rows with lag(from) = lag0 - (from - from0); both runs for
  // a column satisfy this (lag decreases by 1 per row, no wrap inside).
  const auto run = [&](std::size_t from0, std::size_t count,
                       std::size_t lag0) {
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const std::size_t f = from0 + i;   // lane l holds row f + l
      const std::size_t lag = lag0 - i;  // lane l's lag is lag - l >= 1
      __m256d vol = _mm256_setzero_pd();
      __m256d dvol = _mm256_setzero_pd();
      for (std::size_t t = 0; t < slots; ++t) {
        const std::uint32_t w = term_wf_[t];
        const __m256d v = _mm256_loadu_pd(&slot_volume_[t * n + f]);
        if (functions_[w].kind == WfKind::kPowerStart) {
          const __m256d lp =
              reverse(_mm256_loadu_pd(&lag_pow_[w * n + lag - 3]));
          if (positive) {
            const __m256d fl = _mm256_mul_pd(_mm256_set1_pd(factor[w]), lp);
            vol = _mm256_add_pd(vol, _mm256_mul_pd(v, fl));
          }
          if (with_derivatives) {
            const __m256d fl = _mm256_mul_pd(_mm256_set1_pd(dfactor[w]), lp);
            dvol = _mm256_add_pd(dvol, _mm256_mul_pd(v, fl));
          }
        } else {  // kPowerUniform (generic slots are ineligible)
          // Lane l's Gauss row starts at (w * n + lag - l) * 8; transpose
          // the four adjacent rows into one vector per node index.
          const double* row0 = &node_pow_[(w * n + lag) * kGaussN];
          __m256d np[kGaussN];
          for (std::size_t kb = 0; kb < kGaussN; kb += 4) {
            transpose4(_mm256_loadu_pd(row0 + kb),
                       _mm256_loadu_pd(row0 - kGaussN + kb),
                       _mm256_loadu_pd(row0 - 2 * kGaussN + kb),
                       _mm256_loadu_pd(row0 - 3 * kGaussN + kb), np + kb);
          }
          const __m256d half =
              reverse(_mm256_loadu_pd(&lag_half_[lag - 3]));
          if (positive) {
            const __m256d fw = _mm256_set1_pd(factor[w]);
            __m256d acc = _mm256_setzero_pd();
            for (std::size_t k = 0; k < kGaussN; ++k) {
              acc = _mm256_add_pd(
                  acc, _mm256_mul_pd(_mm256_set1_pd(math::kGauss8Weights[k]),
                                     _mm256_mul_pd(fw, np[k])));
            }
            vol = _mm256_add_pd(vol,
                                _mm256_mul_pd(v, _mm256_mul_pd(acc, half)));
          }
          if (with_derivatives) {
            const __m256d fw = _mm256_set1_pd(dfactor[w]);
            __m256d acc = _mm256_setzero_pd();
            for (std::size_t k = 0; k < kGaussN; ++k) {
              acc = _mm256_add_pd(
                  acc, _mm256_mul_pd(_mm256_set1_pd(math::kGauss8Weights[k]),
                                     _mm256_mul_pd(fw, np[k])));
            }
            dvol = _mm256_add_pd(
                dvol, _mm256_mul_pd(v, _mm256_mul_pd(acc, half)));
          }
        }
      }
      // Column-stride stores. When !positive the accumulator stayed +0.0,
      // matching the scalar path's literal 0.0 store bit for bit.
      alignas(32) double out[4];
      _mm256_store_pd(out, vol);
      for (std::size_t l = 0; l < 4; ++l) V[(f + l) * n + to] = out[l];
      if (with_derivatives) {
        _mm256_store_pd(out, dvol);
        for (std::size_t l = 0; l < 4; ++l) dV[(f + l) * n + to] = out[l];
      }
    }
    for (; i < count; ++i) {
      fill_cell(from0 + i, to, lag0 - i, reward, positive, with_derivatives,
                s);
    }
  };

  // from in [0, to): lag = to - from, descending to 1.
  if (to > 0) run(0, to, to);
  // from in (to, n): lag = n - (from - to), descending to to + 1.
  if (to + 1 < n) run(to + 1, n - to - 1, n - 1);
}

void KernelPlan::reduce_inflow4_avx2(std::size_t into0, bool with_derivatives,
                                     FlowState& s) const {
  const std::size_t n = periods_;
  const double* P = s.pair.data();

  // Lane l accumulates column into0 + l in ascending `from` order; the
  // diagonal row (from == into0 + l) keeps that lane's partial sum via a
  // blend — the skipped slot is never touched, exactly like the scalar
  // `continue`.
  __m256d total = _mm256_setzero_pd();
  for (std::size_t from = 0; from < n; ++from) {
    const __m256d sum =
        _mm256_add_pd(total, _mm256_loadu_pd(P + from * n + into0));
    switch (from - into0) {  // unsigned: > 3 means off-diagonal
      case 0: total = _mm256_blend_pd(sum, total, 0x1); break;
      case 1: total = _mm256_blend_pd(sum, total, 0x2); break;
      case 2: total = _mm256_blend_pd(sum, total, 0x4); break;
      case 3: total = _mm256_blend_pd(sum, total, 0x8); break;
      default: total = sum; break;
    }
  }
  alignas(32) double out[4];
  _mm256_store_pd(out, total);
  for (std::size_t l = 0; l < 4; ++l) {
    s.inflow[into0 + l] = s.rewards[into0 + l] <= 0.0 ? 0.0 : out[l];
  }

  if (!with_derivatives) return;
  const double* dP = s.pair_derivative.data();
  __m256d dtotal = _mm256_setzero_pd();
  for (std::size_t from = 0; from < n; ++from) {
    const __m256d sum =
        _mm256_add_pd(dtotal, _mm256_loadu_pd(dP + from * n + into0));
    switch (from - into0) {
      case 0: dtotal = _mm256_blend_pd(sum, dtotal, 0x1); break;
      case 1: dtotal = _mm256_blend_pd(sum, dtotal, 0x2); break;
      case 2: dtotal = _mm256_blend_pd(sum, dtotal, 0x4); break;
      case 3: dtotal = _mm256_blend_pd(sum, dtotal, 0x8); break;
      default: dtotal = sum; break;
    }
  }
  _mm256_store_pd(out, dtotal);
  for (std::size_t l = 0; l < 4; ++l) {
    s.inflow_derivative[into0 + l] = out[l];
  }
}

}  // namespace tdp

#endif  // TDP_HAVE_AVX2
