#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tdp {

double residue_spread(const std::vector<double>& profile) {
  TDP_REQUIRE(!profile.empty(), "profile must be nonempty");
  double total = 0.0;
  for (double v : profile) total += v;
  const double mean = total / static_cast<double>(profile.size());
  double spread = 0.0;
  for (double v : profile) spread += std::abs(v - mean);
  return spread;
}

double area_between(const std::vector<double>& a,
                    const std::vector<double>& b) {
  TDP_REQUIRE(a.size() == b.size() && !a.empty(),
              "profiles must be nonempty and equal-length");
  double area = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) area += std::abs(a[i] - b[i]);
  return area;
}

double peak_to_valley(const std::vector<double>& profile) {
  TDP_REQUIRE(!profile.empty(), "profile must be nonempty");
  const auto [lo, hi] = std::minmax_element(profile.begin(), profile.end());
  return *hi - *lo;
}

double redistributed_fraction(const std::vector<double>& tip,
                              const std::vector<double>& tdp) {
  double total = 0.0;
  for (double v : tip) total += v;
  TDP_REQUIRE(total > 0.0, "total traffic must be positive");
  return 0.5 * area_between(tip, tdp) / total;
}

double unit_periods_to_mb(double unit_periods) {
  return unit_periods * kMBpsPerDemandUnit * kSecondsPerPeriod;
}

double unit_periods_to_gb(double unit_periods) {
  return unit_periods_to_mb(unit_periods) / 1000.0;
}

double per_user_daily_cost_dollars(double cost_money_units,
                                   std::size_t users) {
  TDP_REQUIRE(users > 0, "need at least one user");
  return to_dollars(cost_money_units) / static_cast<double>(users);
}

}  // namespace tdp
