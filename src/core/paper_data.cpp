#include "core/paper_data.hpp"

#include <memory>

#include "common/error.hpp"
#include "math/piecewise_linear.hpp"

namespace tdp::paper {
namespace {

// Table VII rows; each covers two consecutive periods.
constexpr std::array<MixRow, 24> kTable7 = {{
    {5, 5, 7, 1, 1, 0, 2, 0, 0, 2},    // periods 1 & 2
    {4, 3, 7, 0, 0, 0, 2, 0, 0, 4},    // 3 & 4
    {3, 2, 5, 1, 1, 0, 1, 0, 0, 3},    // 5 & 6
    {1, 2, 4, 2, 2, 1, 1, 0, 0, 0},    // 7 & 8
    {1, 2, 3, 1, 1, 0, 1, 0, 0, 0},    // 9 & 10
    {1, 2, 2, 0, 0, 0, 1, 0, 1, 1},    // 11 & 12
    {1, 2, 1, 0, 0, 0, 1, 0, 1, 1},    // 13 & 14
    {0, 1, 2, 0, 0, 2, 1, 0, 1, 1},    // 15 & 16
    {1, 3, 2, 0, 1, 0, 1, 1, 1, 1},    // 17 & 18
    {2, 1, 3, 0, 1, 0, 1, 3, 1, 1},    // 19 & 20
    {2, 5, 3, 0, 1, 0, 2, 0, 2, 2},    // 21 & 22
    {5, 5, 7, 1, 1, 0, 2, 0, 0, 2},    // 23 & 24
    {3, 6, 4, 2, 1, 0, 2, 0, 2, 0},    // 25 & 26
    {3, 4, 4, 0, 3, 0, 2, 0, 2, 2},    // 27 & 28
    {3, 4, 4, 2, 1, 0, 2, 0, 2, 2},    // 29 & 30
    {6, 3, 5, 0, 1, 1, 2, 2, 0, 2},    // 31 & 32
    {8, 2, 5, 0, 1, 0, 2, 1, 1, 2},    // 33 & 34
    {4, 7, 2, 0, 1, 0, 2, 5, 0, 2},    // 35 & 36
    {6, 5, 2, 2, 2, 1, 2, 1, 0, 1},    // 37 & 38
    {4, 7, 5, 0, 0, 0, 2, 0, 4, 2},    // 39 & 40
    {7, 6, 7, 0, 1, 2, 0, 0, 0, 0},    // 41 & 42
    {9, 5, 5, 0, 1, 0, 3, 3, 0, 0},    // 43 & 44
    {7, 8, 5, 0, 1, 0, 1, 0, 1, 3},    // 45 & 46
    {8, 11, 5, 0, 0, 0, 0, 3, 0, 0},   // 47 & 48
}};

// Table VIII: 12 periods.
constexpr std::array<MixRow, 12> kTable8 = {{
    {4, 4, 7, 1, 1, 0, 2, 0, 0, 3},
    {2, 2, 4, 1, 1, 0, 1, 0, 0, 2},
    {1, 2, 2, 0, 1, 0, 1, 0, 1, 0},
    {1, 2, 1, 0, 0, 1, 1, 0, 1, 1},
    {1, 2, 2, 0, 1, 0, 1, 2, 1, 1},
    {3, 3, 3, 1, 1, 1, 2, 1, 2, 2},
    {3, 5, 4, 1, 2, 0, 2, 0, 2, 1},
    {5, 4, 5, 1, 1, 1, 2, 1, 1, 2},
    {6, 5, 4, 0, 1, 0, 2, 3, 1, 2},
    {5, 6, 4, 1, 1, 1, 2, 1, 2, 2},
    {8, 5, 6, 0, 1, 1, 1, 1, 0, 0},
    {7, 9, 5, 0, 1, 0, 1, 1, 1, 1},
}};

// Table XI: period-1 mixes for total demand 18..26 units.
constexpr std::array<MixRow, 9> kTable11 = {{
    {4, 3, 6, 0, 0, 0, 2, 0, 0, 3},   // 18
    {3, 3, 6, 1, 0, 0, 2, 0, 0, 4},   // 19
    {3, 3, 6, 1, 1, 0, 2, 0, 0, 4},   // 20
    {3, 3, 7, 1, 1, 0, 2, 0, 0, 4},   // 21
    {3, 4, 7, 1, 1, 0, 2, 0, 0, 4},   // 22 (baseline study row)
    {3, 4, 7, 1, 1, 0, 2, 0, 0, 5},   // 23
    {3, 4, 8, 1, 1, 0, 2, 0, 0, 5},   // 24
    {4, 4, 8, 1, 1, 0, 2, 0, 0, 5},   // 25
    {4, 4, 8, 1, 1, 0, 3, 0, 0, 5},   // 26
}};

// Table XIII: period-1 mis-estimated mix (users less willing to defer).
constexpr MixRow kTable13 = {3, 4, 5, 0, 1, 2, 2, 0, 0, 5};

// Table XV: all-period mis-estimated mixes.
constexpr std::array<MixRow, 12> kTable15 = {{
    {3, 4, 5, 0, 1, 2, 2, 0, 0, 5},
    {2, 2, 4, 1, 1, 0, 1, 0, 0, 2},
    {1, 2, 2, 0, 1, 0, 1, 0, 1, 0},
    {0, 2, 1, 0, 1, 1, 1, 0, 1, 1},
    {1, 2, 2, 0, 1, 0, 1, 2, 1, 1},
    {3, 3, 3, 1, 1, 1, 2, 1, 2, 2},
    {3, 5, 2, 1, 2, 0, 2, 0, 2, 3},
    {2, 4, 5, 1, 1, 1, 2, 1, 3, 2},
    {4, 2, 4, 0, 1, 0, 2, 4, 4, 2},
    {2, 5, 5, 1, 0, 1, 2, 2, 3, 3},
    {5, 4, 2, 3, 1, 1, 2, 1, 2, 1},
    {6, 8, 5, 0, 1, 0, 1, 1, 2, 3},
}};

constexpr std::array<std::string_view, 10> kSessionExamples = {
    "File backup",
    "Non-critical software update",
    "Non-critical file download (e.g. peer-to-peer)",
    "Website browsing",
    "Online purchases",
    "Movie download for immediate viewing",
    "Critical file download or software update",
    "Checking email",
    "Television program streaming",
    "Live sporting event",
};

math::PiecewiseLinearCost static_cost() {
  return math::PiecewiseLinearCost::hinge(kStaticCostSlope, 0.0);
}

}  // namespace

std::string_view session_example(std::size_t patience_slot) {
  TDP_REQUIRE(patience_slot < kSessionExamples.size(),
              "patience slot out of range");
  return kSessionExamples[patience_slot];
}

std::vector<MixRow> table7_mix_48() {
  std::vector<MixRow> rows;
  rows.reserve(48);
  for (const MixRow& pair_row : kTable7) {
    rows.push_back(pair_row);
    rows.push_back(pair_row);
  }
  return rows;
}

std::vector<MixRow> table8_mix_12() {
  return {kTable8.begin(), kTable8.end()};
}

std::vector<double> table5_demand_48() {
  std::vector<double> demand;
  demand.reserve(48);
  for (const MixRow& row : table7_mix_48()) {
    double total = 0.0;
    for (double v : row) total += v;
    demand.push_back(total);
  }
  return demand;
}

std::vector<double> table9_demand_12() {
  std::vector<double> demand;
  demand.reserve(12);
  for (const MixRow& row : kTable8) {
    double total = 0.0;
    for (double v : row) total += v;
    demand.push_back(total);
  }
  return demand;
}

MixRow table11_period1_mix(int total_units) {
  TDP_REQUIRE(total_units >= 18 && total_units <= 26,
              "Table XI covers totals 18..26");
  return kTable11[static_cast<std::size_t>(total_units - 18)];
}

MixRow table13_period1_mix() { return kTable13; }

std::vector<MixRow> table15_mix_12() {
  return {kTable15.begin(), kTable15.end()};
}

DemandProfile make_profile(const std::vector<MixRow>& mix,
                           double max_reward,
                           LagNormalization normalization, double gamma) {
  TDP_REQUIRE(mix.size() >= 2, "need at least two periods");
  const std::size_t n = mix.size();

  // One shared waiting function per patience index (they are identical
  // across periods for a fixed n and normalization).
  std::array<WaitingFunctionPtr, 10> waiting;
  for (std::size_t s = 0; s < kPatienceIndices.size(); ++s) {
    waiting[s] = std::make_shared<PowerLawWaitingFunction>(
        kPatienceIndices[s], n, max_reward, gamma, normalization);
  }

  DemandProfile profile(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < kPatienceIndices.size(); ++s) {
      if (mix[i][s] <= 0.0) continue;
      profile.add_class(i, SessionClass{waiting[s], mix[i][s]});
    }
  }
  return profile;
}

StaticModel static_model_48() {
  return StaticModel(
      make_profile(table7_mix_48(), kStaticNormalizationReward),
      kStaticCapacityUnits, static_cost());
}

StaticModel static_model_12() {
  return StaticModel(
      make_profile(table8_mix_12(), kStaticNormalizationReward),
      kStaticCapacityUnits, static_cost());
}

StaticModel static_model_12_with_period1(const MixRow& period1_mix) {
  std::vector<MixRow> mix = table8_mix_12();
  mix[0] = period1_mix;
  return static_model_12_with_mix(mix);
}

StaticModel static_model_12_with_mix(const std::vector<MixRow>& mix) {
  TDP_REQUIRE(mix.size() == 12, "12-period model needs 12 mix rows");
  return StaticModel(
      make_profile(mix, kStaticNormalizationReward),
      kStaticCapacityUnits, static_cost());
}

}  // namespace tdp::paper
