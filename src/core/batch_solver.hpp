// Parallel batch solving of independent static-model price optimizations.
//
// The headline experiments reduce to solving many independent instances of
// the same convex program — cost sweeps (Fig. 6), sensitivity studies,
// demand perturbations (Table VI/XII) — and the estimation pipeline runs
// multi-start searches of the same shape. BatchSolver evaluates N models
// (or N perturbations produced by a factory) concurrently on the common
// thread pool.
//
// Determinism contract: results are bit-identical for any thread count.
// Each task depends only on its own model and a warm start derived from a
// designated anchor solve (task 0), never on which tasks happened to finish
// earlier. The anchor runs first on the calling thread; the remaining
// tasks then run concurrently, each warm-started from the anchor's final
// rewards when the period counts match. In a sweep the instances are
// perturbations of one another, so the anchor's solution is deep inside
// the quadratic basin of every task and FISTA converges in a fraction of
// the cold-start iterations.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/static_model.hpp"
#include "core/static_optimizer.hpp"

namespace tdp {

struct BatchSolveOptions {
  /// Per-task optimizer settings (initial_rewards is overwritten by the
  /// warm-start policy when warm_start is on).
  StaticOptimizerOptions optimizer;
  /// Parallelism; 0 = default_thread_count(). 1 forces the serial path,
  /// which produces bit-identical results to every parallel run.
  std::size_t threads = 0;
  /// Warm-start tasks 1..N-1 from the anchor task's solution.
  bool warm_start = true;
};

/// Per-batch instrumentation, also logged at kInfo and exported by the
/// micro-runtime bench as google-benchmark counters (landing in the
/// BENCH_*.json written with --benchmark_out).
struct BatchTiming {
  std::size_t tasks = 0;
  std::size_t threads = 0;            ///< parallelism actually used
  std::size_t total_iterations = 0;   ///< FISTA iterations over all tasks
  std::size_t anchor_iterations = 0;  ///< iterations spent on the anchor
  double wall_seconds = 0.0;          ///< whole batch, anchor included
};

class BatchSolver {
 public:
  explicit BatchSolver(BatchSolveOptions options = {});

  /// Solve every model; results are indexed like the input.
  std::vector<PricingSolution> solve(const std::vector<StaticModel>& models);

  /// Solve `count` instances produced by factory(i) — the factory is called
  /// concurrently, so it must be pure (build-from-index). Use for parameter
  /// perturbations of one base model without materializing all instances.
  std::vector<PricingSolution> solve_generated(
      std::size_t count,
      const std::function<StaticModel(std::size_t)>& factory);

  /// Instrumentation for the most recent solve call.
  const BatchTiming& last_timing() const { return timing_; }

  const BatchSolveOptions& options() const { return options_; }

 private:
  /// Yields task i's model; generated tasks materialize into `slot` (which
  /// outlives the returned reference for the duration of the solve).
  using GetModel =
      std::function<const StaticModel&(std::size_t, std::optional<StaticModel>&)>;

  std::vector<PricingSolution> run(std::size_t count, const GetModel& get_model);

  BatchSolveOptions options_;
  BatchTiming timing_;
};

}  // namespace tdp
