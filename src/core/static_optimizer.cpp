#include "core/static_optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp {

PricingSolution optimize_static_prices(const StaticModel& model,
                                       const StaticOptimizerOptions& options) {
  TDP_OBS_SPAN("solver.static");
  TDP_REQUIRE(options.mu_initial >= options.mu_final && options.mu_final > 0.0,
              "invalid smoothing schedule");
  TDP_REQUIRE(options.mu_decay > 0.0 && options.mu_decay < 1.0,
              "mu decay must be in (0, 1)");
  TDP_REQUIRE(options.reward_cap_factor > 0.0, "reward cap must be positive");

  const std::size_t n = model.periods();
  const double cap = model.max_reward() * options.reward_cap_factor;
  const math::BoxBounds box = math::uniform_box(n, 0.0, cap);

  FlowState scratch;
  math::Vector p(n, 0.0);
  if (!options.initial_rewards.empty()) {
    TDP_REQUIRE(options.initial_rewards.size() == n,
                "warm-start size must match the model's period count");
    p = options.initial_rewards;
    math::project_box(p, 0.0, cap);
  }
  PricingSolution solution;
  bool all_converged = true;

  for (double mu = options.mu_initial;; mu *= options.mu_decay) {
    mu = std::max(mu, options.mu_final);

    math::SmoothObjective objective;
    if (options.fused) {
      objective.value = [&model, mu, &scratch](const math::Vector& rewards) {
        return model.smoothed_cost(rewards, mu, scratch);
      };
      objective.value_and_gradient = [&model, mu, &scratch](
                                         const math::Vector& rewards,
                                         math::Vector& grad) {
        return model.smoothed_cost_and_gradient(rewards, mu, grad, scratch);
      };
    } else {
      objective.value = [&model, mu](const math::Vector& rewards) {
        return model.smoothed_cost(rewards, mu);
      };
      objective.gradient = [&model, mu](const math::Vector& rewards,
                                        math::Vector& grad) {
        model.smoothed_gradient(rewards, mu, grad);
      };
    }

    const math::FistaResult stage =
        math::minimize_box(objective, box, p, options.fista);
    p = stage.x;
    solution.iterations += stage.iterations;
    all_converged = all_converged && stage.converged;
    TDP_LOG_DEBUG << "static stage mu=" << mu << " cost=" << stage.value
                  << " iters=" << stage.iterations;

    if (mu <= options.mu_final) break;
  }

  solution.rewards = p;
  solution.usage = model.usage(p);
  solution.reward_cost = model.reward_cost(p);
  solution.capacity_cost = model.capacity_cost_value(solution.usage);
  solution.total_cost = solution.reward_cost + solution.capacity_cost;
  solution.tip_cost = model.tip_cost();
  solution.converged = all_converged;

  if (obs::metrics_enabled()) {
    static obs::Counter& solves =
        obs::Registry::global().counter("solver.static_solves_total");
    static obs::Counter& iterations =
        obs::Registry::global().counter("solver.static_iterations_total");
    solves.add_always(1);
    iterations.add_always(solution.iterations);
    obs::journal_record(
        "solver.converged", -1, -1,
        all_converged ? "static solve converged" : "static solve hit cap",
        {{"iterations", static_cast<double>(solution.iterations)},
         {"cost", solution.total_cost},
         {"converged", all_converged ? 1.0 : 0.0}});
  }
  return solution;
}

math::GoldenSectionResult resolve_static_coordinate(
    const StaticModel& model, math::Vector& rewards, std::size_t period,
    FlowState& state, double reward_cap, double tolerance,
    std::size_t max_iterations) {
  const std::size_t n = model.periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(period < n, "period out of range");
  TDP_REQUIRE(reward_cap > 0.0, "reward cap must be positive");

  const KernelPlan* plan = model.kernel().plan().get();
  if (state.plan != plan || state.plan_serial != plan->serial()) {
    model.prime_flow_state(rewards, /*with_derivatives=*/false, state);
  }
  const auto objective = [&model, &state, period](double candidate) {
    return model.total_cost_with_coordinate(period, candidate, state);
  };
  const math::GoldenSectionResult result = math::minimize_golden_section(
      objective, 0.0, reward_cap, tolerance, max_iterations);
  rewards[period] = result.x;
  // Leave the cached matrix at the accepted reward, not the last probe.
  model.total_cost_with_coordinate(period, result.x, state);
  return result;
}

}  // namespace tdp
