#include "core/static_model.hpp"

#include "common/error.hpp"

namespace tdp {

StaticModel::StaticModel(DemandProfile demand, std::vector<double> capacity,
                         math::PiecewiseLinearCost capacity_cost)
    : demand_(std::move(demand)),
      capacity_(std::move(capacity)),
      cost_(std::move(capacity_cost)),
      kernel_(demand_, LagConvention::kPeriodStart) {
  TDP_REQUIRE(capacity_.size() == demand_.periods(),
              "capacity vector must cover every period");
  for (double a : capacity_) {
    TDP_REQUIRE(a >= 0.0, "capacity must be nonnegative");
  }
}

StaticModel::StaticModel(DemandProfile demand, double capacity,
                         math::PiecewiseLinearCost capacity_cost)
    : demand_(std::move(demand)),
      capacity_(demand_.periods(), capacity),
      cost_(std::move(capacity_cost)),
      kernel_(demand_, LagConvention::kPeriodStart) {
  TDP_REQUIRE(capacity >= 0.0, "capacity must be nonnegative");
}

double StaticModel::deferred_in(std::size_t into, double reward) const {
  return kernel_.inflow(into, reward);
}

double StaticModel::deferred_in_derivative(std::size_t into,
                                           double reward) const {
  return kernel_.inflow_derivative(into, reward);
}

double StaticModel::deferred_out(std::size_t from,
                                 const math::Vector& rewards) const {
  return kernel_.outflow(from, rewards);
}

double StaticModel::outflow_derivative(std::size_t from, std::size_t to,
                                       double reward_to) const {
  return kernel_.pair_volume_derivative(from, to, reward_to);
}

math::Vector StaticModel::usage(const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  math::Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = demand_.tip_demand(i) - kernel_.outflow(i, rewards) +
           kernel_.inflow(i, rewards[i]);
  }
  return x;
}

double StaticModel::reward_cost(const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += rewards[i] * kernel_.inflow(i, rewards[i]);
  }
  return total;
}

double StaticModel::capacity_cost_value(const math::Vector& usage_vec) const {
  const std::size_t n = periods();
  TDP_REQUIRE(usage_vec.size() == n, "usage vector size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += cost_.value(usage_vec[i] - capacity_[i]);
  }
  return total;
}

double StaticModel::total_cost(const math::Vector& rewards) const {
  return reward_cost(rewards) + capacity_cost_value(usage(rewards));
}

double StaticModel::tip_cost() const {
  const math::Vector zero(periods(), 0.0);
  return capacity_cost_value(usage(zero));
}

double StaticModel::smoothed_cost(const math::Vector& rewards,
                                  double mu) const {
  const std::size_t n = periods();
  const math::Vector x = usage(rewards);
  double total = reward_cost(rewards);
  for (std::size_t i = 0; i < n; ++i) {
    total += cost_.smoothed_value(x[i] - capacity_[i], mu);
  }
  return total;
}

void StaticModel::smoothed_gradient(const math::Vector& rewards, double mu,
                                    math::Vector& grad) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(grad.size() == n, "gradient vector size mismatch");

  const math::Vector x = usage(rewards);
  math::Vector fprime(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    fprime[i] = cost_.smoothed_derivative(x[i] - capacity_[i], mu);
  }

  for (std::size_t m = 0; m < n; ++m) {
    const double din = kernel_.inflow(m, rewards[m]);
    const double din_deriv = kernel_.inflow_derivative(m, rewards[m]);
    double g = din + rewards[m] * din_deriv + fprime[m] * din_deriv;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == m) continue;
      g -= fprime[i] * kernel_.pair_volume_derivative(i, m, rewards[m]);
    }
    grad[m] = g;
  }
}

}  // namespace tdp
