#include "core/static_model.hpp"

#include "common/error.hpp"

namespace tdp {

StaticModel::StaticModel(DemandProfile demand, std::vector<double> capacity,
                         math::PiecewiseLinearCost capacity_cost)
    : demand_(std::move(demand)),
      capacity_(std::move(capacity)),
      cost_(std::move(capacity_cost)),
      kernel_(demand_, LagConvention::kPeriodStart),
      tip_(demand_.tip_demand_vector()) {
  TDP_REQUIRE(capacity_.size() == demand_.periods(),
              "capacity vector must cover every period");
  for (double a : capacity_) {
    TDP_REQUIRE(a >= 0.0, "capacity must be nonnegative");
  }
}

StaticModel::StaticModel(DemandProfile demand, double capacity,
                         math::PiecewiseLinearCost capacity_cost)
    : demand_(std::move(demand)),
      capacity_(demand_.periods(), capacity),
      cost_(std::move(capacity_cost)),
      kernel_(demand_, LagConvention::kPeriodStart),
      tip_(demand_.tip_demand_vector()) {
  TDP_REQUIRE(capacity >= 0.0, "capacity must be nonnegative");
}

double StaticModel::deferred_in(std::size_t into, double reward) const {
  return kernel_.inflow(into, reward);
}

double StaticModel::deferred_in_derivative(std::size_t into,
                                           double reward) const {
  return kernel_.inflow_derivative(into, reward);
}

double StaticModel::deferred_out(std::size_t from,
                                 const math::Vector& rewards) const {
  return kernel_.outflow(from, rewards);
}

double StaticModel::outflow_derivative(std::size_t from, std::size_t to,
                                       double reward_to) const {
  return kernel_.pair_volume_derivative(from, to, reward_to);
}

math::Vector StaticModel::usage(const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  math::Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = demand_.tip_demand(i) - kernel_.outflow(i, rewards) +
           kernel_.inflow(i, rewards[i]);
  }
  return x;
}

double StaticModel::reward_cost(const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += rewards[i] * kernel_.inflow(i, rewards[i]);
  }
  return total;
}

double StaticModel::capacity_cost_value(const math::Vector& usage_vec) const {
  const std::size_t n = periods();
  TDP_REQUIRE(usage_vec.size() == n, "usage vector size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += cost_.value(usage_vec[i] - capacity_[i]);
  }
  return total;
}

double StaticModel::total_cost(const math::Vector& rewards) const {
  return reward_cost(rewards) + capacity_cost_value(usage(rewards));
}

double StaticModel::tip_cost() const {
  const math::Vector zero(periods(), 0.0);
  return capacity_cost_value(usage(zero));
}

double StaticModel::smoothed_cost(const math::Vector& rewards,
                                  double mu) const {
  const std::size_t n = periods();
  const math::Vector x = usage(rewards);
  double total = reward_cost(rewards);
  for (std::size_t i = 0; i < n; ++i) {
    total += cost_.smoothed_value(x[i] - capacity_[i], mu);
  }
  return total;
}

void StaticModel::smoothed_gradient(const math::Vector& rewards, double mu,
                                    math::Vector& grad) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  TDP_REQUIRE(grad.size() == n, "gradient vector size mismatch");

  const math::Vector x = usage(rewards);
  math::Vector fprime(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    fprime[i] = cost_.smoothed_derivative(x[i] - capacity_[i], mu);
  }

  for (std::size_t m = 0; m < n; ++m) {
    const double din = kernel_.inflow(m, rewards[m]);
    const double din_deriv = kernel_.inflow_derivative(m, rewards[m]);
    double g = din + rewards[m] * din_deriv + fprime[m] * din_deriv;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == m) continue;
      g -= fprime[i] * kernel_.pair_volume_derivative(i, m, rewards[m]);
    }
    grad[m] = g;
  }
}

// ---- Fused fast path -------------------------------------------------------
// Each assembly below reproduces the corresponding reference method's
// floating-point operations in order, reading the flows from the FlowState
// instead of re-walking the kernel. See tests/test_kernel_plan.cpp for the
// bitwise property tests.

void StaticModel::prime_flow_state(const math::Vector& rewards,
                                   bool with_derivatives,
                                   FlowState& state) const {
  kernel_.plan()->evaluate(rewards, with_derivatives, state);
}

double StaticModel::assemble_total_cost(FlowState& state) const {
  const std::size_t n = periods();
  // reward_cost's accumulator, then capacity_cost_value's, then their sum —
  // exactly total_cost = reward_cost(p) + capacity_cost_value(usage(p)).
  double reward_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    reward_total += state.rewards[i] * state.inflow[i];
  }
  double capacity_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = tip_[i] - state.outflow[i] + state.inflow[i];
    capacity_total += cost_.value(x - capacity_[i]);
  }
  return reward_total + capacity_total;
}

double StaticModel::total_cost(const math::Vector& rewards,
                               FlowState& state) const {
  prime_flow_state(rewards, /*with_derivatives=*/false, state);
  return assemble_total_cost(state);
}

double StaticModel::total_cost_with_coordinate(std::size_t period,
                                               double reward,
                                               FlowState& state) const {
  kernel_.plan()->update_coordinate(period, reward, /*with_derivatives=*/false,
                                    state);
  return assemble_total_cost(state);
}

math::Vector StaticModel::usage(const math::Vector& rewards,
                                FlowState& state) const {
  const std::size_t n = periods();
  prime_flow_state(rewards, /*with_derivatives=*/false, state);
  math::Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = tip_[i] - state.outflow[i] + state.inflow[i];
  }
  return x;
}

double StaticModel::reward_cost(const FlowState& state) const {
  const std::size_t n = periods();
  TDP_REQUIRE(state.rewards.size() == n, "state not primed on this model");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += state.rewards[i] * state.inflow[i];
  }
  return total;
}

double StaticModel::smoothed_cost(const math::Vector& rewards, double mu,
                                  FlowState& state) const {
  const std::size_t n = periods();
  prime_flow_state(rewards, /*with_derivatives=*/false, state);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += rewards[i] * state.inflow[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double x = tip_[i] - state.outflow[i] + state.inflow[i];
    total += cost_.smoothed_value(x - capacity_[i], mu);
  }
  return total;
}

double StaticModel::smoothed_cost_and_gradient(const math::Vector& rewards,
                                               double mu, math::Vector& grad,
                                               FlowState& state) const {
  const std::size_t n = periods();
  TDP_REQUIRE(grad.size() == n, "gradient vector size mismatch");
  prime_flow_state(rewards, /*with_derivatives=*/true, state);

  math::Vector& x = state.aux_a;
  math::Vector& fprime = state.aux_b;
  x.resize(n);
  fprime.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = tip_[i] - state.outflow[i] + state.inflow[i];
  }

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += rewards[i] * state.inflow[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    total += cost_.smoothed_value(x[i] - capacity_[i], mu);
  }

  for (std::size_t i = 0; i < n; ++i) {
    fprime[i] = cost_.smoothed_derivative(x[i] - capacity_[i], mu);
  }
  const double* dV = state.pair_derivative.data();
  for (std::size_t m = 0; m < n; ++m) {
    const double din = state.inflow[m];
    const double din_deriv = state.inflow_derivative[m];
    double g = din + rewards[m] * din_deriv + fprime[m] * din_deriv;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == m) continue;
      g -= fprime[i] * dV[i * n + m];
    }
    grad[m] = g;
  }
  return total;
}

}  // namespace tdp
