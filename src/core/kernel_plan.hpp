// Fused structure-of-arrays evaluation plan for the deferral kernel.
//
// The reference DeferralKernel walks per-period session-class lists through
// virtual WaitingFunction calls for every pair_volume / inflow / outflow
// query — O(n^2 * classes) virtual dispatches and transcendental calls per
// objective evaluation. The KernelPlan flattens one demand snapshot into
// contiguous arrays:
//
//   terms:      per source period, (waiting-function id, volume) pairs in
//               class order — one flat array indexed by period_begin_;
//   functions:  the distinct waiting-function objects, with the power-law
//               family specialised (normalization C, exponent gamma);
//   lag tables: for kPeriodStart, pow(lag+1, -beta) per (function, lag);
//               for kUniformArrival, the 8 Gauss-node powers
//               pow(u_k+1, -beta) per (function, lag) plus the segment
//               half-width, mirroring math::integrate_gauss bitwise.
//
// evaluate() then fills the full pair-volume matrix for all n reward
// columns in one blocked pass: one pow per (function, column) instead of
// one per (class, pair), no virtual dispatch for power-law classes, and a
// fixed summation order chosen to match the reference path operation for
// operation. The contract is *bitwise* identity: every double produced
// here EXPECT_EQs the corresponding DeferralKernel result (see
// tests/test_kernel_plan.cpp).
//
// update_coordinate() is the rolling-horizon fast path: when only period
// m's reward changes, it refreshes column m of the cached matrix (O(n)
// waiting-function evaluations) and re-derives the flow sums from cached
// values in the reference summation order, so the refreshed FlowState is
// bit-identical to a from-scratch evaluate() at the new reward vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/deferral_kernel.hpp"
#include "core/waiting_function.hpp"

namespace tdp {

class KernelPlan;

/// Mutable evaluation scratch: the cached pair-volume matrix and the flow
/// sums derived from it. Owned by the caller (models keep one per solver
/// loop) so repeated evaluations are allocation-free. Fill with
/// KernelPlan::evaluate, refresh single columns with update_coordinate.
struct FlowState {
  std::vector<double> rewards;           ///< reward column per period
  std::vector<double> pair;              ///< V[from * n + to]
  std::vector<double> pair_derivative;   ///< dV/dp_to[from * n + to]
  std::vector<double> inflow;            ///< sum_from V[from][i]
  std::vector<double> inflow_derivative; ///< sum_from dV[from][i]
  std::vector<double> outflow;           ///< sum_to V[i][to]
  bool has_derivatives = false;
  const KernelPlan* plan = nullptr;      ///< set by evaluate(); guards reuse
  /// The plan's unique serial, checked alongside the pointer so a stale
  /// pointer whose allocation was reused by a newer plan never passes for
  /// a primed state.
  std::uint64_t plan_serial = 0;

  /// Per-distinct-function factor scratch used inside fill_column.
  std::vector<double> wf_factor;
  std::vector<double> wf_factor_derivative;

  /// Model-level assembly scratch (usage / arrivals / sensitivity rows),
  /// so fused cost evaluations stay allocation-free.
  std::vector<double> aux_a;
  std::vector<double> aux_b;
};

class KernelPlan {
 public:
  /// Snapshots the kernel's demand mix. The plan copies everything it needs
  /// (and keeps the waiting functions alive); the kernel may be destroyed.
  explicit KernelPlan(const DeferralKernel& kernel);

  std::size_t periods() const { return periods_; }
  LagConvention convention() const { return convention_; }
  bool linear() const { return linear_; }

  /// Process-unique construction serial (see FlowState::plan_serial).
  std::uint64_t serial() const { return serial_; }

  /// Number of distinct waiting-function objects in the snapshot.
  std::size_t distinct_functions() const { return functions_.size(); }
  /// Total flattened (function, volume) terms across all periods.
  std::size_t term_count() const { return term_wf_.size(); }

  /// True when the snapshot qualifies for the vectorized fill path: every
  /// period flattens to the same (nonempty) waiting-function slot sequence
  /// and every slot is power-law. Diagnostics/tests; evaluation dispatches
  /// on this automatically.
  bool simd_eligible() const { return simd_ready_; }

  /// Fill `state` for the full reward vector: the pair matrix, inflow and
  /// outflow sums, and (optionally) the derivative matrix and inflow
  /// derivative sums. Resizes the scratch on first use.
  void evaluate(const std::vector<double>& rewards, bool with_derivatives,
                FlowState& state) const;

  /// Refresh `state` after changing only coordinate m's reward: recomputes
  /// column m (O(periods) function evaluations) and re-derives the affected
  /// flow sums from cached pair volumes in the reference summation order.
  /// Requires a prior evaluate() on this plan; `with_derivatives` must not
  /// exceed what that evaluate computed. Postcondition: `state` is bitwise
  /// identical to evaluate() at the updated reward vector.
  void update_coordinate(std::size_t m, double reward, bool with_derivatives,
                         FlowState& state) const;

 private:
  enum class WfKind : std::uint8_t {
    kGeneric,       ///< arbitrary WaitingFunction: per-term virtual calls
    kPowerStart,    ///< power law under kPeriodStart: value = B(p) * lag_pow
    kPowerUniform,  ///< power law under kUniformArrival: Gauss-node powers
  };

  struct WfEntry {
    WaitingFunctionPtr wf;
    WfKind kind = WfKind::kGeneric;
    double norm = 0.0;        ///< power-law C
    double gamma = 1.0;       ///< power-law reward exponent
    double norm_gamma = 0.0;  ///< C * gamma (derivative prefactor)
  };

  void fill_column(std::size_t to, double reward, bool with_derivatives,
                   FlowState& state) const;
  /// One (from, to) slot of fill_column: accumulates period `from`'s terms
  /// in class order and stores V / dV. Shared by the scalar column loop and
  /// the vector path's remainder rows, so both execute the exact same
  /// non-inlined arithmetic.
  void fill_cell(std::size_t from, std::size_t to, std::size_t lag,
                 double reward, bool positive, bool with_derivatives,
                 FlowState& state) const;
  void reduce_inflow(std::size_t into, bool with_derivatives,
                     FlowState& state) const;
  void reduce_outflow(std::size_t from, FlowState& state) const;

#if defined(TDP_HAVE_AVX2)
  /// Vectorized fill_column body (kernel_plan_avx2.cpp, compiled -mavx2):
  /// four consecutive `from` rows per iteration, one lane per row, each
  /// lane replaying the scalar term sequence operation for operation.
  /// Requires simd_ready_ and the factor prologue already run.
  void fill_column_avx2(std::size_t to, double reward, bool positive,
                        bool with_derivatives, FlowState& state) const;
  /// Vectorized reduce_inflow for four consecutive `into` columns: lanes
  /// are independent column sums in the scalar's ascending-`from` order;
  /// the diagonal (from == into) is skipped per lane with a blend, never
  /// by adding 0.0.
  void reduce_inflow4_avx2(std::size_t into0, bool with_derivatives,
                           FlowState& state) const;
#endif

  std::size_t periods_ = 0;
  LagConvention convention_ = LagConvention::kPeriodStart;
  bool linear_ = false;
  std::uint64_t serial_ = 0;

  std::vector<WfEntry> functions_;
  std::vector<std::uint32_t> term_wf_;   ///< function id per term
  std::vector<double> term_volume_;      ///< volume per term
  std::vector<std::size_t> period_begin_;  ///< term range per period, n+1

  std::vector<std::uint32_t> lag_;  ///< cyclic_lag(from, to) [from * n + to]
  /// kPeriodStart: pow(lag+1, -beta) [wf * n + lag]; lag 0 unused.
  std::vector<double> lag_pow_;
  /// kUniformArrival: pow(u_k+1, -beta) [(wf * n + lag) * 8 + k].
  std::vector<double> node_pow_;
  /// Gauss segment half-width per lag (mirrors integrate_gauss).
  std::vector<double> lag_half_;

  /// Linear fast path: unit-reward tables copied from the kernel.
  std::vector<double> unit_;
  std::vector<double> unit_inflow_;

  /// SIMD eligibility (see simd_eligible()) plus the column-major slot
  /// volumes it needs: slot_volume_[slot * n + from] is period `from`'s
  /// volume for master slot `slot`, so a 4-row group loads its four lane
  /// volumes contiguously.
  bool simd_ready_ = false;
  std::vector<double> slot_volume_;
};

/// Precomputed uniform-arrival lag weights for a single waiting function:
/// weight(reward, lag) is bitwise identical to
/// lag_weight(w, reward, lag, LagConvention::kUniformArrival) but costs one
/// pow (power-law case) instead of eight virtual calls through the
/// quadrature. Used by the fleet's per-period deferral tables.
class UniformLagWeightTable {
 public:
  /// @param wf      the waiting function (kept alive by the table).
  /// @param periods n; valid lags are 1..n-1.
  UniformLagWeightTable(WaitingFunctionPtr wf, std::size_t periods);

  double weight(double reward, std::size_t lag) const;

  std::size_t periods() const { return periods_; }

 private:
  WaitingFunctionPtr wf_;
  std::size_t periods_ = 0;
  bool power_ = false;
  double norm_ = 0.0;
  double gamma_ = 1.0;
  std::vector<double> node_pow_;  ///< [lag * 8 + k]; lag 0 unused
  std::vector<double> half_;      ///< [lag]
};

}  // namespace tdp
