#include "core/definite_choice.hpp"

#include <algorithm>
#include <limits>

#include "common/cyclic.hpp"
#include "common/error.hpp"

namespace tdp {

DefiniteChoiceModel::DefiniteChoiceModel(DemandProfile demand,
                                         std::vector<double> capacity,
                                         math::PiecewiseLinearCost
                                             capacity_cost,
                                         double stay_threshold)
    : demand_(std::move(demand)),
      capacity_(std::move(capacity)),
      cost_(std::move(capacity_cost)),
      stay_threshold_(stay_threshold) {
  TDP_REQUIRE(capacity_.size() == demand_.periods(),
              "capacity vector must cover every period");
  TDP_REQUIRE(stay_threshold_ >= 0.0, "threshold must be nonnegative");
}

DefiniteChoiceModel::DefiniteChoiceModel(DemandProfile demand,
                                         double capacity,
                                         math::PiecewiseLinearCost
                                             capacity_cost,
                                         double stay_threshold)
    : demand_(std::move(demand)),
      capacity_(demand_.periods(), capacity),
      cost_(std::move(capacity_cost)),
      stay_threshold_(stay_threshold) {
  TDP_REQUIRE(capacity >= 0.0, "capacity must be nonnegative");
  TDP_REQUIRE(stay_threshold_ >= 0.0, "threshold must be nonnegative");
}

std::size_t DefiniteChoiceModel::chosen_lag(std::size_t period,
                                            std::size_t class_index,
                                            const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(period < n, "period out of range");
  const auto& classes = demand_.classes(period);
  TDP_REQUIRE(class_index < classes.size(), "class out of range");
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");

  const WaitingFunction& w = *classes[class_index].waiting;
  std::size_t best_lag = 0;
  double best_value = stay_threshold_;
  for (std::size_t lag = 1; lag < n; ++lag) {
    const std::size_t target = cyclic_advance(period, lag, n);
    const double value = w.value(rewards[target], static_cast<double>(lag));
    // Strict improvement required, so ties break toward shorter waits and
    // zero rewards always mean staying (w(0, t) == 0).
    if (value > best_value + 1e-15) {
      best_value = value;
      best_lag = lag;
    }
  }
  return best_lag;
}

math::Vector DefiniteChoiceModel::usage(const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  math::Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& classes = demand_.classes(i);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const std::size_t lag = chosen_lag(i, c, rewards);
      const std::size_t target = lag == 0 ? i : cyclic_advance(i, lag, n);
      x[target] += classes[c].volume;
    }
  }
  return x;
}

double DefiniteChoiceModel::total_cost(const math::Vector& rewards) const {
  const std::size_t n = periods();
  TDP_REQUIRE(rewards.size() == n, "reward vector size mismatch");
  double reward_cost = 0.0;
  math::Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& classes = demand_.classes(i);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const std::size_t lag = chosen_lag(i, c, rewards);
      const std::size_t target = lag == 0 ? i : cyclic_advance(i, lag, n);
      x[target] += classes[c].volume;
      if (lag != 0) reward_cost += rewards[target] * classes[c].volume;
    }
  }
  double capacity_cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    capacity_cost += cost_.value(x[i] - capacity_[i]);
  }
  return reward_cost + capacity_cost;
}

double DefiniteChoiceModel::tip_cost() const {
  return total_cost(math::Vector(periods(), 0.0));
}

DefiniteChoiceSolution optimize_definite_choice(
    const DefiniteChoiceModel& model, const DefiniteChoiceOptions& options) {
  TDP_REQUIRE(options.grid_levels >= 2, "need at least two grid levels");
  TDP_REQUIRE(options.starts >= 1, "need at least one start");
  const std::size_t n = model.periods();
  const double cap = model.max_reward();

  DefiniteChoiceSolution best;
  best.total_cost = std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;

  for (std::size_t start = 0; start < options.starts; ++start) {
    // Deterministic spread of starting points: 0, cap/2, cap, cap/4, ...
    const double level =
        cap * static_cast<double>(start) /
        static_cast<double>(std::max<std::size_t>(options.starts - 1, 1));
    math::Vector p(n, level);
    double current = model.total_cost(p);
    ++evaluations;

    for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
      bool improved = false;
      for (std::size_t m = 0; m < n; ++m) {
        double best_value = p[m];
        for (std::size_t g = 0; g < options.grid_levels; ++g) {
          const double candidate_value =
              cap * static_cast<double>(g) /
              static_cast<double>(options.grid_levels - 1);
          if (candidate_value == p[m]) continue;
          math::Vector trial = p;
          trial[m] = candidate_value;
          const double cost = model.total_cost(trial);
          ++evaluations;
          if (cost < current - 1e-12) {
            current = cost;
            best_value = candidate_value;
            improved = true;
          }
        }
        p[m] = best_value;
      }
      if (!improved) break;
    }

    if (current < best.total_cost) {
      best.total_cost = current;
      best.rewards = p;
    }
  }

  best.usage = model.usage(best.rewards);
  best.tip_cost = model.tip_cost();
  best.evaluations = evaluations;
  return best;
}

}  // namespace tdp
