#include "core/batch_solver.hpp"

#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace tdp {

BatchSolver::BatchSolver(BatchSolveOptions options)
    : options_(std::move(options)) {}

std::vector<PricingSolution> BatchSolver::solve(
    const std::vector<StaticModel>& models) {
  return run(models.size(),
             [&models](std::size_t i, std::optional<StaticModel>&)
                 -> const StaticModel& { return models[i]; });
}

std::vector<PricingSolution> BatchSolver::solve_generated(
    std::size_t count,
    const std::function<StaticModel(std::size_t)>& factory) {
  TDP_REQUIRE(factory != nullptr, "solve_generated needs a factory");
  return run(count,
             [&factory](std::size_t i, std::optional<StaticModel>& slot)
                 -> const StaticModel& {
               slot.emplace(factory(i));
               return *slot;
             });
}

std::vector<PricingSolution> BatchSolver::run(
    std::size_t count, const GetModel& get_model) {
  TDP_OBS_SPAN("batch.solve");
  timing_ = BatchTiming{};
  timing_.tasks = count;
  std::size_t threads =
      options_.threads == 0 ? default_thread_count() : options_.threads;
  if (threads > count && count > 0) threads = count;
  timing_.threads = count == 0 ? 0 : threads;
  std::vector<PricingSolution> results(count);
  if (count == 0) return results;

  const auto start = std::chrono::steady_clock::now();

  // Anchor: task 0, solved first on the calling thread. Its solution seeds
  // every other task's warm start, which keeps the warm-start inputs — and
  // therefore every FISTA iterate — independent of scheduling order.
  math::Vector anchor_rewards;
  std::size_t anchor_periods = 0;
  {
    std::optional<StaticModel> slot;
    const StaticModel& model = get_model(0, slot);
    results[0] = optimize_static_prices(model, options_.optimizer);
    anchor_rewards = results[0].rewards;
    anchor_periods = model.periods();
    timing_.anchor_iterations = results[0].iterations;
  }

  if (count > 1) {
    StaticOptimizerOptions task_options = options_.optimizer;
    if (options_.warm_start) task_options.initial_rewards = anchor_rewards;
    parallel_for(
        count - 1,
        [&](std::size_t offset) {
          const std::size_t i = offset + 1;
          std::optional<StaticModel> slot;
          const StaticModel& model = get_model(i, slot);
          if (options_.warm_start && model.periods() == anchor_periods) {
            results[i] = optimize_static_prices(model, task_options);
          } else {
            results[i] = optimize_static_prices(model, options_.optimizer);
          }
        },
        threads);
  }

  for (const PricingSolution& solution : results) {
    timing_.total_iterations += solution.iterations;
  }
  timing_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  TDP_LOG_INFO << "batch solve: " << timing_.tasks << " tasks on "
               << timing_.threads << " threads, "
               << timing_.total_iterations << " FISTA iterations ("
               << timing_.anchor_iterations << " anchor) in "
               << timing_.wall_seconds << " s";
  if (obs::metrics_enabled()) {
    static obs::Counter& batches =
        obs::Registry::global().counter("batch.solves_total");
    static obs::Counter& tasks =
        obs::Registry::global().counter("batch.tasks_total");
    batches.add_always(1);
    tasks.add_always(timing_.tasks);
    obs::journal_record(
        "batch.solve", -1, -1, "batch solve finished",
        {{"tasks", static_cast<double>(timing_.tasks)},
         {"threads", static_cast<double>(timing_.threads)},
         {"iterations", static_cast<double>(timing_.total_iterations)},
         {"wall_seconds", timing_.wall_seconds}});
  }
  return results;
}

}  // namespace tdp
