#include "core/deferral_kernel.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/cyclic.hpp"
#include "common/error.hpp"
#include "core/kernel_plan.hpp"
#include "math/quadrature.hpp"
#include "obs/registry.hpp"

namespace tdp {

double lag_weight(const WaitingFunction& w, double reward, std::size_t lag,
                  LagConvention convention) {
  const double t = static_cast<double>(lag);
  if (convention == LagConvention::kPeriodStart) {
    return w.value(reward, t);
  }
  return math::integrate_gauss(
      [&w, reward](double u) { return w.value(reward, u); }, t - 1.0, t, 1);
}

double lag_weight_derivative(const WaitingFunction& w, double reward,
                             std::size_t lag, LagConvention convention) {
  const double t = static_cast<double>(lag);
  if (convention == LagConvention::kPeriodStart) {
    return w.reward_derivative(reward, t);
  }
  return math::integrate_gauss(
      [&w, reward](double u) { return w.reward_derivative(reward, u); },
      t - 1.0, t, 1);
}

void lag_weight_pair(const WaitingFunction& w, double reward, std::size_t lag,
                     LagConvention convention, double& value_out,
                     double& derivative_out) {
  const double t = static_cast<double>(lag);
  if (convention == LagConvention::kPeriodStart) {
    w.value_and_reward_derivative(reward, t, value_out, derivative_out);
    return;
  }
  // One sweep over the Gauss nodes of [t-1, t], accumulating both integrals
  // with the exact arithmetic of integrate_gauss (1 segment) so each sum is
  // bitwise identical to the corresponding separate call.
  const double h = t - (t - 1.0);
  const double mid = (t - 1.0) + 0.5 * h;
  const double half = 0.5 * h;
  double vsum = 0.0;
  double dsum = 0.0;
  for (std::size_t k = 0; k < math::kGauss8Nodes.size(); ++k) {
    const double u = mid + half * math::kGauss8Nodes[k];
    double v = 0.0;
    double d = 0.0;
    w.value_and_reward_derivative(reward, u, v, d);
    vsum += math::kGauss8Weights[k] * v;
    dsum += math::kGauss8Weights[k] * d;
  }
  value_out = vsum * half;
  derivative_out = dsum * half;
}

namespace {

/// Fingerprint of a demand snapshot: convention, period structure, the
/// identity of every waiting-function object, and the exact bit pattern of
/// every volume. Exact equality (not just hash equality) gates cache hits.
struct KernelKey {
  std::vector<std::uint64_t> words;

  bool operator==(const KernelKey& other) const {
    return words == other.words;
  }

  std::uint64_t hash() const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    for (std::uint64_t w : words) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }
};

KernelKey make_key(const DemandProfile& demand, LagConvention convention) {
  KernelKey key;
  const std::size_t n = demand.periods();
  key.words.reserve(2 + 3 * n);
  key.words.push_back(static_cast<std::uint64_t>(convention));
  key.words.push_back(static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& classes = demand.classes(i);
    key.words.push_back(static_cast<std::uint64_t>(classes.size()));
    for (const SessionClass& sc : classes) {
      key.words.push_back(
          static_cast<std::uint64_t>(
              reinterpret_cast<std::uintptr_t>(sc.waiting.get())));
      key.words.push_back(std::bit_cast<std::uint64_t>(sc.volume));
    }
  }
  return key;
}

/// Memo effectiveness lives in the metrics registry (always on — the
/// static DeferralKernel::cache_hits()/cache_misses() accessors are views
/// over these counters and must work with telemetry disabled too).
obs::Counter& memo_hits_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("kernel.memo_hits_total");
  return counter;
}

obs::Counter& memo_misses_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("kernel.memo_misses_total");
  return counter;
}

}  // namespace

/// Immutable shared construction state. The memo cache retains recently
/// built states (including their waiting-function shared_ptrs, so a cached
/// pointer-identity key can never alias a new object at a reused address).
struct DeferralKernelState {
  std::size_t periods = 0;
  LagConvention convention = LagConvention::kPeriodStart;
  bool linear = false;
  std::vector<std::vector<SessionClass>> classes;
  std::vector<double> unit;         // [from * n + to], empty unless linear
  std::vector<double> unit_inflow;  // [to], empty unless linear

  // Lazily computed, memoized per state.
  mutable std::once_flag safe_reward_once;
  mutable double safe_reward = 0.0;
  mutable std::once_flag plan_once;
  mutable std::shared_ptr<const KernelPlan> plan;
};

namespace {

std::shared_ptr<const DeferralKernelState> build_state(
    const DemandProfile& demand, LagConvention convention) {
  auto state = std::make_shared<DeferralKernelState>();
  state->periods = demand.periods();
  state->convention = convention;
  state->classes.reserve(state->periods);
  state->linear = true;
  for (std::size_t i = 0; i < state->periods; ++i) {
    state->classes.push_back(demand.classes(i));
    for (const SessionClass& sc : state->classes.back()) {
      state->linear = state->linear && sc.waiting->is_linear_in_reward();
    }
  }

  if (!state->linear) return state;

  const std::size_t n = state->periods;

  // Unit-reward lag weights per distinct waiting function, computed once
  // per (function, lag) instead of once per (pair, class). Every weight is
  // bitwise identical to lag_weight(wf, 1.0, lag, convention): the
  // kPeriodStart branch IS that call, and under kUniformArrival the
  // UniformLagWeightTable reproduces the quadrature's arithmetic exactly
  // (one pow per power-law lookup instead of eight virtual calls through
  // integrate_gauss — this table build used to dominate every online
  // demand-update's kernel rebuild).
  std::unordered_map<const WaitingFunction*, std::vector<double>> unit_weight;
  for (std::size_t i = 0; i < n; ++i) {
    for (const SessionClass& sc : state->classes[i]) {
      auto [it, inserted] = unit_weight.emplace(sc.waiting.get(),
                                                std::vector<double>());
      if (!inserted) continue;
      std::vector<double>& weights = it->second;
      weights.assign(n, 0.0);  // lag 0 unused (from == to is skipped)
      if (convention == LagConvention::kUniformArrival) {
        const UniformLagWeightTable table(sc.waiting, n);
        for (std::size_t lag = 1; lag < n; ++lag) {
          weights[lag] = table.weight(1.0, lag);
        }
      } else {
        for (std::size_t lag = 1; lag < n; ++lag) {
          weights[lag] = lag_weight(*sc.waiting, 1.0, lag, convention);
        }
      }
    }
  }

  state->unit.assign(n * n, 0.0);
  state->unit_inflow.assign(n, 0.0);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (to == from) continue;
      const std::size_t lag = cyclic_lag(from, to, n);
      double volume = 0.0;
      for (const SessionClass& sc : state->classes[from]) {
        volume += sc.volume * unit_weight.find(sc.waiting.get())->second[lag];
      }
      state->unit[from * n + to] = volume;
      state->unit_inflow[to] += volume;
    }
  }
  return state;
}

/// Bounded FIFO memo of recently built states.
class KernelStateCache {
 public:
  static constexpr std::size_t kCapacity = 64;

  std::shared_ptr<const DeferralKernelState> get(const DemandProfile& demand,
                                                 LagConvention convention) {
    KernelKey key = make_key(demand, convention);
    const std::uint64_t hash = key.hash();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const Entry& e : entries_) {
        if (e.hash == hash && e.key == key) {
          memo_hits_counter().add_always(1);
          return e.state;
        }
      }
    }
    memo_misses_counter().add_always(1);
    auto state = build_state(demand, convention);
    std::lock_guard<std::mutex> lock(mutex_);
    // Another thread may have built the same state concurrently; prefer the
    // cached one so equal profiles share a single state.
    for (const Entry& e : entries_) {
      if (e.hash == hash && e.key == key) return e.state;
    }
    entries_.push_back(Entry{hash, std::move(key), state});
    if (entries_.size() > kCapacity) entries_.pop_front();
    return state;
  }

 private:
  struct Entry {
    std::uint64_t hash;
    KernelKey key;
    std::shared_ptr<const DeferralKernelState> state;
  };
  std::mutex mutex_;
  std::deque<Entry> entries_;
};

KernelStateCache& state_cache() {
  static KernelStateCache cache;
  return cache;
}

}  // namespace

DeferralKernel::DeferralKernel(const DemandProfile& demand,
                               LagConvention convention)
    : periods_(demand.periods()),
      convention_(convention),
      state_(state_cache().get(demand, convention)) {
  linear_ = state_->linear;
}

double DeferralKernel::pair_volume(std::size_t from, std::size_t to,
                                   double reward) const {
  TDP_REQUIRE(from < periods_ && to < periods_ && from != to,
              "invalid period pair");
  if (reward <= 0.0) return 0.0;
  if (linear_) return state_->unit[from * periods_ + to] * reward;
  const std::size_t lag = cyclic_lag(from, to, periods_);
  double volume = 0.0;
  for (const SessionClass& sc : state_->classes[from]) {
    volume += sc.volume * lag_weight(*sc.waiting, reward, lag, convention_);
  }
  return volume;
}

double DeferralKernel::pair_volume_derivative(std::size_t from,
                                              std::size_t to,
                                              double reward) const {
  TDP_REQUIRE(from < periods_ && to < periods_ && from != to,
              "invalid period pair");
  if (linear_) return state_->unit[from * periods_ + to];
  const std::size_t lag = cyclic_lag(from, to, periods_);
  double deriv = 0.0;
  for (const SessionClass& sc : state_->classes[from]) {
    deriv += sc.volume *
             lag_weight_derivative(*sc.waiting, reward, lag, convention_);
  }
  return deriv;
}

double DeferralKernel::inflow(std::size_t into, double reward) const {
  TDP_REQUIRE(into < periods_, "period out of range");
  if (reward <= 0.0) return 0.0;
  if (linear_) return state_->unit_inflow[into] * reward;
  double total = 0.0;
  for (std::size_t from = 0; from < periods_; ++from) {
    if (from == into) continue;
    total += pair_volume(from, into, reward);
  }
  return total;
}

double DeferralKernel::inflow_derivative(std::size_t into,
                                         double reward) const {
  TDP_REQUIRE(into < periods_, "period out of range");
  if (linear_) return state_->unit_inflow[into];
  double total = 0.0;
  for (std::size_t from = 0; from < periods_; ++from) {
    if (from == into) continue;
    total += pair_volume_derivative(from, into, reward);
  }
  return total;
}

double DeferralKernel::outflow(std::size_t from,
                               const std::vector<double>& rewards) const {
  TDP_REQUIRE(from < periods_, "period out of range");
  TDP_REQUIRE(rewards.size() == periods_, "reward vector size mismatch");
  double total = 0.0;
  for (std::size_t to = 0; to < periods_; ++to) {
    if (to == from) continue;
    if (linear_) {
      if (rewards[to] > 0.0) {
        total += state_->unit[from * periods_ + to] * rewards[to];
      }
    } else {
      total += pair_volume(from, to, rewards[to]);
    }
  }
  return total;
}

double DeferralKernel::max_safe_reward() const {
  std::call_once(state_->safe_reward_once, [this] {
    double cap = std::numeric_limits<double>::infinity();
    std::vector<double> demand(periods_, 0.0);
    for (std::size_t i = 0; i < periods_; ++i) {
      for (const SessionClass& sc : state_->classes[i]) {
        demand[i] += sc.volume;
      }
    }

    if (linear_) {
      for (std::size_t i = 0; i < periods_; ++i) {
        double unit_out = 0.0;
        for (std::size_t m = 0; m < periods_; ++m) {
          if (m != i) unit_out += state_->unit[i * periods_ + m];
        }
        if (unit_out > 0.0 && demand[i] > 0.0) {
          cap = std::min(cap, demand[i] / unit_out);
        }
      }
      state_->safe_reward = cap;
      return;
    }

    // Nonlinear: bisection per period on outflow(uniform r) <= demand.
    for (std::size_t i = 0; i < periods_; ++i) {
      if (demand[i] <= 0.0) continue;
      auto outflow_at = [this, i](double r) {
        return outflow(i, std::vector<double>(periods_, r));
      };
      double hi = 1.0;
      while (outflow_at(hi) < demand[i] && hi < 1e9) hi *= 2.0;
      if (hi >= 1e9) continue;  // never saturates
      double lo = 0.0;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (outflow_at(mid) < demand[i] ? lo : hi) = mid;
      }
      cap = std::min(cap, lo);
    }
    state_->safe_reward = cap;
  });
  return state_->safe_reward;
}

std::shared_ptr<const KernelPlan> DeferralKernel::plan() const {
  std::call_once(state_->plan_once,
                 [this] { state_->plan = std::make_shared<KernelPlan>(*this); });
  return state_->plan;
}

const std::vector<SessionClass>& DeferralKernel::classes(
    std::size_t period) const {
  TDP_REQUIRE(period < periods_, "period out of range");
  return state_->classes[period];
}

const std::vector<double>& DeferralKernel::unit_table() const {
  return state_->unit;
}

const std::vector<double>& DeferralKernel::unit_inflow_table() const {
  return state_->unit_inflow;
}

const void* DeferralKernel::state_id() const { return state_.get(); }

std::uint64_t DeferralKernel::cache_hits() {
  return memo_hits_counter().value();
}

std::uint64_t DeferralKernel::cache_misses() {
  return memo_misses_counter().value();
}

}  // namespace tdp
