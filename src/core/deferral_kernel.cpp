#include "core/deferral_kernel.hpp"

#include <algorithm>
#include <limits>

#include "common/cyclic.hpp"
#include "common/error.hpp"
#include "math/quadrature.hpp"

namespace tdp {

double lag_weight(const WaitingFunction& w, double reward, std::size_t lag,
                  LagConvention convention) {
  const double t = static_cast<double>(lag);
  if (convention == LagConvention::kPeriodStart) {
    return w.value(reward, t);
  }
  return math::integrate_gauss(
      [&w, reward](double u) { return w.value(reward, u); }, t - 1.0, t, 1);
}

double lag_weight_derivative(const WaitingFunction& w, double reward,
                             std::size_t lag, LagConvention convention) {
  const double t = static_cast<double>(lag);
  if (convention == LagConvention::kPeriodStart) {
    return w.reward_derivative(reward, t);
  }
  return math::integrate_gauss(
      [&w, reward](double u) { return w.reward_derivative(reward, u); },
      t - 1.0, t, 1);
}

DeferralKernel::DeferralKernel(const DemandProfile& demand,
                               LagConvention convention)
    : periods_(demand.periods()), convention_(convention) {
  classes_.reserve(periods_);
  linear_ = true;
  for (std::size_t i = 0; i < periods_; ++i) {
    classes_.push_back(demand.classes(i));
    for (const SessionClass& sc : classes_.back()) {
      linear_ = linear_ && sc.waiting->is_linear_in_reward();
    }
  }

  if (!linear_) return;

  // Precompute unit-reward pair volumes.
  unit_.assign(periods_ * periods_, 0.0);
  unit_inflow_.assign(periods_, 0.0);
  for (std::size_t from = 0; from < periods_; ++from) {
    for (std::size_t to = 0; to < periods_; ++to) {
      if (to == from) continue;
      const std::size_t lag = cyclic_lag(from, to, periods_);
      double volume = 0.0;
      for (const SessionClass& sc : classes_[from]) {
        volume += sc.volume * lag_weight(*sc.waiting, 1.0, lag, convention_);
      }
      unit_[from * periods_ + to] = volume;
      unit_inflow_[to] += volume;
    }
  }
}

double DeferralKernel::pair_volume(std::size_t from, std::size_t to,
                                   double reward) const {
  TDP_REQUIRE(from < periods_ && to < periods_ && from != to,
              "invalid period pair");
  if (reward <= 0.0) return 0.0;
  if (linear_) return unit_[from * periods_ + to] * reward;
  const std::size_t lag = cyclic_lag(from, to, periods_);
  double volume = 0.0;
  for (const SessionClass& sc : classes_[from]) {
    volume += sc.volume * lag_weight(*sc.waiting, reward, lag, convention_);
  }
  return volume;
}

double DeferralKernel::pair_volume_derivative(std::size_t from,
                                              std::size_t to,
                                              double reward) const {
  TDP_REQUIRE(from < periods_ && to < periods_ && from != to,
              "invalid period pair");
  if (linear_) return unit_[from * periods_ + to];
  const std::size_t lag = cyclic_lag(from, to, periods_);
  double deriv = 0.0;
  for (const SessionClass& sc : classes_[from]) {
    deriv += sc.volume *
             lag_weight_derivative(*sc.waiting, reward, lag, convention_);
  }
  return deriv;
}

double DeferralKernel::inflow(std::size_t into, double reward) const {
  TDP_REQUIRE(into < periods_, "period out of range");
  if (reward <= 0.0) return 0.0;
  if (linear_) return unit_inflow_[into] * reward;
  double total = 0.0;
  for (std::size_t from = 0; from < periods_; ++from) {
    if (from == into) continue;
    total += pair_volume(from, into, reward);
  }
  return total;
}

double DeferralKernel::inflow_derivative(std::size_t into,
                                         double reward) const {
  TDP_REQUIRE(into < periods_, "period out of range");
  if (linear_) return unit_inflow_[into];
  double total = 0.0;
  for (std::size_t from = 0; from < periods_; ++from) {
    if (from == into) continue;
    total += pair_volume_derivative(from, into, reward);
  }
  return total;
}

double DeferralKernel::outflow(std::size_t from,
                               const std::vector<double>& rewards) const {
  TDP_REQUIRE(from < periods_, "period out of range");
  TDP_REQUIRE(rewards.size() == periods_, "reward vector size mismatch");
  double total = 0.0;
  for (std::size_t to = 0; to < periods_; ++to) {
    if (to == from) continue;
    if (linear_) {
      if (rewards[to] > 0.0) total += unit_[from * periods_ + to] * rewards[to];
    } else {
      total += pair_volume(from, to, rewards[to]);
    }
  }
  return total;
}

double DeferralKernel::max_safe_reward() const {
  double cap = std::numeric_limits<double>::infinity();
  std::vector<double> demand(periods_, 0.0);
  for (std::size_t i = 0; i < periods_; ++i) {
    for (const SessionClass& sc : classes_[i]) demand[i] += sc.volume;
  }

  if (linear_) {
    for (std::size_t i = 0; i < periods_; ++i) {
      double unit_out = 0.0;
      for (std::size_t m = 0; m < periods_; ++m) {
        if (m != i) unit_out += unit_[i * periods_ + m];
      }
      if (unit_out > 0.0 && demand[i] > 0.0) {
        cap = std::min(cap, demand[i] / unit_out);
      }
    }
    return cap;
  }

  // Nonlinear: bisection per period on outflow(uniform r) <= demand.
  for (std::size_t i = 0; i < periods_; ++i) {
    if (demand[i] <= 0.0) continue;
    auto outflow_at = [this, i](double r) {
      return outflow(i, std::vector<double>(periods_, r));
    };
    double hi = 1.0;
    while (outflow_at(hi) < demand[i] && hi < 1e9) hi *= 2.0;
    if (hi >= 1e9) continue;  // never saturates
    double lo = 0.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (outflow_at(mid) < demand[i] ? lo : hi) = mid;
    }
    cap = std::min(cap, lo);
  }
  return cap;
}

}  // namespace tdp
