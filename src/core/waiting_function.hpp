// Waiting functions (Sections II and IV).
//
// A waiting function w(p, t) gives the probability that a session defers by
// t periods when offered reward p. The paper's canonical parametrized family
// is the power law
//
//   w_beta(p, t) = C_beta * p / (t + 1)^beta,
//
// where beta >= 0 is the "patience index" (larger beta = less patient) and
// C_beta normalizes so that at the maximum rational reward P (the maximum
// marginal cost of exceeding capacity) the deferral probabilities over all
// lags t = 1..n-1 sum to one:  sum_t w(P, t) = 1.
//
// We expose an abstract interface so tests and extensions can plug in other
// concave-increasing-in-p families (Prop. 3 only needs concavity in p).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace tdp {

/// Interface for a (normalized) waiting function.
class WaitingFunction {
 public:
  virtual ~WaitingFunction() = default;

  /// Deferral probability for reward p (>= 0) and continuous lag t (>= 0,
  /// measured in periods). t is continuous because the dynamic model
  /// averages over arrival times within a period.
  virtual double value(double reward, double lag) const = 0;

  /// Partial derivative of value with respect to the reward.
  virtual double reward_derivative(double reward, double lag) const = 0;

  /// Value and reward derivative in one call. Implementations that share
  /// work between the two (the power law shares its lag power) must stay
  /// bitwise identical to the separate calls — the fused kernel paths are
  /// property-tested against the one-at-a-time reference. Default: the two
  /// separate calls.
  virtual void value_and_reward_derivative(double reward, double lag,
                                           double& value_out,
                                           double& derivative_out) const {
    value_out = value(reward, lag);
    derivative_out = reward_derivative(reward, lag);
  }

  /// Human-readable tag used in diagnostics (e.g. "beta=1.5").
  virtual std::string_view label() const = 0;

  /// True when value(p, t) is linear in p for fixed t. Models exploit this
  /// to precompute unit-reward deferral coefficients (the paper's family
  /// with gamma = 1 is linear). Default: false (conservative).
  virtual bool is_linear_in_reward() const { return false; }
};

using WaitingFunctionPtr = std::shared_ptr<const WaitingFunction>;

/// How the power-law normalization constant is computed.
///
/// kDiscrete sums over the integer lags t = 1..n-1 (static model: sessions
/// start at period boundaries). kContinuous integrates over waits in
/// [0, n-1] (dynamic model: uniform arrival times make the effective wait
/// continuous). Matching the normalization to the model's lag convention
/// keeps every deferral probability in [0, 1] and the total deferral
/// fraction at most reward/P — the integer-grid normalization applied to
/// continuous waits (the paper's literal formulas) exceeds 1 for impatient
/// classes at short lags.
enum class LagNormalization { kDiscrete, kContinuous };

/// The paper's power-law family C * p^gamma / (t+1)^beta. gamma = 1 is the
/// paper's linear-in-reward choice; gamma in (0, 1) gives strictly concave
/// reward sensitivity (still admissible under Prop. 3).
class PowerLawWaitingFunction final : public WaitingFunction {
 public:
  /// @param beta          patience index (>= 0); larger = less patient.
  /// @param periods       n, the number of periods in the day.
  /// @param max_reward    P, the maximum rational reward (normalization).
  /// @param gamma         reward exponent in (0, 1].
  /// @param normalization discrete (static) or continuous (dynamic) lags.
  PowerLawWaitingFunction(
      double beta, std::size_t periods, double max_reward, double gamma = 1.0,
      LagNormalization normalization = LagNormalization::kDiscrete);

  double value(double reward, double lag) const override;
  double reward_derivative(double reward, double lag) const override;
  void value_and_reward_derivative(double reward, double lag,
                                   double& value_out,
                                   double& derivative_out) const override;
  std::string_view label() const override { return label_; }
  bool is_linear_in_reward() const override { return gamma_ == 1.0; }

  double beta() const { return beta_; }
  double gamma() const { return gamma_; }
  double normalization() const { return normalization_; }

  /// The unnormalized sum S(beta) = sum_{t=1..n-1} (t+1)^-beta used by the
  /// discrete normalization C = 1 / (P^gamma * S). Exposed for the
  /// estimator.
  static double lag_sum(double beta, std::size_t periods);

  /// The continuous counterpart: integral_0^{n-1} (u+1)^-beta du.
  static double lag_integral(double beta, std::size_t periods);

 private:
  double beta_;
  double gamma_;
  double normalization_;  // C
  std::string label_;
};

/// Adapter wrapping arbitrary callables (used by tests and ablations).
class CallableWaitingFunction final : public WaitingFunction {
 public:
  using Fn = std::function<double(double reward, double lag)>;

  /// `derivative` may be empty, in which case a central difference is used.
  CallableWaitingFunction(Fn fn, Fn derivative = nullptr,
                          std::string label = "callable");

  double value(double reward, double lag) const override;
  double reward_derivative(double reward, double lag) const override;
  std::string_view label() const override { return label_; }

 private:
  Fn fn_;
  Fn derivative_;
  std::string label_;
};

}  // namespace tdp
