#include "core/waiting_function.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace tdp {

double PowerLawWaitingFunction::lag_sum(double beta, std::size_t periods) {
  TDP_REQUIRE(periods >= 2, "need at least two periods for deferral");
  double s = 0.0;
  for (std::size_t t = 1; t < periods; ++t) {
    s += std::pow(static_cast<double>(t) + 1.0, -beta);
  }
  return s;
}

double PowerLawWaitingFunction::lag_integral(double beta,
                                             std::size_t periods) {
  TDP_REQUIRE(periods >= 2, "need at least two periods for deferral");
  const double n = static_cast<double>(periods);
  if (beta == 1.0) return std::log(n);
  return (std::pow(n, 1.0 - beta) - 1.0) / (1.0 - beta);
}

PowerLawWaitingFunction::PowerLawWaitingFunction(
    double beta, std::size_t periods, double max_reward, double gamma,
    LagNormalization normalization)
    : beta_(beta), gamma_(gamma) {
  TDP_REQUIRE(beta >= 0.0, "patience index must be nonnegative");
  TDP_REQUIRE(max_reward > 0.0, "max reward must be positive");
  TDP_REQUIRE(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
  const double mass = normalization == LagNormalization::kDiscrete
                          ? lag_sum(beta, periods)
                          : lag_integral(beta, periods);
  normalization_ = 1.0 / (std::pow(max_reward, gamma) * mass);
  std::ostringstream label;
  label << "beta=" << beta;
  if (gamma != 1.0) label << ",gamma=" << gamma;
  if (normalization == LagNormalization::kContinuous) label << ",cont";
  label_ = label.str();
}

double PowerLawWaitingFunction::value(double reward, double lag) const {
  TDP_REQUIRE(lag >= 0.0, "lag must be nonnegative");
  if (reward <= 0.0) return 0.0;
  return normalization_ * std::pow(reward, gamma_) *
         std::pow(lag + 1.0, -beta_);
}

double PowerLawWaitingFunction::reward_derivative(double reward,
                                                  double lag) const {
  TDP_REQUIRE(lag >= 0.0, "lag must be nonnegative");
  if (reward < 0.0) reward = 0.0;
  if (gamma_ == 1.0) {
    return normalization_ * std::pow(lag + 1.0, -beta_);
  }
  if (reward == 0.0) {
    // The concave p^gamma has unbounded slope at 0; cap for optimizer use.
    reward = 1e-12;
  }
  return normalization_ * gamma_ * std::pow(reward, gamma_ - 1.0) *
         std::pow(lag + 1.0, -beta_);
}

void PowerLawWaitingFunction::value_and_reward_derivative(
    double reward, double lag, double& value_out,
    double& derivative_out) const {
  TDP_REQUIRE(lag >= 0.0, "lag must be nonnegative");
  // Shares std::pow(lag + 1, -beta) between the two results. Every branch
  // reproduces the arithmetic of value() / reward_derivative() exactly —
  // the fused kernel paths rely on bitwise identity with the separate
  // calls.
  const double lag_pow = std::pow(lag + 1.0, -beta_);
  value_out =
      reward <= 0.0 ? 0.0 : normalization_ * std::pow(reward, gamma_) * lag_pow;
  if (reward < 0.0) reward = 0.0;
  if (gamma_ == 1.0) {
    derivative_out = normalization_ * lag_pow;
    return;
  }
  if (reward == 0.0) reward = 1e-12;
  derivative_out =
      normalization_ * gamma_ * std::pow(reward, gamma_ - 1.0) * lag_pow;
}

CallableWaitingFunction::CallableWaitingFunction(Fn fn, Fn derivative,
                                                 std::string label)
    : fn_(std::move(fn)),
      derivative_(std::move(derivative)),
      label_(std::move(label)) {
  TDP_REQUIRE(static_cast<bool>(fn_), "callable must be set");
}

double CallableWaitingFunction::value(double reward, double lag) const {
  return fn_(reward, lag);
}

double CallableWaitingFunction::reward_derivative(double reward,
                                                  double lag) const {
  if (derivative_) return derivative_(reward, lag);
  const double h = 1e-7;
  return (fn_(reward + h, lag) - fn_(reward - h, lag)) / (2.0 * h);
}

}  // namespace tdp
