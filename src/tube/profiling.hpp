// TUBE profiling engine.
//
// "The profiling engine ... estimates a patience index (in the waiting
// function) for each traffic class" from the measurement engine's aggregate
// per-period usage: a TIP baseline window plus one or more TDP windows with
// known offered rewards. Wraps the Section IV estimator and converts the
// fitted mix into the DemandProfile the price engine optimizes over.
#pragma once

#include <cstddef>
#include <vector>

#include "core/demand_profile.hpp"
#include "estimation/wf_estimator.hpp"

namespace tdp {

class ProfilingEngine {
 public:
  /// @param periods     pricing periods per cycle
  /// @param types       session types to fit (e.g. web/ftp/video = 3)
  /// @param max_reward  normalization point P
  ProfilingEngine(std::size_t periods, std::size_t types, double max_reward);

  /// Provide the TIP baseline: total usage per period (MB or any consistent
  /// volume unit).
  void set_tip_baseline(std::vector<double> per_period_usage);

  /// Add one TDP observation window: the rewards that were offered and the
  /// measured total usage per period.
  void add_tdp_window(math::Vector rewards, std::vector<double> usage);

  /// Run the estimator over all windows. Throws if no baseline/windows.
  WaitingFunctionEstimate profile() const;

  /// Convert a fitted mix + the TIP baseline into a DemandProfile for the
  /// price engine (volumes = alpha_ji * X_i).
  DemandProfile to_demand_profile(const PatienceMix& mix,
                                  LagNormalization normalization) const;

  const std::vector<double>& tip_baseline() const { return baseline_; }
  std::size_t window_count() const { return windows_.size(); }

 private:
  std::size_t periods_;
  std::size_t types_;
  double max_reward_;
  std::vector<double> baseline_;
  std::vector<EstimationDataset> windows_;
};

}  // namespace tdp
