#include "tube/tube_system.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "tube/measurement_guard.hpp"
#include "math/piecewise_linear.hpp"
#include "netsim/link.hpp"
#include "netsim/simulator.hpp"

namespace tdp {

TubeConfig default_testbed_config() {
  TubeConfig cfg;
  cfg.classes = {
      // web: many small objects, time-sensitive browsing
      {"web", netsim::FlowKind::kElastic, /*arrivals_per_hour=*/300.0,
       /*mean_size_mb=*/2.0, 0.0, 0.0},
      // ftp: bulk transfers
      {"ftp", netsim::FlowKind::kElastic, /*arrivals_per_hour=*/60.0,
       /*mean_size_mb=*/30.0, 0.0, 0.0},
      // video: fixed-rate streams, exponential duration (Appendix G)
      {"video", netsim::FlowKind::kStreaming, /*arrivals_per_hour=*/6.0,
       /*mean_size_mb=*/0.0, /*rate_mbps=*/2.0, /*mean_duration_s=*/600.0},
  };
  cfg.user_intensity = {1.0, 1.0};
  // Group 1 is impatient across the board; group 2 is patient, most of all
  // for video ("watching videos for pleasure").
  cfg.patience = {{4.0, 4.5, 5.0},    // user 1: web, ftp, video
                  {2.0, 1.0, 0.5}};   // user 2
  // Fig. 11: traffic high at the start of the hour, lower at the end.
  cfg.profile.peak = 1.6;
  cfg.profile.multiplier = [](double t) {
    const double phase = std::fmod(t, 3600.0) / 3600.0;
    return 1.6 - 1.0 * phase;
  };
  cfg.background = {/*mean_on_s=*/30.0, /*mean_off_s=*/20.0,
                    /*min_rate_mbps=*/0.5, /*max_rate_mbps=*/3.0};
  return cfg;
}

TubeSystem::TubeSystem(TubeConfig config)
    : config_(std::move(config)),
      profiler_(config_.periods, config_.classes.size(), config_.max_reward),
      price_rrd_(config_.period_seconds, 24 * 12) {
  TDP_REQUIRE(config_.users >= 1, "need at least one user");
  TDP_REQUIRE(!config_.classes.empty(), "need at least one traffic class");
  TDP_REQUIRE(config_.user_intensity.size() == config_.users,
              "per-user intensity size mismatch");
  TDP_REQUIRE(config_.patience.size() == config_.users,
              "per-user patience size mismatch");
  for (const auto& p : config_.patience) {
    TDP_REQUIRE(p.size() == config_.classes.size(),
                "per-class patience size mismatch");
  }
  TDP_REQUIRE(config_.periods >= 2 && config_.period_seconds > 0.0,
              "invalid period structure");
}

TubeSystem::PhaseReport TubeSystem::run_phase(
    const math::Vector* fixed_rewards, mech::PricingMechanism* mechanism,
    std::size_t cycles) {
  TDP_REQUIRE(cycles >= 1, "need at least one cycle");
  const char* const phase_name = mechanism != nullptr
                                     ? "tube.phase.optimized"
                                 : fixed_rewards != nullptr
                                     ? "tube.phase.trial"
                                     : "tube.phase.tip";
  TDP_OBS_SPAN(phase_name);
  {
    static obs::Counter& phases =
        obs::Registry::global().counter("tube.phases_total");
    static obs::Counter& cycle_counter =
        obs::Registry::global().counter("tube.cycles_total");
    phases.add(1);
    cycle_counter.add(cycles);
  }
  const std::size_t n = config_.periods;
  const std::size_t users = config_.users;
  const std::size_t classes = config_.classes.size();
  const double period_s = config_.period_seconds;
  const double horizon = static_cast<double>(cycles * n) * period_s;

  netsim::Simulator sim;
  netsim::BottleneckLink link(sim, config_.link_capacity_mbps);
  MeasurementEngine measurement(users, classes);
  PriceChannel channel(n);
  const FaultInjector injector(config_.fault);
  channel.set_resilience(config_.resilience);
  if (injector.enabled()) channel.set_fault_injector(&injector);

  // Sanitization for the measured-arrivals feed into the mechanism: the
  // prior is the model's own expected TIP demand per period.
  std::unique_ptr<MeasurementGuard> guard;
  if (mechanism != nullptr) {
    guard = std::make_unique<MeasurementGuard>(mechanism->tip_demand());
  }

  // Publish the initial schedule.
  math::Vector schedule(n, 0.0);
  if (fixed_rewards != nullptr) schedule = *fixed_rewards;
  if (mechanism != nullptr) schedule = mechanism->rewards();
  channel.publish(schedule);
  if (mechanism != nullptr && obs::metrics_enabled()) {
    obs::journal_record("mech.publish", -1, -1, mechanism->name(),
                        {{"cycles", static_cast<double>(cycles)}});
  }

  PhaseReport report;
  report.rewards = schedule;
  report.user_period_mb.assign(users, {});
  report.class_total_mb.assign(users, std::vector<double>(classes, 0.0));
  report.class_deferred_mb.assign(users, std::vector<double>(classes, 0.0));
  report.user_bill_dollars.assign(users, 0.0);
  report.user_reward_dollars.assign(users, 0.0);

  // Deterministic per-phase components. Arrival seeds depend only on the
  // base seed + (user, class), so TIP and TDP phases see identical
  // arrival processes; agent decision streams use a distinct stream.
  Rng seeder(config_.seed);
  std::vector<GuiAgent> agents;
  agents.reserve(users);
  std::vector<std::size_t> subscriptions;
  for (std::size_t u = 0; u < users; ++u) {
    agents.emplace_back(config_.patience[u], n, config_.max_reward,
                        config_.seed * 1315423911ull + 7u * u + 3u);
    subscriptions.push_back(channel.subscribe());
  }

  // Billing bookkeeping per started flow: reward rate earned if deferred.
  const double price = config_.base_price_per_mb;
  auto on_flow_done = [&report, price](netsim::FlowId, const
                                       netsim::FlowSpec& spec,
                                       double served_mb) {
    report.class_total_mb[spec.user][spec.traffic_class] += served_mb;
    report.user_bill_dollars[spec.user] += served_mb * price;
  };

  // Session intake: agent decides deferral against the rewards pulled once
  // in the current period.
  auto handle_session = [&, this](const netsim::FlowSpec& spec) {
    const double now = sim.now();
    const std::size_t abs_period =
        static_cast<std::size_t>(std::floor(now / period_s));
    const std::size_t period = abs_period % n;
    const math::Vector& rewards =
        channel.pull(subscriptions[spec.user], abs_period);
    const GuiAgent::Decision decision =
        agents[spec.user].decide(spec.traffic_class, period, rewards);
    ++report.sessions;

    if (decision.lag == 0) {
      link.start_flow(spec, on_flow_done);
      return;
    }
    ++report.deferrals;
    const double expected_mb =
        spec.kind == netsim::FlowKind::kElastic
            ? spec.size_mb
            : spec.rate_mbps * spec.duration_s;
    report.class_deferred_mb[spec.user][spec.traffic_class] += expected_mb;
    report.user_reward_dollars[spec.user] +=
        expected_mb * decision.reward_rate;

    const double target_time =
        (std::floor(now / period_s) + static_cast<double>(decision.lag)) *
        period_s;
    if (target_time >= horizon) return;  // deferred past the experiment
    const double reward_rate = decision.reward_rate;
    sim.at(target_time, [&link, &report, spec, on_flow_done, reward_rate,
                         price] {
      link.start_flow(spec, [&report, reward_rate, price](
                                netsim::FlowId,
                                const netsim::FlowSpec& s,
                                double served_mb) {
        report.class_total_mb[s.user][s.traffic_class] += served_mb;
        // Deferred traffic is billed at the discounted rate.
        report.user_bill_dollars[s.user] +=
            served_mb * std::max(price - reward_rate, 0.0);
      });
    });
  };

  // Traffic sources and background.
  std::vector<std::unique_ptr<netsim::SessionSource>> sources;
  for (std::size_t u = 0; u < users; ++u) {
    for (std::size_t c = 0; c < classes; ++c) {
      netsim::TrafficClassConfig cls = config_.classes[c];
      cls.arrivals_per_hour *= config_.user_intensity[u];
      sources.push_back(std::make_unique<netsim::SessionSource>(
          sim, config_.seed + 97ull * u + 1009ull * c, u, c, cls,
          config_.profile, handle_session));
      sources.back()->start(horizon);
    }
  }
  netsim::BackgroundTraffic background(sim, link, config_.background,
                                       config_.seed ^ 0xBACC6D0Full);
  background.start(horizon);

  // Period boundaries: close measurements, track utilization, update and
  // publish prices (online mode).
  double utilization_acc = 0.0;
  std::size_t utilization_samples = 0;
  double settled_reward_dollars = 0.0;  ///< payouts through the last settle
  for (std::size_t k = 1; k <= cycles * n; ++k) {
    const double boundary = static_cast<double>(k) * period_s;
    sim.at(boundary - 1e-6, [&, k] {
      obs::trace_instant("tube.period");
      utilization_acc += link.utilization();
      ++utilization_samples;
      measurement.close_period(link);
      const std::size_t finished_period = (k - 1) % n;
      price_rrd_.add(elapsed_s_ + sim.now(), schedule[finished_period]);
      if (mechanism != nullptr) {
        // Feed back measured arrivals (MB this period) and republish.
        // The aggregate usage feed is a fault domain: samples can be lost
        // (blackout -> the mechanism freezes its schedule) or corrupted
        // (the guard repairs them before they reach the model).
        const double measured =
            measurement.total_usage_mb(measurement.periods_recorded() - 1);
        const std::uint64_t abs = static_cast<std::uint64_t>(k - 1);
        const FaultInjector::MeasurementFault fault =
            injector.measurement_fault(FaultInjector::kAggregateEntity, abs);
        if (fault == FaultInjector::MeasurementFault::kLost) {
          mechanism->observe_missed(finished_period);
        } else {
          const MeasurementGuard::Admitted admitted = guard->admit(
              finished_period, injector.corrupt(fault, measured));
          const std::size_t budget =
              injector.exhaust_solver(abs)
                  ? injector.plan().solver_starved_budget
                  : mechanism->solver_budget();
          mechanism->observe_period(finished_period, admitted.value,
                                    admitted.degraded, budget);
        }
        schedule = mechanism->rewards();
        channel.publish(schedule);

        if (finished_period == n - 1) {
          // One cycle is the testbed's "day": settle it with the measured
          // usage of the finished cycle against the profiled TIP demand.
          mech::DaySettlement settlement;
          settlement.offered_units = mechanism->tip_demand();
          settlement.realized_units.assign(n, 0.0);
          const std::size_t recorded = measurement.periods_recorded();
          for (std::size_t p = 0; p < n; ++p) {
            settlement.realized_units[p] =
                measurement.total_usage_mb(recorded - n + p);
          }
          double paid = 0.0;
          for (const double dollars : report.user_reward_dollars) {
            paid += dollars;
          }
          settlement.reward_paid_units = paid - settled_reward_dollars;
          settled_reward_dollars = paid;
          const mech::SettleInfo settle = mechanism->settle_day(settlement);
          if (obs::metrics_enabled()) {
            obs::journal_record(
                "mech.settle", -1, -1, mechanism->name(),
                {{"cycle", static_cast<double>(k / n)},
                 {"budget_spent", settle.budget_spent},
                 {"budget_pool", settle.budget_pool},
                 {"schedule_changed", settle.schedule_changed ? 1.0 : 0.0}});
          }
          if (settle.schedule_changed) {
            schedule = mechanism->rewards();
            channel.publish(schedule);
          }
        }
      }
    });
  }

  sim.run_until(horizon + 1.0);
  elapsed_s_ += horizon;
  // Report the schedule in force at the end (a mechanism republishes every
  // period).
  report.rewards = schedule;

  // Collate per-period usage, averaged over cycles for the report.
  report.total_period_mb.assign(n, 0.0);
  for (std::size_t u = 0; u < users; ++u) {
    report.user_period_mb[u].assign(n, 0.0);
  }
  const std::size_t recorded = measurement.periods_recorded();
  for (std::size_t k = 0; k < recorded; ++k) {
    const std::size_t period = k % n;
    for (std::size_t u = 0; u < users; ++u) {
      report.user_period_mb[u][period] +=
          measurement.user_usage_mb(k, u) / static_cast<double>(cycles);
    }
    report.total_period_mb[period] +=
        measurement.total_usage_mb(k) / static_cast<double>(cycles);
  }
  report.mean_utilization =
      utilization_samples > 0
          ? utilization_acc / static_cast<double>(utilization_samples)
          : 0.0;

  // Hand the aggregate series to the profiler.
  std::vector<double> totals = report.total_period_mb;
  if (fixed_rewards == nullptr && mechanism == nullptr) {
    profiler_.set_tip_baseline(std::move(totals));
  } else if (fixed_rewards != nullptr) {
    profiler_.add_tdp_window(*fixed_rewards, std::move(totals));
  }

  if (obs::metrics_enabled()) {
    obs::journal_record(
        "tube.phase", -1, -1, phase_name,
        {{"cycles", static_cast<double>(cycles)},
         {"sessions", static_cast<double>(report.sessions)},
         {"deferrals", static_cast<double>(report.deferrals)},
         {"mean_utilization", report.mean_utilization}});
  }
  return report;
}

TubeSystem::PhaseReport TubeSystem::run_tip(std::size_t cycles) {
  return run_phase(nullptr, nullptr, cycles);
}

TubeSystem::PhaseReport TubeSystem::run_trial(const math::Vector& rewards,
                                              std::size_t cycles) {
  TDP_REQUIRE(rewards.size() == config_.periods, "schedule size mismatch");
  return run_phase(&rewards, nullptr, cycles);
}

DynamicModel TubeSystem::build_priced_model() {
  // Profile waiting functions from the recorded TIP/TDP windows.
  const WaitingFunctionEstimate estimate = profiler_.profile();
  TDP_LOG_INFO << "TUBE profiling residual " << estimate.residual_norm2;

  DemandProfile demand = profiler_.to_demand_profile(
      estimate.mix, LagNormalization::kContinuous);

  // Price against the ISP's capacity target (80% of the physical link),
  // with the backlog-cost slope chosen so the rational reward bound equals
  // the configured max reward (slope = 2 P for linear waiting functions).
  const double capacity_mb_per_period = config_.link_capacity_mbps *
                                        config_.period_seconds *
                                        config_.capacity_target;
  const double slope = 2.0 * config_.max_reward;

  // Guard against infeasible profiles (estimated demand above capacity).
  const double total_capacity =
      capacity_mb_per_period * static_cast<double>(config_.periods);
  if (demand.total_demand() >= total_capacity) {
    const double shrink = 0.95 * total_capacity / demand.total_demand();
    for (std::size_t i = 0; i < demand.periods(); ++i) {
      demand.scale_period(i, shrink);
    }
    TDP_LOG_WARN << "profiled demand exceeds capacity; scaled by " << shrink;
  }

  return DynamicModel(std::move(demand), capacity_mb_per_period,
                      math::PiecewiseLinearCost::hinge(slope, 0.0));
}

TubeSystem::PhaseReport TubeSystem::run_optimized(std::size_t cycles) {
  return run_mechanism(mech::MechanismConfig{}, cycles);
}

TubeSystem::PhaseReport TubeSystem::run_mechanism(
    const mech::MechanismConfig& mechanism, std::size_t cycles) {
  const std::unique_ptr<mech::PricingMechanism> active = mech::make_mechanism(
      mechanism, build_priced_model(), DynamicOptimizerOptions{},
      PricerGuardConfig{});
  return run_phase(nullptr, active.get(), cycles);
}

}  // namespace tdp
