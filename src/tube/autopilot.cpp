#include "tube/autopilot.hpp"

#include <algorithm>

namespace tdp {

CongestionPricer::CongestionPricer(double full_price,
                                   double congestion_threshold,
                                   double floor_price)
    : full_price_(full_price),
      threshold_(congestion_threshold),
      floor_price_(floor_price) {
  TDP_REQUIRE(full_price > 0.0, "full price must be positive");
  TDP_REQUIRE(congestion_threshold > 0.0 && congestion_threshold <= 1.0,
              "threshold must be in (0, 1]");
  TDP_REQUIRE(floor_price >= 0.0 && floor_price <= full_price,
              "floor price must be in [0, full price]");
}

double CongestionPricer::price(double utilization) const {
  TDP_REQUIRE(utilization >= 0.0 && utilization <= 1.0 + 1e-9,
              "utilization must be in [0, 1]");
  const double u = std::min(utilization, 1.0);
  if (u >= threshold_) return full_price_;
  // Linear ramp from floor at idle to full price at the threshold.
  return floor_price_ +
         (full_price_ - floor_price_) * (u / threshold_);
}

AutopilotAgent::AutopilotAgent(Config config) : config_(std::move(config)) {
  TDP_REQUIRE(config_.max_monthly_bill > 0.0, "budget must be positive");
  TDP_REQUIRE(config_.price_ceiling >= 0.0, "ceiling must be nonnegative");
}

double AutopilotAgent::effective_ceiling() const {
  // Shrink the ceiling linearly as spending approaches the budget; at the
  // budget only free slots are acceptable.
  const double remaining =
      std::max(1.0 - spent_ / config_.max_monthly_bill, 0.0);
  return config_.price_ceiling * remaining;
}

bool AutopilotAgent::should_start(std::size_t traffic_class,
                                  double price_per_mb) const {
  TDP_REQUIRE(price_per_mb >= 0.0, "price must be nonnegative");
  if (traffic_class < config_.never_defer.size() &&
      config_.never_defer[traffic_class]) {
    return true;
  }
  return price_per_mb <= effective_ceiling() + 1e-15;
}

void AutopilotAgent::record_usage(double mb, double price_per_mb) {
  TDP_REQUIRE(mb >= 0.0 && price_per_mb >= 0.0,
              "usage and price must be nonnegative");
  usage_mb_ += mb;
  spent_ += mb * price_per_mb;
}

}  // namespace tdp
