#include "tube/gui_agent.hpp"

#include <cmath>

#include "common/cyclic.hpp"
#include "common/error.hpp"

namespace tdp {

GuiAgent::GuiAgent(std::vector<double> patience, std::size_t periods,
                   double max_reward, std::uint64_t seed)
    : patience_(std::move(patience)),
      periods_(periods),
      max_reward_(max_reward),
      rng_(seed),
      decisions_(patience_.size(), 0),
      deferrals_(patience_.size(), 0) {
  TDP_REQUIRE(!patience_.empty(), "need at least one traffic class");
  for (double beta : patience_) {
    TDP_REQUIRE(beta >= 0.0, "patience index must be nonnegative");
  }
  TDP_REQUIRE(periods >= 2, "need at least two periods");
  TDP_REQUIRE(max_reward > 0.0, "max reward must be positive");
}

GuiAgent::Decision GuiAgent::decide(std::size_t traffic_class,
                                    std::size_t period,
                                    const math::Vector& rewards) {
  TDP_REQUIRE(traffic_class < patience_.size(), "unknown traffic class");
  TDP_REQUIRE(period < periods_, "period out of range");
  TDP_REQUIRE(rewards.size() == periods_, "reward schedule size mismatch");

  ++decisions_[traffic_class];
  const double beta = patience_[traffic_class];

  // Unnormalized capped power law (see header).
  std::vector<double> prob(periods_, 0.0);
  double total = 0.0;
  for (std::size_t lag = 1; lag < periods_; ++lag) {
    const std::size_t target = cyclic_advance(period, lag, periods_);
    const double price_factor =
        std::min(std::max(rewards[target], 0.0) / max_reward_, 1.0);
    prob[lag] =
        price_factor * std::pow(static_cast<double>(lag) + 1.0, -beta);
    total += prob[lag];
  }
  if (total > 1.0) {
    for (std::size_t lag = 1; lag < periods_; ++lag) prob[lag] /= total;
  }

  Decision decision;
  double draw = rng_.uniform();
  for (std::size_t lag = 1; lag < periods_; ++lag) {
    if (draw < prob[lag]) {
      decision.lag = lag;
      const std::size_t target = cyclic_advance(period, lag, periods_);
      decision.reward_rate = rewards[target];
      ++deferrals_[traffic_class];
      return decision;
    }
    draw -= prob[lag];
  }
  return decision;  // start now
}

std::size_t GuiAgent::decisions(std::size_t traffic_class) const {
  TDP_REQUIRE(traffic_class < decisions_.size(), "unknown traffic class");
  return decisions_[traffic_class];
}

std::size_t GuiAgent::deferrals(std::size_t traffic_class) const {
  TDP_REQUIRE(traffic_class < deferrals_.size(), "unknown traffic class");
  return deferrals_[traffic_class];
}

}  // namespace tdp
