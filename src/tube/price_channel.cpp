#include "tube/price_channel.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace tdp {
namespace {

/// Registry mirrors of the per-subscriber SubscriberTelemetry, aggregated
/// across all subscribers and channels (always on — the fleet driver reads
/// these as per-day deltas for FleetMetrics).
struct ChannelCounters {
  obs::Counter& fetches =
      obs::Registry::global().counter("channel.fetches_total");
  obs::Counter& cache_hits =
      obs::Registry::global().counter("channel.cache_hits_total");
  obs::Counter& dropped_attempts =
      obs::Registry::global().counter("channel.dropped_attempts_total");
  obs::Counter& retries =
      obs::Registry::global().counter("channel.retries_total");
  obs::Counter& stale_periods =
      obs::Registry::global().counter("channel.stale_periods_total");
  obs::Counter& fallback_periods =
      obs::Registry::global().counter("channel.fallback_periods_total");
  obs::Counter& skewed_periods =
      obs::Registry::global().counter("channel.skewed_periods_total");
  obs::Counter& recoveries =
      obs::Registry::global().counter("channel.recoveries_total");
};

ChannelCounters& channel_counters() {
  static ChannelCounters counters;
  return counters;
}

}  // namespace

PriceChannel::PriceChannel(std::size_t periods)
    : periods_(periods), published_(periods, 0.0) {
  TDP_REQUIRE(periods >= 1, "need at least one period");
}

void PriceChannel::publish(const math::Vector& rewards) {
  TDP_REQUIRE(rewards.size() == periods_, "schedule size mismatch");
  for (double p : rewards) {
    TDP_REQUIRE(p >= 0.0, "rewards must be nonnegative");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  published_ = rewards;
  ++publish_count_;
}

std::size_t PriceChannel::subscribe() {
  const std::lock_guard<std::mutex> lock(mutex_);
  Subscriber sub;
  sub.cache = math::Vector(periods_, 0.0);
  subscribers_.push_back(std::move(sub));
  return subscribers_.size() - 1;
}

void PriceChannel::set_fault_injector(const FaultInjector* injector) {
  const std::lock_guard<std::mutex> lock(mutex_);
  injector_ = injector;
}

void PriceChannel::set_resilience(const ChannelResilienceConfig& config) {
  const std::lock_guard<std::mutex> lock(mutex_);
  resilience_ = config;
}

math::Vector PriceChannel::pull(std::size_t subscriber,
                                std::size_t abs_period) {
  return pull_with_source(subscriber, abs_period, nullptr);
}

math::Vector PriceChannel::pull_with_source(std::size_t subscriber,
                                            std::size_t abs_period,
                                            PullSource* source) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  Subscriber& sub = subscribers_[subscriber];
  TDP_REQUIRE(!sub.pulled_ever || abs_period >= sub.last_pull_period,
              "pulls must be time-ordered");

  // Repeat pull within the period: read whatever this period resolved to
  // (fresh, stale or fallback — repeats must agree with the first pull).
  if (sub.pulled_ever && abs_period == sub.last_pull_period) {
    ++sub.stats.cache_hits;
    channel_counters().cache_hits.add_always(1);
    if (source != nullptr) *source = PullSource::kCache;
    return sub.cache;
  }

  sub.last_pull_period = abs_period;
  sub.pulled_ever = true;

  // First pull of a new period: try the server. The fault-free path (no
  // injector, or one that never fires) is exactly the pre-fault channel:
  // one successful attempt, cache refreshed, fetch counted.
  // A skewed clock is not a transport failure: the subscriber believes the
  // period has not rolled over and reads its cache as if it were current.
  // The miss streak is untouched — the next unskewed period fetches
  // normally.
  if (injector_ != nullptr && injector_->skew_clock(subscriber, abs_period)) {
    ++sub.stats.skewed_periods;
    channel_counters().skewed_periods.add_always(1);
    if (source != nullptr) *source = PullSource::kStale;
    return sub.cache;
  }

  // Bounded retry: while within the TTL the subscriber spends its retry
  // budget; once in fallback it backs off to one attempt per period.
  bool fetched = false;
  const std::size_t attempts =
      sub.stats.missed_streak > resilience_.staleness_ttl
          ? 1
          : 1 + resilience_.max_retries;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (injector_ != nullptr &&
        injector_->drop_price_pull(subscriber, abs_period, attempt)) {
      ++sub.stats.dropped_attempts;
      channel_counters().dropped_attempts.add_always(1);
      if (attempt + 1 < attempts) {
        ++sub.stats.retries;
        channel_counters().retries.add_always(1);
      }
      continue;
    }
    fetched = true;
    break;
  }

  if (fetched) {
    sub.cache = published_;
    ++sub.stats.fetches;
    channel_counters().fetches.add_always(1);
    if (sub.stats.missed_streak > 0) {
      ++sub.stats.recoveries;
      channel_counters().recoveries.add_always(1);
      obs::journal_record("channel.recovery",
                          static_cast<std::int64_t>(abs_period),
                          static_cast<std::int64_t>(subscriber),
                          "fetch succeeded after misses",
                          {{"missed_streak",
                            static_cast<double>(sub.stats.missed_streak)}});
      sub.stats.missed_streak = 0;
    }
    if (source != nullptr) *source = PullSource::kServer;
    return sub.cache;
  }

  // Miss: degrade. Within the TTL the last-known-good schedule is still a
  // sane signal (rewards change slowly period-to-period); past it, pretend
  // prices are flat — a zero-reward schedule under which nobody defers,
  // which can never destabilize demand.
  ++sub.stats.missed_streak;
  if (sub.stats.missed_streak <= resilience_.staleness_ttl) {
    ++sub.stats.stale_periods;
    channel_counters().stale_periods.add_always(1);
    if (source != nullptr) *source = PullSource::kStale;
  } else {
    ++sub.stats.fallback_periods;
    channel_counters().fallback_periods.add_always(1);
    if (sub.stats.missed_streak == resilience_.staleness_ttl + 1) {
      // First fallback period of this excursion: one journal event per
      // excursion, not one per degraded period.
      obs::journal_record("channel.fallback",
                          static_cast<std::int64_t>(abs_period),
                          static_cast<std::int64_t>(subscriber),
                          "staleness TTL exhausted, zero-reward fallback",
                          {{"missed_streak",
                            static_cast<double>(sub.stats.missed_streak)}});
    }
    sub.cache = math::Vector(periods_, 0.0);
    if (source != nullptr) *source = PullSource::kFallback;
  }
  return sub.cache;  // copy: the caller's snapshot outlives any mutation
}

std::size_t PriceChannel::server_fetches(std::size_t subscriber) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  return subscribers_[subscriber].stats.fetches;
}

std::size_t PriceChannel::cache_hits(std::size_t subscriber) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  return subscribers_[subscriber].stats.cache_hits;
}

SubscriberTelemetry PriceChannel::telemetry(std::size_t subscriber) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  return subscribers_[subscriber].stats;
}

std::size_t PriceChannel::publish_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return publish_count_;
}

PriceChannelState PriceChannel::export_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PriceChannelState state;
  state.published = published_;
  state.publish_count = publish_count_;
  state.subscribers.reserve(subscribers_.size());
  for (const Subscriber& sub : subscribers_) {
    PriceChannelState::Subscriber out;
    out.cache = sub.cache;
    out.last_pull_period =
        sub.last_pull_period == static_cast<std::size_t>(-1)
            ? ~0ull
            : static_cast<std::uint64_t>(sub.last_pull_period);
    out.pulled_ever = sub.pulled_ever;
    out.stats = sub.stats;
    state.subscribers.push_back(std::move(out));
  }
  return state;
}

void PriceChannel::restore_state(const PriceChannelState& state) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(state.subscribers.size() == subscribers_.size(),
              "restored channel state has a different subscriber topology");
  TDP_REQUIRE(state.published.empty() || state.published.size() == periods_,
              "restored schedule has the wrong period count");
  published_ = state.published;
  publish_count_ = static_cast<std::size_t>(state.publish_count);
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    const PriceChannelState::Subscriber& in = state.subscribers[i];
    TDP_REQUIRE(in.cache.empty() || in.cache.size() == periods_,
                "restored subscriber cache has the wrong period count");
    subscribers_[i].cache = in.cache;
    subscribers_[i].last_pull_period =
        in.last_pull_period == ~0ull
            ? static_cast<std::size_t>(-1)
            : static_cast<std::size_t>(in.last_pull_period);
    subscribers_[i].pulled_ever = in.pulled_ever;
    subscribers_[i].stats = in.stats;
  }
}

}  // namespace tdp
