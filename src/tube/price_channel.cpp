#include "tube/price_channel.hpp"

#include <utility>

#include "common/error.hpp"

namespace tdp {

PriceChannel::PriceChannel(std::size_t periods)
    : periods_(periods), published_(periods, 0.0) {
  TDP_REQUIRE(periods >= 1, "need at least one period");
}

void PriceChannel::publish(const math::Vector& rewards) {
  TDP_REQUIRE(rewards.size() == periods_, "schedule size mismatch");
  for (double p : rewards) {
    TDP_REQUIRE(p >= 0.0, "rewards must be nonnegative");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  published_ = rewards;
  ++publish_count_;
}

std::size_t PriceChannel::subscribe() {
  const std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.push_back(Subscriber{math::Vector(periods_, 0.0),
                                    static_cast<std::size_t>(-1), false, 0,
                                    0});
  return subscribers_.size() - 1;
}

math::Vector PriceChannel::pull(std::size_t subscriber,
                                std::size_t abs_period) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  Subscriber& sub = subscribers_[subscriber];
  TDP_REQUIRE(!sub.pulled_ever || abs_period >= sub.last_pull_period,
              "pulls must be time-ordered");
  if (!sub.pulled_ever || abs_period != sub.last_pull_period) {
    sub.cache = published_;
    sub.last_pull_period = abs_period;
    sub.pulled_ever = true;
    ++sub.fetches;
  } else {
    ++sub.hits;
  }
  return sub.cache;  // copy: the caller's snapshot outlives any mutation
}

std::size_t PriceChannel::server_fetches(std::size_t subscriber) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  return subscribers_[subscriber].fetches;
}

std::size_t PriceChannel::cache_hits(std::size_t subscriber) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TDP_REQUIRE(subscriber < subscribers_.size(), "unknown subscriber");
  return subscribers_[subscriber].hits;
}

std::size_t PriceChannel::publish_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return publish_count_;
}

}  // namespace tdp
