#include "tube/profiling.hpp"

#include <memory>

#include "common/error.hpp"

namespace tdp {

ProfilingEngine::ProfilingEngine(std::size_t periods, std::size_t types,
                                 double max_reward)
    : periods_(periods), types_(types), max_reward_(max_reward) {
  TDP_REQUIRE(periods >= 2, "need at least two periods");
  TDP_REQUIRE(types >= 1, "need at least one type");
  TDP_REQUIRE(max_reward > 0.0, "max reward must be positive");
}

void ProfilingEngine::set_tip_baseline(std::vector<double> per_period_usage) {
  TDP_REQUIRE(per_period_usage.size() == periods_,
              "baseline size mismatch");
  for (double v : per_period_usage) {
    TDP_REQUIRE(v >= 0.0, "usage must be nonnegative");
  }
  baseline_ = std::move(per_period_usage);
}

void ProfilingEngine::add_tdp_window(math::Vector rewards,
                                     std::vector<double> usage) {
  TDP_REQUIRE(!baseline_.empty(), "set the TIP baseline first");
  TDP_REQUIRE(rewards.size() == periods_ && usage.size() == periods_,
              "window size mismatch");
  EstimationDataset dataset;
  dataset.rewards = std::move(rewards);
  dataset.usage_change.assign(periods_, 0.0);
  for (std::size_t i = 0; i < periods_; ++i) {
    // T_i = demand under TIP minus usage under TDP.
    dataset.usage_change[i] = baseline_[i] - usage[i];
  }
  windows_.push_back(std::move(dataset));
}

WaitingFunctionEstimate ProfilingEngine::profile() const {
  TDP_REQUIRE(!baseline_.empty(), "no TIP baseline recorded");
  TDP_REQUIRE(!windows_.empty(), "no TDP windows recorded");
  const WaitingFunctionEstimator estimator(periods_, types_, max_reward_);
  // Time-invariant class parameters: "the profiling engine estimates a
  // patience index for each traffic class".
  return estimator.estimate_tied(baseline_, windows_);
}

DemandProfile ProfilingEngine::to_demand_profile(
    const PatienceMix& mix, LagNormalization normalization) const {
  TDP_REQUIRE(mix.periods() == periods_ && mix.types() == types_,
              "mix shape mismatch");
  TDP_REQUIRE(!baseline_.empty(), "no TIP baseline recorded");

  DemandProfile profile(periods_);
  for (std::size_t i = 0; i < periods_; ++i) {
    for (std::size_t j = 0; j < types_; ++j) {
      const double volume = mix.alpha(i, j) * baseline_[i];
      if (volume <= 0.0) continue;
      profile.add_class(
          i, SessionClass{std::make_shared<PowerLawWaitingFunction>(
                              mix.beta(i, j), periods_, max_reward_, 1.0,
                              normalization),
                          volume});
    }
  }
  return profile;
}

}  // namespace tdp
