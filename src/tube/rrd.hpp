// Round-robin database (RRD) style time-series store.
//
// The TUBE GUI "uses a Round Robin Database to store the history of TDP
// prices being offered and the average Internet usage" [24]. This is a
// fixed-footprint ring of consolidated buckets: samples are averaged into
// step-aligned buckets; when the ring is full the oldest bucket is
// overwritten. Reads return the retained window in time order.
#pragma once

#include <cstddef>
#include <vector>

namespace tdp {

class RrdStore {
 public:
  /// @param step_seconds  bucket width
  /// @param buckets       ring capacity
  RrdStore(double step_seconds, std::size_t buckets);

  /// Record a sample at an absolute time (must not move backwards by more
  /// than one bucket; RRD semantics are append-mostly).
  void add(double time_s, double value);

  struct Bucket {
    double start_s = 0.0;
    double average = 0.0;
    std::size_t samples = 0;
  };

  /// Retained buckets, oldest first. Buckets with no samples are skipped.
  std::vector<Bucket> series() const;

  double step_seconds() const { return step_; }
  std::size_t capacity() const { return ring_.size(); }

 private:
  std::size_t slot_for(long long bucket_index) const;

  double step_;
  std::vector<Bucket> ring_;
  long long newest_bucket_ = -1;  ///< absolute bucket index of newest data
  bool any_ = false;
};

}  // namespace tdp
