#include "tube/measurement_guard.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace tdp {
namespace {

/// Registry mirrors of the guard's repair counters. The guard's own fields
/// stay the per-instance source of truth; these aggregate across instances.
struct GuardCounters {
  obs::Counter& gaps = obs::Registry::global().counter("guard.gaps_filled_total");
  obs::Counter& nan_rejected =
      obs::Registry::global().counter("guard.nan_rejected_total");
  obs::Counter& negative_rejected =
      obs::Registry::global().counter("guard.negative_rejected_total");
  obs::Counter& spikes =
      obs::Registry::global().counter("guard.spikes_clamped_total");
};

GuardCounters& guard_counters() {
  static GuardCounters counters;
  return counters;
}

}  // namespace

MeasurementGuard::MeasurementGuard(std::vector<double> reference,
                                   MeasurementGuardConfig config)
    : reference_(std::move(reference)),
      config_(config),
      last_good_(reference_.size(), 0.0),
      has_last_good_(reference_.size(), false),
      gap_streak_(reference_.size(), 0) {
  TDP_REQUIRE(!reference_.empty(), "need at least one period");
  TDP_REQUIRE(config_.max_spike_factor > 1.0,
              "spike factor must exceed 1 or clean data would be clamped");
  TDP_REQUIRE(config_.carry_floor_fraction >= 0.0 &&
                  config_.carry_floor_fraction < 1.0,
              "carry floor fraction must lie in [0, 1)");
  for (double r : reference_) {
    TDP_REQUIRE(std::isfinite(r) && r >= 0.0,
                "reference profile must be finite and nonnegative");
  }
}

double MeasurementGuard::fill_gap(std::size_t period) {
  ++gaps_filled_;
  guard_counters().gaps.add_always(1);
  ++gap_streak_[period];
  if (has_last_good_[period] &&
      gap_streak_[period] <= config_.max_carry_forward) {
    return last_good_[period];
  }
  // Extended blackout (or no history yet): decay geometrically from the
  // last good sample toward the prior, clamped at the carry floor — over a
  // near-zero reference period an unclamped decay walks the carried value
  // to ~0, and the first post-blackout re-solve would see a demand cliff.
  if (has_last_good_[period]) {
    const double lg = last_good_[period];
    const double ref = reference_[period];
    const std::size_t over = gap_streak_[period] - config_.max_carry_forward;
    const double decayed =
        ref + (lg - ref) * std::pow(0.5, static_cast<double>(over));
    return std::max(decayed, config_.carry_floor_fraction * lg);
  }
  return reference_[period];
}

MeasurementGuard::Admitted MeasurementGuard::admit(
    std::size_t period, std::optional<double> measured) {
  TDP_REQUIRE(period < reference_.size(), "period out of range");
  Admitted out;

  if (!measured.has_value()) {
    out.value = fill_gap(period);
    out.degraded = true;
    return out;
  }
  const double raw = *measured;
  if (std::isnan(raw) || std::isinf(raw)) {
    ++nan_rejected_;
    guard_counters().nan_rejected.add_always(1);
    obs::journal_record("guard.repair", static_cast<std::int64_t>(period), -1,
                        "non-finite sample rejected");
    TDP_LOG_EVERY_POW2(::tdp::LogLevel::kWarn, nan_rejected_)
        << "measurement guard: non-finite sample for period " << period
        << "; filling gap (" << nan_rejected_ << " rejected so far)";
    out.value = fill_gap(period);
    out.degraded = true;
    return out;
  }
  if (raw < 0.0) {
    ++negative_rejected_;
    guard_counters().negative_rejected.add_always(1);
    obs::journal_record("guard.repair", static_cast<std::int64_t>(period), -1,
                        "negative sample rejected", {{"value", raw}});
    TDP_LOG_EVERY_POW2(::tdp::LogLevel::kWarn, negative_rejected_)
        << "measurement guard: negative sample " << raw << " for period "
        << period << "; filling gap (" << negative_rejected_
        << " rejected so far)";
    out.value = fill_gap(period);
    out.degraded = true;
    return out;
  }

  // The spike bound is anchored on the larger of the prior and the last
  // good sample, so legitimately-grown demand keeps headroom.
  const double anchor =
      has_last_good_[period]
          ? std::max(reference_[period], last_good_[period])
          : reference_[period];
  const double bound = config_.max_spike_factor * anchor;
  if (anchor > 0.0 && raw > bound) {
    ++spikes_clamped_;
    guard_counters().spikes.add_always(1);
    obs::journal_record("guard.repair", static_cast<std::int64_t>(period), -1,
                        "spike clamped", {{"value", raw}, {"bound", bound}});
    TDP_LOG_EVERY_POW2(::tdp::LogLevel::kWarn, spikes_clamped_)
        << "measurement guard: spike " << raw << " clamped to " << bound
        << " for period " << period << " (" << spikes_clamped_
        << " clamped so far)";
    out.value = bound;
    out.degraded = true;
    // A clamped sample is still evidence of elevated demand: remember the
    // clamped level, not the outlier.
    last_good_[period] = bound;
    has_last_good_[period] = true;
    gap_streak_[period] = 0;
    return out;
  }

  // Clean sample: pass through bit-identical.
  out.value = raw;
  out.degraded = false;
  last_good_[period] = raw;
  has_last_good_[period] = true;
  gap_streak_[period] = 0;
  return out;
}

MeasurementGuardState MeasurementGuard::export_state() const {
  MeasurementGuardState state;
  state.last_good = last_good_;
  state.has_last_good = has_last_good_;
  state.gap_streak.assign(gap_streak_.begin(), gap_streak_.end());
  state.gaps_filled = gaps_filled_;
  state.nan_rejected = nan_rejected_;
  state.negative_rejected = negative_rejected_;
  state.spikes_clamped = spikes_clamped_;
  return state;
}

void MeasurementGuard::restore_state(const MeasurementGuardState& state) {
  const std::size_t n = reference_.size();
  TDP_REQUIRE(state.last_good.size() == n && state.has_last_good.size() == n &&
                  state.gap_streak.size() == n,
              "restored guard state has the wrong period count");
  last_good_ = state.last_good;
  has_last_good_ = state.has_last_good;
  gap_streak_.assign(state.gap_streak.begin(), state.gap_streak.end());
  gaps_filled_ = static_cast<std::size_t>(state.gaps_filled);
  nan_rejected_ = static_cast<std::size_t>(state.nan_rejected);
  negative_rejected_ = static_cast<std::size_t>(state.negative_rejected);
  spikes_clamped_ = static_cast<std::size_t>(state.spikes_clamped);
}

}  // namespace tdp
